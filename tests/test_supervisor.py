"""Supervised pool and journaled sweep: crash, chaos and resume semantics."""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.core.config import baseline_config, bitslice_config
from repro.experiments import parallel, runner, supervisor
from repro.experiments.journal import DONE, PENDING, SweepJournal
from repro.experiments.supervisor import (
    PoolTask,
    SupervisedPool,
    SupervisorPolicy,
    run_sweep,
)
from repro.harness.faults import ProcessFaultPlan
from repro.timing.simulator import simulate

N = 1_200
WARMUP = 200

#: Pool tests use trivial executors; the runner state tuple is not
#: needed, but building it is harmless and exercises the snapshot.
FAST = SupervisorPolicy(max_cell_retries=0, backoff=0.0)


def _tasks(fn, payloads, max_retries=0):
    return [
        PoolTask(id=str(i), fn=f"tests._supervisor_tasks:{fn}", payload=p,
                 max_retries=max_retries)
        for i, p in enumerate(payloads)
    ]


def _no_children(timeout=10.0):
    deadline = time.monotonic() + timeout
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    return not multiprocessing.active_children()


# ----------------------------------------------------------------- basics

def test_pool_runs_tasks_and_returns_values():
    tasks = _tasks("echo", [("a", 1), ("b", 2), ("c", 3)])
    with SupervisedPool(2, policy=FAST) as pool:
        outcomes = pool.run(tasks)
    assert set(outcomes) == {"0", "1", "2"}
    assert all(o.ok and o.attempts == 1 for o in outcomes.values())
    assert outcomes["1"].value == ("b", 2)
    assert _no_children()


def test_executor_exception_becomes_failed_outcome():
    with SupervisedPool(1, policy=FAST) as pool:
        outcomes = pool.run(_tasks("boom", [("x",), ("y",)]))
    for key, payload in (("0", "x"), ("1", "y")):
        assert not outcomes[key].ok
        assert outcomes[key].error == "ValueError"
        assert outcomes[key].message == f"boom:{payload}"
        assert not outcomes[key].quarantined  # no retries were allowed


# ---------------------------------------------------- death and respawning

def test_sigkilled_worker_is_detected_and_cell_fails_cleanly():
    """A SIGKILL mid-cell must surface as WorkerCrash, not a hang."""
    events = []
    tasks = _tasks("die", [(1,)]) + _tasks("echo", [("alive",)])
    tasks[1].id = "survivor"
    with SupervisedPool(2, policy=FAST) as pool:
        outcomes = pool.run(tasks, on_event=lambda k, t, i: events.append(k))
    assert outcomes["0"].error == "WorkerCrash"
    assert outcomes["survivor"].ok and outcomes["survivor"].value == ("alive",)
    assert "respawn" in events
    assert _no_children()


def test_poison_cell_retries_consume_budget_then_quarantine(tmp_path):
    """A cell that kills every worker quarantines after its retries."""
    tasks = _tasks("flaky", [(str(tmp_path), "p", 99)], max_retries=2)
    with SupervisedPool(1, policy=SupervisorPolicy(max_cell_retries=2, backoff=0.0)) as pool:
        outcomes = pool.run(tasks)
    out = outcomes["0"]
    assert not out.ok and out.error == "WorkerCrash"
    assert out.attempts == 3  # first try + 2 retries
    assert out.quarantined
    assert len(list(tmp_path.glob("p.attempt.*"))) == 3


def test_flaky_cell_recovers_within_retry_budget(tmp_path):
    """Retries re-dispatch on a respawned worker and can succeed."""
    tasks = _tasks("flaky", [(str(tmp_path), "f", 2)], max_retries=3)
    events = []
    with SupervisedPool(1, policy=SupervisorPolicy(max_cell_retries=3, backoff=0.0)) as pool:
        outcomes = pool.run(tasks, on_event=lambda k, t, i: events.append(k))
    out = outcomes["0"]
    assert out.ok and out.value == ("ok", "f", 3)
    assert out.attempts == 3
    assert events.count("retry") == 2 and events.count("respawn") >= 2


def test_stalled_worker_is_killed_after_cell_timeout():
    policy = SupervisorPolicy(max_cell_retries=0, backoff=0.0, cell_timeout=1.0)
    t0 = time.monotonic()
    with SupervisedPool(1, policy=policy) as pool:
        outcomes = pool.run(_tasks("stall", [(60,)]))
    assert time.monotonic() - t0 < 30  # did not wait out the sleep
    out = outcomes["0"]
    assert out.error == "WorkerCrash" and "timeout" in out.message
    assert _no_children()


# ------------------------------------------------------ corrupt transport

def test_corrupted_result_is_rejected_by_checksum():
    plan = ProcessFaultPlan(seed=1, corrupt_rate=1.0)
    events = []
    with SupervisedPool(1, policy=FAST, fault_plan=plan) as pool:
        outcomes = pool.run(
            _tasks("echo", [("payload",)]),
            on_event=lambda k, t, i: events.append(k),
        )
    out = outcomes["0"]
    assert not out.ok and out.error == "ResultCorruption"
    assert "corrupt" in events


# -------------------------------------------------- interruption handling

def test_drain_raises_keyboard_interrupt_and_reaps_workers():
    events = []
    pool = SupervisedPool(1, policy=FAST)
    pool._signal_drain(None, None)  # what the SIGINT/SIGTERM handler does
    with pool:
        with pytest.raises(KeyboardInterrupt):
            pool.run(_tasks("echo", [("x",)]), on_event=lambda k, t, i: events.append(k))
    assert "drain" in events
    assert _no_children()


def test_no_orphan_workers_when_caller_raises_mid_run():
    """Regression: an exception mid-sweep must never leak live workers."""

    class CallerBug(Exception):
        pass

    def on_event(kind, task, info):
        if kind == "done":
            raise CallerBug()

    with pytest.raises(CallerBug):
        with SupervisedPool(2, policy=FAST) as pool:
            pool.run(_tasks("echo", [(i,) for i in range(4)]), on_event=on_event)
    assert _no_children()


# ------------------------------------------------------------- backoff

def test_retry_delay_is_seeded_and_exponential():
    policy = SupervisorPolicy(backoff=0.25, backoff_jitter=0.25, seed=7)
    d1, d2, d3 = (policy.retry_delay("cell", a) for a in (1, 2, 3))
    assert policy.retry_delay("cell", 1) == d1  # deterministic
    assert 0.25 <= d1 <= 0.25 * 1.25
    assert 0.50 <= d2 <= 0.50 * 1.25
    assert 1.00 <= d3 <= 1.00 * 1.25
    assert policy.retry_delay("other-cell", 1) != d1  # decorrelated
    assert SupervisorPolicy(backoff=0.0).retry_delay("cell", 1) == 0.0


# -------------------------------------------------------- fault plan

def test_fault_plan_is_deterministic_and_rerolls_per_attempt():
    plan = ProcessFaultPlan(seed=3, kill_rate=0.5)
    decisions = [plan.decide("cell", a) for a in range(1, 30)]
    assert decisions == [plan.decide("cell", a) for a in range(1, 30)]
    assert "kill" in decisions and None in decisions  # retries re-roll
    assert ProcessFaultPlan(seed=3).decide("cell", 1) is None  # rates 0
    off, mask = plan.corrupt_byte("cell", 1, 100)
    assert 0 <= off < 100 and mask in {1 << b for b in range(8)}
    assert ProcessFaultPlan.from_spec(plan.to_spec()) == plan


# ---------------------------------------------------- the sweep orchestrator

def test_run_sweep_chaos_is_bit_identical_to_clean_run(tmp_path):
    """The headline invariant: seeded worker kills and corruptions must
    not change a single counter of the merged results."""
    names, configs = ["li"], [baseline_config(), bitslice_config(2)]
    grid, failures, degraded, report = run_sweep(
        names, configs, N, WARMUP, jobs=2,
        journal_path=tmp_path / "sweep.journal.json",
        policy=SupervisorPolicy(max_cell_retries=10, backoff=0.01),
        fault_plan=ProcessFaultPlan(seed=11, kill_rate=0.4, corrupt_rate=0.3),
    )
    assert not failures and not degraded
    assert report.respawns + report.corrupt_results > 0  # chaos actually hit
    trace = runner.collect_trace("li", N + WARMUP)
    for config in configs:
        expected = simulate(config, trace, warmup=WARMUP)
        assert grid["li"][config.name].to_dict() == expected.to_dict()


def test_run_sweep_resume_replays_without_reexecution(tmp_path):
    names, configs = ["li"], [baseline_config(), bitslice_config(2)]
    journal_path = tmp_path / "sweep.journal.json"
    args = dict(jobs=1, journal_path=journal_path, fault_plan=ProcessFaultPlan())
    grid1, _, _, report1 = run_sweep(names, configs, N, WARMUP, **args)
    assert report1.cells_executed == 2 and report1.resume_hits == 0

    grid2, _, _, report2 = run_sweep(names, configs, N, WARMUP, resume=True, **args)
    assert report2.cells_executed == 0 and report2.resume_hits == 2
    assert report2.resume_hit_rate == 1.0
    for config in configs:
        assert grid2["li"][config.name].to_dict() == grid1["li"][config.name].to_dict()


def test_run_sweep_resume_reexecutes_only_missing_cells(tmp_path):
    """Partial journals (as a killed orchestrator leaves them) resume
    with exactly the unfinished cells re-dispatched."""
    names, configs = ["li"], [baseline_config(), bitslice_config(2)]
    journal_path = tmp_path / "sweep.journal.json"
    args = dict(jobs=1, journal_path=journal_path, fault_plan=ProcessFaultPlan())
    grid1, _, _, _ = run_sweep(names, configs, N, WARMUP, **args)

    # Surgically "unfinish" one cell, as a crash between result store
    # and completion would: demote it and remove its stored result.
    journal = SweepJournal.load(journal_path)
    victim = journal.cells[1]
    journal.mark_retry(victim.key, "simulated crash")
    journal.result_path(victim.key).unlink()

    grid2, _, _, report = run_sweep(names, configs, N, WARMUP, resume=True, **args)
    assert report.resume_hits == 1 and report.cells_executed == 1
    assert SweepJournal.load(journal_path).cell(victim.key).state == DONE
    for config in configs:
        assert grid2["li"][config.name].to_dict() == grid1["li"][config.name].to_dict()


def test_run_sweep_rejects_mismatched_journal(tmp_path):
    from repro.harness.errors import JournalCorruption

    journal_path = tmp_path / "sweep.journal.json"
    run_sweep(["li"], [baseline_config()], N, WARMUP, jobs=1,
              journal_path=journal_path, fault_plan=ProcessFaultPlan())
    with pytest.raises(JournalCorruption, match="does not match"):
        run_sweep(["li"], [bitslice_config(2)], N, WARMUP, jobs=1,
                  journal_path=journal_path, resume=True,
                  fault_plan=ProcessFaultPlan())


def test_run_sweep_quarantines_poison_benchmark(tmp_path):
    """An always-failing cell ends up quarantined, not looping forever."""
    grid, failures, degraded, report = run_sweep(
        ["nosuchbench"], [baseline_config()], N, WARMUP, jobs=1,
        journal_path=tmp_path / "j.json",
        policy=SupervisorPolicy(max_cell_retries=1, backoff=0.0),
        fault_plan=ProcessFaultPlan(),
        keep_going=True,
    )
    assert grid == {}
    (record,) = failures
    assert record.benchmark == "nosuchbench" and record.stage == "build"


def test_run_sweep_without_journal_matches_run_cells():
    names, configs = ["li"], [baseline_config()]
    grid, failures, degraded, report = run_sweep(
        names, configs, N, WARMUP, jobs=1, fault_plan=ProcessFaultPlan()
    )
    assert not failures
    ref_grid, _ = parallel.run_cells(names, configs, N, WARMUP, jobs=1)
    assert grid["li"]["ideal"].to_dict() == ref_grid["li"]["ideal"].to_dict()
    assert supervisor.supervisor_stats()["cells_executed"] == 1


# ----------------------------------------------- parallel layer regression

def test_parallel_worker_crash_is_isolated(tmp_path):
    """run_cells on the supervised pool: a dead worker's cell fails as a
    FailureRecord while other cells complete (the bare Pool would hang
    or propagate uncatchably)."""
    grid, failures = parallel.run_cells(
        ["li"], [baseline_config()], N, WARMUP, jobs=1, keep_going=True
    )
    assert not failures and grid["li"]["ideal"].instructions == N
    assert _no_children()
