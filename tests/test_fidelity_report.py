"""The ``repro-report`` paper-fidelity reporter.

A golden-markdown snapshot pins the report format on synthetic data
(deterministic, no simulation); a small real `run_fidelity` pass checks
the full pipeline produces every figure's checks, invariant-clean CPI
stacks, and both output formats; CLI tests cover the exit-code gate.
"""

import json

import pytest

from repro.experiments.report import (
    FidelityReport,
    FigureCheck,
    PaperTarget,
    _bench_trend,
    main,
    run_fidelity,
)
from repro.obs.attribution import CPIStack

GOLDEN_MARKDOWN = """\
# Paper-fidelity report — `golden`

Reproduction of *Exploiting Partial Operand Knowledge* (ICPP 2003) checked on benchmarks `li` (1000 measured instructions, 200 warmup).

**1/2 checks in tolerance** — **FIDELITY REGRESSION**

| status | figure | claim | value | band | paper |
|--------|--------|-------|-------|------|-------|
| PASS | Figure 11 | slice-by-2 relative to ideal | 0.99 | [0.93, 1.02] | within ~1% |
| **FAIL** | Figure 6 | detected at 1 bit | 0.05 | [0.15, 1] | ~28% |

## CPI stacks

Cycle attribution for the headline configurations (components sum exactly to measured cycles; see `docs/observability.md`).

```
li/ideal   2.000 |MMMMMMMMMMMMMMM#############################################
          legend: B=branch_recovery  R=ruu_stall  Q=lsq_stall  D=lsd_wait  W=ptm_replay  M=memory  S=slice_wait  #=base
```

## Perf-snapshot trend

| run | mean IPC | ΔIPC | wall s | Δwall | cache hit rate |
|-----|----------|------|--------|-------|----------------|
| r1 | 1.000 | — | 2.00 | — | — |
| r2 | 1.100 | +10.0% | 1.00 | -50.0% | 75% |

## Warnings

- skipped invalid snapshot BENCH_junk.json
"""


def golden_report() -> FidelityReport:
    stack = CPIStack(
        config_name="ideal", benchmark="li", instructions=1000, cycles=2000,
        components={"base": 1500, "memory": 500},
    ).check()
    return FidelityReport(
        run="golden", benchmarks=("li",), instructions=1000, warmup=200,
        checks=[
            FigureCheck(
                PaperTarget("Figure 11", "slice-by-2 relative to ideal",
                            0.93, 1.02, "within ~1%"), 0.99),
            FigureCheck(
                PaperTarget("Figure 6", "detected at 1 bit",
                            0.15, 1.0, "~28%"), 0.05),
        ],
        stacks=[stack],
        trend=[
            {"run": "r1", "created_unix": 1.0, "mean_ipc": 1.0,
             "wall_seconds": 2.0, "cache_hit_rate": None},
            {"run": "r2", "created_unix": 2.0, "mean_ipc": 1.1,
             "wall_seconds": 1.0, "cache_hit_rate": 0.75},
        ],
        warnings=["skipped invalid snapshot BENCH_junk.json"],
    )


def test_golden_markdown_snapshot():
    assert golden_report().render_markdown() == GOLDEN_MARKDOWN


def test_check_banding():
    t = PaperTarget("F", "c", 0.5, 1.5, "p")
    assert FigureCheck(t, 1.0).ok
    assert not FigureCheck(t, 0.4).ok
    assert not FigureCheck(t, 1.6).ok
    assert FigureCheck(PaperTarget("F", "c", None, None, "p"), 99.0).ok
    assert t.band() == "[0.5, 1.5]"


def test_report_flags_and_serializes():
    report = golden_report()
    assert not report.ok
    assert len(report.failed) == 1
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["ok"] is False
    assert len(payload["checks"]) == 2
    assert payload["stacks"][0]["components"]["memory"] == 500


def test_html_renders_self_contained():
    html = golden_report().render_html()
    assert html.startswith("<!DOCTYPE html>")
    assert "FIDELITY REGRESSION" in html
    assert "class='seg'" in html and "cpi" not in html.lower().split("<style>")[0]
    assert "<script" not in html  # self-contained, no external/JS deps


@pytest.fixture(scope="module")
def small_fidelity():
    return run_fidelity(
        benchmarks=("li",), instructions=1_500, warmup=300, run_name="smoke",
        bench_dir=None,
    )


def test_run_fidelity_covers_every_artifact(small_fidelity):
    figures = {c.target.figure.split(" (")[0] for c in small_fidelity.checks}
    assert figures == {
        "Figure 1", "Figure 2", "Figure 4", "Figure 6",
        "Figure 11", "Figure 12", "Table 1",
    }
    # Stacks: ideal + (simple, full) × 2 slice counts, invariant-checked.
    assert len(small_fidelity.stacks) == 5
    for stack in small_fidelity.stacks:
        stack.check()
    # Both renderers work on real data.
    assert "CPI stacks" in small_fidelity.render_markdown()
    assert "cpi_stack" not in small_fidelity.render_html()  # no raw names leak


def test_bench_trend_reads_and_skips(tmp_path):
    import shutil

    shutil.copy("benchmarks/BENCH_baseline.json", tmp_path / "BENCH_a.json")
    (tmp_path / "BENCH_junk.json").write_text("{not json")
    warnings = []
    rows = _bench_trend(tmp_path, warnings)
    assert len(rows) == 1
    assert rows[0]["mean_ipc"] > 0
    assert len(warnings) == 1 and "BENCH_junk.json" in warnings[0]
    assert _bench_trend(tmp_path / "missing", []) == []


def test_cli_writes_artifacts_and_gates(tmp_path, capsys):
    md = tmp_path / "r.md"
    html = tmp_path / "r.html"
    js = tmp_path / "r.json"
    code = main([
        "-b", "li", "-n", "1500", "--warmup", "300", "--quiet", "--no-fail",
        "--bench-dir", str(tmp_path),
        "--out-md", str(md), "--out-html", str(html), "--out-json", str(js),
    ])
    assert code == 0
    assert md.read_text().startswith("# Paper-fidelity report")
    assert html.read_text().startswith("<!DOCTYPE html>")
    payload = json.loads(js.read_text())
    assert payload["benchmarks"] == ["li"]
    # Out-of-tolerance without --no-fail exits 1 (stderr lists failures)
    # — prove the gate using an impossible band via a synthetic report.
    report = golden_report()
    assert report.failed and not report.ok
