"""Two-pass assembler: syntax, directives, pseudo-ops, relocation, errors."""

import pytest

from repro.isa.assembler import DATA_BASE, TEXT_BASE, AssemblerError, assemble
from repro.isa.encoding import decode


def _decode_all(program):
    return [decode(w) for w in program.text]


def test_empty_program():
    program = assemble("")
    assert program.text == []
    assert program.entry == TEXT_BASE


def test_simple_instruction_addresses():
    program = assemble("main: addu $t0, $t1, $t2\n nop\n")
    assert program.entry == TEXT_BASE
    assert len(program.text) == 2
    inst = _decode_all(program)[0]
    assert (inst.rd, inst.rs, inst.rt) == (8, 9, 10)


def test_comments_and_blank_lines():
    program = assemble(
        """
        # full-line comment
        main: addu $t0, $t1, $t2   # trailing comment
              nop ; alt comment
        """
    )
    assert len(program.text) == 2


def test_label_on_own_line():
    program = assemble("main:\n  loop:\n  nop\n  b loop\n")
    assert program.symbols["loop"] == program.symbols["main"]


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("a: nop\na: nop\n")


def test_branch_offset_computation():
    program = assemble("main: nop\nloop: nop\n beq $0, $0, loop\n")
    branch = _decode_all(program)[2]
    # branch at index 2 (addr base+8), target base+4: offset in words
    assert branch.imm == ((TEXT_BASE + 4) - (TEXT_BASE + 8 + 4)) >> 2


def test_forward_branch_reference():
    program = assemble("main: beq $0, $0, done\n nop\ndone: nop\n")
    assert _decode_all(program)[0].imm == 1


def test_branch_out_of_section_rejected():
    with pytest.raises(AssemblerError):
        assemble("main: beq $0, $0, nowhere\n")


def test_data_directives_layout():
    program = assemble(
        """
        .data
        bytes: .byte 1, 2, 3
        words: .word 0x11223344, -1
        half:  .half 0x5566
        str:   .asciiz "hi"
        blank: .space 5
        .text
        main: nop
        """
    )
    symbols = program.symbols
    assert symbols["bytes"] == DATA_BASE
    assert symbols["words"] == DATA_BASE + 4  # aligned past 3 bytes
    data = bytes(program.data)
    assert data[0:3] == b"\x01\x02\x03"
    assert data[4:8] == b"\x44\x33\x22\x11"  # little endian
    assert data[8:12] == b"\xff\xff\xff\xff"
    assert data[symbols["str"] - DATA_BASE :][:3] == b"hi\x00"


def test_word_label_reference():
    program = assemble(
        """
        .data
        table: .word entry, entry+4
        .text
        entry: nop
        main: nop
        """
    )
    data = bytes(program.data)
    entry = program.symbols["entry"]
    assert int.from_bytes(data[0:4], "little") == entry
    assert int.from_bytes(data[4:8], "little") == entry + 4


def test_align_directive():
    program = assemble(
        """
        .data
        a: .byte 1
        .align 3
        b: .byte 2
        .text
        main: nop
        """
    )
    assert program.symbols["b"] % 8 == 0


def test_equ_constant():
    program = assemble(
        """
        .equ SIZE, 64
        main: addiu $t0, $0, SIZE
        """
    )
    assert _decode_all(program)[0].imm == 64


def test_char_literal():
    program = assemble("main: addiu $t0, $0, 'a'\n")
    assert _decode_all(program)[0].imm == 97


def test_li_small_expands_to_one_instruction():
    program = assemble("main: li $t0, 42\n")
    assert len(program.text) == 1


def test_li_negative_small():
    program = assemble("main: li $t0, -3\n")
    inst = _decode_all(program)[0]
    assert inst.mnemonic == "addiu" and inst.imm == -3


def test_li_large_expands_to_two():
    program = assemble("main: li $t0, 0x12345678\n")
    insts = _decode_all(program)
    assert [i.mnemonic for i in insts] == ["lui", "ori"]
    assert insts[0].imm == 0x1234 and insts[1].imm == 0x5678


def test_la_hi_lo_reconstruct_address():
    program = assemble(
        """
        .data
        .space 40000
        target: .word 1
        .text
        main: la $t0, target
        """
    )
    lui, addiu = _decode_all(program)
    assert lui.mnemonic == "lui" and addiu.mnemonic == "addiu"
    lo = addiu.imm
    reconstructed = ((lui.imm << 16) + lo) & 0xFFFFFFFF
    assert reconstructed == program.symbols["target"]


def test_load_from_label_expands():
    program = assemble(
        """
        .data
        v: .word 7
        .text
        main: lw $t0, v
        """
    )
    insts = _decode_all(program)
    assert [i.mnemonic for i in insts] == ["lui", "lw"]


@pytest.mark.parametrize(
    "pseudo,expansion",
    [
        ("move $t0, $t1", ["addu"]),
        ("neg $t0, $t1", ["subu"]),
        ("not $t0, $t1", ["nor"]),
        ("b somewhere", ["beq"]),
        ("beqz $t0, somewhere", ["beq"]),
        ("bnez $t0, somewhere", ["bne"]),
        ("blt $t0, $t1, somewhere", ["slt", "bne"]),
        ("bge $t0, $t1, somewhere", ["slt", "beq"]),
        ("bgt $t0, $t1, somewhere", ["slt", "bne"]),
        ("ble $t0, $t1, somewhere", ["slt", "beq"]),
        ("bltu $t0, $t1, somewhere", ["sltu", "bne"]),
        ("mul $t0, $t1, $t2", ["mult", "mflo"]),
        ("halt", ["addiu", "syscall"]),
    ],
)
def test_pseudo_expansions(pseudo, expansion):
    program = assemble(f"main: nop\nsomewhere: {pseudo}\n")
    mnems = [i.mnemonic for i in _decode_all(program)[1:]]
    assert mnems == expansion


def test_negative_symbolic_offset():
    program = assemble(
        """
        .equ N, 19
        main: lbu $t0, -N($t1)
        """
    )
    assert _decode_all(program)[0].imm == -19


def test_memory_operand_without_offset():
    program = assemble("main: lw $t0, ($t1)\n")
    inst = _decode_all(program)[0]
    assert inst.imm == 0 and inst.rs == 9


@pytest.mark.parametrize(
    "bad",
    [
        "main: addu $t0, $t1",             # wrong arity
        "main: frobnicate $t0",            # unknown mnemonic
        "main: lw $t0, 99999($t1)",        # offset out of range
        "main: addiu $t0, $0, 99999",      # immediate out of range
        "main: sll $t0, $t1, 35",          # shift out of range
        ".data\n .word undefined_symbol",  # unresolved fixup
        ".data\n main: addu $t0, $t1, $t2",  # instruction in .data
        ".bogus 12",                       # unknown directive
    ],
)
def test_errors_reported(bad):
    with pytest.raises(AssemblerError):
        assemble(bad)


def test_source_map_lines():
    program = assemble("main: nop\n\n nop\n")
    assert program.source_map[0] == 1
    assert program.source_map[1] == 3


def test_jump_encodes_absolute_word_target():
    program = assemble("main: nop\ntgt: nop\n j tgt\n")
    inst = _decode_all(program)[2]
    assert inst.target << 2 == program.symbols["tgt"] & 0x0FFFFFFF
