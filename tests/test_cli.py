"""Console entry point."""

import pytest

import repro.experiments.runner as runner
from repro.experiments.cli import main


def test_table1_via_cli(capsys):
    assert main(["table1", "-n", "2000", "-b", "go"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "go" in out


def test_fig6_via_cli(capsys):
    assert main(["fig6", "-n", "2000", "-b", "li"]) == 0
    assert "Figure 6" in capsys.readouterr().out


def test_unknown_benchmark_rejected(capsys):
    assert main(["table1", "-b", "crafty"]) == 2
    err = capsys.readouterr().err
    assert "unknown benchmark" in err and "crafty" in err


def test_unknown_benchmark_gets_spelling_hint(capsys):
    assert main(["table1", "-b", "vorte"]) == 2
    assert "did you mean 'vortex'" in capsys.readouterr().err


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["figure99"])


def test_keep_going_isolates_failing_benchmark(tmp_path, capsys, monkeypatch):
    """Acceptance scenario: one broken workload → partial results, exit 1."""
    runner.clear_trace_cache()
    real = runner.get_workload

    def broken(name):
        if name == "go":
            raise RuntimeError("forced failure for testing")
        return real(name)

    monkeypatch.setattr(runner, "get_workload", broken)
    out_path = tmp_path / "partial.json"
    try:
        rc = main(["table1", "-n", "2000", "-b", "go", "li", "--keep-going", "-o", str(out_path)])
    finally:
        runner.clear_trace_cache()
    captured = capsys.readouterr()
    assert rc == 1
    # The healthy benchmark's table still printed.
    assert "Table 1" in captured.out and "li" in captured.out
    # The failure report names exactly the broken workload.
    assert "Sweep failure report" in captured.out
    assert "FAILED   go" in captured.out
    assert "FAILED   li" not in captured.out
    # Partial results were archived atomically with the failure recorded.
    from repro.experiments.results_io import load_rows

    payload = load_rows(out_path)
    failures = payload["metadata"]["failures"]
    assert [f["benchmark"] for f in failures] == ["go"]
    assert failures[0]["retried"] is True
    assert [p.name for p in tmp_path.iterdir()] == ["partial.json"]


def test_keep_going_clean_run_reports_no_failures(capsys):
    runner.clear_trace_cache()
    try:
        rc = main(["table1", "-n", "2000", "-b", "li", "--keep-going"])
    finally:
        runner.clear_trace_cache()
    out = capsys.readouterr().out
    assert rc == 0
    assert "no failures" in out


def test_inject_experiment_reports_clean_campaign(capsys):
    rc = main(["inject", "-n", "2000", "-b", "li", "--inject", "60"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "li" in out and "silent" in out.lower()


def test_observability_flags_emit_all_artifacts(tmp_path, capsys):
    """`--metrics-out/--trace-events/--profile` produce schema-valid
    artifacts plus a BENCH snapshot with per-config IPC and throughput."""
    import json

    from repro.obs.events import validate_jsonl_file
    from repro.obs.manifest import load_bench_snapshot, validate_manifest
    from repro.obs.registry import validate_metrics_dump

    metrics = tmp_path / "m.json"
    events = tmp_path / "t.jsonl"
    bench_dir = tmp_path / "bench"
    runner.clear_trace_cache()
    try:
        rc = main([
            "table1", "-n", "2000", "-b", "li",
            "--metrics-out", str(metrics),
            "--trace-events", str(events),
            "--profile",
            "--bench-dir", str(bench_dir),
        ])
    finally:
        runner.clear_trace_cache()
    captured = capsys.readouterr()
    assert rc == 0
    assert "=== Profile:" in captured.out + captured.err

    dump = json.loads(metrics.read_text())
    validate_metrics_dump(dump)
    validate_manifest(dump["manifest"])
    assert dump["manifest"]["config"]["experiment"] == "table1"
    names = dump["metrics"]
    assert names["sim.instructions"]["value"] > 0
    assert names["emulate.instructions"]["value"] > 0
    assert any(n.startswith("profile.") for n in names)

    assert validate_jsonl_file(events) > 0
    perfetto = events.with_suffix(".perfetto.json")
    chrome = json.loads(perfetto.read_text())
    assert chrome["traceEvents"], "Perfetto trace must contain slices"

    snapshots = sorted(bench_dir.glob("BENCH_table1-*.json"))
    assert len(snapshots) == 1
    payload = load_bench_snapshot(snapshots[0])
    li = payload["benchmarks"]["li"]
    assert li["ipc"] and all(v > 0 for v in li["ipc"].values())
    assert li["instructions_per_second"] > 0
    assert payload["manifest"]["git_sha"] is None or len(payload["manifest"]["git_sha"]) == 40


def test_observability_off_leaves_no_session(tmp_path):
    from repro.obs.session import active_session

    runner.clear_trace_cache()
    try:
        assert main(["table1", "-n", "2000", "-b", "li"]) == 0
    finally:
        runner.clear_trace_cache()
    assert active_session() is None


def test_input_profile_flag(capsys):
    runner.clear_trace_cache()
    try:
        assert main(["table1", "-n", "2000", "-b", "li", "--input-profile", "test"]) == 0
    finally:
        runner.clear_trace_cache()
    assert "Table 1" in capsys.readouterr().out


def test_timeout_flag_trips_on_tiny_budget(capsys):
    runner.clear_trace_cache()
    try:
        rc = main(["table1", "-n", "30000", "-b", "vortex", "--keep-going", "--timeout", "1e-9"])
    finally:
        runner.clear_trace_cache()
        runner.set_wall_timeout(None)
    out = capsys.readouterr().out
    assert rc == 1
    assert "RunawayExecution" in out
