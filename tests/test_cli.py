"""Console entry point."""

import pytest

from repro.experiments.cli import main


def test_table1_via_cli(capsys):
    assert main(["table1", "-n", "2000", "-b", "go"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "go" in out


def test_fig6_via_cli(capsys):
    assert main(["fig6", "-n", "2000", "-b", "li"]) == 0
    assert "Figure 6" in capsys.readouterr().out


def test_unknown_benchmark_rejected(capsys):
    assert main(["table1", "-b", "crafty"]) == 2


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["figure99"])
