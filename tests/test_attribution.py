"""CPI-stack attribution: the exact-sum invariant and its plumbing.

The tentpole property: for ANY trace, ANY configuration, and ANY
measurement window, the ``sim.cpi.*`` components sum exactly to
``sim.cycles`` — checked here by hypothesis over random programs ×
configurations, by direct runs of every benchmark × the full technique
ladder, and on the cycle-loop reference model.  The waterfall helper,
the ``CPIStack`` container (merge commutativity, metrics-dump round
trip) and the rendering are covered alongside.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import (
    baseline_config,
    bitslice_config,
    cumulative_configs,
    simple_pipeline_config,
)
from repro.emulator.machine import Machine
from repro.isa.assembler import assemble
from repro.obs.attribution import (
    COMPONENT_KEYS,
    CPI_COMPONENTS,
    AttributionError,
    CPIStack,
    attribute_delta,
    render_stacks,
    stack_bar,
)
from repro.obs.registry import MetricsRegistry
from repro.timing.simulator import simulate
from repro.timing.stats import SimStats
from repro.workloads import get_workload

from tests.test_differential import straight_line_program


def _configs():
    out = [
        baseline_config(),
        simple_pipeline_config(2),
        simple_pipeline_config(4),
        bitslice_config(2),
        bitslice_config(4),
    ]
    for s in (2, 4):
        out.extend(cfg for _, cfg in cumulative_configs(s))
    return out


CONFIGS = _configs()


def assert_stack_ok(stats, benchmark=""):
    stack = stats.cpi_stack(benchmark=benchmark)  # .check() inside
    assert stack.total == stats.cycles
    assert all(v >= 0 for v in stack.components.values())
    return stack


# ------------------------------------------------------------- waterfall


def test_attribute_delta_waterfall_clamps_in_priority_order():
    stats = SimStats()
    # delta 10: branch claims 4, ruu claims 100 (clamped to 6), rest starved.
    attribute_delta(stats, 10, (4, 100, 5, 5, 5, 5, 5))
    assert stats.cpi_branch_recovery == 4
    assert stats.cpi_ruu_stall == 6
    assert stats.cpi_lsq_stall == 0
    assert stats.cpi_base == 0


def test_attribute_delta_remainder_goes_to_base():
    stats = SimStats()
    attribute_delta(stats, 10, (2, 0, 0, 1, 0, 3, 0))
    assert stats.cpi_branch_recovery == 2
    assert stats.cpi_lsd_wait == 1
    assert stats.cpi_memory == 3
    assert stats.cpi_base == 4
    total = sum(getattr(stats, fld) for _, fld, _, _ in CPI_COMPONENTS)
    assert total == 10


def test_attribute_delta_ignores_negative_claims():
    stats = SimStats()
    attribute_delta(stats, 5, (-3, 0, 0, 0, 0, 0, 0))
    assert stats.cpi_branch_recovery == 0
    assert stats.cpi_base == 5


@given(
    st.integers(0, 200),
    st.tuples(*[st.integers(-5, 60)] * 7),
)
@settings(max_examples=200, deadline=None)
def test_attribute_delta_always_sums_to_delta(delta, claims):
    stats = SimStats()
    attribute_delta(stats, delta, claims)
    total = sum(getattr(stats, fld) for _, fld, _, _ in CPI_COMPONENTS)
    assert total == delta
    assert all(getattr(stats, fld) >= 0 for _, fld, _, _ in CPI_COMPONENTS)


# ------------------------------------------------- the simulator invariant


@pytest.mark.parametrize("config", CONFIGS, ids=lambda c: c.name)
def test_invariant_on_benchmark_windows(config):
    trace = tuple(get_workload("li").trace(max_steps=4_000, iters=1, skip=0))
    stats = simulate(config, trace, max_instructions=3_000, warmup=800)
    stack = assert_stack_ok(stats, benchmark="li")
    assert stack.instructions == 3_000


@pytest.mark.parametrize("name", ("bzip", "mcf", "vortex"))
def test_invariant_across_benchmarks(name):
    trace = tuple(get_workload(name).trace(max_steps=3_000, iters=1, skip=0))
    for config in (baseline_config(), bitslice_config(2), bitslice_config(4)):
        assert_stack_ok(simulate(config, trace, warmup=500), benchmark=name)


@given(straight_line_program(), st.sampled_from(CONFIGS), st.integers(0, 40))
@settings(max_examples=40, deadline=None)
def test_invariant_on_random_programs(program, config, warmup):
    source, _ = program
    trace = tuple(Machine(assemble(source)).trace(10_000))
    stats = simulate(config, trace, warmup=warmup)
    assert_stack_ok(stats)


def test_warmup_longer_than_trace_yields_empty_stack():
    trace = tuple(get_workload("li").trace(max_steps=50, iters=1, skip=0))
    stats = simulate(baseline_config(), trace, warmup=10_000)
    assert stats.instructions == 0
    stack = assert_stack_ok(stats)
    assert stack.total == 0


def test_merged_stats_preserve_invariant():
    trace = tuple(get_workload("li").trace(max_steps=2_000, iters=1, skip=0))
    cfg = bitslice_config(2)
    a = simulate(cfg, trace, warmup=200)
    b = simulate(cfg, trace, warmup=700)
    assert_stack_ok(a.merge(b))


# --------------------------------------------------- detailed (reference)


def test_detailed_model_invariant():
    import dataclasses

    from repro.core.config import Features
    from repro.timing.detailed import simulate_detailed

    basic2 = dataclasses.replace(
        bitslice_config(2), features=Features(partial_operand_bypassing=True), name="basic-2"
    )
    trace = tuple(get_workload("mcf").trace(max_steps=2_500, iters=1, skip=0))
    for config in (baseline_config(), simple_pipeline_config(2), basic2):
        stats = simulate_detailed(config, trace, max_instructions=2_000)
        stack = stats.cpi_stack(benchmark="mcf")
        assert stack.total == stats.cycles
        assert stack.components["base"] > 0
    sliced_stats = simulate_detailed(basic2, trace, max_instructions=2_000)
    assert sliced_stats.cpi_stack().components["slice_wait"] > 0


# ------------------------------------------------------------ containers


def test_check_raises_with_diagnostic():
    stack = CPIStack(config_name="ideal", benchmark="li", cycles=10,
                     components={"base": 6})
    with pytest.raises(AttributionError, match=r"li.*sums to 6.*cycles=10"):
        stack.check()


def test_all_components_always_present():
    stack = CPIStack(cycles=0)
    assert set(stack.components) == set(COMPONENT_KEYS)


def test_merge_is_commutative_and_checked():
    a = CPIStack(config_name="x", benchmark="li", instructions=10, cycles=7,
                 components={"base": 5, "memory": 2})
    b = CPIStack(config_name="x", benchmark="li", instructions=20, cycles=9,
                 components={"base": 4, "slice_wait": 5})
    ab, ba = a.merge(b), b.merge(a)
    assert ab.components == ba.components
    assert ab.cycles == ba.cycles == 16
    ab.check()


def test_metrics_dump_round_trip():
    trace = tuple(get_workload("li").trace(max_steps=2_000, iters=1, skip=0))
    stats = simulate(bitslice_config(2), trace, warmup=300)
    registry = MetricsRegistry()
    stats.publish(registry)
    dump = json.loads(json.dumps(registry.to_dict()))
    stack = CPIStack.from_metrics_dump(dump, config_name="bitslice-2").check()
    assert stack.cycles == stats.cycles
    assert stack.components == stats.cpi_stack().components


def test_metrics_dump_without_attribution_rejected():
    with pytest.raises(ValueError, match="no sim.cpi"):
        CPIStack.from_metrics_dump({"metrics": {"sim.cycles": {"value": 5}}})


# ------------------------------------------------------------- rendering


def test_stack_bar_width_and_glyphs():
    stack = CPIStack(instructions=100, cycles=100,
                     components={"base": 50, "memory": 30, "slice_wait": 20})
    bar = stack_bar(stack, width=10)
    assert len(bar) == 10
    assert bar.count("#") == 5 and bar.count("M") == 3 and bar.count("S") == 2


def test_render_stacks_scales_to_worst():
    small = CPIStack(config_name="a", instructions=100, cycles=100,
                     components={"base": 100})
    big = CPIStack(config_name="b", instructions=100, cycles=200,
                   components={"base": 120, "memory": 80})
    out = render_stacks([small, big], width=40)
    assert "legend" in out
    assert out.index("a") < out.index("b")
    # The worse stack's bar is about twice as long.
    lines = out.splitlines()
    assert len(lines[1]) < len(lines[2])


def test_summary_includes_cpi_stack_line():
    trace = tuple(get_workload("li").trace(max_steps=2_000, iters=1, skip=0))
    stats = simulate(bitslice_config(2), trace, warmup=300)
    assert "CPI stack" in stats.summary()


# ------------------------------------------------------------ event feed


def test_cpi_sample_events_are_cumulative_and_become_counters():
    from repro.obs.events import CPI_SAMPLE, EventTrace, to_chrome_trace

    trace = tuple(get_workload("li").trace(max_steps=3_000, iters=1, skip=0))
    ev = EventTrace(capacity=None)
    # warmup=0 so the stats object is never swapped: the counter track
    # is then cumulative end to end (a warmup swap resets it, visibly).
    stats = simulate(bitslice_config(2), trace, events=ev)
    samples = [e for e in ev if e.kind == CPI_SAMPLE]
    assert samples, "expected periodic cpi_sample events"
    for key in COMPONENT_KEYS:
        series = [s.args[key] for s in samples]
        assert all(b >= a for a, b in zip(series, series[1:])), key
    # The final sample never exceeds the finished totals.
    final = samples[-1].args
    stack = stats.cpi_stack()
    assert all(final[k] <= stack.components[k] for k in COMPONENT_KEYS)
    counters = [t for t in to_chrome_trace(ev)["traceEvents"] if t["ph"] == "C"]
    assert len(counters) == len(samples)
    assert counters[0]["name"] == "cpi_stack"
