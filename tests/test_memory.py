"""Sparse memory: endianness, alignment, paging."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.emulator.memory import PAGE_SIZE, AlignmentError, SparseMemory


def test_uninitialized_reads_zero():
    mem = SparseMemory()
    assert mem.read_word(0x1000_0000) == 0
    assert mem.read_byte(0xFFFF_FFFF) == 0
    assert mem.resident_pages == 0


def test_little_endian_word():
    mem = SparseMemory()
    mem.write_word(0x100, 0x11223344)
    assert mem.read_byte(0x100) == 0x44
    assert mem.read_byte(0x103) == 0x11
    assert mem.read_half(0x100) == 0x3344
    assert mem.read_half(0x102) == 0x1122


def test_alignment_enforced():
    mem = SparseMemory()
    with pytest.raises(AlignmentError):
        mem.read_word(0x101)
    with pytest.raises(AlignmentError):
        mem.write_word(0x102, 0)
    with pytest.raises(AlignmentError):
        mem.read_half(0x101)
    with pytest.raises(AlignmentError):
        mem.write_half(0x103, 0)


def test_cross_page_block_write():
    mem = SparseMemory()
    addr = PAGE_SIZE - 2
    mem.write_block(addr, b"abcd")
    assert mem.read_block(addr, 4) == b"abcd"
    assert mem.resident_pages == 2


def test_byte_write_masks_value():
    mem = SparseMemory()
    mem.write_byte(0x10, 0x1FF)
    assert mem.read_byte(0x10) == 0xFF


def test_word_write_masks_value():
    mem = SparseMemory()
    mem.write_word(0x10, -1 & 0xFFFFFFFF)
    assert mem.read_word(0x10) == 0xFFFFFFFF


def test_cstring_read():
    mem = SparseMemory()
    mem.write_block(0x200, b"hello\x00world")
    assert mem.read_cstring(0x200) == b"hello"
    assert mem.read_cstring(0x206) == b"world"


def test_cstring_limit():
    mem = SparseMemory()
    mem.write_block(0x300, b"x" * 100)
    assert len(mem.read_cstring(0x300, limit=10)) == 10


@given(st.integers(0, 0xFFFFFFFC // 4 * 4), st.integers(0, 0xFFFFFFFF))
def test_word_roundtrip_property(addr, value):
    addr &= ~3
    mem = SparseMemory()
    mem.write_word(addr, value)
    assert mem.read_word(addr) == value


@given(st.binary(min_size=1, max_size=64), st.integers(0, 2**32 - 65))
def test_block_roundtrip_property(payload, addr):
    mem = SparseMemory()
    mem.write_block(addr, payload)
    assert mem.read_block(addr, len(payload)) == payload
