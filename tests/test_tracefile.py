"""Trace serialization round trips."""

import numpy as np
import pytest

from repro.core.config import bitslice_config
from repro.emulator.tracefile import load_trace, pack_trace, save_trace, unpack_trace
from repro.timing.simulator import simulate


def test_pack_unpack_roundtrip(small_traces):
    records = small_traces["li"][:500]
    arrays = pack_trace(records)
    again = unpack_trace(arrays)
    assert len(again) == len(records)
    for a, b in zip(records, again):
        assert a == b


def test_save_load_roundtrip(tmp_path, small_traces):
    records = small_traces["bzip"][:800]
    path = tmp_path / "trace.npz"
    n = save_trace(path, records)
    assert n == 800
    again = load_trace(path)
    assert tuple(again) == tuple(records)


def test_loaded_trace_simulates_identically(tmp_path, small_traces):
    """Simulation over a reloaded trace must be bit-identical."""
    records = small_traces["vortex"][:1500]
    path = tmp_path / "trace.npz"
    save_trace(path, records)
    direct = simulate(bitslice_config(2), records)
    reloaded = simulate(bitslice_config(2), load_trace(path))
    assert direct.ipc == reloaded.ipc
    assert direct.cycles == reloaded.cycles
    assert direct.branch_mispredicts == reloaded.branch_mispredicts


def test_instruction_objects_shared(small_traces):
    """Repeated instruction words decode to the same object (memory)."""
    records = unpack_trace(pack_trace(small_traces["li"][:500]))
    by_word: dict[int, object] = {}
    from repro.isa.encoding import encode

    for r in records:
        w = encode(r.inst)
        if w in by_word:
            assert r.inst is by_word[w]
        by_word[w] = r.inst


def test_empty_trace_roundtrip(tmp_path):
    path = tmp_path / "empty.npz"
    assert save_trace(path, []) == 0
    assert load_trace(path) == []


def test_version_check():
    arrays = pack_trace([])
    arrays["version"] = np.array([99], dtype=np.uint32)
    with pytest.raises(ValueError):
        unpack_trace(arrays)


def test_mem_addr_sentinel_survives(small_traces):
    records = unpack_trace(pack_trace(small_traces["li"][:200]))
    non_mem = [r for r in records if not (r.is_load or r.is_store)]
    assert non_mem and all(r.mem_addr == -1 for r in non_mem)


# ------------------------------------------------------- corruption defenses


def test_future_version_names_the_refusal(small_traces):
    from repro.harness.errors import TraceCorruption

    arrays = pack_trace(small_traces["li"][:50])
    arrays["version"] = np.array([99], dtype=np.uint32)
    with pytest.raises(TraceCorruption) as excinfo:
        unpack_trace(arrays)
    assert "99" in str(excinfo.value)


def test_flipped_payload_bit_fails_checksum(small_traces):
    from repro.harness.errors import TraceCorruption

    arrays = {k: v.copy() for k, v in pack_trace(small_traces["li"][:100]).items()}
    arrays["result"].view(np.uint8)[17] ^= 0x10
    with pytest.raises(TraceCorruption) as excinfo:
        unpack_trace(arrays)
    assert "checksum" in str(excinfo.value)


def test_missing_field_rejected(small_traces):
    from repro.harness.errors import TraceCorruption

    arrays = dict(pack_trace(small_traces["li"][:50]))
    del arrays["taken"]
    with pytest.raises(TraceCorruption):
        unpack_trace(arrays)


def test_length_mismatch_rejected(small_traces):
    from repro.harness.errors import TraceCorruption

    arrays = {k: v.copy() for k, v in pack_trace(small_traces["li"][:50]).items()}
    arrays["pc"] = arrays["pc"][:-1]
    with pytest.raises(TraceCorruption):
        unpack_trace(arrays)


def test_truncated_file_rejected(tmp_path, small_traces):
    from repro.harness.errors import TraceCorruption

    path = tmp_path / "t.npz"
    save_trace(path, small_traces["li"][:200])
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])  # simulate a torn write
    with pytest.raises(TraceCorruption):
        load_trace(path)


def test_missing_file_is_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_trace(tmp_path / "absent.npz")


def test_legacy_v1_archive_still_loads(tmp_path, small_traces):
    """Pre-checksum archives (format 1) must stay readable."""
    records = small_traces["li"][:100]
    arrays = {k: v for k, v in pack_trace(records).items() if k != "checksum"}
    arrays["version"] = np.array([1], dtype=np.uint32)
    path = tmp_path / "legacy.npz"
    np.savez_compressed(path, **arrays)
    assert tuple(load_trace(path)) == tuple(records)


def test_save_leaves_no_temp_files(tmp_path, small_traces):
    path = tmp_path / "trace.npz"
    save_trace(path, small_traces["li"][:100])
    assert [p.name for p in tmp_path.iterdir()] == ["trace.npz"]


def test_failed_save_does_not_clobber_existing(tmp_path, small_traces):
    """Atomic replace: the old archive survives a failed rewrite."""
    path = tmp_path / "trace.npz"
    save_trace(path, small_traces["li"][:100])
    before = path.read_bytes()
    with pytest.raises(AttributeError):
        save_trace(path, [object()])  # not TraceRecords: packing explodes
    assert path.read_bytes() == before
    assert [p.name for p in tmp_path.iterdir()] == ["trace.npz"]
