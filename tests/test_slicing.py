"""Bit-slice arithmetic: exactness against full-width 32-bit semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.slicing import (
    first_nonzero_slice,
    join_slices,
    slice_width,
    sliced_add,
    sliced_logic,
    sliced_sub,
    slices_containing_difference,
    split_value,
)

U32 = st.integers(0, 0xFFFFFFFF)
SLICES = st.sampled_from([1, 2, 4])


def test_slice_width():
    assert slice_width(1) == 32
    assert slice_width(2) == 16
    assert slice_width(4) == 8
    with pytest.raises(ValueError):
        slice_width(3)


def test_split_low_order_first():
    assert split_value(0x12345678, 2) == (0x5678, 0x1234)
    assert split_value(0x12345678, 4) == (0x78, 0x56, 0x34, 0x12)


def test_join_rejects_overflowing_slice():
    with pytest.raises(ValueError):
        join_slices([0x1FFFF, 0])


@given(U32, SLICES)
def test_split_join_roundtrip(value, n):
    assert join_slices(split_value(value, n)) == value


@given(U32, U32, SLICES)
def test_sliced_add_matches_full_add(a, b, n):
    """The core slicing property: per-slice ripple addition with carry
    chaining reproduces the architectural 32-bit sum exactly."""
    slices, carries = sliced_add(a, b, n)
    assert join_slices(slices) == (a + b) & 0xFFFFFFFF
    assert all(c in (0, 1) for c in carries)


@given(U32, U32, SLICES)
def test_sliced_sub_matches_full_sub(a, b, n):
    slices, _ = sliced_sub(a, b, n)
    assert join_slices(slices) == (a - b) & 0xFFFFFFFF


@given(U32, U32, SLICES, st.sampled_from(["and", "or", "xor", "nor"]))
def test_sliced_logic_matches_full(a, b, n, op):
    expected = {
        "and": a & b,
        "or": a | b,
        "xor": a ^ b,
        "nor": ~(a | b) & 0xFFFFFFFF,
    }[op]
    assert join_slices(sliced_logic(op, a, b, n)) == expected


def test_sliced_logic_unknown_op():
    with pytest.raises(ValueError):
        sliced_logic("nand", 0, 0, 2)


@given(U32, U32, SLICES)
def test_carry_chain_consistency(a, b, n):
    """Carry-out of slice k equals carry-in that makes slice k+1 exact —
    the Figure 8(b) inter-slice dependency really carries all the
    information the next slice needs."""
    slices, carries = sliced_add(a, b, n)
    width = slice_width(n)
    mask = (1 << width) - 1
    a_s, b_s = split_value(a, n), split_value(b, n)
    carry = 0
    for k in range(n):
        total = a_s[k] + b_s[k] + carry
        assert slices[k] == total & mask
        carry = total >> width
        assert carries[k] == carry


def test_first_nonzero_slice():
    assert first_nonzero_slice(5, 5, 4) is None
    assert first_nonzero_slice(0x0000_0001, 0, 4) == 0
    assert first_nonzero_slice(0x0001_0000, 0, 4) == 2
    assert first_nonzero_slice(0x0001_0000, 0, 2) == 1
    assert first_nonzero_slice(0x8000_0000, 0, 2) == 1


@given(U32, U32, st.sampled_from([2, 4]))
def test_difference_slices_complete(a, b, n):
    """slices_containing_difference finds exactly the slices where the
    split values differ, and first_nonzero_slice is its minimum."""
    diff_slices = slices_containing_difference(a, b, n)
    a_s, b_s = split_value(a, n), split_value(b, n)
    assert diff_slices == tuple(k for k in range(n) if a_s[k] != b_s[k])
    first = first_nonzero_slice(a, b, n)
    if a == b:
        assert first is None and diff_slices == ()
    else:
        assert first == diff_slices[0]


@given(U32, U32)
def test_zero_test_equivalence(a, b):
    """A beq/bne comparison decomposes into per-slice equality: the
    values are equal iff every slice pair is equal (paper §5.3)."""
    for n in (2, 4):
        assert (a == b) == (slices_containing_difference(a, b, n) == ())
