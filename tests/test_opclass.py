"""Operation classification for slicing."""

import pytest

from repro.isa.encoding import ALL_MNEMONICS
from repro.isa.opclass import SLICEABLE, OpClass, is_sliceable, op_class


def test_every_mnemonic_is_classified():
    for m in ALL_MNEMONICS:
        assert isinstance(op_class(m), OpClass)


def test_unknown_mnemonic_raises():
    with pytest.raises(ValueError):
        op_class("nosuch")


@pytest.mark.parametrize("m", ["and", "or", "xor", "nor", "andi", "ori", "xori", "lui"])
def test_logic_class(m):
    assert op_class(m) is OpClass.LOGIC


@pytest.mark.parametrize("m", ["add", "addu", "sub", "subu", "addi", "addiu"])
def test_arith_class(m):
    assert op_class(m) is OpClass.ARITH


def test_shift_direction_split():
    assert op_class("sll") is OpClass.SHIFT_LEFT
    assert op_class("sllv") is OpClass.SHIFT_LEFT
    assert op_class("srl") is OpClass.SHIFT_RIGHT
    assert op_class("sra") is OpClass.SHIFT_RIGHT


def test_equality_branches_are_zero_test():
    assert op_class("beq") is OpClass.ZERO_TEST
    assert op_class("bne") is OpClass.ZERO_TEST


@pytest.mark.parametrize("m", ["blez", "bgtz", "bltz", "bgez", "slt", "slti", "sltu", "sltiu"])
def test_sign_dependent_are_compare(m):
    assert op_class(m) is OpClass.COMPARE


@pytest.mark.parametrize("m", ["mult", "multu", "div", "divu", "mfhi", "mflo"])
def test_multdiv_full(m):
    assert op_class(m) is OpClass.FULL


def test_sliceable_set_matches_paper():
    # Figure 8 and §6: arithmetic, logic and shifts slice; equality
    # branches slice (§5.3); loads/stores slice their address
    # generation; mult/div/FP do not.
    assert OpClass.LOGIC in SLICEABLE
    assert OpClass.ARITH in SLICEABLE
    assert OpClass.ZERO_TEST in SLICEABLE
    assert OpClass.FULL not in SLICEABLE
    assert is_sliceable("addu") and is_sliceable("lw") and not is_sliceable("div")
