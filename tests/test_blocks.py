"""Block-compiled execution tier: discovery, codegen, parity, faults.

The blocks tier (:mod:`repro.emulator.blocks`) must be architecturally
invisible: byte-identical traces, identical final state, identical
fault behaviour versus both the pre-bound fast path and the golden
reference interpreter.  These tests exercise the machinery the
differential properties cannot see directly — profiling countdowns,
superblock side exits, memory batching, replay-on-fault, the
per-program code cache, and the process-global stats.
"""

from __future__ import annotations

import gc

import pytest

from repro.emulator import blocks
from repro.emulator.blocks import (
    DEFAULT_THRESHOLD,
    THRESHOLD_ENV,
    cross_check_blocks,
    default_block_threshold,
)
from repro.emulator.machine import (
    DISPATCH_ENV,
    Machine,
    default_dispatch,
    dispatch_mode_override,
    set_dispatch_mode,
)
from repro.emulator.memory import AlignmentError
from repro.experiments import supervisor
from repro.isa.assembler import assemble
from repro.workloads import get_workload

LOOP = """
main:   li   $t0, 20
        li   $t1, 0
loop:   addu $t1, $t1, $t0
        addiu $t0, $t0, -1
        bgtz $t0, loop
        halt
"""


# ------------------------------------------------------------------ parity

@pytest.mark.parametrize("name", ["li", "vortex"])
def test_benchmark_slice_blocks_lockstep(name):
    """Record-by-record lockstep vs the golden reference."""
    program = get_workload(name).build(iters=1)
    assert cross_check_blocks(program, max_steps=5_000) == 5_000


def test_three_way_trace_streams_identical():
    """reference x fast x blocks produce byte-identical traces."""
    program = get_workload("li").build(iters=1)
    ref = Machine(program, dispatch="reference")
    fast = Machine(program, dispatch="fast")
    blk = Machine(program, dispatch="blocks", block_threshold=0)
    r_ref = list(ref.trace(4_000))
    r_fast = list(fast.trace(4_000))
    r_blk = list(blk.trace(4_000))
    assert r_ref == r_fast == r_blk
    assert ref.regs == fast.regs == blk.regs
    assert ref.pc == fast.pc == blk.pc
    assert ref.instret == fast.instret == blk.instret


def test_blocks_run_and_trace_agree_on_retired_count():
    """run() (chain loop) and trace() retire identically, mid-block cap."""
    program = get_workload("li").build(iters=1)
    runner = Machine(program, dispatch="blocks", block_threshold=0)
    tracer = Machine(program, dispatch="blocks", block_threshold=0)
    retired = runner.run(3_000)
    records = list(tracer.trace(3_000))
    assert retired == len(records) == 3_000
    assert runner.pc == tracer.pc
    assert runner.regs == tracer.regs
    assert runner.instret == tracer.instret


def test_max_steps_exact_when_budget_lands_mid_block():
    """A step budget smaller than the hot block retires per-instruction."""
    program = assemble(LOOP)
    for budget in (1, 2, 5, 7):
        m = Machine(program, dispatch="blocks", block_threshold=0)
        ref = Machine(program, dispatch="reference")
        assert m.run(budget) == ref.run(budget) == budget
        assert m.regs == ref.regs and m.pc == ref.pc


def test_run_to_halt_matches_reference():
    program = assemble(LOOP)
    m = Machine(program, dispatch="blocks", block_threshold=0)
    ref = Machine(program, dispatch="reference")
    m.run()
    ref.run()
    assert m.halted and ref.halted
    assert m.regs == ref.regs and m.instret == ref.instret


# ------------------------------------------------------- superblocks, batching

def test_tight_loop_compiles_as_superblock():
    blocks.reset_stats()
    m = Machine(assemble(LOOP), dispatch="blocks", block_threshold=0)
    m.run()
    stats = blocks.stats()
    assert stats["blocks_compiled"] >= 1
    assert stats["superblocks"] >= 1  # the backward bgtz unrolled
    assert stats["block_insts"] > 0
    assert stats["replays"] == 0


def test_contiguous_memory_runs_are_batched_and_identical():
    """>= BATCH_MIN adjacent lw/sw go through the vectorized helpers."""
    source = """
main:   addiu $t0, $sp, -64
        li   $t1, 11
        li   $t2, 22
        li   $t3, 33
        li   $t4, 44
        sw   $t1, 0($t0)
        sw   $t2, 4($t0)
        sw   $t3, 8($t0)
        sw   $t4, 12($t0)
        lw   $t5, 0($t0)
        lw   $t6, 4($t0)
        lw   $t7, 8($t0)
        lw   $t8, 12($t0)
        halt
"""
    program = assemble(source)
    assert cross_check_blocks(program, max_steps=1_000) > 10
    m = Machine(program, dispatch="blocks", block_threshold=0)
    m.run()
    assert [m.regs[13], m.regs[14], m.regs[15], m.regs[24]] == [11, 22, 33, 44]


def test_syscall_splits_blocks_and_stays_in_lockstep():
    source = """
main:   li   $t0, 3
loop:   move $a0, $t0
        li   $v0, 1
        syscall
        addiu $t0, $t0, -1
        bgtz $t0, loop
        halt
"""
    program = assemble(source)
    cross_check_blocks(program, max_steps=1_000)
    m = Machine(program, dispatch="blocks", block_threshold=0)
    ref = Machine(program, dispatch="reference")
    m.run()
    ref.run()
    assert m.output == ref.output and m.regs == ref.regs


# ------------------------------------------------------------------- faults

def test_misaligned_load_mid_block_replays_to_reference_state():
    """A fault inside a compiled body reproduces reference semantics."""
    source = """
main:   li   $t0, 3
        li   $t1, 7
        addu $t2, $t0, $t1
        lw   $t3, 0($t0)
        addu $t4, $t2, $t1
        halt
"""
    program = assemble(source)
    blocks.reset_stats()
    m = Machine(program, dispatch="blocks", block_threshold=0)
    ref = Machine(program, dispatch="reference")
    with pytest.raises(AlignmentError) as got:
        m.run()
    with pytest.raises(AlignmentError) as want:
        ref.run()
    assert str(got.value) == str(want.value)
    # Replay left the machine exactly where the reference faulted.
    assert m.regs == ref.regs
    assert m.pc == ref.pc
    assert m.instret == ref.instret
    assert blocks.stats()["replays"] == 1


def test_misaligned_store_mid_block_replays_to_reference_state():
    source = """
main:   li   $t0, 2
        li   $t1, 7
        addu $t2, $t0, $t1
        sw   $t1, 0($t0)
        halt
"""
    program = assemble(source)
    m = Machine(program, dispatch="blocks", block_threshold=0)
    ref = Machine(program, dispatch="reference")
    with pytest.raises(AlignmentError):
        m.run()
    with pytest.raises(AlignmentError):
        ref.run()
    assert m.regs == ref.regs and m.pc == ref.pc and m.instret == ref.instret


# ------------------------------------------------------- profiling threshold

def test_threshold_gates_compilation():
    program = assemble(LOOP)
    # Threshold far above the loop count: nothing ever compiles.
    blocks.reset_stats()
    m = Machine(program, dispatch="blocks", block_threshold=1000)
    m.run()
    cold = blocks.stats()
    assert cold["blocks_compiled"] == 0
    assert cold["block_insts"] == 0
    assert cold["fallback_insts"] == m.instret
    # Threshold 0: compiles on first entry.
    blocks.reset_stats()
    m = Machine(assemble(LOOP), dispatch="blocks", block_threshold=0)
    m.run()
    hot = blocks.stats()
    assert hot["blocks_compiled"] >= 1
    assert hot["block_insts"] > 0


def test_threshold_env_knob(monkeypatch):
    monkeypatch.setenv(THRESHOLD_ENV, "17")
    assert default_block_threshold() == 17
    monkeypatch.setenv(THRESHOLD_ENV, "-5")
    assert default_block_threshold() == 0
    monkeypatch.setenv(THRESHOLD_ENV, "junk")
    assert default_block_threshold() == DEFAULT_THRESHOLD
    monkeypatch.delenv(THRESHOLD_ENV)
    assert default_block_threshold() == DEFAULT_THRESHOLD


# ------------------------------------------------------------- code cache

def test_code_objects_are_shared_across_machines_and_die_with_program():
    program = assemble(LOOP)
    m1 = Machine(program, dispatch="blocks", block_threshold=0)
    m1.run()
    key = id(program)
    assert blocks._CODE_CACHE.get(key), "first machine populated the cache"
    cached = set(blocks._CODE_CACHE[key])
    m2 = Machine(program, dispatch="blocks", block_threshold=0)
    m2.run()
    assert set(blocks._CODE_CACHE[key]) >= cached  # reused, not rebuilt
    assert m1.regs == m2.regs and m1.instret == m2.instret
    del m1, m2
    del program
    gc.collect()
    assert key not in blocks._CODE_CACHE  # finalizer dropped the entry


# ---------------------------------------------------------------- stats

def test_stats_reset_and_accumulate():
    blocks.reset_stats()
    zero = blocks.stats()
    assert zero["blocks_compiled"] == 0 and zero["block_insts"] == 0
    m = Machine(assemble(LOOP), dispatch="blocks", block_threshold=0)
    m.run()
    after = blocks.stats()
    assert after["block_execs"] > 0
    assert after["block_insts"] + after["fallback_insts"] == m.instret
    blocks.reset_stats()
    assert blocks.stats() == zero


# ------------------------------------------------------- mode plumbing

def test_dispatch_env_and_override(monkeypatch):
    monkeypatch.setenv(DISPATCH_ENV, "blocks")
    assert default_dispatch() == "blocks"
    machine = Machine(assemble("main: nop\n halt\n"))
    assert machine.dispatch == "blocks" and machine._engine is not None
    # Aliases canonicalise; the override beats the environment.
    monkeypatch.setenv(DISPATCH_ENV, "compiled")
    assert default_dispatch() == "blocks"
    set_dispatch_mode("reference")
    assert default_dispatch() == "reference"
    set_dispatch_mode(None)
    assert default_dispatch() == "blocks"


def test_worker_state_carries_dispatch_override():
    """Sweep workers must re-apply the parent's dispatch override."""
    set_dispatch_mode("blocks")
    state = supervisor.current_worker_state()
    set_dispatch_mode(None)
    supervisor.apply_worker_state(*state)
    assert dispatch_mode_override() == "blocks"
    # No override in the parent: the worker leaves its default alone.
    set_dispatch_mode(None)
    state = supervisor.current_worker_state()
    supervisor.apply_worker_state(*state)
    assert dispatch_mode_override() is None
