"""Classic kernels vs. host oracles: the strongest end-to-end checks.

Each kernel's guest result is compared against an independent Python
computation (CRC32 even against the standard library).
"""

import binascii
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator.machine import Machine, to_signed
from repro.isa.assembler import assemble
from repro.workloads import kernels


def run_kernel(source: str, max_steps: int = 20_000_000) -> int:
    """Run and return the printed (signed) checksum."""
    machine = Machine(assemble(source))
    machine.run(max_steps)
    assert machine.halted
    return int(machine.stdout.split(":")[1])


def test_fibonacci():
    assert run_kernel(kernels.fibonacci(25)) == 75025
    assert run_kernel(kernels.fibonacci(1)) == 1


@given(st.integers(1, 46))
@settings(max_examples=15, deadline=None)
def test_fibonacci_property(n):
    a, b = 0, 1
    for _ in range(n):
        a, b = b, (a + b) & 0xFFFFFFFF
    expected = to_signed(a)
    assert run_kernel(kernels.fibonacci(n)) == expected


def test_fibonacci_validates():
    with pytest.raises(ValueError):
        kernels.fibonacci(0)


def test_sieve():
    # π(1000) = 168
    assert run_kernel(kernels.sieve(1000)) == 168
    assert run_kernel(kernels.sieve(100)) == 25


def test_sieve_validates():
    with pytest.raises(ValueError):
        kernels.sieve(5)


def test_crc32_against_stdlib():
    data = b"The quick brown fox jumps over the lazy dog"
    expected = to_signed(binascii.crc32(data))
    assert run_kernel(kernels.crc32(data)) == expected


@given(st.binary(min_size=1, max_size=64))
@settings(max_examples=20, deadline=None)
def test_crc32_property(data):
    expected = to_signed(binascii.crc32(data))
    assert run_kernel(kernels.crc32(data)) == expected


def test_crc32_validates():
    with pytest.raises(ValueError):
        kernels.crc32(b"")


def test_bubble_sort():
    values = [5, -3, 99, 0, 12, -100, 7]
    expected = 0
    for v in sorted(values):
        expected = ((expected * 31) + (v & 0xFFFFFFFF)) & 0xFFFFFFFF
    assert run_kernel(kernels.bubble_sort(values)) == to_signed(expected)


@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=30))
@settings(max_examples=15, deadline=None)
def test_bubble_sort_property(values):
    expected = 0
    for v in sorted(values):
        expected = ((expected * 31) + (v & 0xFFFFFFFF)) & 0xFFFFFFFF
    assert run_kernel(kernels.bubble_sort(values)) == to_signed(expected)


@given(st.integers(1, 500), st.integers(1, 500))
@settings(max_examples=20, deadline=None)
def test_gcd_property(a, b):
    assert run_kernel(kernels.gcd(a, b)) == math.gcd(a, b)


def test_matmul_trace():
    n, seed = 8, 7
    a, b = kernels.host_matrices(n, seed)
    expected = sum(sum(a[i][k] * b[k][i] for k in range(n)) for i in range(n))
    assert run_kernel(kernels.matmul(n, seed)) == expected


@pytest.mark.parametrize("n,seed", [(2, 1), (5, 3), (12, 99)])
def test_matmul_sizes(n, seed):
    a, b = kernels.host_matrices(n, seed)
    expected = sum(sum(a[i][k] * b[k][i] for k in range(n)) for i in range(n))
    assert run_kernel(kernels.matmul(n, seed)) == expected


def test_kernels_run_under_timing_simulator():
    """Kernels double as timing-sim inputs."""
    from repro.core.config import baseline_config, bitslice_config
    from repro.emulator.trace import trace_program
    from repro.timing.simulator import simulate

    trace = tuple(trace_program(assemble(kernels.sieve(2000)), max_steps=40_000))
    ideal = simulate(baseline_config(), trace)
    sliced = simulate(bitslice_config(2), trace)
    assert 0 < sliced.ipc <= ideal.ipc * 1.02
