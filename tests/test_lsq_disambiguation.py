"""Bit-serial load–store disambiguation (paper §5.1, Figure 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lsq.disambiguation import (
    FIRST_COMPARE_BIT,
    FORWARDING_CATEGORIES,
    LSDCategory,
    bits_to_disambiguate,
    classify_disambiguation,
)

ADDR = st.integers(0, 0xFFFFFFFF)


def test_no_stores():
    assert classify_disambiguation(0x1000, [], 8) is LSDCategory.NO_STORES


def test_zero_match_rules_all_out():
    # load 0b...0100, store 0b...1000: differ at bit 2.
    assert classify_disambiguation(0x4, [0x8], 3) is LSDCategory.ZERO_MATCH


def test_single_match_one_store():
    assert classify_disambiguation(0x1000, [0x1000], 31) is LSDCategory.SINGLE_MATCH_ONE_STORE


def test_single_match_mult_stores():
    cat = classify_disambiguation(0x1000, [0x1000, 0x2000], 31)
    assert cat is LSDCategory.SINGLE_MATCH_MULT_STORES


def test_single_nonmatch():
    # Store agrees on bits [2,9] but differs above.
    load, store = 0x0000_0100, 0x8000_0100
    assert classify_disambiguation(load, [store], 9) is LSDCategory.SINGLE_NONMATCH


def test_multi_same_addr():
    cat = classify_disambiguation(0x1000, [0x1000, 0x1000], 31)
    assert cat is LSDCategory.MULTI_SAME_ADDR


def test_multi_diff_addr():
    # Two stores both matching the low bits of the load but different.
    load = 0x0000_0010
    stores = [0x1000_0010, 0x2000_0010]
    assert classify_disambiguation(load, stores, 9) is LSDCategory.MULTI_DIFF_ADDR


def test_byte_offset_bits_ignored():
    """Bits 0-1 never participate (word-granular conflicts)."""
    assert classify_disambiguation(0x1001, [0x1002], 31) is LSDCategory.SINGLE_MATCH_ONE_STORE


def test_high_bit_bounds():
    with pytest.raises(ValueError):
        classify_disambiguation(0, [], 1)
    with pytest.raises(ValueError):
        classify_disambiguation(0, [], 32)


def test_forwarding_categories():
    assert LSDCategory.SINGLE_MATCH_ONE_STORE in FORWARDING_CATEGORIES
    assert LSDCategory.ZERO_MATCH not in FORWARDING_CATEGORIES


def test_bits_to_disambiguate_trivial():
    assert bits_to_disambiguate(0x1234, []) == FIRST_COMPARE_BIT


def test_bits_to_disambiguate_early_ruleout():
    # Differ at bit 2: decisive immediately.
    assert bits_to_disambiguate(0x4, [0x8]) == 2
    # Differ only at bit 20: decisive at bit 20.
    assert bits_to_disambiguate(0x0, [1 << 20]) == 20


@given(ADDR, st.lists(ADDR, max_size=8), st.integers(2, 31))
def test_partial_never_rules_out_true_match(load, stores, high_bit):
    """Soundness: if some store truly matches the load (full compare),
    no partial width may classify the comparison as ZERO_MATCH —
    otherwise early disambiguation would let a load incorrectly pass a
    conflicting store."""
    mask = 0xFFFFFFFC
    truly_matches = any((s & mask) == (load & mask) for s in stores)
    category = classify_disambiguation(load, stores, high_bit)
    if truly_matches:
        assert category is not LSDCategory.ZERO_MATCH
        assert category is not LSDCategory.NO_STORES


@given(ADDR, st.lists(ADDR, min_size=1, max_size=8))
def test_full_width_is_decisive(load, stores):
    """At bit 31 the classification reflects the exact outcome."""
    category = classify_disambiguation(load, stores, 31)
    mask = 0xFFFFFFFC
    matches = [s for s in stores if (s & mask) == (load & mask)]
    if not matches:
        assert category is LSDCategory.ZERO_MATCH
    else:
        assert category in FORWARDING_CATEGORIES


@given(ADDR, st.lists(ADDR, max_size=8))
def test_categories_monotone_refinement(load, stores):
    """Once all stores are ruled out at some width, wider comparisons
    stay ruled out (more bits never resurrect a mismatch)."""
    ruled_out_at = None
    for b in range(2, 32):
        cat = classify_disambiguation(load, stores, b)
        if ruled_out_at is not None:
            assert cat in (LSDCategory.ZERO_MATCH, LSDCategory.NO_STORES)
        elif cat in (LSDCategory.ZERO_MATCH, LSDCategory.NO_STORES):
            ruled_out_at = b
