"""Persistent trace cache: round-trip fidelity and corruption fallback."""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.emulator.machine import Machine
from repro.experiments import runner, trace_cache
from repro.isa.assembler import assemble
from repro.workloads import get_workload

from tests.test_differential import straight_line_program


@pytest.fixture()
def cache(tmp_path):
    """An enabled, empty cache in a throwaway directory."""
    trace_cache.configure(tmp_path, enabled=True)
    trace_cache.reset_stats()
    runner.clear_trace_cache()
    yield tmp_path
    runner.clear_trace_cache()


def _collect_fresh(name: str, n: int):
    """Collect via the runner with the in-memory L1 emptied first."""
    runner._collect.cache_clear()
    return runner.collect_trace(name, n)


def test_miss_then_hit_round_trips_bit_identically(cache):
    first = _collect_fresh("li", 1_500)
    assert trace_cache.stats() == {
        "enabled": True, "dir": str(cache), "hits": 0, "misses": 1,
        "corrupt_entries": 0,
    }
    second = _collect_fresh("li", 1_500)
    assert trace_cache.stats()["hits"] == 1
    # Tuple equality over TraceRecord compares every field of every
    # record: the reload is bit-identical, not merely "close".
    assert first == second


@given(straight_line_program())
@settings(max_examples=15, deadline=None)
def test_store_load_round_trip_random_programs(tmp_path_factory, case):
    """Property: any collected trace survives a store/load unchanged."""
    source, _ops = case
    d = tmp_path_factory.mktemp("cache")
    trace_cache.configure(d, enabled=True)
    try:
        machine = Machine(assemble(source))
        records = tuple(machine.trace(5_000))
        key = "k" * 64
        trace_cache.store("prog", key, records)
        assert trace_cache.load("prog", key) == records
    finally:
        trace_cache.configure(enabled=False)
        trace_cache.reset_stats()


def test_corrupted_entry_falls_back_to_recollection(cache):
    baseline = _collect_fresh("li", 1_200)
    (entry,) = list(cache.iterdir())
    data = entry.read_bytes()
    entry.write_bytes(data[: len(data) // 2])  # torn write
    again = _collect_fresh("li", 1_200)
    assert again == baseline
    stats = trace_cache.stats()
    assert stats["misses"] == 2 and stats["hits"] == 0
    # The torn file was dropped and replaced by the re-collection.
    assert trace_cache.load("li", _key_for("li", 1_200)) == baseline


def test_corruption_recovery_is_not_silent(cache, capsys):
    """Satellite of the robustness PR: dropping a corrupt entry must
    warn on stderr and count, not vanish into the miss statistics."""
    baseline = _collect_fresh("li", 1_200)
    (entry,) = list(cache.iterdir())
    entry.write_bytes(entry.read_bytes()[:100])
    capsys.readouterr()  # discard collection-phase output
    assert _collect_fresh("li", 1_200) == baseline
    err = capsys.readouterr().err
    assert "dropped corrupt entry" in err and entry.name in err
    stats = trace_cache.stats()
    assert stats["corrupt_entries"] == 1 and stats["misses"] == 2


def test_corruption_counter_reaches_obs_session(cache, capsys):
    from repro.obs.session import end_session, start_session

    _collect_fresh("li", 1_100)
    (entry,) = list(cache.iterdir())
    entry.write_bytes(b"garbage")
    session = start_session()
    try:
        _collect_fresh("li", 1_100)
        value = session.registry.counter("cache.corrupt_entries").value
    finally:
        end_session()
    assert value == 1


def test_garbage_entry_falls_back_to_recollection(cache):
    baseline = _collect_fresh("li", 1_200)
    (entry,) = list(cache.iterdir())
    entry.write_bytes(b"not an npz archive at all")
    assert _collect_fresh("li", 1_200) == baseline
    assert trace_cache.stats()["hits"] == 0


def _key_for(name: str, n: int) -> str:
    program = get_workload(name).build(iters=None, profile="ref")
    return trace_cache.cache_key(name, n, None, None, "ref", program)


def test_key_depends_on_every_parameter_and_the_image(cache):
    program = get_workload("li").build(iters=None, profile="ref")
    base = trace_cache.cache_key("li", 1000, None, None, "ref", program)
    assert trace_cache.cache_key("mcf", 1000, None, None, "ref", program) != base
    assert trace_cache.cache_key("li", 2000, None, None, "ref", program) != base
    assert trace_cache.cache_key("li", 1000, 2, None, "ref", program) != base
    assert trace_cache.cache_key("li", 1000, None, 0, "ref", program) != base
    assert trace_cache.cache_key("li", 1000, None, None, "test", program) != base
    patched = replace(program, text=list(program.text[:-1]) + [program.text[-1] ^ 1])
    assert trace_cache.cache_key("li", 1000, None, None, "ref", patched) != base


def test_disabled_cache_touches_no_files(cache):
    trace_cache.configure(cache, enabled=False)
    _collect_fresh("li", 800)
    assert list(cache.iterdir()) == []
    assert trace_cache.stats() == {
        "enabled": False, "dir": str(cache), "hits": 0, "misses": 0,
        "corrupt_entries": 0,
    }


def test_env_var_disables_and_redirects(tmp_path, monkeypatch):
    trace_cache.configure()  # fall through to the environment
    monkeypatch.setenv(trace_cache.ENV_VAR, "off")
    assert not trace_cache.enabled()
    monkeypatch.setenv(trace_cache.ENV_VAR, str(tmp_path / "alt"))
    assert trace_cache.enabled()
    assert trace_cache.cache_dir() == tmp_path / "alt"
    monkeypatch.delenv(trace_cache.ENV_VAR)
    assert trace_cache.enabled()
    assert trace_cache.cache_dir() == Path(trace_cache.DEFAULT_DIR).expanduser()


def test_clear_trace_cache_resets_counters_not_files(cache):
    _collect_fresh("li", 900)
    assert trace_cache.stats()["misses"] == 1
    runner.clear_trace_cache()
    assert trace_cache.stats() == {
        "enabled": True, "dir": str(cache), "hits": 0, "misses": 0,
        "corrupt_entries": 0,
    }
    assert len(list(cache.iterdir())) == 1  # entries are content-addressed
