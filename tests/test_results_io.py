"""Result serialization and regression comparison."""

import json

import pytest

from repro.experiments import table1
from repro.experiments.results_io import (
    Regression,
    compare_results,
    load_rows,
    rows_to_json,
    save_rows,
)


def _payload(rows):
    return json.loads(rows_to_json("test", rows))


def test_roundtrip_tuples(tmp_path):
    rows = [("li", 2, "x", 0.5), ("mcf", 4, "y", 0.25)]
    path = tmp_path / "r.json"
    save_rows(path, "fig", rows, metadata={"n": 1000})
    payload = load_rows(path)
    assert payload["experiment"] == "fig"
    assert payload["metadata"] == {"n": 1000}
    assert payload["rows"] == [["li", 2, "x", 0.5], ["mcf", 4, "y", 0.25]]


def test_version_check(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"format": 99, "rows": []}))
    with pytest.raises(ValueError):
        load_rows(path)


def test_compare_identical_is_clean():
    a = _payload([("li", "ipc", 1.0)])
    assert compare_results(a, a) == []


def test_compare_flags_changes():
    a = _payload([("li", "ipc", 1.0), ("mcf", "ipc", 0.5)])
    b = _payload([("li", "ipc", 1.2), ("mcf", "ipc", 0.5)])
    regs = compare_results(a, b, tolerance=0.05)
    assert len(regs) == 1
    assert regs[0].key.startswith("li")
    assert regs[0].relative_change == pytest.approx(0.2)
    assert "->" in str(regs[0])


def test_compare_within_tolerance_is_clean():
    a = _payload([("li", "ipc", 1.00)])
    b = _payload([("li", "ipc", 1.02)])
    assert compare_results(a, b, tolerance=0.05) == []


def test_compare_surfaces_additions_and_removals():
    a = _payload([("li", "ipc", 1.0)])
    b = _payload([("li", "ipc", 1.0), ("go", "ipc", 0.7)])
    regs = compare_results(a, b)
    assert any("go" in r.key for r in regs)


def test_dataclass_rows(tmp_path):
    result = table1.run(("go",), instructions=2_000, warmup=500)
    path = tmp_path / "table1.json"
    save_rows(path, "table1", result.rows())
    payload = load_rows(path)
    assert payload["rows"][0]["benchmark"] == "go"
    assert compare_results(payload, payload) == []


def test_tampered_payload_fails_checksum(tmp_path):
    from repro.harness.errors import ResultCorruption

    path = tmp_path / "r.json"
    save_rows(path, "fig", [("li", "ipc", 1.0)])
    text = path.read_text().replace("1.0", "1.1")
    path.write_text(text)
    with pytest.raises(ResultCorruption) as excinfo:
        load_rows(path)
    assert "checksum" in str(excinfo.value)


def test_unparseable_json_is_result_corruption(tmp_path):
    from repro.harness.errors import ResultCorruption

    path = tmp_path / "r.json"
    save_rows(path, "fig", [("li", "ipc", 1.0)])
    path.write_text(path.read_text()[:40])  # torn write
    with pytest.raises(ResultCorruption):
        load_rows(path)


def test_legacy_v1_results_still_load(tmp_path):
    path = tmp_path / "legacy.json"
    path.write_text(json.dumps({"format": 1, "experiment": "fig", "metadata": {}, "rows": [["li", "ipc", 1.0]]}))
    payload = load_rows(path)
    assert payload["rows"] == [["li", "ipc", 1.0]]


def test_save_rows_leaves_no_temp_files(tmp_path):
    save_rows(tmp_path / "r.json", "fig", [("li", "ipc", 1.0)])
    assert [p.name for p in tmp_path.iterdir()] == ["r.json"]


def test_real_experiment_regression_flow(tmp_path):
    """The intended CI loop: archive a baseline, re-run, compare."""
    base = table1.run(("go",), instructions=2_000, warmup=500)
    save_rows(tmp_path / "base.json", "table1", base.rows())
    # Same configuration, deterministic → no regressions.
    again = table1.run(("go",), instructions=2_000, warmup=500)
    save_rows(tmp_path / "cur.json", "table1", again.rows())
    regs = compare_results(load_rows(tmp_path / "base.json"), load_rows(tmp_path / "cur.json"))
    assert regs == []
    # A different window is a visible "regression".
    other = table1.run(("go",), instructions=4_000, warmup=500)
    save_rows(tmp_path / "other.json", "table1", other.rows())
    regs = compare_results(load_rows(tmp_path / "base.json"), load_rows(tmp_path / "other.json"))
    assert regs  # instruction counts (and likely IPC) moved
