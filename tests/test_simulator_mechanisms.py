"""Targeted microbenchmarks for individual timing-model mechanisms.

Each test builds a small assembly kernel that isolates one modeled
mechanism (store forwarding, structural stalls, I-cache misses, PTM
paths, unit serialization, ...) and asserts its observable effect.
"""

import dataclasses

from repro.core.config import Features, baseline_config, bitslice_config, simple_pipeline_config
from repro.emulator.machine import Machine
from repro.isa.assembler import assemble
from repro.timing.simulator import TimingSimulator, simulate


def trace_of(src: str, n: int = 30_000):
    return tuple(Machine(assemble(src)).trace(n))


# ------------------------------------------------------------- forwarding


def test_store_to_load_forwarding_detected():
    src = """
    main: li $s0, 2000
          la $s1, buf
    loop: sw $s0, 0($s1)
          lw $t0, 0($s1)
          addu $s2, $s2, $t0
          addiu $s0, $s0, -1
          bgtz $s0, loop
          halt
    .data
    buf: .word 0
    .text
    """
    stats = simulate(baseline_config(), trace_of(src))
    assert stats.store_forwards > 1500


def test_disjoint_load_does_not_forward():
    src = """
    main: li $s0, 2000
          la $s1, buf
    loop: sw $s0, 0($s1)
          lw $t0, 64($s1)
          addiu $s0, $s0, -1
          bgtz $s0, loop
          halt
    .data
    buf: .space 128
    .text
    """
    stats = simulate(baseline_config(), trace_of(src))
    assert stats.store_forwards == 0
    assert stats.lsd_searches > 0


# --------------------------------------------------------------- stalls


def test_lsq_fills_under_memory_pressure():
    """A long run of loads with L2 misses must expose LSQ stalls."""
    src = """
    main: li $s0, 3000
          la $s1, arr
          li $s2, 0
    loop: sll $t0, $s2, 8
          addu $t1, $s1, $t0
          lw $t2, 0($t1)
          lw $t3, 64($t1)
          lw $t4, 128($t1)
          addiu $s2, $s2, 7
          andi $s2, $s2, 0x3ff
          addiu $s0, $s0, -1
          bgtz $s0, loop
          halt
    .data
    arr: .space 300000
    .text
    """
    # Tiny memory latency exaggerated to force occupancy pressure.
    cfg = dataclasses.replace(baseline_config(), memory_latency=400, lsq_size=8)
    stats = simulate(cfg, trace_of(src, 20_000))
    assert stats.lsq_stall_cycles > 0


def test_ruu_fills_behind_long_latency_op():
    src = """
    main: li $s0, 800
    loop: div $s1, $s0
          mflo $s1
          addiu $s0, $s0, -1
          bgtz $s0, loop
          halt
    """
    cfg = dataclasses.replace(baseline_config(), ruu_size=8, int_div_lat=40)
    stats = simulate(cfg, trace_of(src))
    assert stats.ruu_stall_cycles > 0


def test_divider_serializes():
    """Independent divides still share the single mult/div unit."""
    dep = """
    main: li $s0, 500
          li $s1, 17
    loop: div $s1, $s1
          mflo $t0
          div $s1, $s1
          mflo $t1
          addiu $s0, $s0, -1
          bgtz $s0, loop
          halt
    """
    stats = simulate(baseline_config(), trace_of(dep))
    # 1000 divides x 20-cycle non-pipelined unit bound the cycle count.
    assert stats.cycles >= 1000 * 20


# ------------------------------------------------------------- I-cache


def test_icache_misses_slow_fetch():
    """A huge jump-chain exceeds the 64KB L1I: IPC must drop versus a
    tight loop of the same instruction count."""
    # Chain of jumps through 4096 distinct 64-byte-apart blocks.
    blocks = []
    for i in range(2048):
        blocks.append(f"b{i}: addiu $s0, $s0, 1\n      j b{(i + 1) % 2048}\n")
    big = "main: li $s0, 0\n" + "".join(blocks)
    big_trace = tuple(Machine(assemble(big)).trace(12_000))
    small = """
    main: li $s0, 6000
    loop: addiu $s0, $s0, -1
          bgtz $s0, loop
          halt
    """
    small_trace = trace_of(small, 12_000)
    big_stats = simulate(baseline_config(), big_trace)
    small_stats = simulate(baseline_config(), small_trace)
    assert big_stats.ipc < small_stats.ipc


# ------------------------------------------------------------------ PTM


def _ptm_stats(features: Features, src: str):
    return simulate(bitslice_config(2, features), trace_of(src))


def test_ptm_early_miss_signals():
    """Loads striding far beyond the L1D produce early non-speculative
    miss signals when the partial tags cannot match."""
    src = """
    main: li $s0, 4000
          la $s1, arr
          li $s2, 0
    loop: sll $t0, $s2, 6
          addu $t1, $s1, $t0
          lw $t2, 0($t1)
          addiu $s2, $s2, 19
          andi $s2, $s2, 0xfff
          addiu $s0, $s0, -1
          bgtz $s0, loop
          halt
    .data
    arr: .space 270000
    .text
    """
    stats = _ptm_stats(Features.all(), src)
    assert stats.ptm_accesses > 0
    assert stats.l1d_misses > 0
    assert stats.ptm_early_misses > 0


def test_ptm_hits_on_small_working_set():
    src = """
    main: li $s0, 4000
          la $s1, arr
    loop: lw $t0, 0($s1)
          lw $t1, 64($s1)
          addiu $s0, $s0, -1
          bgtz $s0, loop
          halt
    .data
    arr: .space 256
    .text
    """
    stats = _ptm_stats(Features.all(), src)
    assert stats.ptm_early_hits > 7000
    assert stats.ptm_way_mispredict_rate < 0.01


# ---------------------------------------------------------- fetch groups


def test_taken_branches_break_fetch_groups():
    """A taken-branch-per-2-instructions stream cannot sustain 4-wide
    fetch even with perfect prediction."""
    src = """
    main: li $s0, 4000
    a:    addiu $s0, $s0, -1
          j b
    b:    blez $s0, done
          j a
    done: halt
    """
    stats = simulate(baseline_config(), trace_of(src))
    assert stats.ipc <= 2.0 + 1e-9


def test_redirect_costs_full_frontend():
    """Each mispredicted branch must cost at least the frontend depth."""
    src = """
    main: li $s0, 600
          li $s1, 12345
    loop: sll $t0, $s1, 13
          xor $s1, $s1, $t0
          srl $t0, $s1, 17
          xor $s1, $s1, $t0
          sll $t0, $s1, 5
          xor $s1, $s1, $t0
          andi $t1, $s1, 1
          beq $t1, $0, even
    odd:  addiu $s0, $s0, -1
    even: addiu $s0, $s0, -1
          bgtz $s0, loop
          halt
    """
    trace = trace_of(src)
    tiny = dataclasses.replace(baseline_config(), gshare_entries=16)
    stats = simulate(tiny, trace)
    if stats.branch_mispredicts:
        # Cycles must include ~frontend_depth per misprediction beyond
        # the bandwidth floor.
        floor = stats.instructions / 4
        assert stats.cycles >= floor + stats.branch_mispredicts * 10


# --------------------------------------------------------------- slicing


def test_logic_chain_fully_recovers_under_slicing():
    """A pure-logic dependence chain loses nothing to slicing (Figure
    8c: slices independent)."""
    src = """
    main: li $s0, 4000
          li $s1, -1
    loop: xor $s1, $s1, $s0
          or  $s1, $s1, $s0
          and $s1, $s1, $s0
          addiu $s0, $s0, -1
          bgtz $s0, loop
          halt
    """
    trace = trace_of(src)
    ideal = simulate(baseline_config(), trace).ipc
    sliced = simulate(bitslice_config(2), trace).ipc
    assert sliced >= ideal * 0.97


def test_shift_chain_pays_slice_penalty():
    """A serial variable-shift chain keeps paying the inter-slice
    communication (unlike logic)."""
    src = """
    main: li $s0, 4000
          li $s1, 0x12345678
    loop: srlv $s1, $s1, $s0
          sllv $s1, $s1, $s0
          ori  $s1, $s1, 0x135
          addiu $s0, $s0, -1
          bgtz $s0, loop
          halt
    """
    trace = trace_of(src)
    ideal = simulate(baseline_config(), trace).ipc
    sliced = simulate(bitslice_config(4), trace).ipc
    assert sliced < ideal


def test_timeline_and_stats_agree():
    src = """
    main: li $s0, 500
    loop: addiu $s0, $s0, -1
          bgtz $s0, loop
          halt
    """
    trace = trace_of(src)
    sim = TimingSimulator(baseline_config(), record_timeline=True)
    stats = sim.run(iter(trace))
    assert len(sim.timeline) == stats.instructions
    assert sim.timeline[-1].commit == stats.cycles
