"""Set-associative cache: geometry, LRU, MRU ordering, stats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memsys.cache import CacheConfig, SetAssociativeCache


def small_cache(assoc=2, sets=4, line=16):
    return SetAssociativeCache(CacheConfig(size=assoc * sets * line, assoc=assoc, line_size=line))


def test_config_geometry():
    cfg = CacheConfig(size=64 * 1024, assoc=4, line_size=64)
    assert cfg.num_sets == 256
    assert cfg.offset_bits == 6
    assert cfg.index_bits == 8
    assert cfg.tag_shift == 14
    assert cfg.tag_bits == 18


def test_config_split():
    cfg = CacheConfig(size=64 * 1024, assoc=4, line_size=64)
    addr = 0x12345678
    index, tag = cfg.split(addr)
    assert index == (addr >> 6) & 0xFF
    assert tag == addr >> 14


@pytest.mark.parametrize("size,assoc,line", [(100, 2, 16), (64, 3, 16), (64, 2, 10)])
def test_non_power_of_two_rejected(size, assoc, line):
    with pytest.raises(ValueError):
        CacheConfig(size=size, assoc=assoc, line_size=line)


def test_cache_smaller_than_set_rejected():
    with pytest.raises(ValueError):
        CacheConfig(size=64, assoc=4, line_size=64)


def test_cold_miss_then_hit():
    cache = small_cache()
    assert cache.access(0x1000) is False
    assert cache.access(0x1000) is True
    assert cache.access(0x1004) is True  # same line
    assert (cache.hits, cache.misses) == (2, 1)


def test_lru_eviction():
    cache = small_cache(assoc=2, sets=1, line=16)
    cache.access(0x000)  # A
    cache.access(0x010)  # B  (set has A,B)
    cache.access(0x000)  # touch A -> LRU is B
    cache.access(0x020)  # C evicts B
    assert cache.probe(0x000)
    assert not cache.probe(0x010)
    assert cache.probe(0x020)


def test_set_tags_mru_first():
    cache = small_cache(assoc=4, sets=1, line=16)
    for addr in (0x00, 0x10, 0x20):
        cache.access(addr)
    cache.access(0x10)
    tags = cache.set_tags(0x00)
    assert tags[0] == 0x10 >> 4  # MRU
    assert set(tags) == {0, 1, 2}


def test_probe_does_not_mutate():
    cache = small_cache()
    cache.probe(0x40)
    assert cache.accesses == 0
    assert not cache.probe(0x40)


def test_reset_stats():
    cache = small_cache()
    cache.access(0)
    cache.reset_stats()
    assert cache.accesses == 0 and cache.miss_rate == 0.0


def test_associativity_respected():
    cache = small_cache(assoc=2, sets=1, line=16)
    cache.access(0x00)
    cache.access(0x10)
    cache.access(0x20)
    assert len(cache.set_tags(0)) == 2


@given(st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=200))
def test_rereference_always_hits(addrs):
    """Immediately re-accessing any address must hit."""
    cache = small_cache(assoc=2, sets=8, line=16)
    for a in addrs:
        cache.access(a)
        assert cache.access(a) is True


@given(st.lists(st.integers(0, 0xFFFF), max_size=200))
def test_set_never_overflows(addrs):
    cache = small_cache(assoc=2, sets=8, line=16)
    for a in addrs:
        cache.access(a)
    for s in cache._sets:
        assert len(s) <= 2
        assert len(set(s)) == len(s)  # no duplicate tags in a set
