"""Trace analysis utilities."""

from repro.emulator.analysis import TraceProfile, compare_profiles, profile_trace
from repro.emulator.machine import Machine
from repro.isa.assembler import assemble
from repro.isa.opclass import OpClass


def _profile(src: str, n: int = 20_000) -> TraceProfile:
    return profile_trace(Machine(assemble(src)).trace(n))


def test_counts_and_fractions(small_traces):
    profile = profile_trace(small_traces["bzip"])
    assert profile.instructions == len(small_traces["bzip"])
    assert 0 < profile.load_fraction < 1
    assert 0 < profile.store_fraction < 1
    assert 0 < profile.branch_fraction < 1
    assert 0 < profile.taken_rate <= 1
    assert profile.data_working_set > 0
    assert profile.text_lines > 0


def test_dependence_distance_tight_chain():
    src = """
    main: li $t0, 2000
    loop: addiu $t0, $t0, -1
          bgtz $t0, loop
          halt
    """
    profile = _profile(src)
    # Every loop instruction consumes the value produced 1-2
    # instructions earlier.
    assert profile.short_dependence_fraction(2) > 0.9
    assert profile.mean_dependence_distance() < 4


def test_dependence_distance_wide_code():
    src = """
    main: li $s0, 500
    loop: addiu $t0, $0, 1
          addiu $t1, $0, 2
          addiu $t2, $0, 3
          addiu $t3, $0, 4
          addiu $t4, $0, 5
          addiu $t5, $0, 6
          addu  $t6, $t0, $t1
          addiu $s0, $s0, -1
          bgtz $s0, loop
          halt
    """
    profile = _profile(src)
    tight = _profile(
        """
        main: li $t0, 2000
        loop: addiu $t0, $t0, -1
              bgtz $t0, loop
              halt
        """
    )
    assert profile.mean_dependence_distance() > tight.mean_dependence_distance()


def test_working_set_scales_with_footprint():
    small = _profile(
        """
        main: li $s0, 2000
              la $s1, buf
        loop: lw $t0, 0($s1)
              addiu $s0, $s0, -1
              bgtz $s0, loop
              halt
        .data
        buf: .space 64
        .text
        """
    )
    big = _profile(
        """
        main: li $s0, 2000
              la $s1, buf
              li $s2, 0
        loop: sll $t1, $s2, 6
              addu $t2, $s1, $t1
              lw $t0, 0($t2)
              addiu $s2, $s2, 1
              andi $s2, $s2, 0x3ff
              addiu $s0, $s0, -1
              bgtz $s0, loop
              halt
        .data
        buf: .space 65536
        .text
        """
    )
    assert big.data_working_set > small.data_working_set * 10


def test_class_counts(small_traces):
    profile = profile_trace(small_traces["li"])
    assert profile.class_counts[OpClass.LOAD] > 0
    assert profile.class_counts[OpClass.ARITH] > 0
    assert sum(profile.class_counts.values()) == profile.instructions


def test_summary_and_compare(small_traces):
    a = profile_trace(small_traces["li"])
    b = profile_trace(small_traces["mcf"])
    assert "working set" in a.summary()
    table = compare_profiles(a, b)
    assert "loads" in table and "%" in table


def test_empty_profile():
    profile = profile_trace([])
    assert profile.instructions == 0
    assert profile.load_fraction == 0.0
    assert profile.mean_dependence_distance() == 0.0
