"""Disassembler formatting and assemble→disassemble→assemble round trips."""

from hypothesis import given

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, disassemble_program, format_instruction
from repro.isa.encoding import decode, encode
from repro.isa.instructions import Instruction
from tests.test_encoding import instructions


def test_format_r3():
    assert format_instruction(Instruction("addu", rs=9, rt=10, rd=8)) == "addu $t0, $t1, $t2"


def test_format_nop():
    assert format_instruction(Instruction("sll")) == "nop"


def test_format_memory():
    assert format_instruction(Instruction("lw", rs=29, rt=8, imm=-4)) == "lw $t0, -4($sp)"


def test_format_branch_relative_and_absolute():
    inst = Instruction("bne", rs=8, rt=0, imm=-2)
    assert format_instruction(inst) == "bne $t0, $zero, .-8"
    assert format_instruction(inst, pc=0x400010) == "bne $t0, $zero, 0x40000c"


def test_format_lui_hex():
    assert format_instruction(Instruction("lui", rt=8, imm=0x1002)) == "lui $t0, 0x1002"


def test_disassemble_program_lines():
    program = assemble("main: nop\n addu $t0, $t1, $t2\n")
    lines = disassemble_program(program.text, program.text_base)
    assert lines[0].startswith("0x00400000: nop")
    assert "addu" in lines[1]


@given(instructions())
def test_disassembly_never_crashes_and_word_reparses(inst):
    text = disassemble(encode(inst), pc=0x400000)
    assert isinstance(text, str) and text
    # The shown mnemonic matches (modulo the nop alias).
    decoded = decode(encode(inst))
    assert decoded.is_nop or text.split()[0] == inst.mnemonic
