"""Cross-validation: timestamp model vs. the cycle-by-cycle reference.

Two independently written simulators of the same machine.  They agree
exactly on serial dependence chains (where scheduling freedom is nil)
and within a bounded tolerance elsewhere (the models idealize select
order differently); their front ends must agree exactly on prediction
outcomes, and both must preserve the paper's config ordering.
"""

import pytest

from repro.core.config import baseline_config, bitslice_config, simple_pipeline_config
from repro.emulator.machine import Machine
from repro.isa.assembler import assemble
from repro.timing.detailed import DetailedSimulator, simulate_detailed
from repro.timing.simulator import simulate


def trace_of(src: str, n: int = 20_000):
    return tuple(Machine(assemble(src)).trace(n))


SERIAL_CHAIN = (
    "main: li $t0, 0\n"
    + " addiu $t0, $t0, 1\n" * 60
    + " li $s0, 25\n"
    + "loop:\n"
    + " addiu $t0, $t0, 1\n" * 40
    + " addiu $s0, $s0, -1\n bgtz $s0, loop\n halt\n"
)


@pytest.mark.parametrize("config_fn", [baseline_config, lambda: simple_pipeline_config(2)])
def test_exact_agreement_on_serial_chains(config_fn):
    """With no scheduling freedom, the models must agree to ~1 cycle."""
    trace = trace_of(SERIAL_CHAIN)
    cfg = config_fn()
    a = simulate(cfg, trace)
    b = simulate_detailed(cfg, trace)
    assert a.instructions == b.instructions
    assert abs(a.cycles - b.cycles) <= 2


@pytest.mark.parametrize("name", ["bzip", "li", "mcf"])
def test_bounded_divergence_on_workloads(small_traces, name):
    trace = small_traces[name]
    for cfg in (baseline_config(), simple_pipeline_config(2)):
        a = simulate(cfg, trace)
        b = simulate_detailed(cfg, trace)
        assert a.instructions == b.instructions
        # Front ends are identical implementations driven in the same
        # order: prediction outcomes must match exactly.
        assert a.branch_mispredicts == b.branch_mispredicts, cfg.name
        # Timing models idealize differently; divergence stays bounded.
        ratio = b.cycles / a.cycles
        assert 0.6 < ratio < 1.5, (name, cfg.name, ratio)


@pytest.mark.parametrize("name", ["bzip", "li"])
def test_both_models_agree_pipelining_costs(small_traces, name):
    """The paper's first-order claim holds in both models."""
    trace = small_traces[name]
    for sim in (simulate, simulate_detailed):
        ideal = sim(baseline_config(), trace)
        simple = sim(simple_pipeline_config(2), trace)
        assert simple.ipc < ideal.ipc, sim.__name__


def test_detailed_accepts_basic_sliced_configs():
    from repro.core.config import Features

    DetailedSimulator(bitslice_config(2, Features(partial_operand_bypassing=True)))


def test_detailed_empty_trace():
    stats = simulate_detailed(baseline_config(), [])
    assert stats.instructions == 0 and stats.cycles == 0


def test_detailed_truncation():
    trace = trace_of(SERIAL_CHAIN)
    stats = simulate_detailed(baseline_config(), trace, max_instructions=500)
    assert stats.instructions == 500


def test_detailed_store_forwarding():
    src = """
    main: li $s0, 1000
          la $s1, buf
    loop: sw $s0, 0($s1)
          lw $t0, 0($s1)
          addu $s2, $s2, $t0
          addiu $s0, $s0, -1
          bgtz $s0, loop
          halt
    .data
    buf: .word 0
    .text
    """
    stats = simulate_detailed(baseline_config(), trace_of(src))
    assert stats.store_forwards > 500


def test_detailed_window_limits_respected():
    """A tiny ROB must slow the detailed model down too."""
    import dataclasses

    trace = trace_of(SERIAL_CHAIN)
    big = simulate_detailed(baseline_config(), trace)
    small_cfg = dataclasses.replace(baseline_config(), ruu_size=4)
    small = simulate_detailed(small_cfg, trace)
    assert small.cycles >= big.cycles


# ----------------------------------------------------------- sliced mode


def _pob(slices: int):
    from repro.core.config import Features

    return bitslice_config(slices, Features(partial_operand_bypassing=True))


@pytest.mark.parametrize("slices", [2, 4])
def test_sliced_exact_agreement_on_serial_chains(slices):
    """In-order sliced execution of a pure ARITH chain has no freedom:
    the models must agree to a few cycles."""
    trace = trace_of("main: li $t0, 0\n" + " addiu $t0, $t0, 1\n" * 80 + " halt\n")
    a = simulate(_pob(slices), trace)
    b = simulate_detailed(_pob(slices), trace)
    assert abs(a.cycles - b.cycles) <= 6


@pytest.mark.parametrize("name", ["bzip", "li", "mcf"])
@pytest.mark.parametrize("slices", [2, 4])
def test_sliced_bounded_divergence(small_traces, name, slices):
    trace = small_traces[name]
    a = simulate(_pob(slices), trace)
    b = simulate_detailed(_pob(slices), trace)
    assert a.branch_mispredicts == b.branch_mispredicts
    ratio = b.cycles / a.cycles
    # The detailed model idealizes per-slice structural contention, so
    # it can run meaningfully faster; divergence must stay bounded.
    assert 0.5 < ratio < 1.5, (name, slices, ratio)


@pytest.mark.parametrize("name", ["bzip", "li"])
def test_both_models_agree_slicing_recovers(small_traces, name):
    """Both models reproduce the paper's ordering:
    simple pipelining <= bypassing-sliced <= ideal."""
    trace = small_traces[name]
    for sim in (simulate, simulate_detailed):
        ideal = sim(baseline_config(), trace)
        simple = sim(simple_pipeline_config(2), trace)
        sliced = sim(_pob(2), trace)
        assert simple.ipc < ideal.ipc, sim.__name__
        assert sliced.ipc >= simple.ipc * 0.98, sim.__name__
        assert sliced.ipc <= ideal.ipc * 1.02, sim.__name__


def test_detailed_rejects_advanced_sliced_features():
    with pytest.raises(ValueError):
        DetailedSimulator(bitslice_config(2))  # Features.all() includes PTM etc.
