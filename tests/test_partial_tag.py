"""Partial tag matching: classification soundness and MRU way prediction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memsys.cache import CacheConfig, SetAssociativeCache
from repro.memsys.partial_tag import (
    PartialTagOutcome,
    classify_partial_tag,
    partial_tag_lookup,
    tag_bits_available,
)

CFG = CacheConfig(size=64 * 1024, assoc=4, line_size=64)


def test_zero_match_is_definitive_miss():
    assert classify_partial_tag(0b1010, [0b0001, 0b0011], 1, 18) is PartialTagOutcome.ZERO


def test_single_hit_vs_single_miss():
    # One resident matches the low 2 bits; whether it is a hit depends
    # on the full tag.
    assert classify_partial_tag(0b0111, [0b0111], 2, 18) is PartialTagOutcome.SINGLE_HIT
    assert classify_partial_tag(0b0111, [0b1011], 2, 18) is PartialTagOutcome.SINGLE_MISS


def test_multi_match():
    assert classify_partial_tag(0b01, [0b0101, 0b1101], 2, 18) is PartialTagOutcome.MULTI


def test_bits_bounds_checked():
    with pytest.raises(ValueError):
        classify_partial_tag(0, [], 0, 18)
    with pytest.raises(ValueError):
        classify_partial_tag(0, [], 19, 18)


def test_full_width_classification_exact_examples():
    """With all tag bits, classification equals the true hit/miss outcome."""
    resident = [5, 9, 13]
    assert classify_partial_tag(9, resident, 18, 18) is PartialTagOutcome.SINGLE_HIT
    assert classify_partial_tag(7, resident, 18, 18) is PartialTagOutcome.ZERO


def test_lookup_zero_is_always_correct():
    cache = SetAssociativeCache(CFG)
    cache.access(0x0000_0040)  # resident tag 0 (low bit 0)
    probe = (1 << CFG.tag_shift) | 0x40  # same set, tag 1 (low bit 1)
    outcome, predicted, correct = partial_tag_lookup(cache, probe, 1)
    assert outcome is PartialTagOutcome.ZERO
    assert predicted is None
    assert correct  # the early miss signal is non-speculative


def test_lookup_predicts_mru_among_matches():
    cache = SetAssociativeCache(CFG)
    # Two lines in the same set whose tags share low bits.
    a = (0b1000 << CFG.tag_shift) | 0x40
    b = (0b0000 << CFG.tag_shift) | 0x40
    cache.access(a)
    cache.access(b)  # b is MRU
    outcome, predicted, correct = partial_tag_lookup(cache, a, 1)
    assert outcome is PartialTagOutcome.MULTI
    assert predicted == b >> CFG.tag_shift  # MRU picked
    assert not correct  # but the true line is a


def test_lookup_correct_when_unique_true_match():
    cache = SetAssociativeCache(CFG)
    addr = 0x1234_5678 & ~0x3F
    cache.access(addr)
    outcome, predicted, correct = partial_tag_lookup(cache, addr, 2)
    assert correct
    assert outcome in (PartialTagOutcome.SINGLE_HIT, PartialTagOutcome.MULTI)


def test_tag_bits_available():
    assert tag_bits_available(16, CFG.tag_shift) == 2  # paper §7.1
    assert tag_bits_available(8, CFG.tag_shift) == 0
    assert tag_bits_available(32, CFG.tag_shift) == 18


@given(
    full_tag=st.integers(0, 2**18 - 1),
    resident=st.lists(st.integers(0, 2**18 - 1), max_size=8),
    bits=st.integers(1, 18),
)
def test_partial_classification_soundness(full_tag, resident, bits):
    """Key invariants of the partial compare (why PTM is safe):

    * ZERO at any width implies the full compare also misses;
    * a full-width hit implies every narrower width reports the true
      line among its matchers (never ZERO).
    """
    outcome = classify_partial_tag(full_tag, resident, bits, 18)
    truly_hits = full_tag in resident
    if outcome is PartialTagOutcome.ZERO:
        assert not truly_hits
    if truly_hits:
        assert outcome is not PartialTagOutcome.ZERO
        assert outcome is not PartialTagOutcome.SINGLE_MISS


@given(
    full_tag=st.integers(0, 2**18 - 1),
    resident=st.lists(st.integers(0, 2**18 - 1), max_size=8),
)
def test_full_width_classification_is_exact(full_tag, resident):
    outcome = classify_partial_tag(full_tag, list(dict.fromkeys(resident)), 18, 18)
    if full_tag in resident:
        assert outcome is PartialTagOutcome.SINGLE_HIT
    else:
        assert outcome is PartialTagOutcome.ZERO
