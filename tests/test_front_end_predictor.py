"""Combined front-end predictor over real traces."""

from repro.branch.predictor import FrontEndPredictor
from repro.emulator.trace import trace_program
from repro.isa.assembler import assemble


def _feed(src: str, n: int = 50_000):
    predictor = FrontEndPredictor()
    outcomes = []
    for record in trace_program(assemble(src), max_steps=n):
        if record.inst.is_control:
            outcomes.append((record, predictor.predict_and_train(record)))
    return predictor, outcomes


def test_loop_branch_becomes_predictable():
    predictor, outcomes = _feed(
        """
        main: li $t0, 2000
        loop: addiu $t0, $t0, -1
              bgtz $t0, loop
              halt
        """
    )
    assert predictor.direction_accuracy > 0.99


def test_direct_jumps_never_mispredict():
    _, outcomes = _feed(
        """
        main: li $t0, 500
        loop: addiu $t0, $t0, -1
              j check
        check: bgtz $t0, loop
              halt
        """
    )
    jumps = [o for r, o in outcomes if r.inst.mnemonic == "j"]
    assert jumps and all(not o.mispredicted for o in jumps)


def test_returns_predicted_by_ras():
    predictor, outcomes = _feed(
        """
        main: li $s0, 300
        loop: jal callee
              addiu $s0, $s0, -1
              bgtz $s0, loop
              halt
        callee: jr $ra
        """
    )
    returns = [o for r, o in outcomes if r.inst.mnemonic == "jr"]
    mispredicted = sum(o.mispredicted for o in returns)
    assert len(returns) == 300
    assert mispredicted == 0


def test_indirect_jump_learns_via_btb():
    predictor, outcomes = _feed(
        """
        main: li $s0, 400
        la $s1, target
        loop: jalr $t9, $s1
              addiu $s0, $s0, -1
              bgtz $s0, loop
              halt
        target: jr $t9
        """
    )
    calls = [o for r, o in outcomes if r.inst.mnemonic == "jalr"]
    # First call misses in the BTB, the rest hit.
    assert calls[0].mispredicted
    assert not any(o.mispredicted for o in calls[5:])


def test_non_control_raises():
    import pytest

    from repro.emulator.trace import TraceRecord
    from repro.isa.instructions import Instruction

    record = TraceRecord(
        pc=0, inst=Instruction("addu", rs=1, rt=2, rd=3),
        rs_val=0, rt_val=0, result=0, mem_addr=-1, taken=False, next_pc=4,
    )
    with pytest.raises(ValueError):
        FrontEndPredictor().predict_and_train(record)


def test_mispredicted_direction_counts(small_traces):
    predictor = FrontEndPredictor()
    for record in small_traces["bzip"]:
        if record.inst.is_control:
            predictor.predict_and_train(record)
    assert predictor.cond_count > 0
    assert 0.5 < predictor.direction_accuracy <= 1.0
