"""Operand-width characterization (§6 narrow-width opportunity)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.characterization.width_char import (
    WidthCharacterization,
    characterize_widths,
    significant_slices,
)
from repro.isa.opclass import OpClass

U32 = st.integers(0, 0xFFFFFFFF)


@pytest.mark.parametrize(
    "value,num_slices,expected",
    [
        (0, 2, 1),
        (0x7FFF, 2, 1),           # zero-extended into slice 1
        (0xFFFF_FFFF, 2, 1),      # -1: sign extension of slice 0
        (0xFFFF_8000, 2, 1),      # sign-extended negative halfword
        (0x0001_0000, 2, 2),
        (0x8000, 2, 1),           # high slice all zeros: still narrow
        (0x12, 4, 1),
        (0x1234, 4, 2),
        (0x0012_3456, 4, 3),
        (0x1234_5678, 4, 4),
        (0xFFFF_FF80, 4, 1),      # sign-extended byte
        (5, 1, 1),
    ],
)
def test_significant_slices_examples(value, num_slices, expected):
    assert significant_slices(value, num_slices) == expected


def test_significant_slices_validates():
    with pytest.raises(ValueError):
        significant_slices(0, 3)


@given(U32, st.sampled_from([2, 4]))
def test_significant_slices_is_sound(value, num_slices):
    """Reconstructing from the significant slices by sign/zero
    extension recovers the exact value."""
    k = significant_slices(value, num_slices)
    width = 32 // num_slices
    bits = k * width
    low = value & ((1 << bits) - 1)
    zero_ext = low
    sign_ext = (low | (0xFFFFFFFF << bits)) & 0xFFFFFFFF if (low >> (bits - 1)) & 1 else low
    assert value in (zero_ext, sign_ext)


@given(U32, st.sampled_from([2, 4]))
def test_significant_slices_is_minimal(value, num_slices):
    """No smaller slice count reconstructs the value."""
    k = significant_slices(value, num_slices)
    width = 32 // num_slices
    for smaller in range(1, k):
        bits = smaller * width
        low = value & ((1 << bits) - 1)
        sign_ext = (low | (0xFFFFFFFF << bits)) & 0xFFFFFFFF if (low >> (bits - 1)) & 1 else low
        assert not (value == low or value == sign_ext)


def test_characterize_widths(small_traces):
    result = characterize_widths(small_traces["bzip"], num_slices=4)
    assert result.results > 0
    assert sum(result.histogram.values()) == result.results
    # Fractions are cumulative in max_slices.
    fracs = [result.narrow_fraction(k) for k in range(1, 5)]
    assert all(b >= a for a, b in zip(fracs, fracs[1:]))
    assert fracs[-1] == pytest.approx(1.0)
    # Real integer code has a substantial narrow fraction (the [3]/[6]
    # observation the paper builds on).
    assert result.narrow_fraction(2) > 0.25


def test_by_class_partition(small_traces):
    result = characterize_widths(small_traces["li"], num_slices=2)
    assert sum(sum(c.values()) for c in result.by_class.values()) == result.results
    assert OpClass.ARITH in result.by_class


def test_warmup_excludes(small_traces):
    full = characterize_widths(small_traces["li"], num_slices=2)
    warm = characterize_widths(small_traces["li"], num_slices=2, warmup=2000)
    assert warm.results < full.results


def test_summary_renders(small_traces):
    result = characterize_widths(small_traces["bzip"], num_slices=2)
    text = result.summary()
    assert "narrow" in text and "ARITH" in text


def test_empty_trace():
    result = characterize_widths([])
    assert result.results == 0
    assert result.narrow_fraction() == 0.0
    assert result.class_narrow_fraction(OpClass.LOGIC) == 0.0
