"""Sweep journal: crash-safe persistence, keying, bit-identical replay."""

from __future__ import annotations

import json

import pytest

from repro.core.config import baseline_config, bitslice_config
from repro.experiments.journal import (
    DONE,
    PENDING,
    RUNNING,
    CellRecord,
    SweepJournal,
    cell_key,
    config_digest,
    stats_from_payload,
    stats_to_payload,
)
from repro.harness.errors import JournalCorruption
from repro.timing.stats import METRIC_CATALOG, SimStats


def _stats(name="ideal", cycles=1234):
    stats = SimStats(config_name=name)
    stats.cycles = cycles
    stats.instructions = 1000
    stats.extra = {"cpi_frac": 0.123456789012345, "squashes": 7}
    return stats


def _cells(n=3):
    config = baseline_config()
    return [
        CellRecord(
            benchmark=f"bench{i}",
            config=config.name,
            key=cell_key(f"bench{i}", config, 1000, 200, 1, 0, "ref", "img"),
        )
        for i in range(n)
    ]


# -------------------------------------------------------------- payloads

def test_stats_payload_round_trip_is_bit_identical():
    stats = _stats()
    back = stats_from_payload(json.loads(json.dumps(stats_to_payload(stats))))
    assert back.to_dict() == stats.to_dict()
    assert back.extra == stats.extra  # float extras exact through JSON
    for name in METRIC_CATALOG:
        assert getattr(back, name) == getattr(stats, name)


def test_merge_of_replayed_stats_matches_merge_of_originals():
    a, b = _stats(cycles=100), _stats(cycles=250)
    replay_a = stats_from_payload(stats_to_payload(a))
    replay_b = stats_from_payload(stats_to_payload(b))
    assert SimStats.merge_all([replay_a, replay_b]).to_dict() == \
        SimStats.merge_all([a, b]).to_dict()


# --------------------------------------------------------------- identity

def test_cell_key_depends_on_config_contents_not_just_name():
    a = bitslice_config(2)
    b = bitslice_config(4)
    assert config_digest(a) != config_digest(b)
    args = ("li", 1000, 200, None, None, "ref", "img")
    key = lambda cfg: cell_key(args[0], cfg, *args[1:])
    assert key(a) != key(b)


def test_cell_key_depends_on_budgets_and_image():
    config = baseline_config()
    base = cell_key("li", config, 1000, 200, None, None, "ref", "img")
    assert base != cell_key("li", config, 2000, 200, None, None, "ref", "img")
    assert base != cell_key("li", config, 1000, 400, None, None, "ref", "img")
    assert base != cell_key("li", config, 1000, 200, None, None, "ref", "other-img")
    assert base == cell_key("li", config, 1000, 200, None, None, "ref", "img")


# ---------------------------------------------------------------- journal

def test_create_load_round_trip(tmp_path):
    path = tmp_path / "sweep.journal.json"
    journal = SweepJournal.create(path, spec={"max_steps": 1000}, cells=_cells())
    journal.mark_running(journal.cells[0].key)
    journal.mark_done(journal.cells[0].key, _stats())
    loaded = SweepJournal.load(path)
    assert loaded.spec == {"max_steps": 1000}
    assert loaded.cells[0].state == DONE
    assert loaded.cells[0].attempts == 1
    assert loaded.cells[1].state == PENDING


def test_load_missing_raises(tmp_path):
    with pytest.raises(JournalCorruption, match="does not exist"):
        SweepJournal.load(tmp_path / "nope.json")


def test_load_torn_write_raises(tmp_path):
    path = tmp_path / "sweep.journal.json"
    SweepJournal.create(path, spec={}, cells=_cells())
    path.write_text(path.read_text()[: len(path.read_text()) // 2])
    with pytest.raises(JournalCorruption, match="not valid JSON"):
        SweepJournal.load(path)


def test_load_tampered_payload_fails_checksum(tmp_path):
    path = tmp_path / "sweep.journal.json"
    SweepJournal.create(path, spec={}, cells=_cells())
    payload = json.loads(path.read_text())
    payload["cells"][0]["state"] = "done"  # forge completion
    path.write_text(json.dumps(payload))
    with pytest.raises(JournalCorruption, match="checksum mismatch"):
        SweepJournal.load(path)


def test_load_unknown_format_raises(tmp_path):
    path = tmp_path / "sweep.journal.json"
    SweepJournal.create(path, spec={}, cells=_cells())
    payload = json.loads(path.read_text())
    payload["format"] = 99
    path.write_text(json.dumps(payload))
    with pytest.raises(JournalCorruption, match="unsupported journal format"):
        SweepJournal.load(path)


def test_running_cells_demote_to_pending_on_load(tmp_path):
    """A crash mid-cell must re-dispatch that cell on resume."""
    path = tmp_path / "sweep.journal.json"
    journal = SweepJournal.create(path, spec={}, cells=_cells())
    journal.mark_running(journal.cells[1].key)
    assert json.loads(path.read_text())["cells"][1]["state"] == RUNNING
    loaded = SweepJournal.load(path)
    assert loaded.cells[1].state == PENDING
    assert loaded.cells[1].attempts == 1  # the attempt still counts


def test_match_cells_rejects_a_different_grid(tmp_path):
    path = tmp_path / "sweep.journal.json"
    journal = SweepJournal.create(path, spec={}, cells=_cells(3))
    journal.match_cells(_cells(3))  # identical grid: fine
    with pytest.raises(JournalCorruption, match="does not match the requested sweep"):
        journal.match_cells(_cells(2))


# ----------------------------------------------------------- result store

def test_mark_done_stores_result_before_state_flip(tmp_path):
    path = tmp_path / "sweep.journal.json"
    journal = SweepJournal.create(path, spec={}, cells=_cells())
    key = journal.cells[0].key
    journal.mark_done(key, _stats(cycles=777))
    # On-disk journal says done AND the result it points to exists.
    assert json.loads(path.read_text())["cells"][0]["state"] == DONE
    assert journal.result_path(key).exists()
    replay = journal.load_result(key)
    assert replay.cycles == 777
    assert replay.to_dict() == _stats(cycles=777).to_dict()


def test_load_result_rejects_corruption(tmp_path):
    journal = SweepJournal.create(tmp_path / "j.json", spec={}, cells=_cells())
    key = journal.cells[0].key
    journal.mark_done(key, _stats())
    result_path = journal.result_path(key)

    payload = json.loads(result_path.read_text())
    payload["stats"]["cycles"] = 1  # forge the counter
    result_path.write_text(json.dumps(payload))
    assert journal.load_result(key) is None  # checksum mismatch

    result_path.write_text("{ torn")
    assert journal.load_result(key) is None  # invalid JSON

    result_path.unlink()
    assert journal.load_result(key) is None  # missing file


def test_load_result_rejects_wrong_key(tmp_path):
    journal = SweepJournal.create(tmp_path / "j.json", spec={}, cells=_cells(2))
    k0, k1 = journal.cells[0].key, journal.cells[1].key
    journal.mark_done(k0, _stats())
    # A result renamed onto another cell's slot must not be trusted.
    journal.result_path(k0).rename(journal.result_path(k1))
    assert journal.load_result(k1) is None


def test_transitions_persist_through_flush(tmp_path):
    path = tmp_path / "j.json"
    journal = SweepJournal.create(path, spec={}, cells=_cells())
    key = journal.cells[2].key
    journal.mark_running(key)
    journal.mark_retry(key, "ValueError: transient")
    loaded = SweepJournal.load(path)
    assert loaded.cell(key).state == PENDING
    assert loaded.cell(key).error == "ValueError: transient"
    journal.mark_failed(key, "ValueError: permanent", quarantined=True)
    assert SweepJournal.load(path).cell(key).state == "quarantined"
