"""LSQ model: occupancy, partial search semantics, flush."""

import pytest

from repro.lsq.queue import LoadStoreQueue, PartialSearchResult


def _store(queue, seq, addr=None, bits=0):
    entry = queue.insert(seq, is_store=True)
    if addr is not None:
        queue.set_address_bits(entry, addr, bits)
    return entry


def _load(queue, seq, addr, bits=32):
    entry = queue.insert(seq, is_store=False)
    queue.set_address_bits(entry, addr, bits)
    return entry


def test_capacity_enforced():
    q = LoadStoreQueue(capacity=2)
    q.insert(1, True)
    q.insert(2, False)
    assert q.full
    with pytest.raises(OverflowError):
        q.insert(3, False)


def test_no_older_stores():
    q = LoadStoreQueue()
    load = _load(q, 5, 0x1000)
    assert q.search(load) == (PartialSearchResult.NO_CONFLICT, None)


def test_unknown_store_address_blocks():
    q = LoadStoreQueue()
    _store(q, 1)  # address entirely unknown
    load = _load(q, 2, 0x1000)
    result, _ = q.search(load)
    assert result is PartialSearchResult.UNKNOWN


def test_partial_bits_rule_out_store():
    q = LoadStoreQueue()
    # Store's low 16 bits known and they differ from the load's.
    _store(q, 1, 0x0000_1100, bits=16)
    load = _load(q, 2, 0x0000_2200, bits=16)
    result, _ = q.search(load)
    assert result is PartialSearchResult.NO_CONFLICT


def test_partial_candidate_until_full():
    q = LoadStoreQueue()
    _store(q, 1, 0x0000_1100, bits=16)
    load = _load(q, 2, 0x0000_1100, bits=16)
    result, store = q.search(load)
    assert result is PartialSearchResult.PARTIAL_CANDIDATE
    assert store is not None


def test_full_match_forwards():
    q = LoadStoreQueue()
    s = _store(q, 1, 0x1100, bits=32)
    load = _load(q, 2, 0x1100, bits=32)
    result, store = q.search(load)
    assert result is PartialSearchResult.FORWARD
    assert store is s


def test_youngest_matching_store_forwards():
    q = LoadStoreQueue()
    _store(q, 1, 0x1100, bits=32)
    s2 = _store(q, 2, 0x1100, bits=32)
    load = _load(q, 3, 0x1100, bits=32)
    result, store = q.search(load)
    assert result is PartialSearchResult.FORWARD
    assert store is s2


def test_load_with_no_bits_is_unknown():
    q = LoadStoreQueue()
    _store(q, 1, 0x1100, bits=32)
    load = q.insert(2, is_store=False)
    assert q.search(load)[0] is PartialSearchResult.UNKNOWN


def test_younger_stores_ignored():
    q = LoadStoreQueue()
    load = _load(q, 1, 0x1100)
    _store(q, 2, 0x1100, bits=32)
    assert q.search(load)[0] is PartialSearchResult.NO_CONFLICT


def test_clear_after_flush():
    q = LoadStoreQueue()
    _store(q, 1, 0x1000, bits=32)
    _store(q, 5, 0x2000, bits=32)
    q.clear_after(2)
    assert len(q) == 1
    assert q.entries[0].seq == 1


def test_remove_on_commit():
    q = LoadStoreQueue()
    s = _store(q, 1, 0x1000, bits=32)
    q.remove(s)
    assert len(q) == 0


def test_full_address_recorded():
    q = LoadStoreQueue()
    entry = q.insert(1, True)
    q.set_address_bits(entry, 0xDEADBEEF, 32)
    assert entry.addr == 0xDEADBEEF
