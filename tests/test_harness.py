"""Robustness subsystem: taxonomy, watchdogs, fault injection, isolation."""

import pytest

from repro.emulator.machine import Machine
from repro.emulator.memory import AlignmentError
from repro.emulator.syscalls import UnknownSyscallError
from repro.harness.errors import (
    EmulatorError,
    GuestSelfCheckFailure,
    HarnessError,
    IllegalInstruction,
    MemoryFault,
    ResultCorruption,
    RunawayExecution,
    TraceCorruption,
)
from repro.harness.faults import CampaignSuite, candidates, run_campaign
from repro.harness.selfcheck import verify_guest_output
from repro.harness.watchdog import Watchdog
from repro.isa.assembler import assemble
from repro.workloads import get_workload

# ------------------------------------------------------------------ taxonomy


def test_emulator_errors_are_harness_errors():
    for cls in (IllegalInstruction, MemoryFault, RunawayExecution):
        assert issubclass(cls, EmulatorError)
    assert issubclass(EmulatorError, HarnessError)
    assert issubclass(HarnessError, RuntimeError)


def test_memory_and_syscall_errors_join_the_taxonomy():
    assert issubclass(AlignmentError, MemoryFault)
    assert issubclass(UnknownSyscallError, EmulatorError)


def test_corruption_errors_are_also_value_errors():
    """Pre-taxonomy callers caught ValueError; that must keep working."""
    assert issubclass(TraceCorruption, ValueError)
    assert issubclass(ResultCorruption, ValueError)
    assert issubclass(TraceCorruption, HarnessError)


# ------------------------------------------------------------------ watchdog


def test_watchdog_requires_some_budget():
    with pytest.raises(ValueError):
        Watchdog()


def test_step_budget_trips():
    wd = Watchdog(max_steps=100)
    wd.poll(100)  # at the limit: fine
    with pytest.raises(RunawayExecution):
        wd.poll(101)


def test_wall_clock_budget_trips_with_fake_clock():
    t = [0.0]
    wd = Watchdog(max_seconds=1.0, check_every=1, clock=lambda: t[0]).start()
    wd.poll(1)
    t[0] = 2.0
    with pytest.raises(RunawayExecution) as excinfo:
        wd.poll(2)
    assert "wall-clock" in str(excinfo.value)


def test_wall_clock_sampled_only_every_check_every_polls():
    calls = [0]

    def clock():
        calls[0] += 1
        return 0.0

    wd = Watchdog(max_seconds=10.0, check_every=100, clock=clock).start()
    for i in range(99):
        wd.poll(i)
    assert calls[0] == 1  # only the start() sample


def test_start_is_idempotent_restart_is_not():
    t = [5.0]
    wd = Watchdog(max_seconds=1.0, clock=lambda: t[0]).start()
    t[0] = 7.0
    wd.start()
    assert wd.elapsed() == pytest.approx(2.0)
    wd.restart()
    assert wd.elapsed() == pytest.approx(0.0)


def test_check_every_must_be_positive():
    for bad in (0, -1):
        with pytest.raises(ValueError, match="check_every"):
            Watchdog(max_steps=100, check_every=bad)


def test_zero_step_budget_trips_on_first_step():
    wd = Watchdog(max_steps=0)
    wd.poll(0)  # exactly at the (empty) budget: fine
    with pytest.raises(RunawayExecution):
        wd.poll(1)


def test_zero_wall_budget_trips_on_first_sample():
    t = [0.0]
    wd = Watchdog(max_seconds=0.0, check_every=1, clock=lambda: t[0]).start()
    t[0] = 1e-9
    with pytest.raises(RunawayExecution):
        wd.poll(1)


def test_elapsed_is_zero_before_start():
    assert Watchdog(max_seconds=1.0).elapsed() == 0.0


def test_argless_poll_forces_wall_sample_past_check_every():
    """``poll()`` (no step counter) must not be rate-limited."""
    t = [0.0]
    wd = Watchdog(max_seconds=1.0, check_every=10_000, clock=lambda: t[0]).start()
    t[0] = 2.0
    with pytest.raises(RunawayExecution):
        wd.poll()


def test_unstarted_watchdog_arms_itself_on_first_sample():
    t = [100.0]
    wd = Watchdog(max_seconds=1.0, check_every=1, clock=lambda: t[0])
    wd.poll(1)  # first sample arms the clock instead of tripping
    t[0] = 100.5
    wd.poll(2)  # within budget relative to the self-armed start
    t[0] = 102.0
    with pytest.raises(RunawayExecution):
        wd.poll(3)


def test_restart_resets_check_every_phase():
    """After restart the sampling countdown starts over — a stale poll
    counter must not make the next wall sample land early or late."""
    samples = [0]

    def clock():
        samples[0] += 1
        return 0.0

    wd = Watchdog(max_seconds=10.0, check_every=4, clock=clock).start()
    for i in range(3):
        wd.poll(i)  # 3 polls: one short of a sample
    wd.restart()
    before = samples[0]
    for i in range(3):
        wd.poll(i)  # a fresh 3 polls: still no sample
    assert samples[0] == before
    wd.poll(4)  # 4th poll after restart: samples the clock
    assert samples[0] == before + 1


def test_machine_run_raises_on_runaway_loop():
    machine = Machine(assemble("main: b main\n"))
    with pytest.raises(RunawayExecution):
        machine.run(100_000, watchdog=Watchdog(max_steps=500))


def test_machine_trace_raises_on_runaway_loop():
    machine = Machine(assemble("main: b main\n"))
    with pytest.raises(RunawayExecution):
        for _ in machine.trace(100_000, watchdog=Watchdog(max_steps=200)):
            pass


def test_machine_run_without_watchdog_keeps_soft_budget_semantics():
    machine = Machine(assemble("main: b main\n"))
    assert machine.run(100) == 100 and not machine.halted


def test_simulate_honors_watchdog(small_traces):
    from repro.core.config import baseline_config
    from repro.timing.simulator import simulate

    trace = small_traces["li"][:1000]
    with pytest.raises(RunawayExecution):
        simulate(baseline_config(), trace, watchdog=Watchdog(max_steps=100))


# ----------------------------------------------------------- fault injection


def test_campaign_200_faults_zero_silent(small_traces):
    trace = small_traces["li"][:2000]
    report = run_campaign(trace, n_faults=200, seed=7)
    assert report.total == 200
    assert report.silent_total == 0 and report.clean
    assert report.detected_total + report.masked_total == 200


def test_campaign_is_deterministic(small_traces):
    trace = small_traces["mcf"][:1500]
    a = run_campaign(trace, n_faults=120, seed=42)
    b = run_campaign(trace, n_faults=120, seed=42)
    assert a.rows() == b.rows()
    c = run_campaign(trace, n_faults=120, seed=43)
    assert a.rows() != c.rows()  # a different seed explores differently


def test_operand_faults_can_be_architecturally_masked():
    """AND with zero annihilates flipped bits in the other operand."""
    machine = Machine(
        assemble(
            """
            main: li $t0, 0
                  li $t1, 0x1234
                  and $t2, $t1, $t0
                  and $t3, $t1, $t0
                  and $t4, $t1, $t0
                  halt
            """
        )
    )
    trace = tuple(machine.trace(100))
    report = run_campaign(trace, n_faults=60, seed=3, kinds=("operand",))
    assert report.clean
    assert report.stats["operand"].masked > 0


def test_slice_and_trace_faults_always_detected(small_traces):
    trace = small_traces["bzip"][:800]
    report = run_campaign(trace, n_faults=100, seed=11, kinds=("slice", "trace"))
    assert report.clean
    assert report.masked_total == 0
    assert report.detected_total == 100


def test_campaign_rejects_unsliceable_trace():
    machine = Machine(assemble("main: nop\n nop\n nop\n halt\n"))
    trace = tuple(machine.trace(3))  # window covers only the nops
    with pytest.raises(ValueError):
        run_campaign(trace, n_faults=10)


def test_candidates_cover_imm_and_reg_forms():
    machine = Machine(
        assemble("main: li $t0, 3\n addiu $t1, $t0, 5\n addu $t2, $t1, $t0\n andi $t3, $t2, 7\n halt\n")
    )
    ops = [c.op for c in candidates(tuple(machine.trace(20)))]
    assert "add" in ops and "and" in ops


def test_campaign_suite_aggregates(small_traces):
    suite = CampaignSuite(
        {
            "li": run_campaign(small_traces["li"][:800], n_faults=40, seed=1),
            "mcf": run_campaign(small_traces["mcf"][:800], n_faults=40, seed=1),
        }
    )
    assert suite.clean
    assert suite.silent_total == 0
    rows = suite.rows()
    assert any(r[0] == "li" for r in rows) and any(r[0] == "mcf" for r in rows)
    assert "li" in suite.render() and "mcf" in suite.render()


# ---------------------------------------------------------------- selfcheck


def test_selfcheck_accepts_real_workload():
    machine = get_workload("li").run_checked(iters=1)
    assert machine.halted


def test_selfcheck_rejects_wrong_banner():
    machine = Machine(assemble("main: halt\n"))
    machine.run()
    with pytest.raises(GuestSelfCheckFailure):
        verify_guest_output(machine, "li")


def test_selfcheck_rejects_unfinished_guest():
    machine = Machine(assemble("main: b main\n"))
    machine.run(50)
    with pytest.raises(GuestSelfCheckFailure):
        verify_guest_output(machine, "li")


def test_selfcheck_checksum_comparison():
    machine = get_workload("li").run_checked(iters=1)
    printed = verify_guest_output(machine, "li")
    verify_guest_output(machine, "li", expected_checksum=printed)
    with pytest.raises(GuestSelfCheckFailure):
        verify_guest_output(machine, "li", expected_checksum=printed + 1)


# ----------------------------------------------------- resilient collection


def test_collect_trace_resilient_clean_path():
    import repro.experiments.runner as runner

    trace, record = runner.collect_trace_resilient("li", 1_000)
    assert trace and record is None


def test_collect_trace_resilient_degrades_then_drops(monkeypatch):
    import repro.experiments.runner as runner

    runner.clear_trace_cache()
    real = runner.get_workload
    calls = []

    def flaky(name):
        calls.append(name)
        if name == "go":
            raise RuntimeError("boom")
        return real(name)

    monkeypatch.setattr(runner, "get_workload", flaky)
    try:
        trace, record = runner.collect_trace_resilient("go", 8_000)
        assert trace is None
        assert record is not None
        assert record.benchmark == "go" and record.stage == "collect"
        assert record.error == "RuntimeError" and record.retried
        assert len(calls) == 2  # one retry at the reduced budget
        assert "go" in record.describe()
    finally:
        runner.clear_trace_cache()


def test_collect_trace_resilient_registers_budget_override(monkeypatch):
    import repro.experiments.runner as runner

    runner.clear_trace_cache()
    real = runner.get_workload
    state = {"failed": False}

    def once(name):
        # Fail only the first (full-budget) attempt.
        if not state["failed"]:
            state["failed"] = True
            raise RuntimeError("transient")
        return real(name)

    monkeypatch.setattr(runner, "get_workload", once)
    try:
        trace, record = runner.collect_trace_resilient("li", 8_000)
        assert trace is not None
        assert record is not None and record.degraded_steps == 2_000
        assert runner.budget_override("li") == 2_000
        # Later full-budget requests are capped at the degraded budget.
        capped = runner.collect_trace("li", 8_000)
        assert len(capped) <= 2_000
    finally:
        runner.clear_trace_cache()


def test_failure_report_rendering():
    from repro.experiments.runner import FailureRecord, render_failure_report

    failed = FailureRecord("go", "collect", "RuntimeError", "boom", retried=True)
    degraded = FailureRecord("li", "collect", "RunawayExecution", "slow", retried=True, degraded_steps=500)
    text = render_failure_report([failed], [degraded])
    assert "FAILED" in text and "go" in text
    assert "DEGRADED" in text and "500" in text
    assert "no failures" in render_failure_report([], [])
