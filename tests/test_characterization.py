"""Trace-driven characterization studies (Figures 2, 4, 6)."""

from repro.characterization import characterize_branches, characterize_lsq, characterize_tags
from repro.characterization.branch_char import average_detected_fraction
from repro.characterization.tag_char import figure4_configs
from repro.lsq.disambiguation import LSDCategory
from repro.memsys.cache import CacheConfig
from repro.memsys.partial_tag import PartialTagOutcome

# ------------------------------------------------------------------ Figure 2


def test_lsq_fractions_sum_to_one(small_traces):
    result = characterize_lsq(small_traces["bzip"], benchmark="bzip", bits=(2, 9, 31))
    for b in (2, 9, 31):
        total = sum(result.fraction(b, c) for c in LSDCategory)
        assert abs(total - 1.0) < 1e-9


def test_lsq_resolution_improves_with_bits(small_traces):
    result = characterize_lsq(small_traces["bzip"], benchmark="bzip")
    fractions = [result.resolved_fraction(b) for b in range(2, 32)]
    for prev, cur in zip(fractions, fractions[1:]):
        assert cur >= prev - 1e-9
    # Paper: after ~9 bits, loads are essentially always disambiguated.
    assert result.resolved_fraction(15) > 0.9


def test_lsq_full_compare_is_decisive(small_traces):
    result = characterize_lsq(small_traces["mcf"], benchmark="mcf", bits=(31,))
    # At full width, nothing can remain ambiguous.
    assert result.fraction(31, LSDCategory.MULTI_DIFF_ADDR) == 0.0
    assert result.fraction(31, LSDCategory.SINGLE_NONMATCH) == 0.0


def test_lsq_respects_queue_size(small_traces):
    wide = characterize_lsq(small_traces["bzip"], lsq_size=32, bits=(2,))
    narrow = characterize_lsq(small_traces["bzip"], lsq_size=1, bits=(2,))
    # A tiny queue sees fewer stores: "no stores" becomes more common.
    assert narrow.fraction(2, LSDCategory.NO_STORES) >= wide.fraction(2, LSDCategory.NO_STORES)


# ------------------------------------------------------------------ Figure 4


def test_tag_fractions_sum_to_one(small_traces):
    cfg = CacheConfig(size=8 * 1024, assoc=4, line_size=32)
    result = characterize_tags(small_traces["mcf"], cfg, bits=(1, 4, cfg.tag_bits))
    for b in (1, 4, cfg.tag_bits):
        total = sum(result.fraction(b, c) for c in PartialTagOutcome)
        assert abs(total - 1.0) < 1e-9


def test_tag_multi_shrinks_with_bits(small_traces):
    cfg = CacheConfig(size=8 * 1024, assoc=8, line_size=32)
    bits = tuple(range(1, 13))
    result = characterize_tags(small_traces["vortex"], cfg, bits=bits)
    multi = [result.fraction(b, PartialTagOutcome.MULTI) for b in bits]
    for prev, cur in zip(multi, multi[1:]):
        assert cur <= prev + 1e-9


def test_tag_full_width_exact(small_traces):
    cfg = CacheConfig(size=8 * 1024, assoc=2, line_size=32)
    result = characterize_tags(small_traces["li"], cfg, bits=(cfg.tag_bits,))
    full = cfg.tag_bits
    assert result.fraction(full, PartialTagOutcome.MULTI) == 0.0
    assert result.fraction(full, PartialTagOutcome.SINGLE_MISS) == 0.0
    assert abs(result.hit_rate + result.fraction(full, PartialTagOutcome.ZERO) - 1.0) < 1e-9


def test_figure4_configs_geometry():
    configs = figure4_configs()
    assert len(configs) == 6
    assert {c.assoc for c in configs} == {2, 4, 8}
    assert {c.size for c in configs} == {64 * 1024, 8 * 1024}


def test_tag_warmup_reduces_cold_misses(small_traces):
    cfg = CacheConfig(size=8 * 1024, assoc=4, line_size=32)
    cold = characterize_tags(small_traces["vortex"], cfg, bits=(cfg.tag_bits,))
    warm = characterize_tags(small_traces["vortex"], cfg, bits=(cfg.tag_bits,), warmup=2000)
    assert warm.accesses < cold.accesses
    assert warm.hit_rate >= cold.hit_rate - 0.05


# ------------------------------------------------------------------ Figure 6


def test_branch_curve_monotone(small_traces):
    result = characterize_branches(small_traces["li"], benchmark="li")
    fractions = [result.detected_fraction(b) for b in range(1, 33)]
    for prev, cur in zip(fractions, fractions[1:]):
        assert cur >= prev - 1e-9
    assert fractions[-1] == 1.0  # all mispredictions detectable with 32 bits


def test_branch_needed_bits_in_range(small_traces):
    result = characterize_branches(small_traces["mcf"], benchmark="mcf")
    assert all(1 <= b <= 32 for b in result.needed_bits)
    assert sum(result.needed_bits.values()) == result.mispredictions


def test_branch_eq_type_fractions(small_traces):
    result = characterize_branches(small_traces["li"], benchmark="li")
    assert 0 <= result.eq_type_branch_fraction <= 1
    assert result.eq_type_branches <= result.branches


def test_branch_warmup_shrinks_counts(small_traces):
    full = characterize_branches(small_traces["li"])
    warm = characterize_branches(small_traces["li"], warmup=2000)
    assert warm.branches < full.branches


def test_average_detected_fraction_empty():
    assert average_detected_fraction([], 8) == 0.0
