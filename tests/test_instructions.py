"""Dataflow queries on the instruction IR."""

from repro.isa.instructions import NOP, Instruction
from repro.isa.registers import HI, LO


def test_r3_dataflow():
    inst = Instruction("addu", rs=1, rt=2, rd=3)
    assert inst.src_regs() == (1, 2)
    assert inst.dst_regs() == (3,)


def test_write_to_zero_discarded():
    inst = Instruction("addu", rs=1, rt=2, rd=0)
    assert inst.dst_regs() == ()


def test_shift_const_reads_rt_only():
    inst = Instruction("sll", rt=5, rd=6, shamt=2)
    assert inst.src_regs() == (5,)
    assert inst.dst_regs() == (6,)


def test_variable_shift_reads_both():
    inst = Instruction("sllv", rs=1, rt=2, rd=3)
    assert set(inst.src_regs()) == {1, 2}


def test_load_store_dataflow():
    load = Instruction("lw", rs=4, rt=5, imm=8)
    assert load.src_regs() == (4,)
    assert load.dst_regs() == (5,)
    store = Instruction("sw", rs=4, rt=5, imm=8)
    assert set(store.src_regs()) == {4, 5}
    assert store.dst_regs() == ()


def test_multdiv_writes_hi_lo():
    inst = Instruction("mult", rs=1, rt=2)
    assert inst.dst_regs() == (HI, LO)
    assert Instruction("mfhi", rd=3).src_regs() == (HI,)
    assert Instruction("mflo", rd=3).src_regs() == (LO,)
    assert Instruction("mthi", rs=3).dst_regs() == (HI,)
    assert Instruction("mtlo", rs=3).dst_regs() == (LO,)


def test_jal_writes_ra():
    assert Instruction("jal", target=4).dst_regs() == (31,)


def test_jalr_default_link_register():
    assert Instruction("jalr", rs=2, rd=0).dst_regs() == (31,)
    assert Instruction("jalr", rs=2, rd=5).dst_regs() == (5,)


def test_branch_classification():
    for m in ("beq", "bne", "blez", "bgtz", "bltz", "bgez"):
        inst = Instruction(m, rs=1, rt=2)
        assert inst.is_branch and inst.is_control and not inst.is_jump
    for m in ("j", "jal"):
        inst = Instruction(m, target=0)
        assert inst.is_jump and inst.is_control and not inst.is_branch


def test_nop_detection():
    assert NOP.is_nop
    assert not Instruction("sll", rt=1, rd=1, shamt=0).is_nop


def test_lui_has_no_sources():
    inst = Instruction("lui", rt=3, imm=0x1234)
    assert inst.src_regs() == ()
    assert inst.dst_regs() == (3,)
