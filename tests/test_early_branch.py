"""Early branch misprediction detection logic (paper §5.3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.branch.early import (
    ALL_BITS,
    bits_to_detect_mispredict,
    can_resolve_early,
    detectable_with_bits,
)

U32 = st.integers(0, 0xFFFFFFFF)


def test_direction_matrix():
    """Only the prove-inequality direction of beq/bne resolves early."""
    assert can_resolve_early("beq", predicted_taken=True)
    assert not can_resolve_early("beq", predicted_taken=False)
    assert not can_resolve_early("bne", predicted_taken=True)
    assert can_resolve_early("bne", predicted_taken=False)
    for m in ("blez", "bgtz", "bltz", "bgez"):
        assert not can_resolve_early(m, True)
        assert not can_resolve_early(m, False)


def test_correct_prediction_needs_nothing():
    assert bits_to_detect_mispredict("beq", 1, 1, True, True) is None
    assert bits_to_detect_mispredict("bne", 1, 2, True, True) is None


def test_figure5_example():
    """The li example: andi leaves only bit 0; bne predicted not-taken
    mispredicts when the register is nonzero — detected at bit 0."""
    assert bits_to_detect_mispredict("bne", 0x1, 0x0, False, True) == 1


def test_first_differing_bit_position():
    # operands differ first at bit 8
    assert bits_to_detect_mispredict("beq", 0x100, 0x000, True, False) == 9


def test_equality_needs_all_bits():
    # beq predicted not-taken, actually taken: must prove full equality.
    assert bits_to_detect_mispredict("beq", 5, 5, False, True) == ALL_BITS
    # bne predicted taken, actually not-taken: same.
    assert bits_to_detect_mispredict("bne", 5, 5, True, False) == ALL_BITS


def test_sign_branches_need_all_bits():
    for m in ("blez", "bgtz", "bltz", "bgez"):
        assert bits_to_detect_mispredict(m, 0x1, 0, True, False) == ALL_BITS


def test_non_branch_rejected():
    with pytest.raises(ValueError):
        bits_to_detect_mispredict("addu", 0, 0, True, False)


def test_detectable_with_bits_cumulative():
    assert detectable_with_bits("beq", 0x100, 0, True, False, 9)
    assert not detectable_with_bits("beq", 0x100, 0, True, False, 8)
    assert not detectable_with_bits("beq", 5, 5, False, True, 31)
    assert detectable_with_bits("beq", 5, 5, False, True, 32)


@given(U32, U32)
def test_beq_mispredict_taken_detects_at_first_diff(a, b):
    """Property: for the early-resolvable direction, the reported bit
    count is exactly 1 + index of the lowest differing bit."""
    if a == b:
        return
    needed = bits_to_detect_mispredict("beq", a, b, True, False)
    diff = a ^ b
    low = (diff & -diff).bit_length()
    assert needed == low


@given(U32, U32, st.booleans())
def test_needed_bits_always_in_range(a, b, predicted):
    actual = a != b  # bne outcome
    if predicted == actual:
        assert bits_to_detect_mispredict("bne", a, b, predicted, actual) is None
    else:
        needed = bits_to_detect_mispredict("bne", a, b, predicted, actual)
        assert 1 <= needed <= ALL_BITS


@given(U32, U32)
def test_detection_soundness(a, b):
    """If detection is claimed with k bits, the low k bits really do
    differ (a misprediction proof must be evidence-based)."""
    if a == b:
        return
    needed = bits_to_detect_mispredict("bne", a, b, False, True)
    mask = (1 << needed) - 1
    assert (a & mask) != (b & mask)
    if needed > 1:
        narrower = (1 << (needed - 1)) - 1
        assert (a & narrower) == (b & narrower)
