"""Timing-simulator invariants across configurations."""

import pytest

from repro.core.config import (
    Features,
    baseline_config,
    bitslice_config,
    cumulative_configs,
    simple_pipeline_config,
)
from repro.timing.simulator import TimingSimulator, simulate


def ipc(config, trace):
    return simulate(config, trace).ipc


def test_empty_trace():
    stats = simulate(baseline_config(), [])
    assert stats.instructions == 0 and stats.cycles == 0 and stats.ipc == 0.0


def test_determinism(small_traces):
    trace = small_traces["bzip"]
    a = simulate(bitslice_config(2), trace)
    b = simulate(bitslice_config(2), trace)
    assert a.ipc == b.ipc and a.cycles == b.cycles


def test_max_instructions_truncates(small_traces):
    stats = simulate(baseline_config(), small_traces["bzip"], max_instructions=1000)
    assert stats.instructions == 1000


def test_warmup_excluded_from_counters(small_traces):
    trace = small_traces["bzip"]
    stats = simulate(baseline_config(), trace, max_instructions=2000, warmup=1000)
    assert stats.instructions == 2000


@pytest.mark.parametrize("name", ["bzip", "li", "mcf", "vortex"])
def test_deeper_pipelines_lose_ipc(small_traces, name):
    """Figure 11's starting point: naive EX pipelining costs IPC, and
    more stages cost more."""
    trace = small_traces[name]
    ideal = ipc(baseline_config(), trace)
    sp2 = ipc(simple_pipeline_config(2), trace)
    sp4 = ipc(simple_pipeline_config(4), trace)
    assert ideal > sp2 > sp4


@pytest.mark.parametrize("name", ["bzip", "li", "mcf", "vortex"])
@pytest.mark.parametrize("slices", [2, 4])
def test_bitslice_recovers_ipc(small_traces, name, slices):
    """The paper's headline: the bit-sliced machine lands between
    simple pipelining and the ideal machine."""
    trace = small_traces[name]
    ideal = ipc(baseline_config(), trace)
    simple = ipc(simple_pipeline_config(slices), trace)
    sliced = ipc(bitslice_config(slices), trace)
    assert sliced > simple
    assert sliced <= ideal * 1.02  # no free lunch beyond modelling noise


@pytest.mark.parametrize("slices", [2, 4])
def test_cumulative_ladder_mostly_monotone(small_traces, slices):
    """Each added technique should not hurt (small tolerance for
    replay-penalty noise)."""
    trace = small_traces["bzip"]
    ipcs = [simulate(cfg, trace).ipc for _, cfg in cumulative_configs(slices)]
    for prev, cur in zip(ipcs, ipcs[1:]):
        assert cur >= prev * 0.98


def test_slice2_closer_to_ideal_than_slice4(small_traces):
    trace = small_traces["li"]
    ideal = ipc(baseline_config(), trace)
    gap2 = ideal - ipc(bitslice_config(2), trace)
    gap4 = ideal - ipc(bitslice_config(4), trace)
    assert gap2 <= gap4 + 1e-9


def test_stats_counters_populated(small_traces):
    stats = simulate(bitslice_config(2), small_traces["bzip"])
    assert stats.loads > 0 and stats.stores > 0 and stats.branches > 0
    assert stats.instructions == len(small_traces["bzip"])
    assert 0 < stats.branch_accuracy <= 1
    assert stats.ptm_accesses == stats.loads - stats.store_forwards
    assert stats.cycles > stats.instructions / 4  # fetch width bound


def test_ptm_stats_only_with_feature(small_traces):
    no_ptm = Features(True, True, True, True, False)
    stats = simulate(bitslice_config(2, no_ptm), small_traces["bzip"])
    assert stats.ptm_accesses == 0


def test_early_branch_stat_only_with_feature(small_traces):
    no_eb = Features(True, True, False, False, False)
    stats = simulate(bitslice_config(4, no_eb), small_traces["li"])
    assert stats.early_resolved_mispredicts == 0
    with_eb = Features(True, True, True, False, False)
    stats2 = simulate(bitslice_config(4, with_eb), small_traces["li"])
    assert stats2.early_resolved_mispredicts >= 0  # may legitimately be 0 on tiny traces


def test_ipc_bounded_by_machine_width(small_traces):
    for name, trace in small_traces.items():
        stats = simulate(baseline_config(), trace)
        assert 0 < stats.ipc <= 4.0, name


def test_summary_renders(small_traces):
    stats = simulate(bitslice_config(2), small_traces["li"])
    text = stats.summary()
    assert "IPC" in text and "config" in text


def test_simulator_reusable_interface(small_traces):
    sim = TimingSimulator(baseline_config())
    stats = sim.run(iter(small_traces["li"]), max_instructions=500)
    assert stats.instructions == 500


def test_branch_mispredict_penalty_visible():
    """Misprediction penalty must show up in cycles: the same trace
    under a tiny (inaccurate) predictor runs slower than under the
    Table 2 predictor."""
    import dataclasses

    from repro.emulator.trace import trace_program
    from repro.isa.assembler import assemble

    chaotic = """
    main: li $s0, 3000
          li $s1, 12345
    loop: sll $t0, $s1, 13
          xor $s1, $s1, $t0
          srl $t0, $s1, 17
          xor $s1, $s1, $t0
          andi $t1, $s1, 1
          beq $t1, $0, even
          addiu $s0, $s0, -1
    even: addiu $s0, $s0, -1
          bgtz $s0, loop
          halt
    """
    trace = tuple(trace_program(assemble(chaotic), max_steps=9000))
    big = simulate(baseline_config(), trace)
    tiny_cfg = dataclasses.replace(baseline_config(), gshare_entries=16)
    tiny = simulate(tiny_cfg, trace)
    assert tiny.branch_accuracy < big.branch_accuracy
    assert tiny.ipc < big.ipc
