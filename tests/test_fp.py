"""Floating-point subsystem: COP1 semantics, dataflow, timing."""

import math
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import baseline_config, bitslice_config
from repro.emulator.machine import Machine, bits_from_f32, f32_from_bits
from repro.isa.assembler import assemble
from repro.isa.encoding import decode, encode
from repro.isa.instructions import Instruction
from repro.isa.registers import FCC, FP_BASE, fp_reg_name, fp_reg_num
from repro.timing.simulator import simulate


def run_fp(body: str) -> Machine:
    machine = Machine(assemble(f"main:\n{body}\nhalt\n"))
    machine.run(100_000)
    assert machine.halted
    return machine


def fval(machine: Machine, f: int) -> float:
    return f32_from_bits(machine.regs[FP_BASE + f])


# ----------------------------------------------------------------- helpers


def test_bit_float_roundtrip():
    for v in (0.0, 1.0, -2.5, 2.0**20, float("inf")):
        assert f32_from_bits(bits_from_f32(v)) == v


def test_bits_from_overflow_rounds_to_inf():
    assert f32_from_bits(bits_from_f32(1e200)) == math.inf
    assert f32_from_bits(bits_from_f32(-1e200)) == -math.inf


def test_fp_register_names():
    assert fp_reg_num("$f0") == 0 and fp_reg_num("f31") == 31
    assert fp_reg_name(5) == "$f5"
    with pytest.raises(ValueError):
        fp_reg_num("$f32")
    with pytest.raises(ValueError):
        fp_reg_num("$t0")


# ---------------------------------------------------------------- encoding


@pytest.mark.parametrize(
    "inst",
    [
        Instruction("add.s", rt=2, rd=1, shamt=0),
        Instruction("div.s", rt=7, rd=6, shamt=5),
        Instruction("sqrt.s", rd=3, shamt=4),
        Instruction("cvt.s.w", rd=1, shamt=2),
        Instruction("cvt.w.s", rd=1, shamt=2),
        Instruction("c.lt.s", rd=1, rt=2),
        Instruction("mfc1", rt=8, rd=4),
        Instruction("mtc1", rt=8, rd=4),
        Instruction("bc1t", imm=-3),
        Instruction("bc1f", imm=5),
        Instruction("lwc1", rt=2, rs=8, imm=16),
        Instruction("swc1", rt=2, rs=8, imm=-4),
    ],
)
def test_fp_encode_decode_roundtrip(inst):
    word = encode(inst)
    again = decode(word)
    assert again.mnemonic == inst.mnemonic
    assert encode(again) == word


# ---------------------------------------------------------------- dataflow


def test_fp3_dataflow():
    inst = Instruction("add.s", rt=2, rd=1, shamt=0)  # f0 = f1 + f2
    assert set(inst.src_regs()) == {FP_BASE + 1, FP_BASE + 2}
    assert inst.dst_regs() == (FP_BASE + 0,)


def test_fp_compare_writes_fcc():
    inst = Instruction("c.lt.s", rd=1, rt=2)
    assert inst.dst_regs() == (FCC,)
    branch = Instruction("bc1t", imm=1)
    assert branch.src_regs() == (FCC,)
    assert branch.is_branch


def test_fp_memory_dataflow():
    load = Instruction("lwc1", rt=4, rs=9, imm=0)
    assert load.src_regs() == (9,)
    assert load.dst_regs() == (FP_BASE + 4,)
    assert load.is_load
    store = Instruction("swc1", rt=4, rs=9, imm=0)
    assert set(store.src_regs()) == {9, FP_BASE + 4}
    assert store.is_store


def test_move_dataflow():
    assert Instruction("mtc1", rt=8, rd=3).dst_regs() == (FP_BASE + 3,)
    assert Instruction("mfc1", rt=8, rd=3).src_regs() == (FP_BASE + 3,)
    assert Instruction("mfc1", rt=8, rd=3).dst_regs() == (8,)


# --------------------------------------------------------------- semantics


def test_fp_arithmetic():
    m = run_fp(
        """
        li.s $f1, 3.5
        li.s $f2, 1.25
        add.s $f3, $f1, $f2
        sub.s $f4, $f1, $f2
        mul.s $f5, $f1, $f2
        div.s $f6, $f1, $f2
        """
    )
    assert fval(m, 3) == 4.75
    assert fval(m, 4) == 2.25
    assert fval(m, 5) == 4.375
    assert fval(m, 6) == pytest.approx(2.8, rel=1e-6)


def test_fp_div_by_zero_ieee():
    m = run_fp("li.s $f1, 1.0\n li.s $f2, 0.0\n div.s $f3, $f1, $f2")
    assert fval(m, 3) == math.inf
    m = run_fp("li.s $f1, -1.0\n li.s $f2, 0.0\n div.s $f3, $f1, $f2")
    assert fval(m, 3) == -math.inf
    m = run_fp("li.s $f1, 0.0\n li.s $f2, 0.0\n div.s $f3, $f1, $f2")
    assert math.isnan(fval(m, 3))


def test_fp_unary_ops():
    m = run_fp(
        """
        li.s $f1, -2.0
        abs.s $f2, $f1
        neg.s $f3, $f2
        mov.s $f4, $f1
        li.s $f5, 9.0
        sqrt.s $f6, $f5
        """
    )
    assert fval(m, 2) == 2.0
    assert fval(m, 3) == -2.0
    assert fval(m, 4) == -2.0
    assert fval(m, 6) == 3.0


def test_sqrt_negative_is_nan():
    m = run_fp("li.s $f1, -4.0\n sqrt.s $f2, $f1")
    assert math.isnan(fval(m, 2))


def test_conversions():
    m = run_fp(
        """
        li $t0, -7
        mtc1 $t0, $f1
        cvt.s.w $f2, $f1
        li.s $f3, 3.9
        cvt.w.s $f4, $f3
        mfc1 $t1, $f4
        """
    )
    assert fval(m, 2) == -7.0
    assert m.regs[9] == 3  # truncation toward zero


def test_cvt_w_s_clamps():
    m = run_fp("li.s $f1, 1e20\n cvt.w.s $f2, $f1\n mfc1 $t0, $f2")
    assert m.regs[8] == 0x7FFFFFFF


@pytest.mark.parametrize(
    "cmp_op,a,b,expected",
    [
        ("c.eq.s", 1.0, 1.0, 1), ("c.eq.s", 1.0, 2.0, 0),
        ("c.lt.s", 1.0, 2.0, 1), ("c.lt.s", 2.0, 1.0, 0),
        ("c.le.s", 2.0, 2.0, 1), ("c.le.s", 3.0, 2.0, 0),
    ],
)
def test_fp_compares(cmp_op, a, b, expected):
    m = run_fp(f"li.s $f1, {a}\n li.s $f2, {b}\n {cmp_op} $f1, $f2")
    assert m.regs[FCC] == expected


def test_fp_branches():
    m = run_fp(
        """
        li.s $f1, 1.0
        li.s $f2, 2.0
        c.lt.s $f1, $f2
        li $t0, 0
        bc1t yes
        b done
        yes: li $t0, 1
        done:
        c.eq.s $f1, $f2
        li $t1, 0
        bc1f no
        b out
        no: li $t1, 1
        out:
        """
    )
    assert m.regs[8] == 1 and m.regs[9] == 1


def test_fp_load_store():
    m = run_fp(
        """
        li.s $f1, 6.5
        la $t0, buf
        swc1 $f1, 0($t0)
        lwc1 $f2, 0($t0)
        lw $t1, 0($t0)
        .data
        buf: .word 0
        .text
        """
    )
    assert fval(m, 2) == 6.5
    assert m.regs[9] == struct.unpack("<I", struct.pack("<f", 6.5))[0]


def test_nan_compare_unordered():
    m = run_fp(
        """
        li.s $f1, 0.0
        li.s $f2, 0.0
        div.s $f3, $f1, $f2      # NaN
        c.eq.s $f3, $f3
        """
    )
    assert m.regs[FCC] == 0


@given(st.floats(width=32, allow_nan=False, allow_infinity=False),
       st.floats(width=32, allow_nan=False, allow_infinity=False))
def test_fp_add_matches_python_float32(a, b):
    bits_a = struct.unpack("<I", struct.pack("<f", a))[0]
    bits_b = struct.unpack("<I", struct.pack("<f", b))[0]
    m = run_fp(
        f"""
        li $t0, {bits_a}
        li $t1, {bits_b}
        mtc1 $t0, $f1
        mtc1 $t1, $f2
        add.s $f3, $f1, $f2
        """
    )
    expected = bits_from_f32(a + b)
    assert m.regs[FP_BASE + 3] == expected


# ------------------------------------------------------------------ timing


def _fp_trace():
    src = """
    main: li $s0, 400
          li.s $f1, 1.001
          li.s $f2, 1.0
    loop: mul.s $f2, $f2, $f1
          add.s $f3, $f3, $f2
          addiu $s0, $s0, -1
          bgtz $s0, loop
          halt
    """
    return tuple(Machine(assemble(src)).trace(10_000))


def test_fp_timing_runs_all_configs():
    trace = _fp_trace()
    ideal = simulate(baseline_config(), trace)
    sliced = simulate(bitslice_config(2), trace)
    assert ideal.instructions == sliced.instructions == len(trace)
    # The serial mul.s chain (4-cycle FP multiplier) dominates both.
    assert 0 < sliced.ipc <= ideal.ipc * 1.02


def test_fp_mult_unit_serializes():
    """Back-to-back dependent mul.s cannot beat the 4-cycle unit."""
    trace = _fp_trace()
    stats = simulate(baseline_config(), trace)
    # 400 iterations x 4-cycle serial multiplies bound the cycle count.
    assert stats.cycles >= 400 * 4
