"""Machine configurations and the Figure 11/12 ladder."""

import pytest

from repro.core.config import (
    CUMULATIVE_TECHNIQUES,
    TABLE2,
    Features,
    MachineConfig,
    baseline_config,
    bitslice_config,
    cumulative_configs,
    describe,
    simple_pipeline_config,
    with_name,
)


def test_baseline_shape():
    cfg = baseline_config()
    assert cfg.ex_stages == 1 and cfg.num_slices == 1
    assert not cfg.is_sliced


def test_simple_pipeline_shapes():
    assert simple_pipeline_config(2).ex_stages == 2
    assert simple_pipeline_config(4).ex_stages == 4
    assert simple_pipeline_config(4).l1_latency == 2  # paper §7.1
    with pytest.raises(ValueError):
        simple_pipeline_config(3)


def test_bitslice_shapes():
    cfg = bitslice_config(2)
    assert cfg.num_slices == 2 and cfg.ex_stages == 2
    assert cfg.is_sliced
    assert cfg.slice_bits == 16
    assert bitslice_config(4).slice_bits == 8
    assert bitslice_config(4).l1_latency == 2
    with pytest.raises(ValueError):
        bitslice_config(8)


def test_sliced_requires_matching_ex_stages():
    with pytest.raises(ValueError):
        MachineConfig(num_slices=2, ex_stages=3)


def test_features_all_none():
    assert not any(vars(Features.none()).values())
    # all() enables the paper's five evaluated techniques; the
    # discussed-but-unevaluated extensions stay off.
    full = Features.all()
    assert full.partial_operand_bypassing and full.partial_tag_matching
    assert full.out_of_order_slices and full.early_branch_resolution
    assert full.early_lsq_disambiguation
    assert not full.narrow_width_relaxation
    assert not full.speculative_forwarding
    assert all(vars(Features.extended()).values())


def test_cumulative_ladder_order():
    ladder = cumulative_configs(2)
    labels = [label for label, _ in ladder]
    assert labels == list(CUMULATIVE_TECHNIQUES)
    # First rung: simple pipelining, atomic operands.
    assert ladder[0][1].num_slices == 1
    # Later rungs enable features cumulatively.
    pob = ladder[1][1].features
    assert pob.partial_operand_bypassing and not pob.out_of_order_slices
    full = ladder[-1][1].features
    assert full == Features.all()


def test_ladder_monotone_features():
    previous = 0
    for _, cfg in cumulative_configs(4)[1:]:
        enabled = sum(vars(cfg.features).values())
        assert enabled == previous + 1 or previous == 0 and enabled == 1
        previous = enabled


def test_table2_mentions_key_parameters():
    text = " ".join(TABLE2.values())
    for token in ("64-entry RUU", "32-entry LSQ", "64K-entry gshare", "1MB", "100-cycle"):
        assert token in text


def test_describe_and_rename():
    cfg = with_name(bitslice_config(2), "custom")
    assert cfg.name == "custom"
    text = describe(cfg)
    assert "bit-sliced x2" in text and "16-bit" in text
    assert "ideal" in describe(baseline_config())


def test_table2_defaults_on_config():
    cfg = MachineConfig()
    assert cfg.fetch_width == cfg.issue_width == cfg.commit_width == 4
    assert cfg.ruu_size == 64 and cfg.lsq_size == 32
    assert cfg.gshare_entries == 64 * 1024
    assert cfg.btb_entries == 512 and cfg.btb_assoc == 4 and cfg.ras_depth == 8
    assert cfg.l2_latency == 6 and cfg.memory_latency == 100
    assert cfg.int_mult_lat == 3 and cfg.int_div_lat == 20
