"""gshare, BTB and RAS unit behaviour."""

import pytest

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.ras import ReturnAddressStack

# ---------------------------------------------------------------- gshare


def test_gshare_learns_always_taken():
    p = GsharePredictor(1024)
    pc = 0x400100
    for _ in range(8):
        p.update(pc, True)
    assert p.predict(pc) is True


def test_gshare_learns_not_taken():
    p = GsharePredictor(1024)
    pc = 0x400100
    for _ in range(8):
        p.update(pc, False)
    assert p.predict(pc) is False


def test_gshare_counters_saturate():
    p = GsharePredictor(64, history_bits=0)
    pc = 0x400000
    for _ in range(100):
        p.update(pc, True)
    # One not-taken outcome must not flip a saturated counter.
    p.update(pc, False)
    assert p.predict(pc) is True


def test_gshare_accuracy_stat():
    p = GsharePredictor(1024)
    for i in range(100):
        p.update(0x400000, True)
    assert p.predictions == 100
    assert p.accuracy > 0.9


def test_gshare_history_distinguishes_patterns():
    """With history, an alternating branch becomes predictable."""
    p = GsharePredictor(4096)
    pc = 0x400040
    outcome = True
    for _ in range(400):
        p.update(pc, outcome)
        outcome = not outcome
    correct = 0
    for _ in range(100):
        if p.predict(pc) == outcome:
            correct += 1
        p.update(pc, outcome)
        outcome = not outcome
    assert correct > 90


def test_gshare_requires_power_of_two():
    with pytest.raises(ValueError):
        GsharePredictor(1000)


def test_gshare_reset_stats():
    p = GsharePredictor(64)
    p.update(0, True)
    p.reset_stats()
    assert p.predictions == 0 and p.mispredictions == 0


# ------------------------------------------------------------------- BTB


def test_btb_miss_then_hit():
    btb = BranchTargetBuffer(512, 4)
    assert btb.lookup(0x400000) is None
    btb.update(0x400000, 0x400100)
    assert btb.lookup(0x400000) == 0x400100


def test_btb_update_replaces_target():
    btb = BranchTargetBuffer(512, 4)
    btb.update(0x400000, 0x1)
    btb.update(0x400000, 0x2)
    assert btb.lookup(0x400000) == 0x2


def test_btb_lru_within_set():
    btb = BranchTargetBuffer(8, 2)  # 4 sets, 2 ways
    sets = btb.num_sets
    # Three PCs mapping to set 0.
    pcs = [0x400000 + i * 4 * sets for i in range(3)]
    btb.update(pcs[0], 0xA)
    btb.update(pcs[1], 0xB)
    btb.lookup(pcs[0])          # touch A
    btb.update(pcs[2], 0xC)     # evicts B
    assert btb.lookup(pcs[0]) == 0xA
    assert btb.lookup(pcs[1]) is None


def test_btb_geometry_validation():
    with pytest.raises(ValueError):
        BranchTargetBuffer(510, 4)
    with pytest.raises(ValueError):
        BranchTargetBuffer(12, 4)  # 3 sets: not a power of two


def test_btb_hit_rate():
    btb = BranchTargetBuffer(512, 4)
    btb.update(0x400000, 1)
    btb.lookup(0x400000)
    btb.lookup(0x400004)
    assert btb.hit_rate == 0.5


# ------------------------------------------------------------------- RAS


def test_ras_lifo():
    ras = ReturnAddressStack(8)
    ras.push(1)
    ras.push(2)
    assert ras.pop() == 2
    assert ras.pop() == 1
    assert ras.pop() is None


def test_ras_overflow_wraps():
    ras = ReturnAddressStack(2)
    ras.push(1)
    ras.push(2)
    ras.push(3)  # overwrites 1
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert ras.pop() is None


def test_ras_peek():
    ras = ReturnAddressStack(4)
    assert ras.peek() is None
    ras.push(7)
    assert ras.peek() == 7
    assert len(ras) == 1


def test_ras_depth_validation():
    with pytest.raises(ValueError):
        ReturnAddressStack(0)
