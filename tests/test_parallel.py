"""Parallel sweep layer: worker fan-out, state inheritance, merging."""

from __future__ import annotations

import pytest

from repro.core.config import baseline_config, simple_pipeline_config
from repro.experiments import parallel, runner, trace_cache
from repro.timing.simulator import simulate

N = 1_200
WARMUP = 200


@pytest.fixture(autouse=True)
def _fresh_runner():
    runner.clear_trace_cache()
    yield
    runner.clear_trace_cache()


def test_collect_parallel_matches_sequential():
    names = ["li", "mcf"]
    surviving, failures, degraded = parallel.collect_parallel(names, N, jobs=2)
    assert surviving == names and not failures and not degraded
    for name in names:
        preloaded = runner.collect_trace(name, N)
        runner._collect.cache_clear()
        runner._preloaded.clear()
        assert preloaded == runner.collect_trace(name, N)


def test_collect_parallel_preloads_parent_cache():
    parallel.collect_parallel(["li"], N, jobs=1)
    assert ("li", N, None, None, "ref") in runner._preloaded


def test_workers_inherit_wall_timeout():
    """A timeout set in the parent must bind inside every worker."""
    runner.set_wall_timeout(1e-9)  # impossible budget: all attempts fail
    surviving, failures, degraded = parallel.collect_parallel(["li"], N, jobs=1)
    assert surviving == [] and not degraded
    (record,) = failures
    assert record.benchmark == "li" and record.stage == "collect"


def test_workers_inherit_dispatch_mode():
    """A dispatch override set in the parent must bind inside workers."""
    from repro.emulator.machine import set_dispatch_mode

    set_dispatch_mode("blocks")
    try:
        surviving, failures, degraded = parallel.collect_parallel(["li"], N, jobs=1)
        assert surviving == ["li"] and not failures and not degraded
        preloaded = runner._preloaded[("li", N, None, None, "ref")]
    finally:
        set_dispatch_mode(None)
    runner.clear_trace_cache()
    # Traces are mode-invariant by construction, so the worker's
    # blocks-mode collection must equal a sequential fast-path one.
    assert preloaded == runner.collect_trace("li", N)


def test_workers_inherit_cache_config(tmp_path):
    trace_cache.configure(tmp_path, enabled=True)
    parallel.collect_parallel(["li"], N, jobs=1)
    assert len(list(tmp_path.iterdir())) == 1  # worker wrote the entry
    stats = trace_cache.stats()
    assert stats["misses"] == 1 and stats["hits"] == 0
    # Second pass: the worker reads the entry the first worker wrote.
    runner.clear_trace_cache()
    trace_cache.configure(tmp_path, enabled=True)
    parallel.collect_parallel(["li"], N, jobs=1)
    stats = trace_cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 0


def test_run_cells_grid_matches_sequential_simulation():
    configs = [baseline_config(), simple_pipeline_config(2)]
    grid, failures = parallel.run_cells(
        ["li", "mcf"], configs, N, WARMUP, jobs=2, keep_going=True
    )
    assert not failures
    for name in ("li", "mcf"):
        trace = runner.collect_trace(name, N + WARMUP)
        for config in configs:
            expected = simulate(config, trace, warmup=WARMUP)
            got = grid[name][config.name]
            assert got.to_dict() == expected.to_dict()


def test_merge_by_config_is_order_independent():
    configs = [baseline_config()]
    grid, _ = parallel.run_cells(["li", "mcf"], configs, N, WARMUP, jobs=2)
    totals = parallel.merge_by_config(grid)
    flipped = {name: grid[name] for name in reversed(list(grid))}
    assert (
        parallel.merge_by_config(flipped)[configs[0].name].to_dict()
        == totals[configs[0].name].to_dict()
    )
