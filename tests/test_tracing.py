"""Distributed sweep tracing: span round-trips, crash survival, rendering.

The contract under test (``docs/observability.md`` "Sweep tracing"):
spans emitted in the orchestrator and in worker processes merge into
one schema-valid timeline; a traced sweep — even one whose workers are
SIGKILLed and whose journal is resumed — ends with exactly one
completed ``cell`` span per done cell; and the Perfetto export keys
lanes by (process, lane) so processes can never collide.
"""

from __future__ import annotations

import json

import pytest

from repro.core.config import baseline_config, bitslice_config
from repro.experiments.journal import DONE, SweepJournal
from repro.experiments.progress import SweepProgress
from repro.experiments.supervisor import (
    SupervisorPolicy,
    detect_stragglers,
    run_sweep,
)
from repro.harness.faults import ProcessFaultPlan
from repro.obs import tracing
from repro.obs.events import CycleEvent, merge_chrome_traces, to_chrome_trace
from repro.obs.tracing import Span, Tracer

N = 1_200
WARMUP = 200


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    tracing.end_tracing()


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        self.t += 1.0
        return self.t


# ------------------------------------------------------------ span basics

def test_span_round_trips_through_dict():
    tracer = Tracer(process="orchestrator", clock=FakeClock())
    with tracer.span("sweep.run", category="sweep", jobs=2):
        tracer.mark("cell.quarantine", category="cell", cell="li/ideal")
    for span in tracer:
        clone = Span.from_dict(json.loads(json.dumps(span.to_dict())))
        assert clone == span


def test_validate_span_rejects_malformed_objects():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("ok"):
        pass
    good = tracer.spans()[0].to_dict()
    tracing.validate_span(good)
    for breakage in (
        {"status": "bogus"},
        {"start": "yesterday"},
        {"end": good["start"] - 5.0},
        {"name": None},
        {"lane": "fast"},
        {"args": [1, 2]},
    ):
        with pytest.raises(ValueError):
            tracing.validate_span({**good, **breakage})
    with pytest.raises(ValueError):
        tracing.validate_span({k: v for k, v in good.items() if k != "trace_id"})
    # A finished span must carry its end timestamp.
    with pytest.raises(ValueError):
        tracing.validate_span({**good, "end": None})


def test_mark_spans_are_zero_duration():
    tracer = Tracer(clock=FakeClock())
    mark = tracer.mark("worker.lost", category="worker", reason="sigkill")
    assert mark.status == tracing.MARK
    assert mark.duration == 0.0
    tracing.validate_span(mark.to_dict())


def test_span_context_manager_records_errors():
    tracer = Tracer(clock=FakeClock())
    with pytest.raises(RuntimeError):
        with tracer.span("collect.li", category="collect"):
            raise RuntimeError("disk on fire")
    (span,) = tracer.spans()
    assert span.status == tracing.ERROR
    assert span.args["error"] == "RuntimeError"


def test_ring_buffer_caps_retained_spans_and_counts_drops():
    tracer = Tracer(capacity=4, clock=FakeClock())
    for i in range(10):
        tracer.mark(f"m{i}")
    assert len(tracer) == 4
    assert tracer.emitted == 10
    assert tracer.dropped == 6
    assert [s.name for s in tracer] == ["m6", "m7", "m8", "m9"]


# --------------------------------------------- cross-process span transport

def test_worker_drain_ingest_round_trip_preserves_lineage():
    """Emit in a 'worker', ship via dict payload, merge, export, validate —
    the full transport path without spawning a process."""
    orch = Tracer(process="orchestrator", clock=FakeClock())
    root = orch.begin("sweep.run", category="sweep")
    orch.default_parent = root.span_id

    worker = Tracer(process="worker-123", clock=FakeClock(2000.0))
    worker.adopt((*orch.context(root),))
    assert worker.trace_id == orch.trace_id
    with worker.span("worker.execute", category="worker.execute") as task:
        worker.default_parent = task.span_id
        with worker.span("simulate.li/ideal", category="simulate"):
            pass
    worker.profiler.add("simulate.li", 0.5, items=1000)
    payload = json.loads(json.dumps(worker.drain()))  # the pipe, in spirit
    assert len(worker) == 0

    assert orch.ingest(payload) == 2
    orch.finish(root)
    merged = orch.spans()
    assert {s.process for s in merged} == {"orchestrator", "worker-123"}
    assert len({s.trace_id for s in merged}) == 1
    by_name = {s.name: s for s in merged}
    assert by_name["worker.execute"].parent_id == root.span_id
    assert by_name["simulate.li/ideal"].parent_id == by_name["worker.execute"].span_id
    assert orch.profiler.to_dict()["simulate.li"]["items"] == 1000


def test_ingest_drops_malformed_spans_without_raising():
    orch = Tracer(clock=FakeClock())
    good = Tracer(process="worker-1", clock=FakeClock()).mark("fine").to_dict()
    payload = {"spans": [good, {"garbage": True}, "not even a dict"],
               "phases": "also garbage"}
    assert orch.ingest(payload) == 1
    assert orch.ingest(None) == 0
    assert len(orch) == 1


# --------------------------------------------------------- JSONL + Perfetto

def test_jsonl_file_round_trip_and_validation(tmp_path):
    tracer = Tracer(clock=FakeClock())
    with tracer.span("sweep.run", category="sweep"):
        tracer.mark("journal.transition", category="journal", state="done")
    path = tmp_path / "spans.jsonl"
    n = tracing.write_spans_jsonl(tracer.spans(), path)
    assert n == 2
    assert tracing.validate_spans_file(path) == 2
    assert [s.name for s in tracing.load_spans_jsonl(path)] == [
        s.name for s in sorted(tracer.spans(), key=lambda s: (s.start, s.span_id))
    ]
    path.write_text(path.read_text() + '{"name": "broken"}\n')
    with pytest.raises(ValueError, match=r":3:"):
        tracing.validate_spans_file(path)


def test_chrome_trace_keys_lanes_by_process_and_lane():
    """Two processes using the same lane index must land on different
    pid rows — the collision the cycle-event exporter used to have."""
    orch = Tracer(process="orchestrator", clock=FakeClock())
    a = orch.begin("cell.attempt", category="cell.attempt", lane=0)
    orch.finish(a)
    worker = Tracer(process="worker-9", trace_id=orch.trace_id,
                    clock=FakeClock(2000.0))
    orch.ingest({"spans": [worker.mark("cache.miss.li", lane=0).to_dict()]})

    doc = tracing.spans_to_chrome_trace(orch.spans())
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    names = {(e["name"], e["args"]["name"]) for e in meta}
    assert ("process_name", "orchestrator") in names
    assert ("process_name", "worker-9") in names
    slices = [e for e in doc["traceEvents"] if e["ph"] in ("X", "i")]
    assert len({e["pid"] for e in slices}) == 2  # same tid, different pid
    # Orchestrator is always pid 1.
    procs = {e["args"]["name"]: e["pid"] for e in meta if e["name"] == "process_name"}
    assert procs["orchestrator"] == 1


def test_chrome_trace_flags_unfinished_spans_and_instants():
    tracer = Tracer(clock=FakeClock())
    tracer._append(tracer.begin("cell.attempt", category="cell.attempt"))  # crashed
    tracer.mark("worker.lost", category="worker")
    doc = tracing.spans_to_chrome_trace(tracer.spans())
    events = {e["name"]: e for e in doc["traceEvents"] if e["ph"] != "M"}
    assert events["cell.attempt"]["ph"] == "X"
    assert events["cell.attempt"]["args"]["unfinished"] is True
    assert events["worker.lost"]["ph"] == "i"
    assert doc["otherData"]["trace_id"] == tracer.trace_id


def test_cycle_event_streams_merge_onto_distinct_pids():
    """Satellite check: ``merge_chrome_traces`` gives each stream its own
    pid while the single-stream form stays metadata-free (old format)."""
    def stream():
        return [
            CycleEvent(kind="fetch", cycle=1, seq=1, pc=64, args={"mnemonic": "add"}),
            CycleEvent(kind="commit", cycle=3, seq=1, pc=64,
                       args={"complete": True, "mispredicted": False}),
        ]

    single = to_chrome_trace(stream())
    assert all(e["ph"] != "M" for e in single["traceEvents"])
    merged = merge_chrome_traces({"worker-1": stream(), "worker-2": stream()})
    meta = {e["args"]["name"]: e["pid"] for e in merged["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"}
    assert set(meta) == {"worker-1", "worker-2"}
    slice_pids = {e["pid"] for e in merged["traceEvents"] if e["ph"] == "X"}
    assert slice_pids == set(meta.values())
    assert len(slice_pids) == 2


def test_cpi_sample_counter_track_round_trips_through_merge(tmp_path):
    """Satellite check: ``cpi_sample`` events survive the multi-process
    merge as per-pid ``"C"`` counter events with their component series
    intact, and the written file is byte-deterministic (sorted keys)."""
    from repro.obs.events import CPI_SAMPLE, write_chrome_trace

    def stream(scale):
        return [
            CycleEvent(kind=CPI_SAMPLE, cycle=cycle, seq=0, pc=0,
                       args={"base": scale * cycle, "memory": scale})
            for cycle in (10, 20)
        ]

    merged = merge_chrome_traces({"worker-1": stream(1), "worker-2": stream(3)})
    meta = {e["args"]["name"]: e["pid"] for e in merged["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"}
    counters = [e for e in merged["traceEvents"] if e["ph"] == "C"]
    assert len(counters) == 4
    assert all(e["name"] == "cpi_stack" for e in counters)
    by_pid = {}
    for e in counters:
        by_pid.setdefault(e["pid"], []).append(e)
    assert set(by_pid) == set(meta.values())  # one track per process row
    w2 = by_pid[meta["worker-2"]]
    assert [e["args"] for e in w2] == [
        {"base": 30, "memory": 3}, {"base": 60, "memory": 3}
    ]

    path = tmp_path / "merged.json"
    write_chrome_trace(stream(1) + stream(3), path)
    first = path.read_text()
    write_chrome_trace(stream(1) + stream(3), path)
    assert path.read_text() == first
    reloaded = json.loads(first)
    assert [e for e in reloaded["traceEvents"] if e["ph"] == "C"]
    assert '"args": {"base"' in first  # keys serialized sorted


# ------------------------------------------------------- traced sweeps e2e

def _completed_cell_spans(tracer):
    return tracer.spans(category="cell", status=tracing.OK)


def test_traced_chaotic_sweep_yields_one_span_per_cell(tmp_path):
    """Workers are SIGKILLed and results corrupted under a seeded plan;
    the merged trace must still show every done cell exactly once, plus
    evidence of the chaos (respawns, retries) — and pass export checks."""
    tracer = tracing.start_tracing()
    names, configs = ["li"], [baseline_config(), bitslice_config(2)]
    grid, failures, _, report = run_sweep(
        names, configs, N, WARMUP, jobs=2,
        journal_path=tmp_path / "sweep.journal.json",
        policy=SupervisorPolicy(max_cell_retries=10, backoff=0.0),
        fault_plan=ProcessFaultPlan(seed=11, kill_rate=0.4, corrupt_rate=0.3),
    )
    assert not failures
    cells = _completed_cell_spans(tracer)
    assert len(cells) == report.cells_total == 2
    assert {s.name for s in cells} == {"li/ideal", "li/bitslice-2"}
    assert len({s.trace_id for s in tracer.spans()}) == 1
    # Worker-side spans made it home over the checksummed transport.
    assert {s.process for s in tracer.spans()} != {"orchestrator"}
    assert tracer.spans(category="worker.execute")
    if report.respawns:
        assert tracer.spans(category="cell.attempt", status=tracing.ERROR)

    path = tmp_path / "spans.jsonl"
    assert tracing.write_spans_jsonl(tracer.spans(), path) == len(tracer)
    tracing.validate_spans_file(path)
    perfetto = tmp_path / "spans.perfetto.json"
    assert tracing.write_span_chrome_trace(tracer.spans(), perfetto) > 0
    doc = json.loads(perfetto.read_text())
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert len(pids) == len({s.process for s in tracer.spans()})


def test_resumed_sweep_records_every_done_cell_exactly_once(tmp_path):
    """Kill-and-resume: cells completed by the dead orchestrator appear
    in the resumed run's trace as ``resume: true`` records, so the final
    timeline still covers the full grid with one completed span each."""
    names, configs = ["li"], [baseline_config(), bitslice_config(2)]
    journal_path = tmp_path / "sweep.journal.json"
    args = dict(jobs=1, journal_path=journal_path, fault_plan=ProcessFaultPlan())
    run_sweep(names, configs, N, WARMUP, **args)

    # Doctor the journal the way a SIGKILLed orchestrator leaves it:
    # one cell knocked back to retry, its result gone.
    journal = SweepJournal.load(journal_path)
    victim = journal.cells[1]
    journal.mark_retry(victim.key, "simulated crash")
    journal.result_path(victim.key).unlink()

    tracer = tracing.start_tracing()
    _, failures, _, report = run_sweep(
        names, configs, N, WARMUP, resume=True, **args)
    assert not failures
    assert report.resume_hits == 1 and report.cells_executed == 1

    cells = _completed_cell_spans(tracer)
    assert len(cells) == 2
    assert {s.name for s in cells} == {"li/ideal", "li/bitslice-2"}
    resumed = [s for s in cells if s.args.get("resume")]
    assert len(resumed) == 1
    assert resumed[0].name != f"{victim.benchmark}/{victim.config}"
    assert all(c.state == DONE for c in SweepJournal.load(journal_path).cells)
    # Journal state transitions are annotated on the timeline.
    transitions = [s for s in tracer.spans(category="journal")
                   if s.name == "journal.transition"]
    assert any(s.args.get("state") == "done" for s in transitions)


def test_sweep_untraced_by_default_emits_nothing(tmp_path):
    assert tracing.active_tracer() is None
    run_sweep(["li"], [baseline_config()], N, WARMUP, jobs=1,
              journal_path=tmp_path / "j.json", fault_plan=ProcessFaultPlan())
    assert tracing.active_tracer() is None


# ------------------------------------------------- stragglers and progress

def test_detect_stragglers_flags_outliers_worst_first():
    wall = {"a": 1.0, "b": 1.2, "c": 0.9, "d": 9.0, "e": 12.0}
    labels = {k: f"bench/{k}" for k in wall}
    out = detect_stragglers(wall, labels, factor=3.0)
    assert [r["cell"] for r in out] == ["bench/e", "bench/d"]
    assert out[0]["factor"] > out[1]["factor"] >= 3.0
    assert detect_stragglers({"a": 1.0, "b": 50.0}, labels, 3.0) == []  # <3 cells
    assert detect_stragglers(wall, labels, 0.0) == []  # disabled


def test_supervisor_report_carries_straggler_and_storm_fields():
    from repro.experiments.supervisor import SupervisorReport

    report = SupervisorReport(cells_total=4)
    report.stragglers = [{"cell": "li/ideal", "wall_seconds": 9.0,
                          "median_seconds": 1.0, "factor": 9.0}]
    report.retry_storms = [{"cell": "li/ideal", "attempts": 4}]
    payload = report.to_dict()
    assert payload["stragglers"][0]["factor"] == 9.0
    assert payload["retry_storms"][0]["attempts"] == 4
    text = report.render()
    assert "1 straggler(s)" in text and "1 retry-storm cell(s)" in text


def test_sweep_progress_tracks_rates_and_eta(capsys):
    clock = FakeClock(0.0)
    prog = SweepProgress(interval=0.0, clock=clock, force_tty=False)
    prog.set_total(4)
    prog.resume_hit(1)
    prog.dispatch("k1", "li/ideal")
    prog.dispatch("k2", "li/bitslice-2")
    prog.retire("k1")
    line = prog.status_line()
    assert "2/4 done" in line and "1 resumed" in line
    assert "li/bitslice-2" in line
    assert prog.pending == 1  # 4 total - 2 done - 1 in flight
    assert prog.cells_per_second() > 0
    assert prog.eta_seconds() != float("inf")
    prog.retire("k2", failed=True)
    assert "1 failed" in prog.status_line()
    prog.close()
    assert "[sweep]" in capsys.readouterr().err
