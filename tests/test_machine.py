"""Architectural semantics of the emulator, one behaviour per test."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.emulator.machine import EmulatorError, Machine, to_signed
from repro.isa.assembler import STACK_TOP, assemble
from repro.isa.registers import reg_num

U32 = st.integers(0, 0xFFFFFFFF)


def run_fragment(body: str, max_steps: int = 100_000) -> Machine:
    machine = Machine(assemble(f"main:\n{body}\nhalt\n"))
    machine.run(max_steps)
    assert machine.halted
    return machine


def reg(machine: Machine, name: str) -> int:
    return machine.regs[reg_num(name)]


def test_initial_state():
    machine = Machine(assemble("main: nop\n halt\n"))
    assert machine.regs[reg_num("$sp")] == STACK_TOP
    assert machine.pc == machine.program.entry
    assert not machine.halted


def test_zero_register_immutable():
    m = run_fragment("addiu $0, $0, 5\n addiu $t0, $0, 1")
    assert m.regs[0] == 0
    assert reg(m, "$t0") == 1


def test_addu_wraps():
    m = run_fragment("li $t0, 0xffffffff\n addiu $t0, $t0, 1")
    assert reg(m, "$t0") == 0


def test_subu_wraps():
    m = run_fragment("li $t0, 0\n li $t1, 1\n subu $t2, $t0, $t1")
    assert reg(m, "$t2") == 0xFFFFFFFF


def test_logic_ops():
    m = run_fragment(
        """
        li $t0, 0xf0f0f0f0
        li $t1, 0x0ff00ff0
        and $t2, $t0, $t1
        or  $t3, $t0, $t1
        xor $t4, $t0, $t1
        nor $t5, $t0, $t1
        """
    )
    assert reg(m, "$t2") == 0x00F000F0
    assert reg(m, "$t3") == 0xFFF0FFF0
    assert reg(m, "$t4") == 0xFF00FF00
    assert reg(m, "$t5") == 0x000F000F


def test_shifts():
    m = run_fragment(
        """
        li $t0, 0x80000001
        sll $t1, $t0, 4
        srl $t2, $t0, 4
        sra $t3, $t0, 4
        li $t4, 8
        sllv $t5, $t0, $t4
        srlv $t6, $t0, $t4
        srav $t7, $t0, $t4
        """
    )
    assert reg(m, "$t1") == 0x00000010
    assert reg(m, "$t2") == 0x08000000
    assert reg(m, "$t3") == 0xF8000000
    assert reg(m, "$t5") == 0x00000100
    assert reg(m, "$t6") == 0x00800000
    assert reg(m, "$t7") == 0xFF800000


def test_variable_shift_uses_low_5_bits():
    m = run_fragment("li $t0, 1\n li $t1, 33\n sllv $t2, $t0, $t1")
    assert reg(m, "$t2") == 2  # 33 & 31 == 1


def test_set_less_than_signed_unsigned():
    m = run_fragment(
        """
        li $t0, -1
        li $t1, 1
        slt  $t2, $t0, $t1
        sltu $t3, $t0, $t1
        slti $t4, $t0, 0
        sltiu $t5, $t1, 2
        """
    )
    assert reg(m, "$t2") == 1   # -1 < 1 signed
    assert reg(m, "$t3") == 0   # 0xffffffff > 1 unsigned
    assert reg(m, "$t4") == 1
    assert reg(m, "$t5") == 1


def test_lui_ori_build_constant():
    m = run_fragment("lui $t0, 0x1234\n ori $t0, $t0, 0x5678")
    assert reg(m, "$t0") == 0x12345678


def test_memory_byte_sign_extension():
    m = run_fragment(
        """
        li $t0, 0x80
        la $t1, v
        sb $t0, 0($t1)
        lb $t2, 0($t1)
        lbu $t3, 0($t1)
        .data
        v: .word 0
        .text
        """
    )
    assert reg(m, "$t2") == 0xFFFFFF80
    assert reg(m, "$t3") == 0x80


def test_memory_half_sign_extension():
    m = run_fragment(
        """
        li $t0, 0x8001
        la $t1, v
        sh $t0, 0($t1)
        lh $t2, 0($t1)
        lhu $t3, 0($t1)
        .data
        v: .word 0
        .text
        """
    )
    assert reg(m, "$t2") == 0xFFFF8001
    assert reg(m, "$t3") == 0x8001


def test_word_store_load():
    m = run_fragment(
        """
        li $t0, 0xdeadbeef
        la $t1, v
        sw $t0, 0($t1)
        lw $t2, 0($t1)
        .data
        v: .word 0
        .text
        """
    )
    assert reg(m, "$t2") == 0xDEADBEEF


@pytest.mark.parametrize(
    "branch,value,taken",
    [
        ("blez", 0, True), ("blez", -1, True), ("blez", 1, False),
        ("bgtz", 1, True), ("bgtz", 0, False), ("bgtz", -1, False),
        ("bltz", -1, True), ("bltz", 0, False),
        ("bgez", 0, True), ("bgez", -5, False),
    ],
)
def test_sign_branches(branch, value, taken):
    m = run_fragment(
        f"""
        li $t0, {value}
        li $t1, 0
        {branch} $t0, yes
        b done
        yes: li $t1, 1
        done:
        """
    )
    assert reg(m, "$t1") == (1 if taken else 0)


def test_beq_bne():
    m = run_fragment(
        """
        li $t0, 5
        li $t1, 5
        li $t2, 0
        beq $t0, $t1, eq
        b after
        eq: li $t2, 1
        after:
        bne $t0, $t1, ne
        li $t3, 2
        b done
        ne: li $t3, 3
        done:
        """
    )
    assert reg(m, "$t2") == 1
    assert reg(m, "$t3") == 2


def test_jal_links_and_jr_returns():
    m = run_fragment(
        """
        jal sub
        li $t1, 2
        b done
        sub: li $t0, 1
        jr $ra
        done:
        """
    )
    assert reg(m, "$t0") == 1
    assert reg(m, "$t1") == 2


def test_jalr_custom_link():
    m = run_fragment(
        """
        la $t0, target
        jalr $t1, $t0
        b done
        target: li $t2, 9
        jr $t1
        done:
        """
    )
    assert reg(m, "$t2") == 9


def test_mult_signed():
    m = run_fragment("li $t0, -3\n li $t1, 7\n mult $t0, $t1\n mflo $t2\n mfhi $t3")
    assert to_signed(reg(m, "$t2")) == -21
    assert reg(m, "$t3") == 0xFFFFFFFF  # sign extension of the product


def test_multu_large():
    m = run_fragment("li $t0, 0x10000\n li $t1, 0x10000\n multu $t0, $t1\n mflo $t2\n mfhi $t3")
    assert reg(m, "$t2") == 0
    assert reg(m, "$t3") == 1


def test_div_truncates_toward_zero():
    m = run_fragment("li $t0, -7\n li $t1, 2\n div $t0, $t1\n mflo $t2\n mfhi $t3")
    assert to_signed(reg(m, "$t2")) == -3
    assert to_signed(reg(m, "$t3")) == -1


def test_divu():
    m = run_fragment("li $t0, 7\n li $t1, 2\n divu $t0, $t1\n mflo $t2\n mfhi $t3")
    assert reg(m, "$t2") == 3
    assert reg(m, "$t3") == 1


def test_div_by_zero_defined_as_zero():
    m = run_fragment("li $t0, 5\n li $t1, 0\n div $t0, $t1\n mflo $t2\n mfhi $t3")
    assert reg(m, "$t2") == 0 and reg(m, "$t3") == 0


def test_mthi_mtlo():
    m = run_fragment("li $t0, 11\n mthi $t0\n li $t1, 22\n mtlo $t1\n mfhi $t2\n mflo $t3")
    assert reg(m, "$t2") == 11 and reg(m, "$t3") == 22


def test_step_after_halt_raises():
    machine = Machine(assemble("main: halt\n"))
    machine.run()
    with pytest.raises(EmulatorError):
        machine.step()


def test_pc_out_of_text_raises():
    machine = Machine(assemble("main: jr $t0\n"))  # $t0 = 0
    machine.step()
    with pytest.raises(EmulatorError):
        machine.step()


def test_pc_out_of_text_is_illegal_instruction():
    from repro.harness.errors import IllegalInstruction

    machine = Machine(assemble("main: jr $t0\n"))  # $t0 = 0
    machine.step()
    with pytest.raises(IllegalInstruction) as excinfo:
        machine.step()
    assert "out of text" in str(excinfo.value)


def test_misaligned_pc_is_illegal_instruction():
    from repro.harness.errors import IllegalInstruction

    machine = Machine(assemble("main: li $t0, 2\n jr $t0\n nop\n"))
    machine.step()
    machine.step()
    with pytest.raises(IllegalInstruction):
        machine.step()


def test_undecodable_word_is_illegal_instruction():
    from repro.harness.errors import IllegalInstruction

    machine = Machine(assemble("main: nop\n nop\n halt\n"))
    # Simulate a word the decoder rejected (both the decoded view and
    # the pre-bound handler table reflect a decode failure).
    machine.decoded[1] = None
    if machine._bound is not None:
        machine._bound[1] = None
    machine.step()
    with pytest.raises(IllegalInstruction) as excinfo:
        machine.step()
    assert "word" in str(excinfo.value)


def test_unaligned_load_is_memory_fault():
    from repro.harness.errors import MemoryFault

    machine = Machine(assemble("main: li $t0, 2\n lw $t1, 0($t0)\n halt\n"))
    with pytest.raises(MemoryFault):
        machine.run()


def test_run_respects_budget():
    machine = Machine(assemble("main: b main\n"))
    executed = machine.run(100)
    assert executed == 100 and not machine.halted


@given(U32, U32)
def test_addu_matches_python(a, b):
    m = run_fragment(f"li $t0, {a}\n li $t1, {b}\n addu $t2, $t0, $t1")
    assert reg(m, "$t2") == (a + b) & 0xFFFFFFFF


@given(U32, U32)
def test_subu_matches_python(a, b):
    m = run_fragment(f"li $t0, {a}\n li $t1, {b}\n subu $t2, $t0, $t1")
    assert reg(m, "$t2") == (a - b) & 0xFFFFFFFF


@given(U32, st.integers(0, 31))
def test_sra_matches_python(a, sh):
    m = run_fragment(f"li $t0, {a}\n sra $t2, $t0, {sh}")
    assert reg(m, "$t2") == (to_signed(a) >> sh) & 0xFFFFFFFF
