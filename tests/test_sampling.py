"""Statistical sampling engine: accuracy, determinism, keying, sweeps."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import baseline_config
from repro.experiments.journal import cell_key
from repro.experiments.runner import collect_trace
from repro.experiments.supervisor import run_sweep
from repro.harness.faults import ProcessFaultPlan
from repro.timing.sampling import (
    SamplingPlan,
    bootstrap_cis,
    sample_benchmark,
    stats_error_bars,
)
from repro.timing.simulator import simulate
from repro.timing.stats import SimStats

#: Cheap, steady guest: ~0.2 s per sampled run at this plan.
BENCH = "bzip"
PLAN = SamplingPlan(window=300, warmup=100, interval=2000)


def _plan(**overrides) -> SamplingPlan:
    return dataclasses.replace(PLAN, **overrides).validate()


# ------------------------------------------------------------------ plan

def test_default_plan_validates():
    assert SamplingPlan().validate() is not None


@pytest.mark.parametrize(
    "overrides",
    [
        {"window": 0},
        {"warmup": -1},
        {"warm": -1},
        {"interval": 300},          # cannot fit warm + warmup + window
        {"ci_target": 1.0},
        {"ci_target": -0.1},
        {"confidence": 0.4},
        {"min_windows": 1},
        {"max_windows": 1},         # < min_windows
        {"resamples": 1},
    ],
)
def test_plan_validation_rejects_bad_knobs(overrides):
    with pytest.raises(ValueError):
        dataclasses.replace(PLAN, **overrides).validate()


def test_plan_canonical_is_a_full_identity():
    assert _plan().canonical() == _plan().canonical()
    base = _plan().canonical()
    for overrides in ({"window": 301}, {"interval": 2500}, {"seed": 99},
                      {"ci_target": 0.05}, {"resamples": 300}):
        assert _plan(**overrides).canonical() != base
    assert _plan().with_seed(7) == _plan(seed=7)


# ------------------------------------------------------- estimator quality

@pytest.fixture(scope="module")
def exact_40k():
    """Full detailed simulation over the sampled horizon (the truth)."""
    trace = collect_trace(BENCH, 40_000)
    return simulate(baseline_config(), trace, warmup=0)


@pytest.mark.parametrize("seed", [1, 2, 3, 2003])
def test_ci_covers_exact_ipc_across_seeds(exact_40k, seed):
    """The headline accuracy contract: at every seed the bootstrap CI
    covers the exact full-detailed IPC and the point estimate lands
    within a few percent of it."""
    result = sample_benchmark(BENCH, baseline_config(), _plan(seed=seed), budget=40_000)
    exact_ipc = exact_40k.ipc
    assert result.ipc_lo <= exact_ipc <= result.ipc_hi
    assert abs(result.ipc_point - exact_ipc) / exact_ipc < 0.05
    assert result.ipc_lo < result.ipc_point < result.ipc_hi
    # The run actually sampled: most of the horizon was fast-forwarded.
    assert result.skipped > result.measured


def test_sampled_stats_carry_error_bars_and_extras(exact_40k):
    result = sample_benchmark(BENCH, baseline_config(), _plan(), budget=12_000)
    bars = stats_error_bars(result.stats)
    assert bars == (result.ipc_lo, result.ipc_hi)
    extra = result.stats.extra
    assert extra["sampling.windows"] == float(len(result.windows))
    assert extra["sampling.instructions_measured"] == float(result.measured)
    assert extra["sampling.seed"] == float(result.plan.seed)
    # Exact stats expose no bars — the uniform renderer probe.
    assert stats_error_bars(exact_40k) is None


def test_sampling_is_deterministic():
    a = sample_benchmark(BENCH, baseline_config(), _plan(seed=5), budget=12_000)
    b = sample_benchmark(BENCH, baseline_config(), _plan(seed=5), budget=12_000)
    assert a.stats.to_dict() == b.stats.to_dict()
    assert (a.ipc_point, a.ipc_lo, a.ipc_hi) == (b.ipc_point, b.ipc_lo, b.ipc_hi)
    assert [(w.instructions, w.cycles) for w in a.windows] == \
        [(w.instructions, w.cycles) for w in b.windows]


def test_trace_warming_matches_blocks_warming_bit_exactly():
    """The two functional-warming paths — warm-variant compiled blocks
    and trace-mode observation — must train identical predictor and
    cache state, so the measured windows are bit-identical."""
    blocks = sample_benchmark(BENCH, baseline_config(), _plan(seed=5), budget=12_000,
                              dispatch="blocks")
    fast = sample_benchmark(BENCH, baseline_config(), _plan(seed=5), budget=12_000,
                            dispatch="fast")
    assert blocks.stats.to_dict() == fast.stats.to_dict()


def test_ci_target_auto_extends_past_scheduled_budget():
    plan = _plan(seed=9, ci_target=0.10)
    result = sample_benchmark(BENCH, baseline_config(), plan, budget=4_000)
    # budget/interval schedules 2 windows; the CI target forces more.
    assert len(result.windows) > 2
    assert result.rel_halfwidth <= 0.10
    assert result.trajectory  # every CI evaluation was recorded
    assert result.trajectory[-1][0] == len(result.windows)


def test_bootstrap_cis_are_deterministic_and_degenerate_below_two_windows():
    def window(insts, cycles):
        s = SimStats(config_name="ideal")
        s.instructions, s.cycles = insts, cycles
        s.cpi_base = cycles
        return s

    windows = [window(300, 200), window(300, 260), window(300, 240)]
    a = bootstrap_cis(windows, _plan(seed=3))
    b = bootstrap_cis(windows, _plan(seed=3))
    assert a == b
    assert a["ipc_ci"][0] <= a["ipc_point"] <= a["ipc_ci"][1]

    one = bootstrap_cis([window(300, 200)], _plan(seed=3))
    assert one["ipc_ci"] == (1.5, 1.5)
    assert one["rel_halfwidth"] == float("inf")


# ------------------------------------------------------------------ keying

def test_cell_key_without_sampling_is_unchanged():
    config = baseline_config()
    key = cell_key("bzip", config, 1000, 200, 1, 0, "ref", "img")
    assert key == cell_key("bzip", config, 1000, 200, 1, 0, "ref", "img", sampling=None)
    assert "sampling=" not in key


def test_cell_key_includes_every_sampling_knob():
    config = baseline_config()
    exact = cell_key("bzip", config, 1000, 200, 1, 0, "ref", "img")
    sampled = cell_key("bzip", config, 1000, 200, 1, 0, "ref", "img",
                       sampling=_plan().canonical())
    assert sampled != exact
    assert sampled == cell_key("bzip", config, 1000, 200, 1, 0, "ref", "img",
                               sampling=_plan().canonical())
    # Every knob is identity: any change re-keys the cell.
    for overrides in ({"seed": 7}, {"window": 301}, {"interval": 2500},
                      {"ci_target": 0.05}, {"resamples": 300}):
        reseeded = cell_key("bzip", config, 1000, 200, 1, 0, "ref", "img",
                            sampling=_plan(**overrides).canonical())
        assert reseeded != sampled


# ------------------------------------------------------------------ sweeps

def test_sampled_sweep_resumes_bit_identically(tmp_path):
    """A sampled sweep cell rides the journal like an exact one: resume
    replays stored results (bars included) without re-execution."""
    names, configs = [BENCH], [baseline_config()]
    args = dict(jobs=1, journal_path=tmp_path / "sweep.journal.json",
                fault_plan=ProcessFaultPlan(), sampling=_plan())
    grid1, failures, _, report1 = run_sweep(names, configs, 8_000, 0, **args)
    assert not failures
    assert report1.cells_executed == 1

    grid2, _, _, report2 = run_sweep(names, configs, 8_000, 0, resume=True, **args)
    assert report2.cells_executed == 0 and report2.resume_hits == 1
    replayed = grid2[BENCH]["ideal"]
    assert replayed.to_dict() == grid1[BENCH]["ideal"].to_dict()
    assert stats_error_bars(replayed) is not None


def test_sampled_journal_does_not_resume_under_other_knobs(tmp_path):
    from repro.harness.errors import JournalCorruption

    names, configs = [BENCH], [baseline_config()]
    journal_path = tmp_path / "sweep.journal.json"
    run_sweep(names, configs, 8_000, 0, jobs=1, journal_path=journal_path,
              fault_plan=ProcessFaultPlan(), sampling=_plan())
    with pytest.raises(JournalCorruption):
        run_sweep(names, configs, 8_000, 0, jobs=1, journal_path=journal_path,
                  resume=True, fault_plan=ProcessFaultPlan(),
                  sampling=_plan(seed=7))


def test_sweep_rows_grow_ci_columns_only_when_sampled():
    from repro.experiments.sweep import SweepResult

    def stats(bars=None):
        s = SimStats(config_name="ideal")
        s.instructions, s.cycles = 1000, 500
        if bars is not None:
            s.extra["sampling.ipc_ci_lo"], s.extra["sampling.ipc_ci_hi"] = bars
        return s

    exact = SweepResult(benchmarks=["b"], config_names=["ideal"],
                        grid={"b": {"ideal": stats()}})
    assert not exact.sampled
    assert len(exact.rows()[0]) == 5
    assert "ipc_lo" not in exact.render()

    sampled = SweepResult(benchmarks=["b"], config_names=["ideal"],
                          grid={"b": {"ideal": stats(bars=(1.8, 2.2))}})
    assert sampled.sampled
    assert sampled.rows()[0][5:] == (1.8, 2.2)
    assert "ipc_lo" in sampled.render() and "ipc_hi" in sampled.render()


# ----------------------------------------------------------------- table 1

def test_table1_sampled_rows_carry_cis_and_render_them():
    from repro.experiments import table1

    result = table1.run((BENCH,), instructions=8_000, sampling=_plan())
    (row,) = result.rows()
    assert row.ipc_ci is not None and row.ipc_lo < row.ipc < row.ipc_hi
    assert result.sampled
    assert "IPC 95% CI" in result.render()

    exact = table1.run((BENCH,), instructions=2_000, warmup=500)
    assert not exact.sampled
    assert "IPC 95% CI" not in exact.render()


def test_figure_check_scores_by_ci_overlap():
    from repro.experiments.report import FigureCheck, PaperTarget

    band = PaperTarget("Table 1", "ipc", 1.0, 2.0, "paper")
    assert FigureCheck(band, 0.9).ok is False                  # point outside
    assert FigureCheck(band, 0.9, ci=(0.8, 1.1)).ok is True    # CI overlaps band
    assert FigureCheck(band, 0.9, ci=(0.7, 0.95)).ok is False  # CI disjoint
    assert FigureCheck(band, 2.1, ci=(1.9, 2.3)).ok is True
    assert FigureCheck(band, 1.5, ci=(1.4, 1.6)).ok is True
    assert "[0.8, 1.1]" in FigureCheck(band, 0.9, ci=(0.8, 1.1)).value_cell()
    assert FigureCheck(band, 0.9, ci=(0.8, 1.1)).to_dict()["ci"] == [0.8, 1.1]
