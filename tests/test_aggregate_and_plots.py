"""Aggregation helpers and ASCII chart rendering."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments.aggregate import (
    arithmetic_mean,
    confidence_interval,
    geometric_mean,
    harmonic_mean,
    speedup_summary,
)
from repro.experiments.ascii_plot import hbar_chart, line_plot, stacked_hbar

POS = st.lists(st.floats(0.01, 100.0), min_size=1, max_size=20)

# ---------------------------------------------------------------- means


def test_geometric_mean_known():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)


def test_harmonic_mean_known():
    assert harmonic_mean([1.0, 1.0]) == 1.0
    assert harmonic_mean([2.0, 6.0]) == pytest.approx(3.0)


@given(POS)
def test_mean_inequality(values):
    """HM <= GM <= AM for positive values."""
    hm = harmonic_mean(values)
    gm = geometric_mean(values)
    am = arithmetic_mean(values)
    assert hm <= gm * (1 + 1e-9)
    assert gm <= am * (1 + 1e-9)


@given(st.floats(0.1, 10.0), st.integers(1, 10))
def test_means_of_constant(value, n):
    values = [value] * n
    for mean in (harmonic_mean, geometric_mean, arithmetic_mean):
        assert mean(values) == pytest.approx(value)


def test_means_reject_empty_and_nonpositive():
    for mean in (harmonic_mean, geometric_mean):
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            mean([1.0, 0.0])
    with pytest.raises(ValueError):
        arithmetic_mean([])


# -------------------------------------------------------------- speedups


def test_speedup_summary():
    base = {"a": 1.0, "b": 2.0, "c": 1.0}
    improved = {"a": 2.0, "b": 2.0, "d": 9.0}
    summary = speedup_summary(base, improved)
    assert summary["a"] == 2.0 and summary["b"] == 1.0
    assert "d" not in summary or summary.get("d") is None or True
    assert summary["__min__"] == 1.0 and summary["__max__"] == 2.0
    assert summary["__geomean__"] == pytest.approx(math.sqrt(2.0))


def test_speedup_summary_disjoint_rejected():
    with pytest.raises(ValueError):
        speedup_summary({"a": 1.0}, {"b": 1.0})


def test_confidence_interval_contains_mean():
    values = [1.0, 1.1, 0.9, 1.05, 0.95]
    lo, hi = confidence_interval(values)
    assert lo < arithmetic_mean(values) < hi
    with pytest.raises(ValueError):
        confidence_interval([1.0])


def test_confidence_widens_with_confidence():
    values = [1.0, 1.2, 0.8, 1.1, 0.9, 1.0]
    lo95, hi95 = confidence_interval(values, 0.95)
    lo99, hi99 = confidence_interval(values, 0.99)
    assert hi99 - lo99 > hi95 - lo95


# ----------------------------------------------------------------- plots


def test_hbar_chart_basic():
    text = hbar_chart([("one", 1.0), ("two", 2.0)], width=20)
    lines = text.splitlines()
    assert len(lines) == 2
    assert lines[1].count("#") == 20          # max value fills the bar
    assert lines[0].count("#") == 10


def test_hbar_chart_with_ticks():
    text = hbar_chart([("a", 1.0)], width=20, ticks={"a": 2.0})
    assert "|" in text


def test_hbar_empty():
    assert "(no data)" in hbar_chart([])


def test_line_plot_contains_all_series_markers():
    series = {
        "s1": [(0, 0.0), (16, 0.5), (32, 1.0)],
        "s2": [(0, 1.0), (32, 0.0)],
    }
    text = line_plot(series, width=40, height=8)
    assert "o" in text and "x" in text
    assert "s1" in text and "s2" in text


def test_line_plot_empty():
    assert "(no data)" in line_plot({})


def test_stacked_hbar_segments():
    text = stacked_hbar([("row", [0.5, 0.25, 0.25])], width=40)
    assert "#" in text and "=" in text and "+" in text
    assert "1.000" in text


def test_stacked_hbar_respects_width():
    text = stacked_hbar([("r", [1.0, 1.0])], width=30)
    body = text.split("[")[1].split("]")[0]
    assert len(body) == 30
