"""Smaller behaviours not covered elsewhere."""

import pytest

from repro.core.config import baseline_config, bitslice_config, pipeline_diagram, simple_pipeline_config
from repro.experiments.runner import clear_trace_cache, collect_trace
from repro.isa.assembler import AssemblerError, assemble
from repro.timing.detailed import DetailedStats
from repro.timing.stats import SimStats
from repro.workloads import build_program


def test_pipeline_diagram_matches_figure10():
    base = pipeline_diagram(baseline_config())
    assert base.startswith("Fetch1 Fetch2 Dec1 Dec2 DP1 DP2 Sch1 Sch2 Sch3 Iss RF1 RF2")
    assert " EX " in base and "EX1" not in base
    two = pipeline_diagram(simple_pipeline_config(2))
    assert "EX1 EX2" in two
    four = pipeline_diagram(bitslice_config(4))
    assert "EX1 EX2 EX3 EX4" in four
    # 15-stage count for the base machine (Fetch1..CT, Mem overlapped).
    assert len(base.replace("[Mem]", "").split()) == 15


def test_li_s_rejects_garbage():
    with pytest.raises(AssemblerError):
        assemble("main: li.s $f0, not_a_float\n halt\n")


def test_li_s_expands():
    program = assemble("main: li.s $f0, 1.0\n halt\n")
    # lui (or ori) + mtc1 + halt expansion (2 instructions).
    from repro.isa.encoding import decode

    mnems = [decode(w).mnemonic for w in program.text]
    assert "mtc1" in mnems


def test_fp_operand_type_errors():
    with pytest.raises(AssemblerError):
        assemble("main: add.s $t0, $f1, $f2\n halt\n")
    with pytest.raises(AssemblerError):
        assemble("main: lwc1 $t0, 0($t1)\n halt\n")
    with pytest.raises(AssemblerError):
        assemble("main: mtc1 $f0, $f1\n halt\n")


def test_build_program_defaults():
    program = build_program("go")
    assert program.entry == program.symbols["main"]


def test_trace_cache_clear():
    a = collect_trace("go", 500)
    clear_trace_cache()
    b = collect_trace("go", 500)
    assert a is not b and a == b


def test_stats_defaults():
    stats = SimStats()
    assert stats.ipc == 0.0
    assert stats.branch_accuracy == 0.0
    assert stats.load_fraction == 0.0
    assert stats.ptm_way_mispredict_rate == 0.0


def test_detailed_stats_defaults():
    stats = DetailedStats()
    assert stats.ipc == 0.0


def test_describe_simple_pipe():
    from repro.core.config import describe

    text = describe(simple_pipeline_config(4))
    assert "pipelined EX x4" in text


def test_workload_repr_fields():
    from repro.workloads import get_workload

    w = get_workload("twolf")
    assert w.default_iters > 0
    assert "anneal" in w.description


def test_assembler_rejects_fp_reg_in_int_slot():
    with pytest.raises(AssemblerError):
        assemble("main: addu $f0, $t0, $t1\n halt\n")


def test_strip_comment_preserves_strings():
    program = assemble(
        """
        .data
        s: .asciiz "a#b;c"
        .text
        main: halt
        """
    )
    assert b"a#b;c" in bytes(program.data)
