"""Workload input profiles (test/train/ref)."""

import pytest

from repro.emulator.analysis import profile_trace
from repro.workloads import BENCHMARK_NAMES, get_workload
from repro.workloads.common import scaled_size
from repro.workloads.suite import PROFILES


def test_profiles_defined():
    assert PROFILES == {"test": 4, "train": 2, "ref": 1}


def test_scaled_size_validates():
    assert scaled_size(4096, 4) == 1024
    with pytest.raises(ValueError):
        scaled_size(4096, 3)
    with pytest.raises(ValueError):
        scaled_size(4096, 0)
    with pytest.raises(ValueError):
        scaled_size(2, 4)


def test_unknown_profile_rejected():
    with pytest.raises(KeyError):
        get_workload("li").build(profile="huge")


@pytest.mark.parametrize("name", ["bzip", "li", "mcf", "vortex"])
def test_profiles_run_and_shrink(name):
    w = get_workload(name)
    instret = {}
    for profile in ("test", "ref"):
        machine = w.run(iters=1, profile=profile)
        assert machine.halted and machine.stdout.startswith(f"{name}:")
        instret[profile] = machine.instret
    # A smaller footprint means less initialization work.
    assert instret["test"] < instret["ref"]


def test_profiles_are_deterministic():
    a = get_workload("gzip").run(iters=1, profile="test").stdout
    b = get_workload("gzip").run(iters=1, profile="test").stdout
    assert a == b


def test_working_set_shrinks_with_profile():
    """Measured in the steady state (transactions touch the whole
    store pseudo-randomly), the test profile's working set is smaller."""
    w = get_workload("vortex")
    big = profile_trace(w.trace(max_steps=15_000, iters=3500, profile="ref"))
    small = profile_trace(w.trace(max_steps=15_000, iters=3500, profile="test"))
    assert small.data_working_set < big.data_working_set


def test_fixed_size_kernels_accept_profiles():
    """go and vpr have intrinsic sizes: profiles run but do not shrink."""
    for name in ("go", "vpr"):
        w = get_workload(name)
        ref = w.run(iters=1, profile="ref")
        test = w.run(iters=1, profile="test")
        assert ref.stdout == test.stdout


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_all_profiles_assemble(name):
    w = get_workload(name)
    for profile in PROFILES:
        program = w.build(iters=1, profile=profile)
        assert program.text
