"""Experiment layer: each table/figure regenerates at small scale."""

import pytest

from repro.experiments import figure2, figure4, figure6, figure11, figure12, table1
from repro.experiments.report import render_series, render_stack, render_table
from repro.experiments.runner import collect_trace, sweep_configs
from repro.core.config import baseline_config, simple_pipeline_config

N = 4000
W = 1000
BENCHES = ("li", "go")


def test_collect_trace_cached():
    a = collect_trace("go", 2000)
    b = collect_trace("go", 2000)
    assert a is b
    assert len(a) == 2000


def test_sweep_configs_runs_each():
    stats = sweep_configs("go", [baseline_config(), simple_pipeline_config(2)], max_steps=2000, warmup=500)
    assert len(stats) == 2
    assert stats[0].ipc > stats[1].ipc


def test_table1(capsys):
    result = table1.run(BENCHES, instructions=N, warmup=W)
    rows = result.rows()
    assert [r.benchmark for r in rows] == list(BENCHES)
    for row in rows:
        assert 0 < row.ipc <= 4
        assert 0 <= row.load_fraction < 1
        assert 0 < row.branch_accuracy <= 1
    text = result.render()
    assert "Table 1" in text and "li" in text


def test_figure2():
    result = figure2.run(("li",), instructions=N, bits=(2, 9, 31))
    assert result.resolved_by("li", 31) == pytest.approx(1.0)
    assert 0 <= result.resolved_by("li", 2) <= 1
    assert result.rows()
    assert "Figure 2" in result.render()


def test_figure4():
    result = figure4.run(instructions=N, panels=(("li", 8 * 1024, 32),), associativities=(2, 4), warmup=W)
    assert set(result.panels) == {("li", 2), ("li", 4)}
    assert "Figure 4" in result.render()
    for char in result.panels.values():
        assert char.accesses > 0


def test_figure6():
    result = figure6.run(BENCHES, instructions=N, warmup=W)
    assert set(result.curves) == set(BENCHES)
    assert 0 <= result.mean_detected_at_1 <= result.mean_detected_at_8 <= 1
    assert 0 <= result.mean_eq_branch_fraction <= 1
    assert "Figure 6" in result.render()


@pytest.fixture(scope="module")
def fig11_result():
    return figure11.run(("li",), instructions=N, slice_counts=(2,), warmup=W)


def test_figure11(fig11_result):
    r = fig11_result
    assert r.ideal_ipc("li") > 0
    assert r.simple_ipc("li", 2) < r.ideal_ipc("li")
    assert r.ipc("li", 2) >= r.simple_ipc("li", 2)
    assert 0.5 < r.mean_relative_to_ideal(2) <= 1.05
    assert "Figure 11" in r.render()
    assert len(r.rows()) > 0


def test_figure12(fig11_result):
    r = figure12.run(base=fig11_result)
    incs = r.increments("li", 2)
    assert len(incs) == 5
    total = r.total_speedup("li", 2)
    assert total == pytest.approx(sum(v for _, v in incs), abs=1e-9)
    assert "Figure 12" in r.render()


def test_report_renderers():
    table = render_table(["a", "b"], [[1, 2.5], ["x", "y"]], title="T")
    assert "T" in table and "2.500" in table
    series = render_series("s", [(1, 0.5)])
    assert "1=0.500" in series
    stack = render_stack("S", ["c1"], {3: [0.25]})
    assert "25.0%" in stack


def test_workload_table():
    from repro.experiments import workload_table

    result = workload_table.run(("go",), instructions=N)
    rows = result.rows()
    assert rows[0][0] == "go"
    assert "Workload characteristics" in result.render()


def test_figure1_experiment():
    from repro.experiments import figure1

    result = figure1.run(window=8)
    assert set(result.ipcs) == {"ideal", "simple-pipe-2", "bitslice-2"}
    assert result.chain_span("simple-pipe-2") >= result.chain_span("ideal")
    assert "Figure 1" in result.render()
    assert len(result.rows()) == 3
