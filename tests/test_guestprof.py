"""Guest profiler: per-PC counts, per-line CPI stacks, merge semantics.

The acceptance contract of the profiling PR, as tests:

* per-PC retired counts are identical across all three emulator
  dispatch tiers (reference / fast / blocks) and sum exactly to the
  run's total retirements;
* per-line cycle stacks sum exactly to the timing run's total cycles,
  identically under both timing modes;
* disabled profiling leaves simulation results byte-identical;
* profiles validate, round-trip through JSON, and merge commutatively
  (the ``--jobs`` transport);
* ``repro-profile`` renders hot-line tables, annotated disassembly,
  and collapsed-stack flamegraphs from both live runs and saved files.
"""

from __future__ import annotations

import json

import pytest

from repro.emulator.machine import Machine
from repro.isa.assembler import assemble
from repro.obs.attribution import COMPONENT_KEYS
from repro.obs.guestprof import (
    GuestProfileCollector,
    SHORTFALL_PC,
    active_collector,
    end_guest_profile,
    load_profile,
    profile_from_records,
    start_guest_profile,
    suspended_guest_profile,
    validate_profile,
    write_profile,
)

#: A loop with a call, a taken/not-taken branch mix, and memory traffic
#: — shaped so the blocks tier compiles superblocks with side exits.
LOOP_SOURCE = """
main:
 addiu $s0, $zero, 0
 addiu $s1, $zero, 400
 addiu $s2, $sp, -64
loop:
 addiu $s0, $s0, 1
 jal helper
 andi $t1, $s0, 3
 beq $t1, $zero, skip
 sw $s0, 0($s2)
 lw $t2, 0($s2)
skip:
 bne $s0, $s1, loop
 addiu $s0, $zero, 0
 beq $zero, $zero, loop
helper:
 andi $t0, $s0, 7
 addu $t0, $t0, $s0
 jr $ra
"""

STEPS = 3_000


def _run_counts(dispatch: str, steps: int = STEPS):
    """Retired counts from one machine run on *dispatch*."""
    machine = Machine(assemble(LOOP_SOURCE), dispatch=dispatch)
    collector = start_guest_profile()
    try:
        machine.run(steps)
    finally:
        end_guest_profile()
    prof = collector.benchmarks["?"]
    return prof


@pytest.mark.parametrize("dispatch", ["reference", "fast", "blocks"])
def test_counts_sum_to_retired(dispatch):
    prof = _run_counts(dispatch)
    assert prof.retired == STEPS
    assert sum(prof.counts.values()) == STEPS


def test_counts_identical_across_tiers():
    reference = _run_counts("reference")
    fast = _run_counts("fast")
    blocks = _run_counts("blocks")
    assert fast.counts == reference.counts
    assert blocks.counts == reference.counts


def test_cold_counts_match_record_replay():
    """Machine-loop counting ≡ replaying cached records (cache-hit path)."""
    records = tuple(Machine(assemble(LOOP_SOURCE)).trace(STEPS))
    cold = _run_counts("fast")
    replay = GuestProfileCollector()
    profile_from_records(records, replay)
    assert replay.benchmarks["?"].counts == cold.counts
    assert replay.benchmarks["?"].retired == cold.retired


def test_sample_mode_counts_samples():
    machine = Machine(assemble(LOOP_SOURCE))
    collector = start_guest_profile(mode="sample", period=64)
    try:
        machine.run(STEPS)
    finally:
        end_guest_profile()
    prof = collector.benchmarks["?"]
    assert prof.retired == STEPS
    assert prof.sampled == STEPS // 64
    assert sum(prof.counts.values()) == prof.sampled
    # Sampling cadence survives the cache-hit replay path too.
    replay = GuestProfileCollector(mode="sample", period=64)
    records = tuple(Machine(assemble(LOOP_SOURCE)).trace(STEPS))
    profile_from_records(records, replay)
    assert replay.benchmarks["?"].counts == prof.counts


def _simulate_with_profile(timing_mode: str):
    from repro.core.config import bitslice_config
    from repro.timing.fastpath import set_timing_mode
    from repro.timing.simulator import simulate

    records = tuple(Machine(assemble(LOOP_SOURCE)).trace(STEPS))
    collector = start_guest_profile()
    set_timing_mode(timing_mode)
    try:
        stats = simulate(bitslice_config(4), iter(records), warmup=500)
    finally:
        set_timing_mode(None)
        end_guest_profile()
    return stats, collector.benchmarks["?"]


@pytest.mark.parametrize("timing_mode", ["reference", "fast"])
def test_cycle_stacks_sum_to_total_cycles(timing_mode):
    stats, prof = _simulate_with_profile(timing_mode)
    assert prof.cycles_total == stats.cycles
    assert sum(sum(parts) for parts in prof.cycles.values()) == stats.cycles
    assert all(len(parts) == len(COMPONENT_KEYS) for parts in prof.cycles.values())


def test_cycle_stacks_identical_across_timing_modes():
    _, ref = _simulate_with_profile("reference")
    _, fast = _simulate_with_profile("fast")
    assert fast.cycles == ref.cycles


def test_disabled_profiler_leaves_results_identical():
    from repro.core.config import baseline_config
    from repro.timing.simulator import simulate

    records = tuple(Machine(assemble(LOOP_SOURCE)).trace(STEPS))
    plain = simulate(baseline_config(), iter(records), warmup=500)
    start_guest_profile()
    try:
        profiled = simulate(baseline_config(), iter(records), warmup=500)
    finally:
        end_guest_profile()
    assert active_collector() is None
    assert profiled.to_dict() == plain.to_dict()


def test_profile_roundtrip_and_validation(tmp_path):
    machine = Machine(assemble(LOOP_SOURCE))
    collector = start_guest_profile()
    try:
        collector.begin_benchmark("loopy")
        machine.run(STEPS)
    finally:
        end_guest_profile()
    path = tmp_path / "profile.json"
    write_profile(path, collector)
    assert validate_profile(json.loads(path.read_text())) == []
    loaded = load_profile(path)
    assert loaded.benchmarks["loopy"].counts == collector.benchmarks["loopy"].counts

    # The validator enforces the exact-sum invariants.
    broken = collector.to_dict()
    broken["benchmarks"]["loopy"]["retired"] += 1
    assert any("counts sum" in p for p in validate_profile(broken))
    broken = collector.to_dict()
    broken["benchmarks"]["loopy"]["cycles"][str(SHORTFALL_PC)] = [1] * len(COMPONENT_KEYS)
    assert any("cycle stacks sum" in p for p in validate_profile(broken))


def test_merge_is_commutative_and_drain_resets():
    a = GuestProfileCollector()
    a.begin_benchmark("x")
    a.add_counts({4: 2, 8: 1}, retired=3)
    a.add_cycles({4: [1] * len(COMPONENT_KEYS)}, total_cycles=len(COMPONENT_KEYS))
    b = GuestProfileCollector()
    b.begin_benchmark("x")
    b.add_counts({8: 5, 12: 1}, retired=6)
    b.begin_benchmark("y")
    b.add_counts({4: 1}, retired=1)

    ab = GuestProfileCollector()
    ab.ingest(a.to_dict())
    ab.ingest(b.to_dict())
    ba = GuestProfileCollector()
    ba.ingest(b.to_dict())
    ba.ingest(a.to_dict())
    assert ab.to_dict() == ba.to_dict()
    assert ab.benchmarks["x"].counts == {4: 2, 8: 6, 12: 1}

    payload = a.drain()
    assert payload["benchmarks"]  # the drained snapshot kept the data
    assert a.benchmarks == {}     # ...and the collector reset
    assert a.drain()["benchmarks"] == {}


def test_suspension_excludes_bookkeeping_runs():
    collector = start_guest_profile()
    try:
        with suspended_guest_profile():
            assert active_collector() is None
            Machine(assemble(LOOP_SOURCE)).run(1_000)
        assert active_collector() is collector
    finally:
        end_guest_profile()
    assert collector.benchmarks == {}


def test_worker_state_round_trips_guest_profile():
    from repro.experiments.supervisor import apply_worker_state, current_worker_state

    start_guest_profile(mode="sample", period=32)
    try:
        state = current_worker_state()
    finally:
        end_guest_profile()
    assert state[-1] == ("sample", 32)
    apply_worker_state(*state)
    try:
        worker_side = active_collector()
        assert worker_side is not None
        assert (worker_side.mode, worker_side.period) == ("sample", 32)
    finally:
        end_guest_profile()


# ------------------------------------------------------------ repro-profile

def _collect_synthetic(tmp_path):
    """A saved profile for a benchmark name with no known program."""
    collector = GuestProfileCollector()
    collector.begin_benchmark("synthetic")
    collector.add_counts({4194304: 7, 4194308: 3}, retired=10)
    collector.add_cycles(
        {4194304: [2] * len(COMPONENT_KEYS)}, total_cycles=2 * len(COMPONENT_KEYS)
    )
    path = tmp_path / "synthetic.json"
    write_profile(path, collector)
    return path


def test_profile_cli_reports_saved_profile(tmp_path, capsys):
    from repro.experiments.profile_cli import main

    path = _collect_synthetic(tmp_path)
    flame = tmp_path / "out.folded"
    assert main(["--in", str(path), "--flamegraph", str(flame)]) == 0
    out = capsys.readouterr().out
    assert "=== synthetic ===" in out
    assert "retired 10" in out
    assert "hot lines" in out
    stacks = flame.read_text().splitlines()
    assert stacks == ["synthetic;? 10"]


def test_profile_cli_live_run_annotates_and_saves(tmp_path, capsys):
    from repro.experiments.profile_cli import main

    saved = tmp_path / "li.json"
    flame = tmp_path / "li.folded"
    rc = main(
        [
            "-b", "li", "-n", "2000", "--warmup", "200",
            "--config", "bitslice4", "--annotate", "--annotate-min", "50",
            "--out", str(saved), "--flamegraph", str(flame),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "=== li ===" in out
    assert "hot functions" in out
    assert "CPI" in out
    assert "---" in out  # at least one annotated function listing
    assert validate_profile(json.loads(saved.read_text())) == []
    for line in flame.read_text().splitlines():
        stack, count = line.rsplit(" ", 1)
        assert stack.startswith("li;")
        assert int(count) > 0


def test_profile_cli_rejects_unknown_benchmark(capsys):
    from repro.experiments.profile_cli import main

    assert main(["-b", "nope"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err
