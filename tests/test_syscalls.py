"""Syscall layer behaviour."""

import pytest

from repro.emulator.machine import Machine
from repro.emulator.syscalls import UnknownSyscallError
from repro.isa.assembler import assemble


def test_exit_sets_code():
    machine = Machine(assemble("main: li $a0, 3\n li $v0, 10\n syscall\n"))
    machine.run()
    assert machine.halted and machine.exit_code == 3


def test_print_int_negative():
    machine = Machine(assemble("main: li $a0, -42\n li $v0, 1\n syscall\n halt\n"))
    machine.run()
    assert machine.stdout == "-42"


def test_print_char():
    machine = Machine(assemble("main: li $a0, 'A'\n li $v0, 11\n syscall\n halt\n"))
    machine.run()
    assert machine.stdout == "A"


def test_print_string():
    machine = Machine(
        assemble(
            """
            .data
            msg: .asciiz "hey"
            .text
            main: la $a0, msg
            li $v0, 4
            syscall
            halt
            """
        )
    )
    machine.run()
    assert machine.stdout == "hey"


def test_unknown_service_raises():
    machine = Machine(assemble("main: li $v0, 99\n syscall\n halt\n"))
    with pytest.raises(UnknownSyscallError):
        machine.run()


def test_break_halts():
    machine = Machine(assemble("main: break\n nop\n"))
    machine.run()
    assert machine.halted


def test_unknown_syscall_is_emulator_error():
    from repro.harness.errors import EmulatorError

    assert issubclass(UnknownSyscallError, EmulatorError)


def test_exit_code_keeps_full_register_width():
    machine = Machine(assemble("main: li $a0, -1\n li $v0, 10\n syscall\n"))
    machine.run()
    assert machine.halted and machine.exit_code == 0xFFFFFFFF


def test_exit_without_code_register_defaults_to_zero():
    machine = Machine(assemble("main: li $v0, 10\n syscall\n"))
    machine.run()
    assert machine.halted and machine.exit_code == 0


def test_step_after_exit_raises_emulator_error():
    from repro.harness.errors import EmulatorError

    machine = Machine(assemble("main: li $v0, 10\n syscall\n nop\n"))
    machine.run()
    assert machine.halted
    with pytest.raises(EmulatorError):
        machine.step()
