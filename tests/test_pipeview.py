"""Pipeline timeline capture and rendering."""

from repro.core.config import baseline_config, bitslice_config
from repro.emulator.machine import Machine
from repro.isa.assembler import assemble
from repro.timing.pipeview import TimelineEvent, render_timeline, summarize_timeline
from repro.timing.simulator import TimingSimulator

SRC = """
main:   li $s0, 50
loop:   addu $t0, $s0, $s0
        addiu $t0, $t0, 4
        sll  $t1, $t0, 2
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
"""


def _timeline(config):
    trace = tuple(Machine(assemble(SRC)).trace(2000))
    sim = TimingSimulator(config, record_timeline=True)
    sim.run(iter(trace))
    return sim


def test_timeline_disabled_by_default():
    sim = TimingSimulator(baseline_config())
    assert sim.timeline is None


def test_timeline_event_per_instruction():
    sim = _timeline(baseline_config())
    assert len(sim.timeline) == sim.stats.instructions
    for e in sim.timeline:
        assert e.fetch <= e.dispatch < e.complete <= e.commit
        assert e.latency == e.commit - e.fetch


def test_timeline_order_is_program_order():
    sim = _timeline(baseline_config())
    seqs = [e.seq for e in sim.timeline]
    assert seqs == sorted(seqs)
    commits = [e.commit for e in sim.timeline]
    assert commits == sorted(commits)  # in-order commit


def test_sliced_timeline_has_per_slice_completions():
    sim = _timeline(bitslice_config(2))
    sliced_events = [e for e in sim.timeline if len(e.slice_completions) == 2]
    assert sliced_events
    for e in sliced_events:
        assert max(e.slice_completions) == e.complete


def test_mispredict_flag_present():
    sim = _timeline(baseline_config())
    branches = [e for e in sim.timeline if e.mnemonic == "bgtz"]
    assert branches
    # The final loop exit is mispredicted after warm-up.
    assert any(e.mispredicted for e in branches)


def test_render_timeline_text():
    sim = _timeline(bitslice_config(2))
    text = render_timeline(sim.timeline, limit=8)
    lines = text.splitlines()
    assert len(lines) == 9  # header + 8 rows
    assert "F" in lines[1] and "C" in lines[1]
    assert "cycles" in lines[0]


def test_render_timeline_scales_wide_windows():
    events = [
        TimelineEvent(seq=i, pc=0, mnemonic="addu", text="addu", fetch=i * 50,
                      dispatch=i * 50 + 6, slice_completions=(i * 50 + 13,),
                      complete=i * 50 + 13, commit=i * 50 + 15)
        for i in range(20)
    ]
    text = render_timeline(events, limit=20, max_width=60)
    assert "1 char =" in text.splitlines()[0]


def test_render_empty():
    assert "no timeline" in render_timeline([])
    assert "no timeline" in summarize_timeline([])


def test_summarize():
    sim = _timeline(baseline_config())
    text = summarize_timeline(sim.timeline)
    assert "median" in text and "mean" in text
