"""Pipeline timeline capture and rendering."""

from repro.core.config import baseline_config, bitslice_config
from repro.emulator.machine import Machine
from repro.isa.assembler import assemble
from repro.obs.events import COMMIT, DISPATCH, FETCH, SLICE_COMPLETE, EventTrace
from repro.timing.pipeview import (
    TimelineEvent,
    events_to_timeline,
    render_events,
    render_timeline,
    summarize_timeline,
)
from repro.timing.simulator import TimingSimulator

SRC = """
main:   li $s0, 50
loop:   addu $t0, $s0, $s0
        addiu $t0, $t0, 4
        sll  $t1, $t0, 2
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
"""


def _timeline(config):
    trace = tuple(Machine(assemble(SRC)).trace(2000))
    sim = TimingSimulator(config, record_timeline=True)
    sim.run(iter(trace))
    return sim


def test_timeline_disabled_by_default():
    sim = TimingSimulator(baseline_config())
    assert sim.timeline is None


def test_timeline_event_per_instruction():
    sim = _timeline(baseline_config())
    assert len(sim.timeline) == sim.stats.instructions
    for e in sim.timeline:
        assert e.fetch <= e.dispatch < e.complete <= e.commit
        assert e.latency == e.commit - e.fetch


def test_timeline_order_is_program_order():
    sim = _timeline(baseline_config())
    seqs = [e.seq for e in sim.timeline]
    assert seqs == sorted(seqs)
    commits = [e.commit for e in sim.timeline]
    assert commits == sorted(commits)  # in-order commit


def test_sliced_timeline_has_per_slice_completions():
    sim = _timeline(bitslice_config(2))
    sliced_events = [e for e in sim.timeline if len(e.slice_completions) == 2]
    assert sliced_events
    for e in sliced_events:
        assert max(e.slice_completions) == e.complete


def test_mispredict_flag_present():
    sim = _timeline(baseline_config())
    branches = [e for e in sim.timeline if e.mnemonic == "bgtz"]
    assert branches
    # The final loop exit is mispredicted after warm-up.
    assert any(e.mispredicted for e in branches)


def test_render_timeline_text():
    sim = _timeline(bitslice_config(2))
    text = render_timeline(sim.timeline, limit=8)
    lines = text.splitlines()
    assert len(lines) == 9  # header + 8 rows
    assert "F" in lines[1] and "C" in lines[1]
    assert "cycles" in lines[0]


def test_render_timeline_scales_wide_windows():
    events = [
        TimelineEvent(seq=i, pc=0, mnemonic="addu", text="addu", fetch=i * 50,
                      dispatch=i * 50 + 6, slice_completions=(i * 50 + 13,),
                      complete=i * 50 + 13, commit=i * 50 + 15)
        for i in range(20)
    ]
    text = render_timeline(events, limit=20, max_width=60)
    assert "1 char =" in text.splitlines()[0]


def test_render_empty():
    assert "no timeline" in render_timeline([])
    assert "no timeline" in summarize_timeline([])


def test_summarize():
    sim = _timeline(baseline_config())
    text = summarize_timeline(sim.timeline)
    assert "median" in text and "mean" in text


# ------------------------------------------------- event-stream renderer

def test_render_events_matches_render_timeline():
    """ASCII output is a pure view over the event stream: rendering the
    raw events and rendering the folded timeline must agree exactly."""
    sim = _timeline(bitslice_config(2))
    assert render_events(sim.events, limit=16) == render_timeline(sim.timeline, limit=16)
    assert render_events(sim.events, limit=6, offset=9) == render_timeline(
        sim.timeline, limit=6, offset=9
    )


def test_events_to_timeline_drops_partial_lifecycles():
    trace = EventTrace(capacity=None)
    trace.emit(FETCH, 0, 1, 0x100, {"mnemonic": "addu"})          # no commit
    trace.emit(COMMIT, 9, 2, 0x104, {"complete": 8})              # no fetch
    trace.emit(FETCH, 2, 3, 0x108, {"mnemonic": "sll"})
    trace.emit(DISPATCH, 3, 3, 0x108)
    trace.emit(SLICE_COMPLETE, 5, 3, 0x108, {"slice": 0})
    trace.emit(SLICE_COMPLETE, 7, 3, 0x108, {"slice": 1})
    trace.emit(COMMIT, 8, 3, 0x108, {"complete": 7, "mispredicted": False})
    rows = events_to_timeline(trace)
    assert [e.seq for e in rows] == [3]
    (row,) = rows
    assert row.fetch == 2 and row.dispatch == 3 and row.commit == 8
    assert row.slice_completions == (5, 7) and row.complete == 7


def test_render_single_event():
    events = [
        TimelineEvent(seq=1, pc=0, mnemonic="addu", text="addu $t0, $s0, $s0",
                      fetch=3, dispatch=4, slice_completions=(6,), complete=6, commit=8)
    ]
    text = render_timeline(events)
    lines = text.splitlines()
    assert len(lines) == 2
    assert "cycles 3..8" in lines[0]
    assert "F" in lines[1] and "C" in lines[1]


def test_offset_window_header_stays_aligned():
    """The cycle ruler must start where the timeline columns start, for
    any offset — including windows with wide sequence numbers."""
    events = [
        TimelineEvent(seq=10_000_000 + i, pc=0, mnemonic="addu", text="addu",
                      fetch=100 + 4 * i, dispatch=101 + 4 * i,
                      slice_completions=(103 + 4 * i,), complete=103 + 4 * i,
                      commit=105 + 4 * i)
        for i in range(12)
    ]
    for offset in (0, 5, 10):
        lines = render_timeline(events, limit=4, offset=offset).splitlines()
        gutter = lines[0].index("cycles")
        first = min(events[offset : offset + 4], key=lambda e: e.fetch)
        for line in lines[1:]:
            assert len(line) == len(lines[1])  # uniform row width
            if line.startswith(f"{first.seq}"):
                assert line.index("F") == gutter


def test_commit_on_final_scaled_column_never_overflows():
    """A commit landing on the last scaled column must clamp, not raise."""
    events = [
        TimelineEvent(seq=i, pc=0, mnemonic="addu", text="addu",
                      fetch=i * 97, dispatch=i * 97 + 1,
                      slice_completions=(i * 97 + 2,), complete=i * 97 + 2,
                      commit=i * 97 + 3)
        for i in range(30)
    ]
    for width in (7, 13, 60, 100):
        text = render_timeline(events, limit=30, max_width=width)
        last_row = text.splitlines()[-1]
        assert "C" in last_row
