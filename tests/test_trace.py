"""Trace records: fields, properties, and generator behaviour."""

from repro.emulator.machine import Machine
from repro.emulator.trace import trace_program
from repro.isa.assembler import assemble


def _trace(src: str, n: int = 1000):
    return list(trace_program(assemble(src), max_steps=n))


def test_trace_covers_whole_run():
    records = _trace("main: li $t0, 3\nloop: addiu $t0, $t0, -1\n bgtz $t0, loop\n halt\n")
    machine = Machine(assemble("main: li $t0, 3\nloop: addiu $t0, $t0, -1\n bgtz $t0, loop\n halt\n"))
    machine.run()
    assert len(records) == machine.instret


def test_branch_record_fields():
    records = _trace("main: li $t0, 1\n bgtz $t0, over\n nop\nover: halt\n")
    branch = next(r for r in records if r.inst.is_branch)
    assert branch.taken
    assert branch.next_pc == branch.pc + 8  # skips one instruction
    assert branch.rs_val == 1


def test_not_taken_branch_fallthrough():
    records = _trace("main: li $t0, 0\n bgtz $t0, over\n nop\nover: halt\n")
    branch = next(r for r in records if r.inst.is_branch)
    assert not branch.taken
    assert branch.next_pc == branch.fallthrough_pc


def test_load_store_records():
    records = _trace(
        """
        .data
        v: .word 17
        .text
        main: la $t1, v
        lw $t0, 0($t1)
        sw $t0, 4($t1)
        halt
        """
    )
    load = next(r for r in records if r.is_load)
    store = next(r for r in records if r.is_store)
    assert load.result == 17
    assert load.mem_size == 4
    assert store.mem_addr == load.mem_addr + 4
    assert store.result == 17


def test_non_memory_record_has_no_address():
    records = _trace("main: addiu $t0, $0, 1\n halt\n")
    assert records[0].mem_addr == -1
    assert records[0].mem_size == 0


def test_trace_skip():
    src = "main: li $t0, 10\nloop: addiu $t0, $t0, -1\n bgtz $t0, loop\n halt\n"
    full = list(trace_program(assemble(src)))
    skipped = list(trace_program(assemble(src), skip=5))
    assert len(skipped) == len(full) - 5
    assert skipped[0].pc == full[5].pc


def test_records_are_immutable():
    records = _trace("main: nop\n halt\n")
    import dataclasses

    assert dataclasses.fields(records[0])
    try:
        records[0].pc = 0
        raise AssertionError("should be frozen")
    except dataclasses.FrozenInstanceError:
        pass
