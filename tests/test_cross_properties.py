"""Cross-module properties tying the slice math to the architecture.

The central correctness premise of the paper's design — and of our
timing model — is that slice-wise computation reproduces the
architectural result exactly.  These properties check that premise
end-to-end: `repro.core.slicing` against the *emulator's* results, and
the early-branch analysis against actual machine branch outcomes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.branch.early import bits_to_detect_mispredict
from repro.core.slicing import (
    first_nonzero_slice,
    join_slices,
    sliced_add,
    sliced_logic,
    sliced_sub,
)
from repro.emulator.machine import Machine
from repro.isa.assembler import assemble

U32 = st.integers(0, 0xFFFFFFFF)
SLICES = st.sampled_from([2, 4])


def machine_result(op: str, a: int, b: int) -> int:
    machine = Machine(assemble(f"main: li $t0, {a}\n li $t1, {b}\n {op} $t2, $t0, $t1\n halt\n"))
    machine.run()
    return machine.regs[10]


@given(U32, U32, SLICES)
@settings(max_examples=60, deadline=None)
def test_sliced_add_equals_emulator(a, b, n):
    """The sliced adder and the emulator's addu agree bit-for-bit."""
    slices, _ = sliced_add(a, b, n)
    assert join_slices(slices) == machine_result("addu", a, b)


@given(U32, U32, SLICES)
@settings(max_examples=60, deadline=None)
def test_sliced_sub_equals_emulator(a, b, n):
    slices, _ = sliced_sub(a, b, n)
    assert join_slices(slices) == machine_result("subu", a, b)


@given(U32, U32, SLICES, st.sampled_from(["and", "or", "xor", "nor"]))
@settings(max_examples=60, deadline=None)
def test_sliced_logic_equals_emulator(a, b, n, op):
    assert join_slices(sliced_logic(op, a, b, n)) == machine_result(op, a, b)


@given(U32, U32)
@settings(max_examples=40, deadline=None)
def test_branch_outcome_consistent_with_slice_analysis(a, b):
    """The machine's beq outcome agrees with the slice-difference
    analysis used for early resolution."""
    machine = Machine(
        assemble(
            f"""
            main: li $t0, {a}
                  li $t1, {b}
                  li $t2, 0
                  beq $t0, $t1, eq
                  b done
            eq:   li $t2, 1
            done: halt
            """
        )
    )
    machine.run()
    taken = machine.regs[10] == 1
    assert taken == (a == b)
    for n in (2, 4):
        assert (first_nonzero_slice(a, b, n) is None) == taken


@given(U32, U32)
@settings(max_examples=40, deadline=None)
def test_early_detection_bits_match_machine_behaviour(a, b):
    """If the analysis says a bne misprediction (predicted not-taken,
    actually taken) is detectable with k bits, the machine's operands
    really do differ within those k bits — and the machine really does
    take the branch."""
    if a == b:
        return
    machine = Machine(
        assemble(
            f"""
            main: li $t0, {a}
                  li $t1, {b}
                  li $t2, 0
                  bne $t0, $t1, ne
                  b done
            ne:   li $t2, 1
            done: halt
            """
        )
    )
    machine.run()
    assert machine.regs[10] == 1  # taken
    needed = bits_to_detect_mispredict("bne", a, b, predicted_taken=False, actual_taken=True)
    mask = (1 << needed) - 1
    assert (a & mask) != (b & mask)
