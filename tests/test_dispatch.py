"""Differential tests: pre-bound fast dispatch vs. the golden reference.

The fast path must be bit-identical to ``Machine.step_reference()`` —
same ``TraceRecord`` stream, same architectural state, same faults.
Random programs (hypothesis) and a real benchmark slice are both driven
through the two interpreters in lockstep.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator.blocks import cross_check_blocks
from repro.emulator.dispatch import BINDERS, DispatchDivergence, bind, cross_check
from repro.emulator.machine import DISPATCH_ENV, Machine, default_dispatch
from repro.isa.assembler import TEXT_BASE, assemble
from repro.harness.errors import EmulatorError, IllegalInstruction
from repro.isa.instructions import Instruction
from repro.workloads import get_workload

from tests.test_differential import REGS, straight_line_program

_R_OPS = ("addu", "subu", "and", "or", "xor", "slt", "sltu")
_I_OPS = ("addiu", "andi", "ori", "xori", "slti")


@st.composite
def block_shaped_program(draw):
    """Source text shaped like what the blocks tier compiles.

    Tight counted loops (backward branches — superblock unrolling),
    forward branches (side exits), blocks of mixed length, contiguous
    and scattered memory traffic, stores adjacent to the text segment
    (both interpreters pre-decode, so they must agree), and syscalls
    landing mid-block (fallback path).
    """
    lines = ["main:"]
    for reg in REGS[:4]:
        lines.append(f" li {reg}, {draw(st.integers(0, 0xFFFF))}")
    lines.append(" addiu $s0, $sp, -256")  # memory scratch base
    n_loops = draw(st.integers(1, 3))
    for loop in range(n_loops):
        iters = draw(st.integers(1, 10))
        body_len = draw(st.integers(1, 12))  # mixed block lengths
        lines.append(f" li $s1, {iters}")
        lines.append(f"loop{loop}:")
        for _ in range(body_len):
            kind = draw(st.sampled_from(["r", "i", "mem", "memrun"]))
            rd = draw(st.sampled_from(REGS))
            rs = draw(st.sampled_from(REGS))
            if kind == "r":
                op = draw(st.sampled_from(_R_OPS))
                rt = draw(st.sampled_from(REGS))
                lines.append(f" {op} {rd}, {rs}, {rt}")
            elif kind == "i":
                op = draw(st.sampled_from(_I_OPS))
                imm = draw(st.integers(0, 0x7FFF))
                lines.append(f" {op} {rd}, {rs}, {imm}")
            elif kind == "mem":
                off = 4 * draw(st.integers(0, 60))
                if draw(st.booleans()):
                    lines.append(f" sw {rs}, {off}($s0)")
                else:
                    lines.append(f" lw {rd}, {off}($s0)")
            else:  # contiguous same-base run: exercises lw/sw batching
                op = draw(st.sampled_from(["sw", "lw"]))
                start = 4 * draw(st.integers(0, 32))
                for i in range(draw(st.integers(4, 6))):
                    reg = REGS[(draw(st.integers(0, 7)) + i) % len(REGS)]
                    lines.append(f" {op} {reg}, {start + 4 * i}($s0)")
        if draw(st.booleans()):  # forward branch: cold side exit
            rt = draw(st.sampled_from(REGS))
            lines.append(f" beq {rt}, {rt}, skip{loop}")
            lines.append(" addiu $t0, $t0, 1")  # dead under the always-taken beq
            lines.append(f"skip{loop}:")
        if draw(st.booleans()):  # syscall mid-stream: block split + fallback
            lines.append(" move $a0, $s1")
            lines.append(" li $v0, 1")
            lines.append(" syscall")
        if draw(st.booleans()):  # store adjacent to (into) the text segment
            lines.append(f" li $s2, {TEXT_BASE - 8}")
            lines.append(f" sw $s1, {draw(st.sampled_from([0, 4, 8, 12]))}($s2)")
        lines.append(" addiu $s1, $s1, -1")
        lines.append(f" bgtz $s1, loop{loop}")
    lines.append(" halt")
    return "\n".join(lines) + "\n"


@given(straight_line_program())
@settings(max_examples=40, deadline=None)
def test_random_programs_cross_check(case):
    source, _ops = case
    cross_check(assemble(source), max_steps=10_000)


@given(block_shaped_program())
@settings(max_examples=25, deadline=None)
def test_block_shaped_programs_blocks_lockstep(source):
    """Blocks tier vs reference, record-by-record, on loopy programs."""
    cross_check_blocks(assemble(source), max_steps=20_000)


@given(block_shaped_program())
@settings(max_examples=15, deadline=None)
def test_block_shaped_programs_three_way_parity(source):
    """reference x fast x blocks agree on trace, state, and output."""
    program = assemble(source)
    ref = Machine(program, dispatch="reference")
    fast = Machine(program, dispatch="fast")
    blk = Machine(program, dispatch="blocks", block_threshold=0)
    r_ref = list(ref.trace(20_000))
    r_fast = list(fast.trace(20_000))
    r_blk = list(blk.trace(20_000))
    assert r_ref == r_fast == r_blk
    assert ref.regs == fast.regs == blk.regs
    assert ref.pc == fast.pc == blk.pc
    assert ref.output == fast.output == blk.output


@pytest.mark.parametrize("name", ["li", "vortex"])
def test_benchmark_slice_identical_trace_streams(name):
    """A real benchmark slice produces identical TraceRecord streams."""
    program = get_workload(name).build(iters=1)
    fast = Machine(program, dispatch="fast")
    gold = Machine(program, dispatch="reference")
    fast_records = list(fast.trace(5_000))
    gold_records = list(gold.trace(5_000))
    assert fast_records == gold_records
    assert fast.regs == gold.regs
    assert fast.pc == gold.pc
    assert fast.instret == gold.instret


def test_cross_check_covers_control_memory_and_syscalls():
    """The helper exercises branches, memory, mult/div and syscalls."""
    source = """
main:   li   $t0, 10
        li   $t1, 0
loop:   addu $t1, $t1, $t0
        mult $t1, $t0
        mflo $t2
        sw   $t2, 0($sp)
        lw   $t3, 0($sp)
        addiu $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $t1
        li   $v0, 1
        syscall
        halt
"""
    retired = cross_check(assemble(source), max_steps=1_000)
    assert retired > 10


def test_divergence_is_reported():
    """A (deliberately) desynchronized pair raises DispatchDivergence."""
    program = assemble("main: li $t0, 1\n halt\n")
    fast = Machine(program, dispatch="fast")
    fast.regs[8] = 99  # corrupt one machine's state up front
    gold = Machine(program, dispatch="reference")
    with pytest.raises(DispatchDivergence):
        got = fast.step()
        want = gold.step_reference()
        if got != want:
            raise DispatchDivergence("streams diverged")
        raise AssertionError("corrupted state should have diverged")


def test_every_reference_mnemonic_has_a_binder():
    """The handler table covers the full executable ISA."""
    from repro.isa.encoding import ALL_MNEMONICS

    missing = sorted(set(ALL_MNEMONICS) - set(BINDERS))
    assert not missing, f"mnemonics without a fast-path binder: {missing}"


def test_unknown_mnemonic_faults_at_execute_time():
    handler = bind(Instruction("made-up-op"))
    machine = Machine(assemble("main: nop\n halt\n"))
    with pytest.raises(IllegalInstruction):
        handler(machine, True)


def test_fast_step_faults_match_reference():
    """PC faults raise the same IllegalInstruction either way."""
    for mode in ("fast", "reference"):
        machine = Machine(assemble("main: li $t0, 2\n jr $t0\n nop\n"), dispatch=mode)
        machine.step()
        machine.step()
        with pytest.raises(IllegalInstruction):
            machine.step()


def test_fast_step_after_halt_raises():
    machine = Machine(assemble("main: halt\n"), dispatch="fast")
    machine.run()
    assert machine.halted
    with pytest.raises(EmulatorError):
        machine.step()


def test_dispatch_env_selects_reference(monkeypatch):
    monkeypatch.setenv(DISPATCH_ENV, "reference")
    assert default_dispatch() == "reference"
    machine = Machine(assemble("main: nop\n halt\n"))
    assert machine.dispatch == "reference"
    assert machine._bound is None
    machine.run()
    assert machine.halted

    monkeypatch.setenv(DISPATCH_ENV, "fast")
    assert default_dispatch() == "fast"


def test_run_and_trace_agree_on_retired_count():
    """run() (no records) and trace() (records) retire identically."""
    program = get_workload("li").build(iters=1)
    runner = Machine(program, dispatch="fast")
    tracer = Machine(program, dispatch="fast")
    retired = runner.run(3_000)
    records = list(tracer.trace(3_000))
    assert retired == len(records) == 3_000
    assert runner.pc == tracer.pc
    assert runner.regs == tracer.regs
