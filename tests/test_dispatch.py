"""Differential tests: pre-bound fast dispatch vs. the golden reference.

The fast path must be bit-identical to ``Machine.step_reference()`` —
same ``TraceRecord`` stream, same architectural state, same faults.
Random programs (hypothesis) and a real benchmark slice are both driven
through the two interpreters in lockstep.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.emulator.dispatch import BINDERS, DispatchDivergence, bind, cross_check
from repro.emulator.machine import DISPATCH_ENV, Machine, default_dispatch
from repro.harness.errors import EmulatorError, IllegalInstruction
from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction
from repro.workloads import get_workload

from tests.test_differential import straight_line_program


@given(straight_line_program())
@settings(max_examples=40, deadline=None)
def test_random_programs_cross_check(case):
    source, _ops = case
    cross_check(assemble(source), max_steps=10_000)


@pytest.mark.parametrize("name", ["li", "vortex"])
def test_benchmark_slice_identical_trace_streams(name):
    """A real benchmark slice produces identical TraceRecord streams."""
    program = get_workload(name).build(iters=1)
    fast = Machine(program, dispatch="fast")
    gold = Machine(program, dispatch="reference")
    fast_records = list(fast.trace(5_000))
    gold_records = list(gold.trace(5_000))
    assert fast_records == gold_records
    assert fast.regs == gold.regs
    assert fast.pc == gold.pc
    assert fast.instret == gold.instret


def test_cross_check_covers_control_memory_and_syscalls():
    """The helper exercises branches, memory, mult/div and syscalls."""
    source = """
main:   li   $t0, 10
        li   $t1, 0
loop:   addu $t1, $t1, $t0
        mult $t1, $t0
        mflo $t2
        sw   $t2, 0($sp)
        lw   $t3, 0($sp)
        addiu $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $t1
        li   $v0, 1
        syscall
        halt
"""
    retired = cross_check(assemble(source), max_steps=1_000)
    assert retired > 10


def test_divergence_is_reported():
    """A (deliberately) desynchronized pair raises DispatchDivergence."""
    program = assemble("main: li $t0, 1\n halt\n")
    fast = Machine(program, dispatch="fast")
    fast.regs[8] = 99  # corrupt one machine's state up front
    gold = Machine(program, dispatch="reference")
    with pytest.raises(DispatchDivergence):
        got = fast.step()
        want = gold.step_reference()
        if got != want:
            raise DispatchDivergence("streams diverged")
        raise AssertionError("corrupted state should have diverged")


def test_every_reference_mnemonic_has_a_binder():
    """The handler table covers the full executable ISA."""
    from repro.isa.encoding import ALL_MNEMONICS

    missing = sorted(set(ALL_MNEMONICS) - set(BINDERS))
    assert not missing, f"mnemonics without a fast-path binder: {missing}"


def test_unknown_mnemonic_faults_at_execute_time():
    handler = bind(Instruction("made-up-op"))
    machine = Machine(assemble("main: nop\n halt\n"))
    with pytest.raises(IllegalInstruction):
        handler(machine, True)


def test_fast_step_faults_match_reference():
    """PC faults raise the same IllegalInstruction either way."""
    for mode in ("fast", "reference"):
        machine = Machine(assemble("main: li $t0, 2\n jr $t0\n nop\n"), dispatch=mode)
        machine.step()
        machine.step()
        with pytest.raises(IllegalInstruction):
            machine.step()


def test_fast_step_after_halt_raises():
    machine = Machine(assemble("main: halt\n"), dispatch="fast")
    machine.run()
    assert machine.halted
    with pytest.raises(EmulatorError):
        machine.step()


def test_dispatch_env_selects_reference(monkeypatch):
    monkeypatch.setenv(DISPATCH_ENV, "reference")
    assert default_dispatch() == "reference"
    machine = Machine(assemble("main: nop\n halt\n"))
    assert machine.dispatch == "reference"
    assert machine._bound is None
    machine.run()
    assert machine.halted

    monkeypatch.setenv(DISPATCH_ENV, "fast")
    assert default_dispatch() == "fast"


def test_run_and_trace_agree_on_retired_count():
    """run() (no records) and trace() (records) retire identically."""
    program = get_workload("li").build(iters=1)
    runner = Machine(program, dispatch="fast")
    tracer = Machine(program, dispatch="fast")
    retired = runner.run(3_000)
    records = list(tracer.trace(3_000))
    assert retired == len(records) == 3_000
    assert runner.pc == tracer.pc
    assert runner.regs == tracer.regs
