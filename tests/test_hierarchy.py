"""Memory hierarchy latencies and inclusion behaviour."""

from repro.memsys.hierarchy import MemoryHierarchy, Table2Hierarchy


def test_table2_latencies():
    h = Table2Hierarchy()
    cold = h.access_data(0x1000_0000)
    assert not cold.l1_hit and not cold.l2_hit
    assert cold.latency == 1 + 6 + 100
    warm = h.access_data(0x1000_0000)
    assert warm.l1_hit and warm.latency == 1


def test_l2_hit_after_l1_eviction():
    h = MemoryHierarchy()
    base = 0x1000_0000
    h.access_data(base)
    # Evict from the 4-way L1 set by touching 4 conflicting lines
    # (same L1 set => index bits equal; stride = one L1 way size).
    stride = h.l1d.config.num_sets * h.l1d.config.line_size
    for i in range(1, 5):
        h.access_data(base + i * stride)
    result = h.access_data(base)
    assert not result.l1_hit
    assert result.l2_hit
    assert result.latency == 1 + 6


def test_instruction_and_data_paths_are_separate():
    h = MemoryHierarchy()
    h.access_instruction(0x0040_0000)
    result = h.access_data(0x0040_0000)
    # L1D missed, but unified L2 already holds the line.
    assert not result.l1_hit and result.l2_hit


def test_slice4_l1_latency():
    h = Table2Hierarchy(l1_latency=2)
    h.access_data(0x2000)
    assert h.access_data(0x2000).latency == 2


def test_reset_stats():
    h = MemoryHierarchy()
    h.access_data(0)
    h.access_instruction(0)
    h.reset_stats()
    assert h.l1d.accesses == 0 and h.l1i.accesses == 0 and h.l2.accesses == 0
