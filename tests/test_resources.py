"""Bandwidth pools and exclusive units."""

import pytest

from repro.timing.resources import BandwidthPool, ExclusiveUnit


def test_pool_width_enforced():
    pool = BandwidthPool(2)
    assert pool.reserve(10) == 10
    assert pool.reserve(10) == 10
    assert pool.reserve(10) == 11  # third request spills to next cycle


def test_pool_is_monotone_under_increasing_requests():
    pool = BandwidthPool(1)
    cycles = [pool.reserve(c) for c in range(100)]
    assert cycles == sorted(cycles)


def test_pool_backfills_earlier_free_cycles():
    pool = BandwidthPool(1)
    pool.reserve(5)
    assert pool.reserve(3) == 3  # cycle 3 still free


def test_pool_rejects_bad_width():
    with pytest.raises(ValueError):
        BandwidthPool(0)


def test_pool_prunes_without_losing_recent_state():
    pool = BandwidthPool(1)
    for c in range(0, 10_000, 2):
        pool.reserve(c)
    # Still correct near the frontier.
    assert pool.reserve(9_998) == 9_999


def test_exclusive_unit_serializes():
    unit = ExclusiveUnit()
    assert unit.reserve(0, 10) == 0
    assert unit.reserve(5, 3) == 10  # busy until 10
    assert unit.reserve(50, 1) == 50
