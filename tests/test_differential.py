"""Differential testing: random programs vs. an independent oracle.

Hypothesis generates random straight-line ALU programs; an
intentionally separate, dictionary-based Python interpreter (the
oracle) computes the expected final register state, and the emulator
must match exactly.  A second property drives the timing simulator over
the same random programs and checks its global invariants.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import baseline_config, bitslice_config
from repro.emulator.machine import Machine
from repro.isa.assembler import assemble
from repro.timing.simulator import simulate

_M = 0xFFFFFFFF

#: Registers the generated programs use ($t0..$t7).
REGS = [f"$t{i}" for i in range(8)]
REG_NUMS = {f"$t{i}": 8 + i for i in range(8)}

_R_OPS = ("addu", "subu", "and", "or", "xor", "nor", "slt", "sltu")
_I_OPS = ("addiu", "andi", "ori", "xori", "slti", "sltiu")
_SHIFTS = ("sll", "srl", "sra")


@st.composite
def straight_line_program(draw):
    """(source_text, op_list) for a random ALU program."""
    ops: list[tuple] = []
    lines = ["main:"]
    # Seed registers with random 32-bit values.
    for reg in REGS:
        value = draw(st.integers(0, _M))
        lines.append(f" li {reg}, {value}")
        ops.append(("li", reg, value))
    for _ in range(draw(st.integers(1, 40))):
        kind = draw(st.sampled_from(["r", "i", "shift"]))
        rd = draw(st.sampled_from(REGS))
        rs = draw(st.sampled_from(REGS))
        if kind == "r":
            op = draw(st.sampled_from(_R_OPS))
            rt = draw(st.sampled_from(REGS))
            lines.append(f" {op} {rd}, {rs}, {rt}")
            ops.append((op, rd, rs, rt))
        elif kind == "i":
            op = draw(st.sampled_from(_I_OPS))
            imm = draw(st.integers(0, 0xFFFF)) if op in ("andi", "ori", "xori") else draw(
                st.integers(-0x8000, 0x7FFF)
            )
            lines.append(f" {op} {rd}, {rs}, {imm}")
            ops.append((op, rd, rs, imm))
        else:
            op = draw(st.sampled_from(_SHIFTS))
            sh = draw(st.integers(0, 31))
            lines.append(f" {op} {rd}, {rs}, {sh}")
            ops.append((op, rd, rs, sh))
    lines.append(" halt")
    return "\n".join(lines), ops


def _signed(x: int) -> int:
    return x - 0x1_0000_0000 if x & 0x8000_0000 else x


def oracle(ops) -> dict[str, int]:
    """Deliberately independent interpreter over the op list."""
    regs = {r: 0 for r in REGS}
    for op, *rest in ops:
        if op == "li":
            rd, value = rest
            regs[rd] = value & _M
            continue
        rd, rs, third = rest
        a = regs[rs]
        if op in ("sll", "srl", "sra"):
            sh = third
            if op == "sll":
                regs[rd] = (a << sh) & _M
            elif op == "srl":
                regs[rd] = a >> sh
            else:
                regs[rd] = (_signed(a) >> sh) & _M
            continue
        b = regs[third] if isinstance(third, str) else None
        imm = third if not isinstance(third, str) else None
        if op == "addu":
            regs[rd] = (a + b) & _M
        elif op == "subu":
            regs[rd] = (a - b) & _M
        elif op == "and":
            regs[rd] = a & b
        elif op == "or":
            regs[rd] = a | b
        elif op == "xor":
            regs[rd] = a ^ b
        elif op == "nor":
            regs[rd] = ~(a | b) & _M
        elif op == "slt":
            regs[rd] = int(_signed(a) < _signed(b))
        elif op == "sltu":
            regs[rd] = int(a < b)
        elif op == "addiu":
            regs[rd] = (a + imm) & _M
        elif op == "andi":
            regs[rd] = a & (imm & 0xFFFF)
        elif op == "ori":
            regs[rd] = a | (imm & 0xFFFF)
        elif op == "xori":
            regs[rd] = a ^ (imm & 0xFFFF)
        elif op == "slti":
            regs[rd] = int(_signed(a) < imm)
        elif op == "sltiu":
            regs[rd] = int(a < (imm & _M))
        else:  # pragma: no cover
            raise AssertionError(op)
    return regs


@given(straight_line_program())
@settings(max_examples=120, deadline=None)
def test_emulator_matches_oracle(program):
    source, ops = program
    machine = Machine(assemble(source))
    machine.run(10_000)
    assert machine.halted
    expected = oracle(ops)
    for reg, value in expected.items():
        assert machine.regs[REG_NUMS[reg]] == value, reg


@given(straight_line_program())
@settings(max_examples=30, deadline=None)
def test_timing_invariants_on_random_programs(program):
    source, _ = program
    trace = tuple(Machine(assemble(source)).trace(10_000))
    ideal = simulate(baseline_config(), trace)
    sliced = simulate(bitslice_config(2), trace)
    # Global invariants, independent of the program:
    assert ideal.instructions == sliced.instructions == len(trace)
    assert 0 < ideal.ipc <= 4.0
    assert sliced.cycles >= ideal.cycles  # slicing never wins outright
    assert sliced.cycles <= ideal.cycles * 3 + 50  # and never explodes


@given(straight_line_program())
@settings(max_examples=20, deadline=None)
def test_timeline_consistency_on_random_programs(program):
    from repro.timing.simulator import TimingSimulator

    source, _ = program
    trace = tuple(Machine(assemble(source)).trace(10_000))
    sim = TimingSimulator(bitslice_config(4), record_timeline=True)
    stats = sim.run(iter(trace))
    assert len(sim.timeline) == stats.instructions
    commits = [e.commit for e in sim.timeline]
    assert commits == sorted(commits)
    for e in sim.timeline:
        assert e.fetch <= e.dispatch <= e.complete <= e.commit
