"""Inter-slice dependence rules (paper Figure 8)."""

import pytest

from repro.core.dependences import input_slices_needed, intra_slice_dependency, slice_issue_order
from repro.isa.opclass import OpClass


def test_logic_needs_own_slice_only():
    for k in range(4):
        assert input_slices_needed(OpClass.LOGIC, k, 4) == (k,)
        assert intra_slice_dependency(OpClass.LOGIC, k, 4) is None


def test_zero_test_like_logic():
    for k in range(4):
        assert input_slices_needed(OpClass.ZERO_TEST, k, 4) == (k,)
        assert intra_slice_dependency(OpClass.ZERO_TEST, k, 4) is None


def test_arith_carry_chain():
    assert intra_slice_dependency(OpClass.ARITH, 0, 4) is None
    for k in range(1, 4):
        assert intra_slice_dependency(OpClass.ARITH, k, 4) == k - 1
        assert input_slices_needed(OpClass.ARITH, k, 4) == (k,)


def test_shift_left_pulls_lower_slices():
    assert input_slices_needed(OpClass.SHIFT_LEFT, 2, 4) == (0, 1, 2)
    assert intra_slice_dependency(OpClass.SHIFT_LEFT, 2, 4) == 1


def test_shift_right_pulls_higher_slices():
    assert input_slices_needed(OpClass.SHIFT_RIGHT, 1, 4) == (1, 2, 3)
    assert intra_slice_dependency(OpClass.SHIFT_RIGHT, 1, 4) == 2
    assert intra_slice_dependency(OpClass.SHIFT_RIGHT, 3, 4) is None


def test_compare_and_full_need_everything():
    for klass in (OpClass.COMPARE, OpClass.FULL):
        assert input_slices_needed(klass, 0, 4) == (0, 1, 2, 3)
        assert intra_slice_dependency(klass, 0, 4) is None


def test_issue_order():
    assert slice_issue_order(OpClass.ARITH, 4) == (0, 1, 2, 3)
    assert slice_issue_order(OpClass.SHIFT_RIGHT, 4) == (3, 2, 1, 0)


def test_bounds_checked():
    with pytest.raises(ValueError):
        input_slices_needed(OpClass.LOGIC, 4, 4)
    with pytest.raises(ValueError):
        intra_slice_dependency(OpClass.ARITH, -1, 4)


def test_chains_are_acyclic():
    """Following intra-slice dependencies always terminates."""
    for klass in OpClass:
        for start in range(4):
            seen = set()
            k = start
            while k is not None:
                assert k not in seen
                seen.add(k)
                k = intra_slice_dependency(klass, k, 4)
