"""Every example script must run (bit-rot guard).

Each example is executed in a subprocess; where a script accepts
arguments, small ones keep the suite fast.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 600) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3, "the deliverable requires at least three examples"


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Table 2" in out
    assert "IPC" in out
    assert "bit-sliced" in out


def test_pipeline_viewer():
    out = run_example("pipeline_viewer.py")
    assert "Legend" in out
    assert "ideal" in out and "bitslice-2" in out
    assert "F" in out and "C" in out


def test_run_table1():
    out = run_example("run_table1.py", "-n", "3000", "go")
    assert "Table 1" in out and "go" in out


def test_sweep_slicing():
    out = run_example("sweep_slicing.py", "go", "-n", "3000", "--slices", "2")
    assert "Figure 11" in out and "Figure 12" in out


def test_custom_workload():
    out = run_example("custom_workload.py")
    assert "histogram:" in out
    assert "IPC" in out


def test_workload_profiles():
    out = run_example("workload_profiles.py", "go", "vpr")
    assert "go" in out and "vpr" in out and "wset" in out


@pytest.mark.parametrize("name", ["li_early_branches.py", "vortex_partial_tags.py"])
def test_domain_examples(name):
    out = run_example(name)
    assert "IPC" in out


def test_kernel_gallery():
    out = run_example("kernel_gallery.py")
    assert "FAIL" not in out
    assert out.count("OK") >= 5
