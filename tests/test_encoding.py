"""Instruction encode/decode, including a hypothesis round-trip."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa.encoding import (
    ALL_MNEMONICS,
    FUNCTS,
    OPCODES,
    REGIMM,
    EncodingError,
    decode,
    encode,
)
from repro.isa.instructions import Instruction


def test_mnemonic_tables_disjoint():
    assert not set(OPCODES) & set(FUNCTS)
    assert not set(OPCODES) & set(REGIMM)


def test_encode_r_type_fields():
    word = encode(Instruction("addu", rs=1, rt=2, rd=3))
    assert word >> 26 == 0
    assert (word >> 21) & 0x1F == 1
    assert (word >> 16) & 0x1F == 2
    assert (word >> 11) & 0x1F == 3
    assert word & 0x3F == FUNCTS["addu"]


def test_decode_sign_extends_branch_offsets():
    inst = decode(encode(Instruction("beq", rs=1, rt=2, imm=-5)))
    assert inst.imm == -5


def test_decode_zero_extends_logical_imm():
    inst = decode(encode(Instruction("ori", rs=1, rt=2, imm=0xFFFF)))
    assert inst.imm == 0xFFFF


def test_jump_target_26_bits():
    inst = decode(encode(Instruction("j", target=0x3FFFFFF)))
    assert inst.target == 0x3FFFFFF
    with pytest.raises(EncodingError):
        encode(Instruction("j", target=1 << 26))


def test_unknown_mnemonic_rejected():
    with pytest.raises(EncodingError):
        encode(Instruction("frobnicate"))


def test_unknown_opcode_rejected():
    with pytest.raises(EncodingError):
        decode(0xFC00_0000)  # opcode 63


def test_unknown_funct_rejected():
    with pytest.raises(EncodingError):
        decode(0x0000_003F)  # funct 63


def test_immediate_range_check():
    with pytest.raises(EncodingError):
        encode(Instruction("addiu", rs=0, rt=1, imm=0x12345))


_regs = st.integers(0, 31)


@st.composite
def instructions(draw):
    m = draw(st.sampled_from(sorted(ALL_MNEMONICS)))
    if m in FUNCTS:
        return Instruction(
            m, rs=draw(_regs), rt=draw(_regs), rd=draw(_regs), shamt=draw(st.integers(0, 31))
        )
    if m in REGIMM:
        return Instruction(m, rs=draw(_regs), imm=draw(st.integers(-0x8000, 0x7FFF)))
    if m in ("j", "jal"):
        return Instruction(m, target=draw(st.integers(0, (1 << 26) - 1)))
    if m in ("andi", "ori", "xori", "lui"):
        imm = draw(st.integers(0, 0xFFFF))
    else:
        imm = draw(st.integers(-0x8000, 0x7FFF))
    return Instruction(m, rs=draw(_regs), rt=draw(_regs), imm=imm)


@given(instructions())
def test_encode_decode_roundtrip(inst):
    word = encode(inst)
    assert 0 <= word < (1 << 32)
    again = decode(word)
    assert encode(again) == word
    assert again.mnemonic == inst.mnemonic


@given(instructions())
def test_roundtrip_preserves_dataflow(inst):
    again = decode(encode(inst))
    assert again.src_regs() == inst.src_regs()
    assert again.dst_regs() == inst.dst_regs()
