"""Shared fixtures: small, fast traces and programs for tests.

Workload traces here use explicit tiny iteration counts and skip=0 so
tests never trigger the (expensive) steady-state skip estimation.
"""

from __future__ import annotations

import pytest

from repro.emulator import blocks
from repro.emulator.machine import Machine, set_dispatch_mode
from repro.experiments import runner, supervisor, trace_cache
from repro.obs import guestprof
from repro.isa.assembler import assemble
from repro.workloads import get_workload


@pytest.fixture(autouse=True)
def _isolate_runner_globals(monkeypatch):
    """Keep the runner's process-global knobs from leaking across tests.

    ``set_wall_timeout`` and the persistent trace cache are module
    state; a test that sets either must not change the behaviour of
    every test that runs after it.  The cache is disabled both
    explicitly and via the environment (the CLI's ``main()`` resets the
    explicit configuration, so the env layer is what actually protects
    CLI tests) — the suite never reads or writes ``~/.cache``.  Cache
    tests opt back in with ``trace_cache.configure(tmp_path,
    enabled=True)``.
    """
    monkeypatch.setenv(trace_cache.ENV_VAR, "off")
    trace_cache.configure(enabled=False)
    trace_cache.reset_stats()
    yield
    runner.set_wall_timeout(None)
    runner._budget_overrides.clear()
    trace_cache.configure(enabled=False)
    trace_cache.reset_stats()
    supervisor.reset_stats()
    set_dispatch_mode(None)
    blocks.reset_stats()
    guestprof.end_guest_profile()


@pytest.fixture(scope="session")
def small_traces():
    """name → tuple of trace records (short, init-inclusive)."""

    def collect(name: str, n: int = 4000, iters: int = 1):
        machine = Machine(get_workload(name).build(iters))
        return tuple(machine.trace(n))

    return {
        "bzip": collect("bzip"),
        "li": collect("li"),
        "mcf": collect("mcf"),
        "vortex": collect("vortex"),
    }


@pytest.fixture()
def asm_run():
    """Helper: assemble source, run to halt, return the machine."""

    def run(source: str, max_steps: int = 200_000) -> Machine:
        machine = Machine(assemble(source))
        machine.run(max_steps)
        return machine

    return run
