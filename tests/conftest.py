"""Shared fixtures: small, fast traces and programs for tests.

Workload traces here use explicit tiny iteration counts and skip=0 so
tests never trigger the (expensive) steady-state skip estimation.
"""

from __future__ import annotations

import pytest

from repro.emulator.machine import Machine
from repro.isa.assembler import assemble
from repro.workloads import get_workload


@pytest.fixture(scope="session")
def small_traces():
    """name → tuple of trace records (short, init-inclusive)."""

    def collect(name: str, n: int = 4000, iters: int = 1):
        machine = Machine(get_workload(name).build(iters))
        return tuple(machine.trace(n))

    return {
        "bzip": collect("bzip"),
        "li": collect("li"),
        "mcf": collect("mcf"),
        "vortex": collect("vortex"),
    }


@pytest.fixture()
def asm_run():
    """Helper: assemble source, run to halt, return the machine."""

    def run(source: str, max_steps: int = 200_000) -> Machine:
        machine = Machine(assemble(source))
        machine.run(max_steps)
        return machine

    return run
