"""Workload suite: determinism, self-checks, and instruction-mix sanity."""

import pytest

from repro.emulator.machine import Machine
from repro.isa.opclass import OpClass, op_class
from repro.workloads import BENCHMARK_NAMES, build_program, get_workload, iter_workloads


def test_all_eleven_benchmarks_present():
    assert len(BENCHMARK_NAMES) == 11
    assert set(BENCHMARK_NAMES) == {
        "bzip", "gcc", "go", "gzip", "ijpeg", "li",
        "mcf", "parser", "twolf", "vortex", "vpr",
    }


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        get_workload("crafty")


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_workload_runs_to_completion(name):
    machine = get_workload(name).run(iters=1)
    assert machine.halted
    assert machine.stdout.startswith(f"{name}:")


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_workload_deterministic(name):
    a = get_workload(name).run(iters=1).stdout
    b = get_workload(name).run(iters=1).stdout
    assert a == b


def test_iterations_change_behaviour():
    one = get_workload("bzip").run(iters=1)
    two = get_workload("bzip").run(iters=2)
    assert two.instret > one.instret


def test_build_program_cached():
    assert build_program("li", 1) is build_program("li", 1)


def test_iter_workloads_order():
    assert [w.name for w in iter_workloads()] == list(BENCHMARK_NAMES)


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_instruction_mix_is_plausible(name):
    """Every workload must exercise loads, stores and branches in
    realistic proportions (Table 1 loads are ~20-35%; we accept a
    looser band for the synthetic kernels)."""
    machine = Machine(get_workload(name).build(iters=1))
    loads = stores = control = total = 0
    for record in machine.trace(30_000):
        total += 1
        if record.is_load:
            loads += 1
        elif record.is_store:
            stores += 1
        elif record.inst.is_control:
            control += 1
    assert total > 1000
    assert loads / total > 0.01, "workload exercises loads"
    assert stores / total > 0.005, "workload exercises stores"
    assert control / total > 0.04, "workload exercises control flow"


def test_li_contains_figure5_idiom():
    """The li kernel embeds the exact lbu/andi/bne sequence of Figure 5."""
    source = get_workload("li").source()
    assert "lbu" in source and "andi" in source
    idx = source.index("mark_walk")
    window = source[idx : idx + 400]
    assert "lbu" in window and "andi" in window and "bne" in window


def test_vortex_contains_figure9_idiom():
    """vortex forms record addresses via sll/(lui)/addu then lw."""
    source = get_workload("vortex").source()
    idx = source.index("txn:")
    window = source[idx : idx + 400]
    assert "sll" in window and "addu" in window and "lw" in window


def test_workloads_touch_multdiv_somewhere():
    """At least one workload exercises the FULL op class (ijpeg)."""
    machine = Machine(get_workload("ijpeg").build(iters=1))
    classes = set()
    for record in machine.trace(400_000):
        classes.add(op_class(record.inst.mnemonic))
        if OpClass.FULL in classes:
            break
    assert OpClass.FULL in classes


def test_skip_hint_reasonable():
    w = get_workload("vpr")
    assert 0 <= w.skip_hint < 10_000  # vpr re-initializes per route: no one-time init


def test_trace_helper_skips(monkeypatch):
    w = get_workload("go")
    records = list(w.trace(max_steps=100, skip=50))
    assert len(records) == 100
