"""Executor functions for :mod:`tests.test_supervisor`'s worker pools.

Workers resolve executors by qualified name (``module:function``), so
these must live in an importable module — a test-local ``def`` would
not survive the trip through ``spawn``.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path


def echo(payload):
    """Return the payload unchanged."""
    return payload


def boom(payload):
    """Always fail, deterministically."""
    raise ValueError(f"boom:{payload[0]}")


def die(payload):
    """SIGKILL the worker mid-cell (no Python teardown runs)."""
    os.kill(os.getpid(), signal.SIGKILL)


def stall(payload):
    """Sleep far past any sane cell timeout."""
    time.sleep(float(payload[0]))
    return "never reached in stall tests"


def flaky(payload):
    """Fail (by SIGKILL) until a marker file exists, then succeed.

    The marker directory is shared with the parent, so the test can
    count how many attempts the poison phase consumed.
    """
    marker_dir, task_id, fail_times = Path(payload[0]), payload[1], int(payload[2])
    attempts = len(list(marker_dir.glob(f"{task_id}.attempt.*")))
    (marker_dir / f"{task_id}.attempt.{attempts}").touch()
    if attempts < fail_times:
        os.kill(os.getpid(), signal.SIGKILL)
    return ("ok", task_id, attempts + 1)
