"""Vectorized characterization kernels: exact equivalence with scalar."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.characterization.lsq_char import characterize_lsq
from repro.characterization.tag_char import characterize_tags
from repro.characterization.vectorized import (
    characterize_lsq_fast,
    characterize_tags_fast,
    first_diff_bits,
    lsd_category_curve,
    tag_outcome_curve,
)
from repro.lsq.disambiguation import classify_disambiguation
from repro.memsys.cache import CacheConfig
from repro.memsys.partial_tag import classify_partial_tag

ADDR = st.integers(0, 0xFFFFFFFF)


@given(ADDR, st.lists(ADDR, min_size=1, max_size=10))
def test_first_diff_bits_matches_scalar(probe, entries):
    fdb = first_diff_bits(probe, np.asarray(entries, dtype=np.uint64))
    for e, d in zip(entries, fdb):
        diff = (probe ^ e) & 0xFFFFFFFC
        expected = 32 if diff == 0 else (diff & -diff).bit_length() - 1
        assert d == expected


@given(ADDR, st.lists(ADDR, max_size=10))
@settings(max_examples=200)
def test_lsd_curve_equals_scalar_classification(load, stores):
    curve = lsd_category_curve(load, stores)
    for b in range(2, 32):
        assert curve[b - 2] is classify_disambiguation(load, stores, b), b


@given(
    st.integers(0, 2**18 - 1),
    st.lists(st.integers(0, 2**18 - 1), max_size=8, unique=True),
)
@settings(max_examples=200)
def test_tag_curve_equals_scalar_classification(full_tag, resident):
    curve = tag_outcome_curve(full_tag, resident, 18)
    for b in range(1, 19):
        assert curve[b - 1] is classify_partial_tag(full_tag, resident, b, 18), b


def test_characterize_lsq_fast_equivalent(small_traces):
    trace = small_traces["bzip"]
    bits = (2, 5, 9, 15, 31)
    slow = characterize_lsq(trace, lsq_size=32, bits=bits)
    fast = characterize_lsq_fast(trace, lsq_size=32, bits=bits)
    assert slow.loads == fast.loads
    assert slow.counts == fast.counts


def test_characterize_tags_fast_equivalent(small_traces):
    trace = small_traces["vortex"]
    cfg = CacheConfig(size=8 * 1024, assoc=4, line_size=32)
    bits = (1, 3, 6, cfg.tag_bits)
    slow = characterize_tags(trace, cfg, bits=bits, warmup=500)
    fast = characterize_tags_fast(trace, cfg, bits=bits, warmup=500)
    assert slow.accesses == fast.accesses
    assert slow.counts == fast.counts


def test_empty_store_window_curve():
    curve = lsd_category_curve(0x1234, [])
    assert len(curve) == 30
    assert all(c.name == "NO_STORES" for c in curve)


def test_empty_set_tag_curve():
    curve = tag_outcome_curve(5, [], 18)
    assert all(c.name == "ZERO" for c in curve)
