"""Observability layer: registry, events, profiler, manifest, session."""

import json

import pytest

from repro.obs.events import (
    COMMIT,
    FETCH,
    REPLAY,
    EventTrace,
    to_chrome_trace,
    validate_event,
    validate_jsonl_file,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.manifest import (
    build_manifest,
    load_bench_snapshot,
    validate_bench_snapshot,
    validate_manifest,
    write_bench_snapshot,
)
from repro.obs.profiler import PhaseProfiler
from repro.obs.registry import MetricsRegistry, validate_metrics_dump
from repro.obs.session import ObsSession, active_session, end_session, start_session


# ---------------------------------------------------------------- registry

def test_counter_gauge_accumulate():
    reg = MetricsRegistry()
    reg.counter("sim.loads").inc(3)
    reg.counter("sim.loads").inc(2)          # get-or-create: same metric
    reg.gauge("sim.occupancy").set(7.5)
    assert reg.get("sim.loads").value == 5
    assert reg.get("sim.occupancy").value == 7.5


def test_kind_conflict_rejected():
    reg = MetricsRegistry()
    reg.counter("a.b")
    with pytest.raises(TypeError):
        reg.gauge("a.b")


def test_bad_names_rejected():
    reg = MetricsRegistry()
    for bad in ("", ".", "a..b", "a."):
        with pytest.raises(ValueError):
            reg.counter(bad)


def test_histogram_log2_buckets():
    reg = MetricsRegistry()
    h = reg.histogram("lat")
    for v in (0, 1, 2, 3, 4, 1000):
        h.observe(v)
    assert h.count == 6 and h.total == 1010
    b = h.nonzero_buckets()
    assert b["le_2**0"] == 2       # 0 and 1
    assert b["le_2**1"] == 1       # 2
    assert b["le_2**2"] == 2       # 3, 4
    assert b["le_2**10"] == 1      # 1000
    assert h.mean == pytest.approx(1010 / 6)


def test_timer_context_manager():
    reg = MetricsRegistry()
    with reg.timer("phase"):
        pass
    t = reg.get("phase")
    assert t.calls == 1 and t.seconds >= 0


def test_callback_gauge_reads_live_object():
    reg = MetricsRegistry()
    state = {"v": 1}
    reg.callback_gauge("live", lambda: state["v"])
    assert reg.get("live").value == 1
    state["v"] = 42
    assert reg.to_dict()["metrics"]["live"]["value"] == 42


def test_subtree_selects_prefix():
    reg = MetricsRegistry()
    reg.counter("sim.l1d.hits")
    reg.counter("sim.l1d.misses")
    reg.counter("emulate.instructions")
    assert set(reg.subtree("sim.l1d")) == {"sim.l1d.hits", "sim.l1d.misses"}
    assert set(reg.subtree("sim")) == {"sim.l1d.hits", "sim.l1d.misses"}


def test_dump_roundtrip_and_merge():
    a = MetricsRegistry()
    a.counter("c").inc(2)
    a.histogram("h").observe(5)
    a.timer("t").add(0.5)
    a.gauge("g").set(1.0)
    dump = a.to_dict()
    validate_metrics_dump(dump)
    b = MetricsRegistry()
    b.counter("c").inc(1)
    b.merge_dump(dump)
    assert b.get("c").value == 3
    assert b.get("h").count == 1
    assert b.get("t").seconds == pytest.approx(0.5)
    assert b.get("g").value == 1.0


def test_validate_metrics_dump_rejects_garbage():
    with pytest.raises(ValueError):
        validate_metrics_dump({"format": 99, "metrics": {}})
    with pytest.raises(ValueError):
        validate_metrics_dump({"format": 1, "metrics": {"x": {"kind": "nope"}}})
    with pytest.raises(ValueError):
        validate_metrics_dump({"format": 1, "metrics": {"x": {"kind": "counter"}}})


# ------------------------------------------------------------------ events

def test_ring_buffer_bounds_and_counts_drops():
    trace = EventTrace(capacity=4)
    for i in range(10):
        trace.emit(FETCH, i, i, 0x400000 + 4 * i)
    assert len(trace) == 4
    assert trace.emitted == 10
    assert trace.dropped == 6
    assert [e.cycle for e in trace] == [6, 7, 8, 9]


def test_unbounded_trace_keeps_everything():
    trace = EventTrace(capacity=None)
    for i in range(1000):
        trace.emit(COMMIT, i, i, 0)
    assert len(trace) == 1000 and trace.dropped == 0


def test_jsonl_roundtrip_validates(tmp_path):
    trace = EventTrace()
    trace.emit(FETCH, 5, 1, 0x400000, {"mnemonic": "addu"})
    trace.emit(REPLAY, 9, 1, 0x400000, {"reason": "l1d_miss"})
    path = tmp_path / "events.jsonl"
    assert write_jsonl(trace, path) == 2
    assert validate_jsonl_file(path) == 2
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0]["kind"] == "fetch" and lines[1]["args"]["reason"] == "l1d_miss"


def test_validate_event_rejects_bad_shapes():
    with pytest.raises(ValueError):
        validate_event({"kind": "fetch", "cycle": 1, "seq": 1})       # no pc
    with pytest.raises(ValueError):
        validate_event({"kind": "warp", "cycle": 1, "seq": 1, "pc": 0})
    with pytest.raises(ValueError):
        validate_event({"kind": "fetch", "cycle": "one", "seq": 1, "pc": 0})


def test_chrome_trace_pairs_fetch_commit(tmp_path):
    trace = EventTrace()
    trace.emit(FETCH, 10, 1, 0x1000, {"mnemonic": "lw"})
    trace.emit(COMMIT, 25, 1, 0x1000, {"complete": 22, "mispredicted": False})
    trace.emit(REPLAY, 18, 1, 0x1000, {"reason": "l1d_miss"})
    payload = to_chrome_trace(trace)
    slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
    assert len(slices) == 1 and slices[0]["name"] == "lw"
    assert slices[0]["ts"] == 10 and slices[0]["dur"] == 15
    assert len(instants) == 1 and instants[0]["name"] == "replay"
    path = tmp_path / "t.perfetto.json"
    assert write_chrome_trace(trace, path) == 2
    assert "traceEvents" in json.loads(path.read_text())


# ---------------------------------------------------------------- profiler

def test_profiler_phases_and_throughput():
    prof = PhaseProfiler()
    with prof.phase("simulate.li") as ph:
        ph.add_items(1000)
    prof.add("collect.li", 2.0, items=500)
    stats = {s.name: s for s in prof.hottest(10)}
    assert stats["collect.li"].items_per_second == 250.0
    assert stats["simulate.li"].calls == 1
    report = prof.report(top_n=1)
    assert "collect.li" in report and "top 1 of 2" in report
    assert "simulate.li" not in report.splitlines()[2]


def test_profiler_publishes_to_registry():
    prof = PhaseProfiler()
    prof.add("collect.li", 1.5, items=100)
    reg = MetricsRegistry()
    prof.publish(reg)
    assert reg.get("profile.collect.li.wall").seconds == pytest.approx(1.5)
    assert reg.get("profile.collect.li.items").value == 100


# ---------------------------------------------------------------- manifest

def test_manifest_builds_and_validates():
    manifest = build_manifest(config={"experiment": "fig11"}, seed=2003, argv=["x"])
    validate_manifest(manifest)
    assert manifest["seed"] == 2003
    assert manifest["config"]["experiment"] == "fig11"
    # In this checkout the SHA must resolve (we run tests inside git).
    assert manifest["git_sha"] is None or len(manifest["git_sha"]) == 40


def test_bench_snapshot_roundtrip(tmp_path):
    manifest = build_manifest(config={}, argv=[])
    benchmarks = {
        "li": {"ipc": {"baseline": 0.8}, "wall_seconds": 1.5, "instructions_per_second": 20000.0},
    }
    path = write_bench_snapshot(tmp_path, "fig11-test", benchmarks, manifest)
    assert path.name == "BENCH_fig11-test.json"
    payload = load_bench_snapshot(path)
    assert payload["benchmarks"]["li"]["ipc"]["baseline"] == 0.8
    assert payload["totals"]["benchmarks"] == 1


def test_bench_snapshot_validation_rejects_missing_fields(tmp_path):
    manifest = build_manifest(config={}, argv=[])
    with pytest.raises(ValueError):
        write_bench_snapshot(tmp_path, "x", {"li": {"ipc": {}}}, manifest)


# ----------------------------------------------------------------- session

def test_session_lifecycle_and_global_handle():
    assert active_session() is None
    session = start_session()
    try:
        assert active_session() is session
    finally:
        assert end_session() is session
    assert active_session() is None


def test_session_aggregates_runs_into_bench_records():
    from repro.timing.stats import SimStats

    session = ObsSession()
    session.note_collection("li", 5000, 0.5)
    stats = SimStats(config_name="baseline", instructions=1000, cycles=2000, loads=100)
    session.record_run(stats, 0.25)
    stats2 = SimStats(config_name="bitslice-2", instructions=1000, cycles=1500)
    session.record_run(stats2, 0.25)
    records = session.bench_records()
    assert set(records) == {"li"}
    li = records["li"]
    assert li["ipc"] == {"baseline": 0.5, "bitslice-2": pytest.approx(1000 / 1500)}
    assert li["instructions"] == 2000
    assert li["instructions_per_second"] == pytest.approx(2000 / 0.5)
    assert li["emulate_seconds"] == pytest.approx(0.5)
    # Counters accumulated under the catalog names.
    assert session.registry.get("sim.instructions").value == 2000
    assert session.registry.get("sim.mem.loads").value == 100
    assert session.registry.get("emulate.instructions").value == 5000


def test_bench_records_carry_mode_fields():
    from repro.timing.stats import SimStats

    session = ObsSession()
    session.note_collection("li", 100, 0.1)
    stats = SimStats(config_name="baseline", instructions=10, cycles=20)
    session.record_run(stats, 0.1, timing_mode="fast", dispatch_mode="blocks")
    rec = session.bench_records()["li"]
    assert rec["timing_mode"] == "fast"
    assert rec["dispatch_mode"] == "blocks"
    # A second run under a different dispatch mode marks it mixed.
    session.record_run(stats, 0.1, timing_mode="fast", dispatch_mode="fast")
    assert session.bench_records()["li"]["dispatch_mode"] == "mixed"


def test_session_heartbeat_emits_progress_lines():
    import io

    stream = io.StringIO()
    session = ObsSession(heartbeat_interval=0.0, stream=stream)
    session.note_collection("li", 100, 0.1)
    out = stream.getvalue()
    assert "[obs]" in out and "1 collections" in out


# ----------------------------------------------------------- stats export

def test_simstats_catalog_is_complete():
    from repro.timing.stats import _catalog_is_complete

    assert _catalog_is_complete()


def test_simstats_to_dict_includes_extra_and_derived():
    from repro.timing.stats import DERIVED_CATALOG, METRIC_CATALOG, SimStats

    stats = SimStats(config_name="baseline", instructions=100, cycles=200,
                     loads=10, l1d_hits=8, l1d_misses=2, extra={"byp": 3})
    d = stats.to_dict()
    assert d["config_name"] == "baseline"
    assert set(METRIC_CATALOG) <= set(d)
    assert d["extra"] == {"byp": 3}
    assert set(d["derived"]) == set(DERIVED_CATALOG)
    assert d["derived"]["ipc"] == 0.5
    assert d["derived"]["l1d_hit_rate"] == 0.8
    d["extra"]["byp"] = 99
    assert stats.extra["byp"] == 3  # to_dict returns a copy


def test_simstats_merge_sums_counters_and_extra():
    from repro.timing.stats import SimStats

    a = SimStats(config_name="baseline", instructions=100, cycles=100, extra={"x": 1})
    b = SimStats(config_name="baseline", instructions=300, cycles=500, extra={"x": 2, "y": 5})
    m = a.merge(b)
    assert m.config_name == "baseline"
    assert m.instructions == 400 and m.cycles == 600
    assert m.ipc == pytest.approx(400 / 600)  # instruction-weighted, not mean of IPCs
    assert m.extra == {"x": 3, "y": 5}
    cross = a.merge(SimStats(config_name="bitslice-2"))
    assert cross.config_name == "baseline+bitslice-2"


def test_simstats_merge_all():
    from repro.timing.stats import SimStats

    runs = [SimStats(config_name="c", instructions=i) for i in (1, 2, 3)]
    assert SimStats.merge_all(runs).instructions == 6
    with pytest.raises(ValueError):
        SimStats.merge_all([])


def test_aggregate_module_delegates_to_stats():
    from repro.experiments.aggregate import merge_stats, stats_rows
    from repro.timing.stats import SimStats

    runs = [SimStats(config_name="c", instructions=10, cycles=20),
            SimStats(config_name="c", instructions=30, cycles=40)]
    assert merge_stats(runs).instructions == 40
    rows = stats_rows(runs)
    assert len(rows) == 2 and rows[0]["derived"]["ipc"] == 0.5


def test_finalize_registry_includes_profiler_and_event_counts():
    session = ObsSession(trace_events=True, events_capacity=2)
    session.events.emit(FETCH, 0, 1, 0)
    session.events.emit(FETCH, 1, 2, 0)
    session.events.emit(FETCH, 2, 3, 0)
    session.profiler.add("collect.li", 1.0, items=10)
    reg = session.finalize_registry()
    assert reg.get("obs.events.emitted").value == 3
    assert reg.get("obs.events.dropped").value == 1
    assert "profile.collect.li.wall" in reg
