"""Lockstep parity suite for the timing-layer fast paths (ISSUE 5).

The fast paths (:meth:`TimingSimulator.run_fast`,
:meth:`DetailedSimulator.run_fast`) are claimed to be bit-identical to
the reference loops by construction.  This file enforces the claim
three ways:

* hypothesis-generated random programs (ALU-only and store/load-heavy)
  cross-checked through :func:`repro.timing.cross_check_timing`, which
  compares full stats *and* complete cycle-event streams;
* real benchmark trace slices across representative configurations,
  for both simulators;
* a pruning regression: with an ``lsq_size`` far smaller than the
  number of in-flight stores, the incremental store window must still
  agree with the reference's full-scan disambiguation — i.e. pruning
  never drops a store whose commit is still visible to a younger load.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import Features, baseline_config, bitslice_config, simple_pipeline_config
from repro.emulator.machine import Machine
from repro.isa.assembler import assemble
from repro.timing import (
    cross_check_detailed,
    cross_check_timing,
    default_timing_mode,
    set_timing_mode,
    simulate,
)
from repro.timing.detailed import DetailedSimulator
from repro.timing.simulator import TimingSimulator

from tests.test_differential import straight_line_program


@pytest.fixture(autouse=True)
def _reset_timing_override():
    """Tests below poke the process-wide mode override; always undo."""
    yield
    set_timing_mode(None)


def _trace(source: str, limit: int = 10_000):
    return tuple(Machine(assemble(source)).trace(limit))


# ---------------------------------------------------------------------------
# Random-program lockstep parity (TimingSimulator)
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(straight_line_program())
def test_lockstep_random_alu_programs(program):
    source, _ = program
    trace = _trace(source)
    for cfg in (baseline_config(), bitslice_config(4)):
        cross_check_timing(cfg, trace)


@st.composite
def memory_program(draw):
    """Straight-line program mixing ALU ops with stores/loads to a
    shared buffer — exercises store-set windowing and forwarding."""
    regs = ["$t0", "$t1", "$t2", "$t3", "$t4", "$t5"]
    lines = ["    la $s0, buf"]
    for i, reg in enumerate(regs):
        lines.append(f"    li {reg}, {draw(st.integers(0, 0xFFFF))}")
    n_ops = draw(st.integers(min_value=4, max_value=32))
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["store", "load", "alu"]))
        off = 4 * draw(st.integers(min_value=0, max_value=7))
        reg = draw(st.sampled_from(regs))
        if kind == "store":
            lines.append(f"    sw {reg}, {off}($s0)")
        elif kind == "load":
            lines.append(f"    lw {reg}, {off}($s0)")
        else:
            src = draw(st.sampled_from(regs))
            op = draw(st.sampled_from(["addu", "xor", "or", "and"]))
            lines.append(f"    {op} {reg}, {reg}, {src}")
    lines.append("    halt")
    lines.append("    .data")
    lines.append("buf: .space 32")
    lines.append("    .text")
    return "\n".join(lines)


@settings(max_examples=25, deadline=None)
@given(memory_program())
def test_lockstep_random_memory_programs(source):
    trace = _trace(source)
    lsq_cfg = bitslice_config(2, Features(
        partial_operand_bypassing=True, early_lsq_disambiguation=True,
    ))
    for cfg in (baseline_config(), lsq_cfg):
        cross_check_timing(cfg, trace)


# ---------------------------------------------------------------------------
# Real benchmark trace slices
# ---------------------------------------------------------------------------

TIMING_CONFIGS = [
    baseline_config(),
    simple_pipeline_config(4),
    bitslice_config(2),
    bitslice_config(
        4,
        Features(
            partial_operand_bypassing=True,
            early_branch_resolution=True,
            early_lsq_disambiguation=True,
            partial_tag_matching=True,
        ),
        name="slice4-extended",
    ),
]


@pytest.mark.parametrize("name", ["li", "mcf"])
def test_lockstep_benchmark_slices(small_traces, name):
    trace = small_traces[name]
    for cfg in TIMING_CONFIGS:
        cross_check_timing(cfg, trace, warmup=200)


@pytest.mark.parametrize("name", ["li", "bzip"])
def test_detailed_lockstep_benchmark_slices(small_traces, name):
    trace = small_traces[name]
    basic = Features(partial_operand_bypassing=True)
    for cfg in (
        baseline_config(),
        simple_pipeline_config(2),
        bitslice_config(2, basic, name="basic-slice2"),
    ):
        cross_check_detailed(cfg, trace)


def test_detailed_cycle_skipping_engages(small_traces):
    """The parity run must actually exercise the skip machinery —
    otherwise the lockstep check is vacuous for that code path."""
    _, skipped = cross_check_detailed(baseline_config(), small_traces["li"])
    assert skipped > 0


# ---------------------------------------------------------------------------
# Store-window pruning regression
# ---------------------------------------------------------------------------

def test_store_window_pruning_keeps_visible_stores():
    """A burst of stores far exceeding ``lsq_size``, each later read
    back by a load.  The incremental window prunes committed stores;
    if it ever pruned one whose commit is still visible to an in-flight
    load, disambiguation (and thus the event streams) would diverge
    from the reference full scan."""
    lines = ["    la $s0, buf", "    li $t0, 1"]
    for i in range(24):
        lines.append(f"    addiu $t0, $t0, {i + 1}")
        lines.append(f"    sw $t0, {4 * (i % 8)}($s0)")
        if i % 3 == 2:
            lines.append(f"    lw $t1, {4 * (i % 8)}($s0)")
            lines.append("    addu $t2, $t2, $t1")
    lines += ["    halt", "    .data", "buf: .space 32", "    .text"]
    trace = _trace("\n".join(lines))

    base = bitslice_config(2, Features(
        partial_operand_bypassing=True, early_lsq_disambiguation=True,
    ))
    tiny = dataclasses.replace(base, lsq_size=2, name="tiny-lsq")
    stats = cross_check_timing(tiny, trace)
    # The scenario must genuinely overflow the tiny window.
    assert stats.stores > tiny.lsq_size
    assert stats.loads > 0


# ---------------------------------------------------------------------------
# Mode plumbing
# ---------------------------------------------------------------------------

def test_mode_env_toggle(monkeypatch):
    monkeypatch.delenv("REPRO_TIMING", raising=False)
    assert default_timing_mode() == "fast"
    monkeypatch.setenv("REPRO_TIMING", "reference")
    assert default_timing_mode() == "reference"
    assert TimingSimulator(baseline_config()).mode == "reference"
    assert DetailedSimulator(baseline_config()).mode == "reference"
    # Aliases canonicalise; anything else means fast.
    monkeypatch.setenv("REPRO_TIMING", "slow")
    assert default_timing_mode() == "reference"
    monkeypatch.setenv("REPRO_TIMING", "anything-else")
    assert default_timing_mode() == "fast"


def test_mode_override_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_TIMING", "reference")
    set_timing_mode("fast")
    assert default_timing_mode() == "fast"
    assert TimingSimulator(baseline_config()).mode == "fast"
    set_timing_mode(None)
    assert default_timing_mode() == "reference"
    # Explicit per-instance mode beats everything.
    assert TimingSimulator(baseline_config(), mode="fast").mode == "fast"


def test_stats_byte_identical_across_modes(small_traces):
    trace = small_traces["li"]
    cfg = bitslice_config(4)
    fast = simulate(cfg, trace, mode="fast")
    ref = simulate(cfg, trace, mode="reference")
    assert json.dumps(fast.to_dict(), sort_keys=True) == json.dumps(
        ref.to_dict(), sort_keys=True
    )
