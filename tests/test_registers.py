"""Register naming and numbering."""

import pytest

from repro.isa.registers import HI, LO, NUM_REGS, REG_NAMES, reg_name, reg_num


def test_canonical_names_count():
    assert len(REG_NAMES) == 32


def test_roundtrip_all_registers():
    for num in range(NUM_REGS):
        assert reg_num(reg_name(num)) == num


@pytest.mark.parametrize(
    "text,expected",
    [
        ("$zero", 0), ("$0", 0), ("zero", 0), ("r0", 0),
        ("$at", 1), ("$v0", 2), ("$a0", 4), ("$t0", 8),
        ("$s0", 16), ("$t8", 24), ("$gp", 28), ("$sp", 29),
        ("$fp", 30), ("$s8", 30), ("$ra", 31), ("$31", 31),
        ("  $t1 ", 9),
    ],
)
def test_reg_num_aliases(text, expected):
    assert reg_num(text) == expected


@pytest.mark.parametrize("bad", ["$t99", "$blah", "32", "$-1", ""])
def test_reg_num_rejects_unknown(bad):
    with pytest.raises(ValueError):
        reg_num(bad)


def test_reg_name_range_check():
    with pytest.raises(ValueError):
        reg_name(32)
    with pytest.raises(ValueError):
        reg_name(-1)


def test_hi_lo_extended_numbers():
    assert HI == 32 and LO == 33
