"""End-to-end integration: assembler → emulator → timing, all benchmarks.

Golden outputs pin the complete toolchain: any change to the
assembler's encoding, the emulator's semantics, the PRNG, or a
workload's source shows up as a checksum mismatch here.
"""

import pytest

from repro.core.config import baseline_config, bitslice_config, simple_pipeline_config
from repro.timing.simulator import simulate
from repro.workloads import BENCHMARK_NAMES, get_workload

#: stdout of every workload at iters=1 (deterministic by construction).
GOLDEN_OUTPUTS = {
    "bzip": "bzip:1760795205",
    "gcc": "gcc:157028",
    "go": "go:-168",
    "gzip": "gzip:681860353",
    "ijpeg": "ijpeg:-1162",
    "li": "li:104651",
    "mcf": "mcf:1136",
    "parser": "parser:1657",
    "twolf": "twolf:-194",
    "vortex": "vortex:27604",
    "vpr": "vpr:1204",
}


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_golden_checksums(name):
    machine = get_workload(name).run(iters=1)
    assert machine.stdout.strip() == GOLDEN_OUTPUTS[name]


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_timing_pipeline_hierarchy_all_benchmarks(name):
    """The headline ordering must hold on a short window of every
    benchmark: ideal >= bit-sliced > simple pipelining."""
    trace = tuple(get_workload(name).trace(max_steps=5_000, iters=1, skip=0))
    ideal = simulate(baseline_config(), trace).ipc
    sliced = simulate(bitslice_config(2), trace).ipc
    simple = simulate(simple_pipeline_config(2), trace).ipc
    assert simple < ideal * 1.001, name
    assert sliced <= ideal * 1.02, name
    assert sliced >= simple * 0.999, name


def test_full_stack_single_shot():
    """One complete pass: source → program → machine → trace →
    characterizations → timing → rendered report."""
    from repro.characterization import characterize_branches, characterize_lsq, characterize_tags
    from repro.memsys.cache import CacheConfig

    workload = get_workload("li")
    trace = tuple(workload.trace(max_steps=6_000, iters=1, skip=0))

    branches = characterize_branches(trace, benchmark="li")
    assert branches.branches > 0

    lsq = characterize_lsq(trace, benchmark="li", bits=(2, 9, 31))
    assert lsq.loads > 0

    tags = characterize_tags(trace, CacheConfig(size=8 * 1024, assoc=4, line_size=32))
    assert tags.accesses > 0

    stats = simulate(bitslice_config(4), trace)
    assert stats.instructions == len(trace)
    assert "IPC" in stats.summary()
