#!/usr/bin/env python3
"""Run the classic-kernel gallery and compare against host oracles.

Demonstrates `repro.workloads.kernels`: each kernel's guest result is
recomputed on the host (CRC-32 against the standard library itself),
then the sieve kernel is pushed through the three machine
configurations for a timing comparison.

Run:  python examples/kernel_gallery.py
"""

import binascii
import math

from repro.core.config import baseline_config, bitslice_config, simple_pipeline_config
from repro.emulator.machine import Machine, to_signed
from repro.emulator.trace import trace_program
from repro.isa.assembler import assemble
from repro.timing.simulator import simulate
from repro.workloads import kernels


def run(source: str) -> int:
    machine = Machine(assemble(source))
    machine.run(20_000_000)
    return int(machine.stdout.split(":")[1])


def main() -> None:
    print("=== guest vs. host oracles ===")

    guest = run(kernels.fibonacci(30))
    host = 832040
    print(f"  fib(30)        guest={guest:<12d} host={host:<12d} {'OK' if guest == host else 'FAIL'}")

    guest = run(kernels.sieve(10_000))
    host = 1229  # pi(10000)
    print(f"  pi(10000)      guest={guest:<12d} host={host:<12d} {'OK' if guest == host else 'FAIL'}")

    data = b"partial operand knowledge"
    guest = run(kernels.crc32(data))
    host = to_signed(binascii.crc32(data))
    print(f"  crc32          guest={guest:<12d} host={host:<12d} {'OK' if guest == host else 'FAIL'}")

    guest = run(kernels.gcd(123456, 7890))
    host = math.gcd(123456, 7890)
    print(f"  gcd            guest={guest:<12d} host={host:<12d} {'OK' if guest == host else 'FAIL'}")

    n, seed = 10, 42
    a, b = kernels.host_matrices(n, seed)
    host = sum(sum(a[i][k] * b[k][i] for k in range(n)) for i in range(n))
    guest = run(kernels.matmul(n, seed))
    print(f"  matmul trace   guest={guest:<12d} host={host:<12d} {'OK' if guest == host else 'FAIL'}")

    print("\n=== sieve(5000) under the three machines ===")
    trace = tuple(trace_program(assemble(kernels.sieve(5000)), max_steps=60_000))
    for config in (baseline_config(), simple_pipeline_config(2), bitslice_config(2)):
        stats = simulate(config, trace)
        print(f"  {config.name:<16s} IPC = {stats.ipc:.3f}")


if __name__ == "__main__":
    main()
