#!/usr/bin/env python3
"""The Figure 5 story: early branch resolution in the `li` workload.

The paper's motivating example is a lisp interpreter's mark loop:

    lbu  $3, 1($16)        # load the flag byte
    andi $2, $3, 0x0001    # isolate the MARK bit
    bne  $2, $0, $L110     # branch if already marked

When `bne` is predicted not-taken, detecting a misprediction needs only
bit 0 of `$2` — the paper exploits this to redirect fetch early.  This
example runs the synthetic `li` workload (which embeds that exact
idiom), characterizes how many operand bits mispredictions need
(Figure 6), and shows the IPC effect of early branch resolution.

Run:  python examples/li_early_branches.py
"""

from repro.branch.early import bits_to_detect_mispredict
from repro.characterization import characterize_branches
from repro.core.config import Features, bitslice_config
from repro.timing.simulator import simulate
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("li")
    print(f"workload: li — {workload.description}")

    print("\n=== the Figure 5 idiom, in isolation ===")
    # andi leaves only bit 0; predicted not-taken + actually taken.
    needed = bits_to_detect_mispredict("bne", rs_val=1, rt_val=0, predicted_taken=False, actual_taken=True)
    print(f"  bne on an andi-masked flag: misprediction detectable after {needed} bit(s)")
    needed = bits_to_detect_mispredict("bne", rs_val=0, rt_val=0, predicted_taken=True, actual_taken=False)
    print(f"  ... but proving equality (loop stays) needs {needed} bits")

    print("\n=== Figure 6 characterization over the li trace ===")
    trace = tuple(workload.trace(max_steps=40_000))
    char = characterize_branches(trace, benchmark="li", warmup=10_000)
    print(f"  branches: {char.branches}, accuracy {char.accuracy:.1%}, mispredictions {char.mispredictions}")
    for bits in (1, 2, 4, 8, 16, 32):
        print(f"  detected with {bits:2d} low-order bits: {char.detected_fraction(bits):6.1%}")
    print(f"  beq/bne share of branches: {char.eq_type_branch_fraction:.0%}")

    print("\n=== IPC effect of early branch resolution (slice by 4) ===")
    # With in-order slice execution the compare slices finish one per
    # cycle, so detecting the misprediction at slice 0 saves the most.
    print("  (a) in-order slices — the mechanism at full strength:")
    without = Features(partial_operand_bypassing=True)
    with_eb = Features(partial_operand_bypassing=True, early_branch_resolution=True)
    ipc_without = simulate(bitslice_config(4, without), trace, warmup=10_000).ipc
    stats_with = simulate(bitslice_config(4, with_eb), trace, warmup=10_000)
    print(f"      without: IPC {ipc_without:.3f}")
    print(
        f"      with   : IPC {stats_with.ipc:.3f} "
        f"({stats_with.early_resolved_mispredicts} mispredictions redirected early)"
    )
    # With out-of-order slices, independent compare slices issue in
    # parallel whenever operands allow, so early resolution only helps
    # branches whose operands arrive staggered through carry chains.
    print("  (b) out-of-order slices — most compares already resolve in one cycle:")
    without = Features(True, True, False, False, False)
    with_eb = Features(True, True, True, False, False)
    ipc_without = simulate(bitslice_config(4, without), trace, warmup=10_000).ipc
    stats_with = simulate(bitslice_config(4, with_eb), trace, warmup=10_000)
    print(f"      without: IPC {ipc_without:.3f}")
    print(
        f"      with   : IPC {stats_with.ipc:.3f} "
        f"({stats_with.early_resolved_mispredicts} mispredictions redirected early)"
    )


if __name__ == "__main__":
    main()
