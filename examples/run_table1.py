#!/usr/bin/env python3
"""Regenerate Table 1 (benchmark characteristics) from the command line.

Equivalent to ``repro-experiment table1`` but shows the library API.

Run:  python examples/run_table1.py [--instructions N] [benchmarks...]
"""

import argparse

from repro.experiments import table1
from repro.workloads import BENCHMARK_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmarks", nargs="*", default=list(BENCHMARK_NAMES))
    parser.add_argument("--instructions", "-n", type=int, default=20_000)
    args = parser.parse_args()
    result = table1.run(tuple(args.benchmarks), instructions=args.instructions)
    print(result.render())


if __name__ == "__main__":
    main()
