#!/usr/bin/env python3
"""Quickstart: assemble a program, run it, and compare pipeline configs.

Walks the full public API surface in one page:

1. assemble PISA-like source and execute it functionally;
2. collect a dynamic trace;
3. run the timing simulator in three configurations — the ideal
   machine (1-cycle EX), naive EX pipelining, and the paper's
   bit-sliced machine — and print the IPC recovery story.

Run:  python examples/quickstart.py
"""

from repro.core.config import (
    TABLE2,
    baseline_config,
    bitslice_config,
    describe,
    simple_pipeline_config,
)
from repro.emulator.machine import Machine
from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble_program
from repro.timing.simulator import simulate

SOURCE = """
# dot product with a data-dependent early-out, exercising loads,
# arithmetic chains, and both branch flavours
        .data
xs:     .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
ys:     .word 2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5
        .text
main:   la   $s0, xs
        la   $s1, ys
        li   $s2, 16            # element count
        li   $s3, 0             # accumulator
        li   $s4, 2000          # outer repetitions
outer:  li   $t0, 0             # index
inner:  sll  $t1, $t0, 2
        addu $t2, $s0, $t1
        lw   $t3, 0($t2)
        addu $t2, $s1, $t1
        lw   $t4, 0($t2)
        mult $t3, $t4
        mflo $t5
        addu $s3, $s3, $t5
        addiu $t0, $t0, 1
        bne  $t0, $s2, inner
        addiu $s4, $s4, -1
        bgtz $s4, outer
        move $a0, $s3
        li   $v0, 1             # print accumulated dot product
        syscall
        halt
"""


def main() -> None:
    program = assemble(SOURCE)
    print("=== disassembly (first 8 instructions) ===")
    for line in disassemble_program(program.text, program.text_base)[:8]:
        print(" ", line)

    machine = Machine(program)
    machine.run()
    print(f"\nfunctional run: {machine.instret} instructions, output = {machine.stdout!r}")

    print("\n=== Table 2 machine configuration ===")
    for key, value in TABLE2.items():
        print(f"  {key}: {value}")

    trace = tuple(Machine(program).trace(30_000))
    print(f"\n=== timing simulation over {len(trace)} instructions ===")
    for config in (
        baseline_config(),
        simple_pipeline_config(2),
        bitslice_config(2),
        simple_pipeline_config(4),
        bitslice_config(4),
    ):
        stats = simulate(config, trace)
        print(f"  {describe(config)}")
        print(f"      IPC = {stats.ipc:.3f}")

    print(
        "\nThe bit-sliced machine recovers most of the IPC that naive EX\n"
        "pipelining loses — the paper's headline result (Figure 11)."
    )


if __name__ == "__main__":
    main()
