#!/usr/bin/env python3
"""Sweep the Figure 11/12 design space on selected benchmarks.

Prints, per benchmark and slice count, the full cumulative technique
ladder plus the derived speed-up decomposition — the data behind the
paper's Figures 11 and 12.

Run:  python examples/sweep_slicing.py li mcf --instructions 20000
"""

import argparse

from repro.experiments import figure11, figure12
from repro.workloads import BENCHMARK_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmarks", nargs="*", default=["li", "bzip"])
    parser.add_argument("--instructions", "-n", type=int, default=20_000)
    parser.add_argument("--slices", type=int, nargs="+", default=[2, 4], choices=[2, 4])
    args = parser.parse_args()
    for name in args.benchmarks:
        if name not in BENCHMARK_NAMES:
            parser.error(f"unknown benchmark {name!r}")

    base = figure11.run(
        tuple(args.benchmarks), instructions=args.instructions, slice_counts=tuple(args.slices)
    )
    print(base.render())
    print()
    print(figure12.run(base=base).render())


if __name__ == "__main__":
    main()
