#!/usr/bin/env python3
"""Tutorial: write, run, and characterize your own workload.

Shows the full flow for a new kernel without registering it in the
suite: build the assembly with the shared PRNG/epilogue fragments,
verify it functionally, and measure it across machine configurations.
The kernel is a histogram pass — a classic read-modify-write loop whose
addresses depend on loaded data (nice and hostile to a pipelined EX).

Run:  python examples/custom_workload.py
"""

from repro.core.config import baseline_config, bitslice_config, describe, simple_pipeline_config
from repro.emulator.machine import Machine
from repro.isa.assembler import assemble
from repro.timing.simulator import simulate
from repro.workloads.common import epilogue, rand_asm


def histogram_source(iters: int = 6) -> str:
    """A byte histogram over a pseudo-random buffer."""
    return f"""
# histogram: data-dependent read-modify-write
        .data
        .align 2
buf:    .space 4096
hist:   .space 1024              # 256 word bins
        .text
main:   la   $s0, buf
        la   $s1, hist
        li   $s7, 0

        li   $s3, 0              # fill buffer
hfill:  jal  rand
        andi $t0, $v0, 0xff
        addu $t1, $s0, $s3
        sb   $t0, 0($t1)
        addiu $s3, $s3, 1
        slti $t1, $s3, 4096
        bne  $t1, $0, hfill

        li   $s6, {iters}
hiter:  li   $s3, 0
hloop:  addu $t0, $s0, $s3
        lbu  $t1, 0($t0)         # value
        sll  $t1, $t1, 2
        addu $t2, $s1, $t1       # &hist[value]   (address from data!)
        lw   $t3, 0($t2)
        addiu $t3, $t3, 1
        sw   $t3, 0($t2)         # read-modify-write
        addiu $s3, $s3, 1
        slti $t1, $s3, 4096
        bne  $t1, $0, hloop
        addiu $s6, $s6, -1
        bgtz $s6, hiter

        # checksum a few bins
        li   $s3, 0
hsum:   sll  $t0, $s3, 4
        addu $t0, $s1, $t0
        lw   $t1, 0($t0)
        addu $s7, $s7, $t1
        addiu $s3, $s3, 1
        slti $t1, $s3, 64
        bne  $t1, $0, hsum
        j    finish
{rand_asm(seed=0xB00B5EED)}
{epilogue("histogram")}
"""


def main() -> None:
    program = assemble(histogram_source())

    # 1. Functional verification.
    machine = Machine(program)
    machine.run()
    print(f"functional: {machine.instret} instructions, output {machine.stdout.strip()!r}")
    assert machine.stdout.startswith("histogram:")

    # 2. Steady-state trace (skip the fill loop by measuring it once).
    fill_machine = Machine(program)
    fill_machine.run(4096 * 7)  # roughly the fill phase
    trace = tuple(fill_machine.trace(25_000))

    # 3. Timing comparison.
    print(f"\ntiming over {len(trace)} steady-state instructions:")
    for config in (baseline_config(), simple_pipeline_config(2), bitslice_config(2)):
        stats = simulate(config, trace, warmup=5_000)
        print(f"  {describe(config)}")
        print(f"      IPC = {stats.ipc:.3f}")


if __name__ == "__main__":
    main()
