#!/usr/bin/env python3
"""Profile every workload's dynamic behaviour (mix-validation report).

Prints, per benchmark, the statistics that determine how the paper's
techniques behave on it: instruction mix, dependence tightness (short
producer→consumer distances are what make a pipelined EX expensive),
working-set size (partial-tag diversity), and branch behaviour.

Run:  python examples/workload_profiles.py [names...]
"""

import sys

from repro.emulator.analysis import profile_trace
from repro.workloads import BENCHMARK_NAMES, get_workload


def main() -> None:
    names = sys.argv[1:] or list(BENCHMARK_NAMES)
    header = (
        f"{'bench':8s} {'loads':>6s} {'stores':>7s} {'branch':>7s} "
        f"{'taken':>6s} {'dep<=2':>7s} {'wset':>8s}"
    )
    print(header)
    print("-" * len(header))
    for name in names:
        workload = get_workload(name)
        profile = profile_trace(workload.trace(max_steps=20_000))
        print(
            f"{name:8s} {profile.load_fraction:6.1%} {profile.store_fraction:7.1%} "
            f"{profile.branch_fraction:7.1%} {profile.taken_rate:6.0%} "
            f"{profile.short_dependence_fraction(2):7.1%} "
            f"{profile.data_working_set // 1024:6d}KB"
        )


if __name__ == "__main__":
    main()
