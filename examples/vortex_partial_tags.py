#!/usr/bin/env python3
"""The Figure 3/9 story: partial tag matching on a pointer-rich workload.

`vortex` forms record addresses with the paper's Figure 9 idiom
(sll / lui / addu, then lw): address generation is a sliced addition,
so after the first 16-bit slice the cache index — and two tag bits —
are already known.  This example characterizes how discriminating those
early tag bits are (Figure 4) and shows the way-prediction statistics
of the timing model (§7.1: ~2% way mispredicts at slice-by-2).

Run:  python examples/vortex_partial_tags.py
"""

from repro.characterization import characterize_tags
from repro.core.config import Features, bitslice_config
from repro.memsys.cache import CacheConfig
from repro.memsys.partial_tag import PartialTagOutcome, tag_bits_available
from repro.timing.simulator import simulate
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("vortex")
    print(f"workload: vortex — {workload.description}")
    trace = tuple(workload.trace(max_steps=40_000))

    l1d = CacheConfig(size=64 * 1024, assoc=4, line_size=64, name="L1D")
    avail = tag_bits_available(16, l1d.tag_shift)
    print(
        f"\nL1D geometry: offset {l1d.offset_bits}b + index {l1d.index_bits}b = "
        f"{l1d.tag_shift} bits; a 16-bit adder slice exposes {avail} tag bits early"
    )

    print("\n=== Figure 4 characterization (vortex, 64KB 4-way) ===")
    char = characterize_tags(trace, l1d, benchmark="vortex", bits=(1, 2, 3, 4, 6, 8, l1d.tag_bits), warmup=10_000)
    print(f"  {char.accesses} data accesses, full-tag hit rate {char.hit_rate:.1%}")
    header = "  bits:  " + "  ".join(f"{b:>5d}" for b in sorted(char.counts))
    print(header)
    for outcome in PartialTagOutcome:
        row = "  ".join(f"{char.fraction(b, outcome):5.1%}" for b in sorted(char.counts))
        print(f"  {outcome.value:<20s} {row}")

    print("\n=== way prediction in the timing model (slice by 2) ===")
    config = bitslice_config(2, Features.all())
    stats = simulate(config, trace, warmup=10_000)
    print(f"  IPC {stats.ipc:.3f}")
    print(f"  PTM accesses            : {stats.ptm_accesses}")
    print(f"  early speculative hits  : {stats.ptm_early_hits}")
    print(f"  early non-spec misses   : {stats.ptm_early_misses}")
    print(f"  way mispredictions      : {stats.ptm_way_mispredicts} ({stats.ptm_way_mispredict_rate:.2%})")


if __name__ == "__main__":
    main()
