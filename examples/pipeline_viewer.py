#!/usr/bin/env python3
"""Visualize the paper's Figure 1: pipelined execution with and without
partial operand knowledge.

Runs the same dependence chain (Figure 1's add → addi → lw → beq → sub)
through three machines and renders per-instruction pipeline timelines:
on the ideal machine dependent instructions run back-to-back; simple EX
pipelining serializes them (each waits for the producer's *entire* EX);
the bit-sliced machine overlaps them slice by slice.

Run:  python examples/pipeline_viewer.py
"""

from repro.core.config import baseline_config, bitslice_config, describe, simple_pipeline_config
from repro.emulator.machine import Machine
from repro.isa.assembler import assemble
from repro.timing.pipeview import render_timeline, summarize_timeline
from repro.timing.simulator import TimingSimulator

# Figure 1's code shape: a chain of dependent instructions including a
# load and a conditional branch, repeated so the pipeline reaches
# steady state before the rendered window.
SOURCE = """
        .data
        .align 2
table:  .space 256
        .text
main:   li   $s0, 40             # iterations
        la   $s5, table
        li   $s1, 0
        li   $s2, 3
loop:   add  $t0, $s1, $s2       # add  r3, r2, r1
        addi $t0, $t0, 4         # addi r3, r3, 4
        andi $t0, $t0, 0xfc
        addu $t1, $s5, $t0
        lw   $t2, 0($t1)         # lw   r4, 0(r3)
        beq  $t2, $s1, skip      # beq  r5, r4, t
        sub  $s1, $s1, $s2       # sub  r5, r5, r1
skip:   addiu $s1, $s1, 7
        andi $s1, $s1, 0xff
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
"""


def show(config, trace, window=12) -> None:
    sim = TimingSimulator(config, record_timeline=True)
    sim.run(iter(trace))
    print(f"--- {describe(config)} ---")
    # Skip the cold-start iterations; show one steady-state window.
    print(render_timeline(sim.timeline, limit=window, offset=len(sim.timeline) - window - 12))
    print(" ", summarize_timeline(sim.timeline))
    print(f"  IPC = {sim.stats.ipc:.3f}\n")


def main() -> None:
    trace = tuple(Machine(assemble(SOURCE)).trace(2_000))
    print("Legend: F fetch, d dispatch, 0/1/... slice completion, * completion, C commit, ! mispredicted\n")
    for config in (baseline_config(), simple_pipeline_config(2), bitslice_config(2)):
        show(config, trace)


if __name__ == "__main__":
    main()
