#!/usr/bin/env python
"""Measure emulator throughput: fast pre-bound dispatch vs. reference.

Usage::

    python scripts/bench_emulator.py [--steps 50000] [--benchmarks li mcf ...]

Runs every selected workload through ``Machine.run()`` (no trace
records) and ``Machine.trace()`` (full records) under both interpreter
back ends, using the observability layer's :class:`PhaseProfiler` as
the timing source, and prints per-mode instructions/second plus the
fast/reference speedup.  This is the number behind the "emulator
throughput" row of docs/performance.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.emulator.machine import Machine  # noqa: E402
from repro.obs.profiler import PhaseProfiler  # noqa: E402
from repro.workloads import BENCHMARK_NAMES, get_workload  # noqa: E402

DEFAULT_STEPS = 50_000
DEFAULT_BENCHMARKS = ("bzip", "li", "mcf", "vortex")


def bench(names, steps: int) -> PhaseProfiler:
    profiler = PhaseProfiler()
    for name in names:
        program = get_workload(name).build(iters=None, profile="ref")
        for mode in ("reference", "fast"):
            with profiler.phase(f"run.{mode}") as ph:
                ph.add_items(Machine(program, dispatch=mode).run(steps))
            with profiler.phase(f"trace.{mode}") as ph:
                n = sum(1 for _ in Machine(program, dispatch=mode).trace(steps))
                ph.add_items(n)
    return profiler


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=DEFAULT_STEPS, metavar="N",
                        help=f"instructions per benchmark per mode (default {DEFAULT_STEPS})")
    parser.add_argument("--benchmarks", "-b", nargs="+", default=list(DEFAULT_BENCHMARKS),
                        choices=BENCHMARK_NAMES, metavar="NAME",
                        help=f"workloads to run (default {' '.join(DEFAULT_BENCHMARKS)})")
    args = parser.parse_args(argv)

    profiler = bench(args.benchmarks, args.steps)
    print(profiler.report())
    print()
    for kind in ("run", "trace"):
        fast = profiler.phases[f"{kind}.fast"]
        ref = profiler.phases[f"{kind}.reference"]
        speedup = ref.seconds / fast.seconds if fast.seconds else float("inf")
        print(
            f"{kind}(): reference {ref.items / ref.seconds:,.0f} inst/s, "
            f"fast {fast.items / fast.seconds:,.0f} inst/s  ->  {speedup:.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
