#!/usr/bin/env python
"""Benchmark the emulator's execution tiers and gate the blocks floor.

Measures, per workload, full runs to the halt point (bounded by
``--steps``) under each interpreter tier:

* ``fast`` — pre-bound per-instruction dispatch (the default tier);
* ``blocks`` — the block-compiling tier (``repro.emulator.blocks``);
* ``reference`` — the golden ``if``/``elif`` interpreter
  (``--with-reference``; slow, measured once).

Every workload is first lockstep cross-checked against the golden
reference on a trace slice (fast *and* blocks), so a snapshot can never
record throughput for a tier that diverged from the model.  Runs are
timed with ``time.process_time`` (wall clock is noisy on shared
runners), best of ``--repeats``, over a *shared* Program object so the
per-program code cache keeps compiled blocks warm across repeats —
exactly how a sweep reuses them across machines.

Writes a ``BENCH_<run>.json`` snapshot (same schema as the CLI's perf
snapshots, plus ``emulator_*`` / ``blocks_speedup`` sections) for
``scripts/bench_compare.py``'s regression gate::

    python scripts/bench_emulator.py --out benchmarks/BENCH_blocks.json
    python scripts/bench_emulator.py --assert-fast-active --check-speedup

``blocks_speedup`` ratios are host-normalised (both tiers run in the
same process on the same machine), so ``--check-speedup`` is meaningful
on shared CI runners where raw inst/s would not be.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.emulator.blocks import cross_check_blocks, stats as block_stats  # noqa: E402
from repro.emulator.dispatch import cross_check  # noqa: E402
from repro.emulator.machine import Machine, default_dispatch  # noqa: E402
from repro.harness.atomicio import atomic_write_json  # noqa: E402
from repro.obs.manifest import bench_snapshot, build_manifest  # noqa: E402
from repro.workloads import BENCHMARK_NAMES, get_workload  # noqa: E402

#: Instruction cap per run; every workload halts well below this, so
#: measurements are deterministic full runs, never mid-phase windows.
DEFAULT_STEPS = 2_000_000

#: ALU-heavy gate set (the blocks tier's target workloads; the floor in
#: ``--check-speedup`` is the geomean over these).
DEFAULT_BENCHMARKS = ("bzip", "gzip", "li", "mcf", "vortex")

#: Trace slice used for the pre-measurement lockstep parity checks.
PARITY_SLICE = 3_000

#: Geomean blocks-vs-fast floor enforced by ``--check-speedup``.
SPEEDUP_FLOOR = 3.0

#: Blocks-tier guest-profiler overhead ceiling enforced by
#: ``--profile-overhead`` (the documented budget is <10%).
PROFILE_OVERHEAD_BUDGET = 0.10


def geomean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values)) if values else 0.0


def _best_run(program, mode: str, steps: int, repeats: int):
    """Best-of-*repeats* process seconds for a full run; fresh machine
    per repeat, shared Program (warm per-program block-code cache)."""
    best = math.inf
    retired = None
    for _ in range(repeats):
        machine = Machine(program, dispatch=mode)
        t0 = time.process_time()
        n = machine.run(steps)
        dt = time.process_time() - t0
        if retired is None:
            retired = n
        elif n != retired:
            raise RuntimeError(
                f"nondeterministic run under {mode!r}: {n} != {retired} instructions"
            )
        if dt < best:
            best = dt
    return best, retired


def bench_benchmark(name: str, steps: int, repeats: int, with_reference: bool,
                    verbose=print) -> dict:
    """Parity-check then measure one workload across the tiers."""
    program = get_workload(name).build(iters=None, profile="ref")
    # Parity before measurement: both fast tiers in lockstep vs the
    # golden reference on a slice of this exact program.
    cross_check(program, max_steps=PARITY_SLICE)
    cross_check_blocks(program, max_steps=PARITY_SLICE, threshold=0)

    fast_wall, retired = _best_run(program, "fast", steps, repeats)
    blocks_wall, blocks_retired = _best_run(program, "blocks", steps, repeats)
    if blocks_retired != retired:
        raise RuntimeError(
            f"{name}: blocks tier retired {blocks_retired} instructions, "
            f"fast retired {retired}"
        )
    row = {
        "instructions": retired,
        "fast_wall_seconds": fast_wall,
        "blocks_wall_seconds": blocks_wall,
        "fast_instructions_per_second": retired / fast_wall,
        "blocks_instructions_per_second": retired / blocks_wall,
        "blocks_speedup": fast_wall / blocks_wall,
    }
    line = (
        f"  {name:<8s} {retired:>9,d} inst   fast {retired / fast_wall:>10,.0f} inst/s"
        f"   blocks {retired / blocks_wall:>10,.0f} inst/s   {fast_wall / blocks_wall:5.2f}x"
    )
    if with_reference:
        ref_wall, ref_retired = _best_run(program, "reference", steps, 1)
        if ref_retired != retired:
            raise RuntimeError(
                f"{name}: reference retired {ref_retired} instructions, "
                f"fast retired {retired}"
            )
        row["reference_wall_seconds"] = ref_wall
        row["reference_instructions_per_second"] = retired / ref_wall
        row["fast_speedup"] = ref_wall / fast_wall
        line += f"   (ref {retired / ref_wall:,.0f} inst/s)"
    verbose(line)
    return row


def measure_profile_overhead(benchmarks, steps: int, repeats: int,
                             verbose=print) -> float:
    """Geomean blocks-tier slowdown with the exact guest profiler on.

    Interleaves profiler-off and profiler-on repeats over a shared warm
    Program so code-cache state and host frequency drift hit both arms
    equally — the methodology behind the documented overhead number.
    """
    from repro.obs.guestprof import end_guest_profile, start_guest_profile

    ratios = []
    for name in benchmarks:
        program = get_workload(name).build(iters=None, profile="ref")
        Machine(program, dispatch="blocks").run(steps)  # warm the code cache
        off = on = math.inf
        for _ in range(repeats):
            machine = Machine(program, dispatch="blocks")
            t0 = time.process_time()
            machine.run(steps)
            off = min(off, time.process_time() - t0)
            machine = Machine(program, dispatch="blocks")
            start_guest_profile()
            try:
                t0 = time.process_time()
                machine.run(steps)
                on = min(on, time.process_time() - t0)
            finally:
                end_guest_profile()
        ratios.append(on / off)
        verbose(f"  {name:<8s} profiler off {off:6.3f}s  on {on:6.3f}s  "
                f"overhead {on / off - 1:+6.1%}")
    return geomean(ratios) - 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument(
        "-b", "--benchmarks", nargs="+", default=list(DEFAULT_BENCHMARKS),
        choices=BENCHMARK_NAMES, metavar="NAME",
        help=f"workloads to measure (default {' '.join(DEFAULT_BENCHMARKS)})",
    )
    parser.add_argument(
        "-n", "--steps", type=int, default=DEFAULT_STEPS, metavar="N",
        help=f"instruction cap per run; all workloads halt below the "
             f"default ({DEFAULT_STEPS})",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, metavar="R",
        help="process-time repeats per (workload, tier); best is kept (default 3)",
    )
    parser.add_argument(
        "--with-reference", action="store_true",
        help="also measure the golden reference interpreter (slow; one repeat)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the BENCH-schema snapshot JSON here",
    )
    parser.add_argument(
        "--assert-fast-active", action="store_true",
        help="fail unless pre-bound dispatch is the session default and the "
             "blocks tier engages (guards CI against benching a misconfigured tier)",
    )
    parser.add_argument(
        "--check-speedup", action="store_true",
        help=f"fail unless the geomean blocks-vs-fast speedup clears the "
             f"repo floor ({SPEEDUP_FLOOR}x)",
    )
    parser.add_argument(
        "--speedup-floor", type=float, default=SPEEDUP_FLOOR, metavar="X",
        help=f"geomean floor used by --check-speedup (default {SPEEDUP_FLOOR})",
    )
    parser.add_argument(
        "--profile-overhead", action="store_true",
        help="measure the blocks tier with the exact guest profiler enabled "
             f"and fail above the {PROFILE_OVERHEAD_BUDGET:.0%} overhead budget",
    )
    args = parser.parse_args(argv)

    if args.profile_overhead:
        print(
            f"guest-profiler overhead on the blocks tier "
            f"(cap {args.steps:,d}, best of {args.repeats}):"
        )
        overhead = measure_profile_overhead(args.benchmarks, args.steps, args.repeats)
        print(f"geomean enabled-mode overhead: {overhead:+.1%} "
              f"(budget <{PROFILE_OVERHEAD_BUDGET:.0%})")
        if overhead >= PROFILE_OVERHEAD_BUDGET:
            print(
                f"error: guest-profiler overhead {overhead:.1%} >= "
                f"{PROFILE_OVERHEAD_BUDGET:.0%} budget",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.assert_fast_active:
        mode = default_dispatch()
        if mode != "fast":
            print(
                f"error: pre-bound dispatch is not the session default "
                f"(default={mode!r}); is $REPRO_DISPATCH forcing another tier?",
                file=sys.stderr,
            )
            return 1
        probe = Machine(
            get_workload("li").build(iters=1), dispatch="blocks", block_threshold=0
        )
        probe.run(2_000)
        engaged = probe._engine is not None and block_stats()["block_insts"] > 0
        if not engaged:
            print("error: blocks tier did not engage on the probe run", file=sys.stderr)
            return 1
        print("fast dispatch active (default 'fast'); blocks tier engages")

    print(
        f"benching {len(args.benchmarks)} workload(s), full runs to halt "
        f"(cap {args.steps:,d}), best of {args.repeats} by process time:"
    )
    rows = {}
    for name in args.benchmarks:
        rows[name] = bench_benchmark(
            name, args.steps, args.repeats, args.with_reference
        )
    blocks_gm = geomean(r["blocks_speedup"] for r in rows.values())
    print(f"geomean blocks speedup vs fast dispatch: {blocks_gm:.2f}x")
    if args.with_reference:
        fast_gm = geomean(r["fast_speedup"] for r in rows.values())
        print(f"geomean fast speedup vs reference: {fast_gm:.2f}x")

    if args.out:
        records = {}
        for name, r in rows.items():
            tiers = {
                "fast": r["fast_instructions_per_second"],
                "blocks": r["blocks_instructions_per_second"],
            }
            if "reference_instructions_per_second" in r:
                tiers["reference"] = r["reference_instructions_per_second"]
            records[name] = {
                # BENCH-schema required keys (no timing sim here: ipc empty).
                "ipc": {},
                "wall_seconds": r["fast_wall_seconds"] + r["blocks_wall_seconds"]
                + r.get("reference_wall_seconds", 0.0),
                "instructions": r["instructions"],
                "instructions_per_second": r["blocks_instructions_per_second"],
                # Emulator sections consumed by bench_compare.py.
                "emulator_instructions_per_second": tiers,
                "blocks_speedup": r["blocks_speedup"],
            }
            if "fast_speedup" in r:
                records[name]["fast_speedup_vs_reference"] = r["fast_speedup"]
        manifest = build_manifest(
            config={
                "benchmarks": list(args.benchmarks),
                "steps": args.steps,
                "repeats": args.repeats,
                "with_reference": args.with_reference,
            },
            argv=list(argv) if argv is not None else None,
            extra={
                "dispatch": default_dispatch(),
                "blocks": block_stats(),
                "bench": "emulator-tiers",
                "blocks_speedup_geomean": blocks_gm,
            },
        )
        run = f"emulator-{time.strftime('%Y%m%dT%H%M%SZ', time.gmtime())}"
        payload = bench_snapshot(run, records, manifest)
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(out, payload)
        print(f"emulator snapshot written to {out}")

    if args.check_speedup:
        if blocks_gm < args.speedup_floor:
            print(
                f"error: blocks geomean {blocks_gm:.2f}x < "
                f"{args.speedup_floor}x floor",
                file=sys.stderr,
            )
            return 1
        print(f"speedup floor cleared (blocks >= {args.speedup_floor}x geomean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
