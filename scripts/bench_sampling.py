#!/usr/bin/env python
"""Benchmark the statistical-sampling engine against full detailed simulation.

For every benchmark in the long-horizon gate set, runs the same
steady-state region twice on the baseline machine:

* **exact** — full detailed simulation of the whole horizon (the slow
  truth the sampling engine is replacing), and
* **sampled** — SMARTS-style systematic sampling
  (:func:`repro.timing.sampling.sample_benchmark`) at the default plan,

then reports per-benchmark wall-clock speedup, IPC error, and whether
the bootstrap 95% CI covers the exact IPC.  Speedups are
host-normalised (both modes run in the same process on the same
machine), so ``--check-speedup`` is meaningful on shared CI runners.

Writes a ``BENCH_<run>.json`` snapshot (same schema as the CLI's perf
snapshots, plus ``sampling_*`` sections) for trend reporting and the CI
gate::

    python scripts/bench_sampling.py --out benchmarks/BENCH_sampling_baseline.json
    python scripts/bench_sampling.py --check-speedup

``--check-speedup`` enforces the repo floors: geomean wall-clock
reduction >= 8x at <= 2% IPC error with every CI covering its exact
value.  The committed ``benchmarks/BENCH_sampling_baseline.json`` is
the reference snapshot those floors were set from.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import baseline_config  # noqa: E402
from repro.harness.atomicio import atomic_write_json  # noqa: E402
from repro.obs.manifest import bench_snapshot, build_manifest  # noqa: E402
from repro.timing.sampling import SamplingPlan, sample_benchmark  # noqa: E402
from repro.timing.simulator import TimingSimulator  # noqa: E402
from repro.workloads.suite import get_workload  # noqa: E402

#: The long-horizon gate set.  Chosen for steady sampling behaviour at
#: the gate budget; strongly bimodal guests (ijpeg: ~1% of instructions
#: in a ~6x-slower stratum) are excluded because rare-stratum coverage
#: is a sample-size question, not an engine property.
GATE_BENCHMARKS: tuple[str, ...] = ("gzip", "mcf", "parser", "bzip", "vpr", "go")

#: Instruction horizon both modes cover per benchmark.
DEFAULT_BUDGET = 2_400_000

#: ``--check-speedup`` floors (mirrored by the CI perf-smoke job).
SPEEDUP_FLOOR = 8.0
ERROR_CEILING = 0.02


def geomean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values)) if values else 0.0


def bench_one(name: str, budget: int, plan: SamplingPlan, verbose=print) -> dict:
    """Exact-vs-sampled row for one benchmark."""
    from repro.emulator.machine import Machine

    config = baseline_config()
    workload = get_workload(name)
    iters = workload.iters_for_budget(budget)
    skip = workload.skip_hint

    machine = Machine(workload.build(iters), dispatch="fast")
    machine.run(skip)
    t0 = time.perf_counter()
    exact = TimingSimulator(config).run(machine.trace(budget))
    exact_wall = time.perf_counter() - t0

    t0 = time.perf_counter()
    sampled = sample_benchmark(name, config, plan, budget=budget, iters=iters)
    sampled_wall = time.perf_counter() - t0

    error = (sampled.ipc_point - exact.ipc) / exact.ipc if exact.ipc else float("inf")
    covered = sampled.ipc_lo <= exact.ipc <= sampled.ipc_hi
    speedup = exact_wall / sampled_wall if sampled_wall else float("inf")
    row = {
        "exact_ipc": exact.ipc,
        "sampled_ipc": sampled.ipc_point,
        "ipc_ci": [sampled.ipc_lo, sampled.ipc_hi],
        "ipc_error": error,
        "ci_covers_exact": covered,
        "windows": len(sampled.windows),
        "instructions_measured": sampled.measured,
        "instructions_exact": exact.instructions,
        "exact_wall_seconds": exact_wall,
        "sampled_wall_seconds": sampled_wall,
        "speedup": speedup,
    }
    verbose(
        f"  {name:<8s} exact {exact.ipc:6.4f} ({exact_wall:6.1f}s)"
        f"  sampled {sampled.ipc_point:6.4f}"
        f" [{sampled.ipc_lo:.4f}, {sampled.ipc_hi:.4f}]"
        f" ({sampled_wall:5.1f}s)  err {error:+6.2%}"
        f"  {'cover' if covered else 'MISS '}  {speedup:5.2f}x"
    )
    return row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument(
        "-b", "--benchmarks", nargs="+", default=list(GATE_BENCHMARKS),
        help="gate benchmarks (default: %(default)s)",
    )
    parser.add_argument(
        "-n", "--budget", type=int, default=DEFAULT_BUDGET, metavar="N",
        help="instruction horizon per benchmark (default %(default)s)",
    )
    parser.add_argument(
        "--sample-window", type=int, default=None, metavar="N",
        help="measured instructions per window (default: plan default)",
    )
    parser.add_argument(
        "--sample-interval", type=int, default=None, metavar="N",
        help="systematic-sampling period (default: plan default)",
    )
    parser.add_argument(
        "--sample-seed", type=int, default=None, metavar="SEED",
        help="window-placement + bootstrap seed (default: plan default)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the BENCH-schema snapshot JSON here",
    )
    parser.add_argument(
        "--check-speedup", action="store_true",
        help=f"fail unless geomean speedup >= {SPEEDUP_FLOOR}x, every "
             f"|IPC error| <= {ERROR_CEILING:.0%}, and every CI covers "
             "its exact IPC",
    )
    args = parser.parse_args(argv)

    import dataclasses

    overrides = {
        key: value
        for key, value in (
            ("window", args.sample_window),
            ("interval", args.sample_interval),
            ("seed", args.sample_seed),
        )
        if value is not None
    }
    plan = dataclasses.replace(SamplingPlan(), **overrides).validate()

    print(
        f"sampling gate: {len(args.benchmarks)} benchmarks, horizon "
        f"{args.budget} instructions, plan window={plan.window} "
        f"interval={plan.interval} seed={plan.seed}"
    )
    rows = {}
    for name in args.benchmarks:
        rows[name] = bench_one(name, args.budget, plan)

    gm = geomean(r["speedup"] for r in rows.values())
    worst_err = max(abs(r["ipc_error"]) for r in rows.values())
    misses = [name for name, r in rows.items() if not r["ci_covers_exact"]]
    print(
        f"geomean speedup {gm:.2f}x, worst |IPC error| {worst_err:.2%}, "
        f"CI misses: {', '.join(misses) if misses else 'none'}"
    )

    if args.out:
        record_per_bench = {
            name: {
                "ipc": r["sampled_ipc"],
                "wall_seconds": r["sampled_wall_seconds"],
                "instructions": r["instructions_measured"],
                "instructions_per_second": (
                    r["instructions_measured"] / r["sampled_wall_seconds"]
                    if r["sampled_wall_seconds"] else 0.0
                ),
                "sampling_exact_ipc": r["exact_ipc"],
                "sampling_ipc_ci": r["ipc_ci"],
                "sampling_ipc_error": r["ipc_error"],
                "sampling_ci_covers_exact": r["ci_covers_exact"],
                "sampling_windows": r["windows"],
                "sampling_speedup": r["speedup"],
                "sampling_exact_wall_seconds": r["exact_wall_seconds"],
            }
            for name, r in rows.items()
        }
        manifest = build_manifest(
            config={
                "benchmarks": list(args.benchmarks),
                "budget": args.budget,
                "plan": plan.canonical(),
            },
            argv=list(argv) if argv is not None else None,
            extra={"bench": "sampling-engine"},
        )
        payload = bench_snapshot(
            f"sampling-{time.strftime('%Y%m%dT%H%M%SZ', time.gmtime())}",
            record_per_bench,
            manifest,
        )
        payload["sampling_speedup_geomean"] = gm
        payload["sampling_worst_error"] = worst_err
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(out, payload)
        print(f"sampling snapshot written to {out}")

    if args.check_speedup:
        failed = []
        if gm < SPEEDUP_FLOOR:
            failed.append(f"geomean speedup {gm:.2f}x < {SPEEDUP_FLOOR}x floor")
        if worst_err > ERROR_CEILING:
            failed.append(
                f"worst |IPC error| {worst_err:.2%} > {ERROR_CEILING:.0%} ceiling"
            )
        if misses:
            failed.append(f"CI misses exact IPC on: {', '.join(misses)}")
        if failed:
            for line in failed:
                print(f"error: {line}", file=sys.stderr)
            return 1
        print(
            f"sampling floors cleared (>= {SPEEDUP_FLOOR}x geomean, "
            f"<= {ERROR_CEILING:.0%} error, all CIs cover)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
