#!/usr/bin/env python
"""Benchmark the timing-layer fast path against its golden reference.

Measures, per configuration:

* ``TimingSimulator`` — simulated cycles per wall-second under the
  pre-bound fast path vs. the reference one-pass loop, and the ratio;
* ``DetailedSimulator`` — instructions and cycles per wall-second with
  cycle-skipping vs. the explicit reference cycle loop, and the ratio.

Every measured configuration is first lockstep cross-checked on a slice
of the trace (full stats + event streams), so a snapshot can never
record throughput for a fast path that diverged from the golden model.

Writes a ``BENCH_<run>.json`` snapshot (same schema as the CLI's perf
snapshots, plus ``timing_*`` / ``detailed_*`` sections) for
``scripts/bench_compare.py``'s timing regression gate::

    python scripts/bench_timing.py --out benchmarks/BENCH_timing.json
    python scripts/bench_timing.py --assert-fast-active --check-speedup

Speedup ratios are host-normalised (both modes run on the same machine
in the same process), so ``--check-speedup`` is meaningful on shared CI
runners where raw cycles/s would not be.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import (  # noqa: E402
    Features,
    baseline_config,
    bitslice_config,
    simple_pipeline_config,
)
from repro.experiments import runner  # noqa: E402
from repro.obs.manifest import bench_snapshot, build_manifest  # noqa: E402
from repro.harness.atomicio import atomic_write_json  # noqa: E402
from repro.timing.detailed import DetailedSimulator  # noqa: E402
from repro.timing.fastpath import (  # noqa: E402
    cross_check_detailed,
    cross_check_timing,
    default_timing_mode,
)
from repro.timing.simulator import TimingSimulator  # noqa: E402

#: Trace slice used for the pre-measurement lockstep parity check.
PARITY_SLICE = 3000


def timing_configs():
    """Configurations benched on the one-pass timestamp simulator."""
    return [
        baseline_config(),
        simple_pipeline_config(4),
        bitslice_config(2),
        bitslice_config(4),
    ]


def detailed_configs():
    """Configurations benched on the explicit cycle-loop model (atomic
    plus basic bypassing-only sliced — the reference's whole domain)."""
    basic = Features(partial_operand_bypassing=True)
    return [
        baseline_config(),
        simple_pipeline_config(2),
        simple_pipeline_config(4),
        bitslice_config(2, basic, name="basic-slice2"),
        bitslice_config(4, basic, name="basic-slice4"),
    ]


def _best_wall(make_sim, trace, repeats: int):
    """Best-of-*repeats* wall seconds and the final run's stats."""
    best = math.inf
    stats = None
    for _ in range(repeats):
        sim = make_sim()
        t0 = time.perf_counter()
        stats = sim.run(trace)
        dt = time.perf_counter() - t0
        if dt < best:
            best = dt
    return best, stats


def bench_timing_layer(trace, repeats: int, verbose=print):
    """Per-config fast/reference cycles-per-second for TimingSimulator."""
    rows = {}
    parity = list(trace[:PARITY_SLICE])
    for cfg in timing_configs():
        cross_check_timing(cfg, parity)
        fast_wall, stats = _best_wall(
            lambda: TimingSimulator(cfg, mode="fast"), trace, repeats
        )
        ref_wall, _ = _best_wall(
            lambda: TimingSimulator(cfg, mode="reference"), trace, repeats
        )
        rows[cfg.name] = {
            "cycles": stats.cycles,
            "ipc": stats.ipc,
            "fast_cycles_per_second": stats.cycles / fast_wall,
            "reference_cycles_per_second": stats.cycles / ref_wall,
            "speedup": ref_wall / fast_wall,
            "fast_wall_seconds": fast_wall,
        }
        verbose(
            f"  timing   {cfg.name:<16s} {stats.cycles / fast_wall:10,.0f} cyc/s fast"
            f"  {stats.cycles / ref_wall:10,.0f} cyc/s ref   {ref_wall / fast_wall:5.2f}x"
        )
    return rows


def bench_detailed_model(trace, repeats: int, verbose=print):
    """Per-config fast/reference throughput for DetailedSimulator."""
    rows = {}
    parity = list(trace[:PARITY_SLICE])
    for cfg in detailed_configs():
        _, skipped = cross_check_detailed(cfg, parity)
        fast_wall, stats = _best_wall(
            lambda: DetailedSimulator(cfg, mode="fast"), trace, repeats
        )
        ref_wall, _ = _best_wall(
            lambda: DetailedSimulator(cfg, mode="reference"), trace, repeats
        )
        rows[cfg.name] = {
            "cycles": stats.cycles,
            "instructions": stats.instructions,
            "ipc": stats.ipc,
            "fast_cycles_per_second": stats.cycles / fast_wall,
            "reference_cycles_per_second": stats.cycles / ref_wall,
            "fast_instructions_per_second": stats.instructions / fast_wall,
            "reference_instructions_per_second": stats.instructions / ref_wall,
            "speedup": ref_wall / fast_wall,
            "fast_wall_seconds": fast_wall,
            "parity_skipped_cycles": skipped,
        }
        verbose(
            f"  detailed {cfg.name:<16s} {stats.cycles / fast_wall:10,.0f} cyc/s fast"
            f"  {stats.cycles / ref_wall:10,.0f} cyc/s ref   {ref_wall / fast_wall:5.2f}x"
            f"  ({skipped} cycles skipped in parity run)"
        )
    return rows


def geomean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values)) if values else 0.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument(
        "-b", "--benchmark", default="li",
        help="workload whose trace drives the measurement (default li)",
    )
    parser.add_argument(
        "-n", "--instructions", type=int, default=30_000, metavar="N",
        help="trace records to simulate (default 30000)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, metavar="R",
        help="wall-time repeats per (config, mode); best is kept (default 3)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the BENCH-schema snapshot JSON here",
    )
    parser.add_argument(
        "--assert-fast-active", action="store_true",
        help="fail unless the fast path is the session default "
             "(guards CI against silently benching the reference)",
    )
    parser.add_argument(
        "--check-speedup", action="store_true",
        help="fail unless geomean speedups clear the repo floors "
             "(TimingSimulator >= 1.5x, DetailedSimulator >= 2x)",
    )
    args = parser.parse_args(argv)

    if args.assert_fast_active:
        mode = default_timing_mode()
        sim_mode = TimingSimulator(baseline_config()).mode
        det_mode = DetailedSimulator(baseline_config()).mode
        if not (mode == sim_mode == det_mode == "fast"):
            print(
                f"error: fast path not active (default={mode!r}, "
                f"TimingSimulator={sim_mode!r}, DetailedSimulator={det_mode!r}); "
                f"is $REPRO_TIMING forcing the reference?",
                file=sys.stderr,
            )
            return 1
        print("fast path active (default mode 'fast')")

    print(
        f"collecting {args.instructions} trace records of {args.benchmark!r} ..."
    )
    trace = list(
        runner.collect_trace(args.benchmark, args.instructions)
    )
    print(f"benching over {len(trace)} records, best of {args.repeats}:")

    timing_rows = bench_timing_layer(trace, args.repeats)
    detailed_rows = bench_detailed_model(trace, args.repeats)
    timing_gm = geomean(r["speedup"] for r in timing_rows.values())
    detailed_gm = geomean(r["speedup"] for r in detailed_rows.values())
    print(f"geomean speedup: timing {timing_gm:.2f}x, detailed {detailed_gm:.2f}x")

    if args.out:
        record = {
            # BENCH-schema required keys (over the whole timing sweep).
            "ipc": {name: r["ipc"] for name, r in timing_rows.items()},
            "wall_seconds": sum(r["fast_wall_seconds"] for r in timing_rows.values())
            + sum(r["fast_wall_seconds"] for r in detailed_rows.values()),
            "instructions_per_second": geomean(
                r["fast_instructions_per_second"] for r in detailed_rows.values()
            ),
            "instructions": len(trace),
            # Timing-layer sections consumed by bench_compare.py.
            "timing_cycles_per_second": {
                name: r["fast_cycles_per_second"] for name, r in timing_rows.items()
            },
            "timing_speedup": {name: r["speedup"] for name, r in timing_rows.items()},
            "detailed_instructions_per_second": {
                name: r["fast_instructions_per_second"]
                for name, r in detailed_rows.items()
            },
            "detailed_speedup": {
                name: r["speedup"] for name, r in detailed_rows.items()
            },
            "timing_speedup_geomean": timing_gm,
            "detailed_speedup_geomean": detailed_gm,
        }
        manifest = build_manifest(
            config={
                "benchmark": args.benchmark,
                "instructions": args.instructions,
                "repeats": args.repeats,
            },
            argv=list(argv) if argv is not None else None,
            extra={"timing": default_timing_mode(), "bench": "timing-layer"},
        )
        run = f"timing-{time.strftime('%Y%m%dT%H%M%SZ', time.gmtime())}"
        payload = bench_snapshot(run, {args.benchmark: record}, manifest)
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(out, payload)
        print(f"timing snapshot written to {out}")

    if args.check_speedup:
        failed = []
        if timing_gm < 1.5:
            failed.append(f"TimingSimulator geomean {timing_gm:.2f}x < 1.5x floor")
        if detailed_gm < 2.0:
            failed.append(f"DetailedSimulator geomean {detailed_gm:.2f}x < 2x floor")
        if failed:
            for line in failed:
                print(f"error: {line}", file=sys.stderr)
            return 1
        print("speedup floors cleared (timing >= 1.5x, detailed >= 2x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
