#!/usr/bin/env python
"""Chaos campaign: prove the sweep orchestrator's recovery invariant.

Usage::

    python scripts/chaos_sweep.py [--benchmarks gzip mcf] [--configs ideal bitslice2]
        [--instructions 1200] [--jobs 2] [--seed 7]
        [--kill-rate 0.4] [--corrupt-rate 0.2] [--orch-kill-after 2]
        [--workdir DIR] [--report FILE]

The invariant under test (the whole point of the supervised, journaled
orchestrator): **no amount of seeded process chaos may change the
numbers.**  Concretely:

1. run the sweep cleanly, sequentially, in-process — the reference;
2. run it as a subprocess (``repro-experiment sweep --journal ...``)
   with ``$REPRO_CHAOS`` SIGKILLing/corrupting workers *and*
   ``$REPRO_CHAOS_ORCH_KILL`` SIGKILLing the orchestrator itself after
   N completed cells (expected exit: SIGKILL);
3. resume it (``--resume``) under the *same* worker chaos plan;
4. assert the resumed run's stdout (the rendered sweep table) is
   **byte-identical** to the clean reference's, and that the resume
   **re-executed zero** of the cells the killed run completed.

The script exits non-zero if any assertion fails and writes a small
JSON report (journal summary, per-phase exit codes, verdict) for CI to
archive next to the journal itself.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.experiments import sweep as sweep_mod  # noqa: E402
from repro.experiments.journal import SweepJournal  # noqa: E402
from repro.experiments.supervisor import ORCH_KILL_ENV_VAR  # noqa: E402
from repro.harness.faults import CHAOS_ENV_VAR, ProcessFaultPlan  # noqa: E402
from repro.obs import tracing  # noqa: E402


def parse_args(argv=None):
    p = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    p.add_argument("--benchmarks", nargs="+", default=["gzip", "mcf"])
    p.add_argument("--configs", nargs="+", default=["ideal", "bitslice2"])
    p.add_argument("--instructions", type=int, default=1200)
    p.add_argument("--jobs", type=int, default=2)
    p.add_argument("--seed", type=int, default=7, help="chaos plan seed")
    p.add_argument("--kill-rate", type=float, default=0.4,
                   help="per-attempt probability a worker is SIGKILLed mid-cell")
    p.add_argument("--corrupt-rate", type=float, default=0.2,
                   help="per-attempt probability a worker result is bit-flipped")
    p.add_argument("--orch-kill-after", type=int, default=2,
                   help="SIGKILL the orchestrator after N completed cells")
    p.add_argument("--max-cell-retries", type=int, default=10,
                   help="retry budget per cell (sized so seeded chaos converges)")
    p.add_argument("--workdir", default="chaos-artifacts",
                   help="directory for the journal, outputs and report")
    p.add_argument("--report", default=None,
                   help="JSON verdict path (default <workdir>/chaos_report.json)")
    p.add_argument("--no-trace", action="store_true",
                   help="disable span tracing (skips the trace-merge checks)")
    p.add_argument("--sample", action="store_true",
                   help="run the sweep through the statistical-sampling engine; "
                        "the byte-identity invariant then covers the CI columns")
    p.add_argument("--sample-window", type=int, default=None,
                   help="sampling: measured instructions per window")
    p.add_argument("--sample-warmup", type=int, default=None,
                   help="sampling: detailed warmup before each window")
    p.add_argument("--sample-interval", type=int, default=None,
                   help="sampling: systematic-sampling period")
    p.add_argument("--sample-seed", type=int, default=None,
                   help="sampling: window-placement + bootstrap seed")
    return p.parse_args(argv)


def sampling_plan(args):
    """The SamplingPlan the flags describe, or ``None`` without --sample."""
    if not args.sample:
        return None
    import dataclasses

    from repro.timing.sampling import SamplingPlan

    overrides = {
        key: value
        for key, value in (
            ("window", args.sample_window),
            ("warmup", args.sample_warmup),
            ("interval", args.sample_interval),
            ("seed", args.sample_seed),
        )
        if value is not None
    }
    return dataclasses.replace(SamplingPlan(), **overrides).validate()


def sweep_argv(args, journal_flag: str, journal: Path,
               trace: Path | None = None) -> list[str]:
    argv = [
        sys.executable, "-m", "repro.experiments.cli", "sweep",
        "-b", *args.benchmarks,
        "--configs", *args.configs,
        "-n", str(args.instructions),
        "--jobs", str(args.jobs),
        "--max-cell-retries", str(args.max_cell_retries),
        "--backoff", "0.05",
        journal_flag, str(journal),
    ]
    if args.sample:
        argv += ["--sample"]
        for flag, value in (("--sample-window", args.sample_window),
                            ("--sample-warmup", args.sample_warmup),
                            ("--sample-interval", args.sample_interval),
                            ("--sample-seed", args.sample_seed)):
            if value is not None:
                argv += [flag, str(value)]
    if trace is not None:
        argv += ["--trace-spans", str(trace)]
    return argv


def check_trace(spans_path: Path, final: SweepJournal, report: dict) -> dict:
    """Trace checks for the resumed run's merged span output.

    The phase-1 orchestrator dies by SIGKILL, so only the resumed run
    writes spans — but it *records* the killed run's completed cells
    (``resume=True``), so its trace is the merged sweep timeline: every
    done cell must appear as exactly one completed ``cell`` span, the
    whole file must pass schema validation, and the sibling Perfetto
    export must be a loadable Chrome trace spanning every process lane.
    """
    checks = {"spans_schema_valid": False, "one_completed_span_per_done_cell": False,
              "perfetto_trace_merged": False}
    try:
        report["span_count"] = tracing.validate_spans_file(spans_path)
        checks["spans_schema_valid"] = True
    except (OSError, ValueError) as exc:
        report["span_error"] = str(exc)
        return checks
    spans = tracing.load_spans_jsonl(spans_path)
    done = [c for c in final.cells if c.state == "done"]
    cells = [s for s in spans if s.category == "cell" and s.status == tracing.OK]
    report["cell_span_count"] = len(cells)
    report["resumed_span_count"] = sum(1 for s in cells if s.args.get("resume"))
    checks["one_completed_span_per_done_cell"] = (
        len(cells) == len(done)
        and len({s.name for s in cells}) == len(done)
        and len({s.trace_id for s in spans}) == 1
    )
    perfetto = spans_path.with_suffix(".perfetto.json")
    try:
        doc = json.loads(perfetto.read_text())
        events = doc["traceEvents"]
        pids = {e["pid"] for e in events}
        report["perfetto_events"] = len(events)
        report["perfetto_processes"] = len(pids)
        checks["perfetto_trace_merged"] = (
            len(events) > 0 and len({s.process for s in spans}) == len(pids)
        )
    except (OSError, ValueError, KeyError, TypeError) as exc:
        report["span_error"] = f"perfetto: {exc}"
    return checks


def run_phase(cmd: list[str], env: dict, out_path: Path, err_path: Path) -> int:
    with open(out_path, "wb") as out, open(err_path, "wb") as err:
        proc = subprocess.run(cmd, stdout=out, stderr=err, env=env, cwd=str(REPO))
    return proc.returncode


def clean_reference(args) -> str:
    """The uninterrupted truth: sequential, chaos-free, in-process."""
    result = sweep_mod.run(
        args.benchmarks,
        args.configs,
        max_steps=args.instructions,
        jobs=1,
        policy=None,
        sampling=sampling_plan(args),
    )
    assert not result.failures, f"clean reference run failed: {result.failures}"
    return result.render() + "\n\n"


def main(argv=None) -> int:
    args = parse_args(argv)
    # Absolute: sweep subprocesses run with cwd=REPO, and the journal
    # must land where this process (and CI's artifact upload) expects.
    workdir = Path(args.workdir).resolve()
    workdir.mkdir(parents=True, exist_ok=True)
    journal = workdir / "chaos.journal.json"
    report_path = Path(args.report) if args.report else workdir / "chaos_report.json"
    journal.unlink(missing_ok=True)
    shutil.rmtree(journal.with_name(journal.name + ".results"), ignore_errors=True)

    plan = ProcessFaultPlan(
        seed=args.seed, kill_rate=args.kill_rate, corrupt_rate=args.corrupt_rate
    )
    base_env = {k: v for k, v in os.environ.items() if k != ORCH_KILL_ENV_VAR}
    base_env[CHAOS_ENV_VAR] = plan.to_spec()
    base_env["PYTHONPATH"] = str(REPO / "src")

    print(f"[chaos] reference: clean sequential sweep "
          f"({len(args.benchmarks)}x{len(args.configs)} cells)", flush=True)
    reference = clean_reference(args)

    print(f"[chaos] phase 1: chaotic sweep, orchestrator SIGKILLed after "
          f"{args.orch_kill_after} cells (plan: {plan.to_spec()})", flush=True)
    trace1 = None if args.no_trace else workdir / "phase1.spans.jsonl"
    trace2 = None if args.no_trace else workdir / "chaos.spans.jsonl"
    env1 = dict(base_env)
    env1[ORCH_KILL_ENV_VAR] = str(args.orch_kill_after)
    rc1 = run_phase(
        sweep_argv(args, "--journal", journal, trace=trace1), env1,
        workdir / "phase1.out", workdir / "phase1.err",
    )
    phase1_killed = rc1 == -signal.SIGKILL or rc1 == 128 + signal.SIGKILL

    mid = SweepJournal.load(journal)
    done_before_resume = {c.key for c in mid.cells if c.state == "done"}
    print(f"[chaos] phase 1 exit {rc1}; journal has "
          f"{len(done_before_resume)} done / {len(mid.cells)} cells", flush=True)

    print("[chaos] phase 2: resume under the same worker chaos", flush=True)
    rc2 = run_phase(
        sweep_argv(args, "--resume", journal, trace=trace2), base_env,
        workdir / "phase2.out", workdir / "phase2.err",
    )

    resumed_out = (workdir / "phase2.out").read_text()
    final = SweepJournal.load(journal)
    summary = final.summary

    checks = {
        "orchestrator_was_killed": phase1_killed,
        "resume_exit_zero": rc2 == 0,
        "output_byte_identical": resumed_out == reference,
        "zero_reexecution": (
            summary.get("resume_hits") == len(done_before_resume)
            and summary.get("cells_executed") == len(mid.cells) - len(done_before_resume)
        ),
        "all_cells_done": all(c.state == "done" for c in final.cells),
    }

    report = {
        "plan": plan.to_spec(),
        "orch_kill_after": args.orch_kill_after,
        "phase_exit_codes": {"chaos": rc1, "resume": rc2},
        "cells_done_before_resume": len(done_before_resume),
        "cells_total": len(mid.cells),
        "journal_summary": summary,
        "checks": checks,
    }
    if trace2 is not None:
        checks.update(check_trace(trace2, final, report))
    verdict = all(checks.values())
    report["verdict"] = "PASS" if verdict else "FAIL"
    report_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"[chaos] report written to {report_path}", flush=True)
    for name, ok in checks.items():
        print(f"[chaos]   {name}: {'ok' if ok else 'FAILED'}", flush=True)
    if not checks["output_byte_identical"]:
        print("[chaos] ---- reference ----\n" + reference, flush=True)
        print("[chaos] ---- resumed ----\n" + resumed_out, flush=True)
    print(f"[chaos] {report['verdict']}", flush=True)
    return 0 if verdict else 1


if __name__ == "__main__":
    sys.exit(main())
