#!/usr/bin/env python
"""Diff two BENCH_<run>.json perf snapshots and flag regressions.

Usage::

    python scripts/bench_compare.py BASELINE.json CURRENT.json
        [--threshold 0.10] [--strict-throughput]

IPC is a pure function of (trace, configuration), so any IPC drift
between snapshots is a *simulation semantics* change and is compared
strictly: a drop beyond ``--threshold`` (default 10%) on any benchmark
× config cell fails the comparison (exit status 1), which is what the
CI perf gate keys on.

Host throughput (``instructions_per_second``) varies with the machine
that produced the snapshot, so it is reported for information only
unless ``--strict-throughput`` is given (useful when both snapshots
come from the same runner class).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.manifest import load_bench_snapshot  # noqa: E402


def iter_ipc_cells(snapshot: dict):
    """Yield ``(benchmark, config, ipc)`` for every cell in a snapshot."""
    for name, record in snapshot["benchmarks"].items():
        ipc = record["ipc"]
        if isinstance(ipc, dict):
            for config, value in ipc.items():
                yield name, config, float(value)
        else:
            yield name, "*", float(ipc)


def compare(baseline: dict, current: dict, threshold: float, strict_throughput: bool):
    """Return ``(report_lines, regressions)`` for two snapshots."""
    base_cells = {(b, c): v for b, c, v in iter_ipc_cells(baseline)}
    cur_cells = {(b, c): v for b, c, v in iter_ipc_cells(current)}
    lines: list[str] = []
    regressions: list[str] = []

    common = sorted(set(base_cells) & set(cur_cells))
    if not common and (base_cells or cur_cells):
        # Emulator-tier snapshots carry no IPC cells at all; only flag
        # when at least one snapshot actually had some to compare.
        regressions.append("no common benchmark/config cells between the snapshots")
    for cell in common:
        base, cur = base_cells[cell], cur_cells[cell]
        delta = (cur - base) / base if base else 0.0
        tag = ""
        if delta < -threshold:
            tag = "  <-- REGRESSION"
            regressions.append(
                f"{cell[0]}/{cell[1]}: IPC {base:.4f} -> {cur:.4f} ({delta:+.1%})"
            )
        lines.append(
            f"  {cell[0]:<10s} {cell[1]:<28s} IPC {base:8.4f} -> {cur:8.4f} ({delta:+6.1%}){tag}"
        )
    for cell in sorted(set(base_cells) - set(cur_cells)):
        lines.append(f"  {cell[0]:<10s} {cell[1]:<28s} dropped from current snapshot")
    for cell in sorted(set(cur_cells) - set(base_cells)):
        lines.append(f"  {cell[0]:<10s} {cell[1]:<28s} new in current snapshot")

    lines.append("")
    lines.extend(_trace_cache_lines(baseline, current))
    lines.extend(_supervisor_lines(baseline, current))
    for name in sorted(set(baseline["benchmarks"]) & set(current["benchmarks"])):
        base = float(baseline["benchmarks"][name].get("instructions_per_second", 0.0))
        cur = float(current["benchmarks"][name].get("instructions_per_second", 0.0))
        if base <= 0:
            continue
        delta = (cur - base) / base
        note = "(informational)" if not strict_throughput else ""
        if strict_throughput and delta < -threshold:
            note = "  <-- REGRESSION"
            regressions.append(
                f"{name}: host throughput {base:,.0f} -> {cur:,.0f} inst/s ({delta:+.1%})"
            )
        lines.append(
            f"  {name:<10s} host throughput {base:>12,.0f} -> {cur:>12,.0f} inst/s ({delta:+6.1%}) {note}"
        )
    lines.extend(
        _timing_lines(baseline, current, threshold, strict_throughput, regressions)
    )
    return lines, regressions


#: Timing-layer snapshot sections: (record key, row label, unit, gated).
#: Raw throughputs are host-bound and per-config speedups jitter beyond
#: 10% run-to-run, so both stay informational (or gate under
#: ``--strict-throughput``); the *geomean* speedups below are stable
#: (fast and reference share the host, noise averages out across
#: configs) and carry the default regression gate.
_TIMING_SECTIONS = (
    ("timing_cycles_per_second", "timing", "cyc/s", False),
    ("detailed_instructions_per_second", "detailed", "inst/s", False),
    ("timing_speedup", "timing speedup", "x", False),
    ("detailed_speedup", "detailed speedup", "x", False),
    ("emulator_instructions_per_second", "emulator", "inst/s", False),
)

#: Scalar per-benchmark keys: geomean fast/reference speedups from
#: ``scripts/bench_timing.py`` (gated — averaged across configs, so
#: stable), plus the per-benchmark blocks-vs-fast emulator speedups
#: from ``scripts/bench_emulator.py`` (informational — single-workload
#: ratios jitter beyond 10% run-to-run; their geomean is gated from the
#: manifest instead, see ``_emulator_geomean_lines``).
_TIMING_GEOMEANS = (
    ("timing_speedup_geomean", "timing speedup (geomean)", True),
    ("detailed_speedup_geomean", "detailed speedup (geomean)", True),
    ("blocks_speedup", "blocks speedup (vs fast)", False),
)


def _timing_lines(baseline, current, threshold, strict_throughput, regressions):
    """Compare the per-config timing-layer sections written by
    ``scripts/bench_timing.py`` (absent from plain CLI snapshots)."""
    lines = []
    for key, label, unit, gated in _TIMING_SECTIONS:
        base_cells = {}
        cur_cells = {}
        for cells, snap in ((base_cells, baseline), (cur_cells, current)):
            for name, record in snap["benchmarks"].items():
                section = record.get(key)
                if isinstance(section, dict):
                    for config, value in section.items():
                        cells[(name, config)] = float(value)
        common = sorted(set(base_cells) & set(cur_cells))
        if not common:
            continue
        if not lines:
            lines.append("")
        gate = gated or strict_throughput
        for cell in common:
            base, cur = base_cells[cell], cur_cells[cell]
            delta = (cur - base) / base if base else 0.0
            if unit == "x":
                shown = f"{base:8.2f}x -> {cur:8.2f}x"
            else:
                shown = f"{base:>12,.0f} -> {cur:>12,.0f} {unit}"
            note = "" if gate else "(informational)"
            if gate and delta < -threshold:
                note = "  <-- REGRESSION"
                regressions.append(
                    f"{cell[0]}/{cell[1]}: {label} {shown.strip()} ({delta:+.1%})"
                )
            lines.append(
                f"  {cell[0]:<10s} {cell[1]:<20s} {label:<17s} {shown} ({delta:+6.1%}) {note}"
            )
    for key, label, gated in _TIMING_GEOMEANS:
        for name in sorted(set(baseline["benchmarks"]) & set(current["benchmarks"])):
            base = baseline["benchmarks"][name].get(key)
            cur = current["benchmarks"][name].get(key)
            if base is None or cur is None or float(base) <= 0:
                continue
            base, cur = float(base), float(cur)
            delta = (cur - base) / base
            note = "" if gated else "(informational)"
            if gated and delta < -threshold:
                note = "  <-- REGRESSION"
                regressions.append(
                    f"{name}: {label} {base:.2f}x -> {cur:.2f}x ({delta:+.1%})"
                )
            lines.append(
                f"  {name:<10s} {label:<32s} {base:8.2f}x -> {cur:8.2f}x ({delta:+6.1%}) {note}"
            )
    lines.extend(_emulator_geomean_lines(baseline, current, threshold, regressions))
    return lines


def _emulator_geomean_lines(baseline, current, threshold, regressions):
    """Gate the geomean blocks-vs-fast speedup recorded in the manifest
    by ``scripts/bench_emulator.py`` (absent from other snapshots)."""
    base = baseline.get("manifest", {}).get("blocks_speedup_geomean")
    cur = current.get("manifest", {}).get("blocks_speedup_geomean")
    if base is None or cur is None or float(base) <= 0:
        return []
    base, cur = float(base), float(cur)
    delta = (cur - base) / base
    note = ""
    if delta < -threshold:
        note = "  <-- REGRESSION"
        regressions.append(
            f"blocks speedup (geomean) {base:.2f}x -> {cur:.2f}x ({delta:+.1%})"
        )
    return [
        f"  {'*':<10s} {'blocks speedup (geomean)':<32s} "
        f"{base:8.2f}x -> {cur:8.2f}x ({delta:+6.1%}) {note}"
    ]


def _trace_cache_lines(baseline: dict, current: dict) -> list[str]:
    """Informational trace-cache hit/miss comparison from the manifests.

    A warm run that suddenly reports misses means the cache key changed
    (emulator semantics, workload source, seed) — worth knowing when
    reading a wall-clock delta, though never a gate by itself.
    """
    lines = []
    pairs = []
    for label, snap in (("baseline", baseline), ("current", current)):
        cache = snap.get("manifest", {}).get("trace_cache") or {}
        hits = int(cache.get("hits", 0))
        misses = int(cache.get("misses", 0))
        total = hits + misses
        rate = f"{hits / total:.0%}" if total else "n/a"
        state = "enabled" if cache.get("enabled") else "disabled"
        pairs.append((hits, misses))
        lines.append(
            f"  {label:<8s} trace cache {state}: {hits} hits / {misses} misses "
            f"(hit rate {rate})"
        )
    (bh, bm), (ch, cm) = pairs
    if (bh + bm) and (ch + cm):
        lines.append(
            f"  {'delta':<8s} trace cache: {ch - bh:+d} hits, {cm - bm:+d} misses "
            f"(informational)"
        )
    lines.append("")
    return lines


def _supervisor_lines(baseline: dict, current: dict) -> list[str]:
    """Informational sweep-supervision comparison from the manifests.

    Retries and respawns both add wall time (re-executed cells, worker
    restart latency), and a resumed run executes fewer cells than a cold
    one — all of which skews throughput numbers.  Surfacing the counters
    next to the perf delta explains such skews without gating on them:
    supervision overhead is workload- and fault-dependent by design.
    """
    lines = []
    found = False
    for label, snap in (("baseline", baseline), ("current", current)):
        sup = snap.get("manifest", {}).get("supervisor") or {}
        if not sup:
            lines.append(f"  {label:<8s} supervisor: no supervised sweep in snapshot")
            continue
        found = True
        rate = float(sup.get("resume_hit_rate", 0.0))
        lines.append(
            f"  {label:<8s} supervisor: {sup.get('cells_executed', 0)}/"
            f"{sup.get('cells_total', 0)} cells executed, "
            f"{sup.get('resume_hits', 0)} resumed ({rate:.0%} journal hit rate), "
            f"{sup.get('respawns', 0)} respawns, {sup.get('retries', 0)} retries, "
            f"{sup.get('quarantined', 0)} quarantined (informational)"
        )
    if not found:
        return []
    lines.append("")
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_<run>.json")
    parser.add_argument("current", help="current BENCH_<run>.json")
    parser.add_argument(
        "--threshold", type=float, default=0.10, metavar="FRACTION",
        help="relative drop that counts as a regression (default 0.10)",
    )
    parser.add_argument(
        "--strict-throughput", action="store_true",
        help="also gate on host inst/s (only meaningful on identical hosts)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = load_bench_snapshot(args.baseline)
        current = load_bench_snapshot(args.current)
    except (ValueError, OSError) as exc:
        print(f"error: invalid bench snapshot: {exc}", file=sys.stderr)
        return 2
    print(f"baseline: {baseline['run']}  (git {baseline['manifest'].get('git_sha')})")
    print(f"current:  {current['run']}  (git {current['manifest'].get('git_sha')})")
    lines, regressions = compare(
        baseline, current, args.threshold, args.strict_throughput
    )
    print("\n".join(lines))
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond {args.threshold:.0%}:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print(f"\nOK: no IPC regression beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
