#!/usr/bin/env python
"""Generate a paper-fidelity regression report (``repro-report``).

Usage::

    python scripts/fidelity_report.py [-b li mcf] [-n 4000]
        [--out-md report.md] [--out-html report.html] [--no-fail]

Regenerates Figures 1, 2, 4, 6, 11, 12 and Table 1 at a small budget,
scores each paper claim against its tolerance band, renders CPI stacks
for the headline configurations, and appends run-over-run trend deltas
from ``BENCH_*.json`` perf snapshots.  Exits 1 when any figure is out
of tolerance (the CI fidelity gate), unless ``--no-fail`` is given.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.report import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
