"""Bench: regenerate Figure 12 (speed-up decomposition).

Prints the per-technique incremental speed-ups over simple pipelining
and asserts the decomposition shapes the paper reports:

* partial operand bypassing alone provides a large share of the gain
  ("roughly half of the benefit for most benchmarks");
* the remaining techniques together add more on top (paper: +8%
  average at slice-by-2, +13% at slice-by-4);
* increments sum exactly to the total speed-up.
"""

from conftest import BENCH_SUBSET, once

from repro.experiments import figure12


def test_figure12(benchmark, fig11_sweep):
    result = once(benchmark, figure12.run, base=fig11_sweep)
    print()
    print(result.render())

    for s in (2, 4):
        for name in BENCH_SUBSET:
            incs = result.increments(name, s)
            total = result.total_speedup(name, s)
            assert abs(sum(v for _, v in incs) - total) < 1e-9
            assert total > 0, (name, s)
            pob = incs[0][1]
            assert pob > 0, (name, s, "bypassing must contribute")
            # Bypassing is a major component: at least a third of the
            # total on every benchmark (paper: roughly half).
            assert pob >= total / 3 - 1e-9, (name, s)
        # The new techniques add on top of bypassing, and add more at
        # deeper slicing (paper: 8% at x2, 13% at x4).
        extra = result.mean_new_technique_contribution(s)
        assert extra >= 0
    assert result.mean_new_technique_contribution(4) >= result.mean_new_technique_contribution(2)
