"""Design-choice ablations called out in DESIGN.md.

Sensitivity of the headline results to the structural parameters the
paper fixes in Table 2: LSQ depth (Figure 2's disambiguation window),
predictor capacity (Figure 6's misprediction supply), the L1 latency
penalty the slice-by-4 machine pays (§7.1), and the replay penalty
charged on mis-speculated schedules.
"""

import dataclasses

from conftest import BENCH_INSTRUCTIONS, BENCH_WARMUP, once

from repro.characterization import characterize_branches, characterize_lsq
from repro.core.config import bitslice_config
from repro.experiments.runner import collect_trace
from repro.timing.simulator import simulate


def test_lsq_depth_sensitivity(benchmark):
    """A deeper LSQ sees more prior stores, so partial disambiguation
    has more work to do — yet the 9-bit knee must persist (Figure 2 is
    robust to the queue depth)."""
    trace = collect_trace("bzip", 2 * BENCH_INSTRUCTIONS)

    def run():
        return {
            size: characterize_lsq(trace, lsq_size=size, bits=(2, 9, 15))
            for size in (8, 32, 128)
        }

    results = once(benchmark, run)
    print()
    for size, char in results.items():
        print(
            f"  LSQ {size:>3}: decisive @bit2 {char.resolved_fraction(2):6.1%}  "
            f"@bit9 {char.resolved_fraction(9):6.1%}  @bit15 {char.resolved_fraction(15):6.1%}"
        )
    for char in results.values():
        assert char.resolved_fraction(15) > 0.9
    # More stores in the window ⇒ (weakly) harder low-bit disambiguation.
    assert results[128].resolved_fraction(2) <= results[8].resolved_fraction(2) + 1e-9


def test_gshare_capacity_sensitivity(benchmark):
    """Figure 6 used a "very large" 64k gshare deliberately: a small
    predictor floods the study with easy conflict mispredictions."""
    trace = collect_trace("go", 2 * BENCH_INSTRUCTIONS)

    def run():
        return {
            entries: characterize_branches(trace, gshare_entries=entries, warmup=BENCH_WARMUP)
            for entries in (256, 4096, 64 * 1024)
        }

    results = once(benchmark, run)
    print()
    for entries, char in results.items():
        print(f"  gshare {entries:>6}: accuracy {char.accuracy:6.1%}  mispredictions {char.mispredictions}")
    accs = [results[e].accuracy for e in (256, 4096, 64 * 1024)]
    assert accs[0] <= accs[1] + 0.02 and accs[1] <= accs[2] + 0.02


def test_l1_latency_cost_of_slice4(benchmark):
    """§7.1: the slice-by-4 machine takes a 2-cycle L1D.  Quantify what
    that alone costs by running slice-by-4 with a (counterfactual)
    1-cycle L1D."""
    trace = collect_trace("mcf", BENCH_INSTRUCTIONS + BENCH_WARMUP)
    paper_cfg = bitslice_config(4)
    fast_l1 = dataclasses.replace(paper_cfg, l1_latency=1)

    def run():
        return (
            simulate(paper_cfg, trace, warmup=BENCH_WARMUP),
            simulate(fast_l1, trace, warmup=BENCH_WARMUP),
        )

    paper, fast = once(benchmark, run)
    print(f"\n  mcf slice-4: 2-cycle L1D IPC {paper.ipc:.3f}, 1-cycle L1D IPC {fast.ipc:.3f}")
    assert fast.ipc >= paper.ipc


def test_replay_penalty_sensitivity(benchmark):
    """The selective-replay cost charged on load-hit mis-speculation
    (and PTM way mispredicts) should shift IPC monotonically."""
    trace = collect_trace("mcf", BENCH_INSTRUCTIONS + BENCH_WARMUP)

    def run():
        out = {}
        for penalty in (0, 2, 8):
            cfg = dataclasses.replace(bitslice_config(2), replay_penalty=penalty)
            out[penalty] = simulate(cfg, trace, warmup=BENCH_WARMUP)
        return out

    results = once(benchmark, run)
    print()
    for penalty, stats in results.items():
        print(f"  replay penalty {penalty}: IPC {stats.ipc:.3f} ({stats.load_replays} replays)")
    ipcs = [results[p].ipc for p in (0, 2, 8)]
    assert ipcs[0] >= ipcs[1] >= ipcs[2]
