"""Shared benchmark configuration.

The benches regenerate every paper table/figure at a feasible scale
(pure-Python simulation): a representative benchmark subset and a
shorter window than the CLI defaults.  Full-suite regeneration is
documented in EXPERIMENTS.md (``repro-experiment all``).
"""

from __future__ import annotations

import pytest

#: Window per benchmark for timing benches (instructions).
BENCH_INSTRUCTIONS = 8_000
BENCH_WARMUP = 2_000

#: Representative subset covering the suite's behaviour space:
#: compression (bzip), pointer-chasing (li), memory-bound (mcf),
#: OO-store (vortex).
BENCH_SUBSET = ("bzip", "li", "mcf", "vortex")


@pytest.fixture(autouse=True, scope="session")
def _no_persistent_trace_cache():
    """Benchmarks measure real collection cost: a warm ~/.cache would
    silently turn an emulation bench into an npz-load bench."""
    from repro.experiments import trace_cache

    trace_cache.configure(enabled=False)
    yield
    trace_cache.configure(enabled=False)


@pytest.fixture(scope="session")
def fig11_sweep():
    """One shared Figure 11 sweep reused by the fig11/fig12 benches."""
    from repro.experiments import figure11

    return figure11.run(
        BENCH_SUBSET, instructions=BENCH_INSTRUCTIONS, slice_counts=(2, 4), warmup=BENCH_WARMUP
    )


def once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
