"""Bench: regenerate Figure 11 (IPC of the bit-sliced machine).

Prints the full cumulative-technique IPC table for slice-by-2 and
slice-by-4 and asserts the paper's headline shapes:

* naive EX pipelining loses IPC, more for deeper pipelines;
* the full bit-slice design recovers most of it — slice-by-2 lands
  within a few % of the ideal machine (paper: ~1%);
* slice-by-4's speedup over simple pipelining exceeds slice-by-2's;
* the §7.1 stat: partial-tag way misprediction rate stays small.
"""

from conftest import BENCH_SUBSET, once


def test_figure11(benchmark, fig11_sweep):
    result = once(benchmark, lambda: fig11_sweep)
    print()
    print(result.render())

    for name in BENCH_SUBSET:
        ideal = result.ideal_ipc(name)
        for s in (2, 4):
            simple = result.simple_ipc(name, s)
            full = result.ipc(name, s)
            assert simple < ideal, (name, s, "pipelining must cost IPC")
            assert full > simple, (name, s, "bit-slicing must recover IPC")
            assert full <= ideal * 1.02, (name, s, "no free lunch")
        # Deeper pipelining hurts more.
        assert result.simple_ipc(name, 4) < result.simple_ipc(name, 2)

    # Aggregates (paper: slice-2 ~100% of ideal / +16% over simple;
    # slice-4 ~82% of ideal / +44% over simple).
    rel2 = result.mean_relative_to_ideal(2)
    rel4 = result.mean_relative_to_ideal(4)
    assert rel2 > 0.93
    assert rel4 > 0.80
    assert rel2 > rel4
    up2 = result.mean_speedup_over_simple(2)
    up4 = result.mean_speedup_over_simple(4)
    assert up2 > 0.03
    assert up4 > up2

    # §7.1: way-misprediction rate of partial tag matching is small
    # (paper: ~2% slice-by-2, ~1% slice-by-4).
    for name in BENCH_SUBSET:
        for s in (2, 4):
            stats = result.ladder[(name, s)][-1]
            if stats.ptm_accesses > 200:
                assert stats.ptm_way_mispredict_rate < 0.10, (name, s)
