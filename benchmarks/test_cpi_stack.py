"""Bench: CPI-stack attribution across the smoke suite.

Reuses the shared Figure 11 sweep (every benchmark × every cumulative
ladder step × both slice counts, plus the ideal machine) and asserts
the attribution contract on every run: the ``sim.cpi.*`` components sum
exactly to the measured cycles.  Prints the headline-configuration
stacks — the regression-triage view ``repro-report`` ships in CI.
"""

from conftest import BENCH_SUBSET, once

from repro.obs.attribution import render_stacks


def test_cpi_stacks_sum_on_smoke_suite(benchmark, fig11_sweep):
    result = once(benchmark, lambda: fig11_sweep)

    checked = []
    for name in BENCH_SUBSET:
        # .cpi_stack() raises AttributionError on any sum mismatch.
        checked.append(result.ideal[name].cpi_stack(benchmark=name))
        for s in (2, 4):
            for stats in result.ladder[(name, s)]:
                checked.append(stats.cpi_stack(benchmark=name))

    print()
    headline = [
        stack for stack in checked
        if stack.config_name in ("ideal",)
        or stack.config_name.endswith("partial_tag_matching")
    ]
    print(render_stacks(headline, title="CPI stacks — smoke suite headline configs"))

    # Slicing must show up as attributed slice-chain cycles somewhere,
    # and the memory component must register on the memory-bound mcf.
    assert any(s.components["slice_wait"] for s in checked)
    assert any(
        s.components["memory"] for s in checked if s.benchmark == "mcf"
    )
