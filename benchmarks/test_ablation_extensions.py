"""Ablations: standalone technique value and the paper's discussed
extensions.

The Figure 12 ladder enables techniques cumulatively, so a technique
that overlaps an earlier one shows a small increment even when its
standalone value is real.  These benches isolate:

1. early branch resolution *without* out-of-order slices (its full
   standalone strength — compare slices then finish one per cycle);
2. early load–store disambiguation on an adversarial kernel whose
   store addresses resolve late;
3. the §6 narrow-width relaxation and §5.1 speculative forwarding
   extensions.
"""

from conftest import BENCH_INSTRUCTIONS, BENCH_WARMUP, once

from repro.core.config import Features, bitslice_config
from repro.emulator.trace import trace_program
from repro.experiments.runner import collect_trace
from repro.isa.assembler import assemble
from repro.timing.simulator import simulate

# A kernel whose store addresses come off a long dependence chain while
# a younger, provably-disjoint load sits behind them in the LSQ: the
# early-disambiguation target case (§5.1).  Store addresses are ≡0
# (mod 8), the load address is ≡4 (mod 8): they differ at bit 2, so the
# partial compare clears the load after the *first* address slice.
LATE_STORE_KERNEL = """
        .data
        .align 3
buf:    .space 4096
        .text
main:   li   $s0, 4000
        la   $s1, buf
        li   $s3, 1
loop:   addu $t0, $s3, $s3        # slow address chain
        addu $t0, $t0, $s3
        addu $t0, $t0, $s3
        addu $t0, $t0, $t0
        addu $t0, $t0, $s3
        andi $t0, $t0, 0xff8      # multiple of 8
        addu $t1, $s1, $t0
        sw   $s3, 0($t1)          # store: address just computed
        lw   $t2, 4($s1)          # disjoint load (bit 2 differs)
        addu $s3, $s3, $t2
        addiu $s3, $s3, 1
        andi $s3, $s3, 0x7ff
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
"""


def test_early_branch_standalone(benchmark):
    """Without out-of-order slices, compare slices finish serially and
    early detection redirects fetch whole cycles sooner."""
    trace = collect_trace("li", BENCH_INSTRUCTIONS + BENCH_WARMUP)
    without = Features(partial_operand_bypassing=True)
    with_eb = Features(partial_operand_bypassing=True, early_branch_resolution=True)

    def run():
        a = simulate(bitslice_config(4, without), trace, warmup=BENCH_WARMUP)
        b = simulate(bitslice_config(4, with_eb), trace, warmup=BENCH_WARMUP)
        return a, b

    a, b = once(benchmark, run)
    print(f"\n  li, slice-4, in-order slices: IPC {a.ipc:.3f} -> {b.ipc:.3f} "
          f"({b.early_resolved_mispredicts} early redirects)")
    assert b.early_resolved_mispredicts > 0
    assert b.ipc >= a.ipc


def test_early_lsd_on_late_store_addresses(benchmark):
    """The adversarial kernel: early disambiguation must release loads
    before the full store address is known."""
    trace = tuple(trace_program(assemble(LATE_STORE_KERNEL), max_steps=30_000))
    without = Features(True, True, True, False, False)
    with_lsd = Features(True, True, True, True, False)

    def run():
        a = simulate(bitslice_config(4, without), trace, warmup=2_000)
        b = simulate(bitslice_config(4, with_lsd), trace, warmup=2_000)
        return a, b

    a, b = once(benchmark, run)
    print(f"\n  late-store kernel, slice-4: IPC {a.ipc:.3f} -> {b.ipc:.3f} "
          f"({b.lsd_early_releases} of {b.lsd_searches} searches released early)")
    assert b.lsd_early_releases > 0
    assert b.ipc >= a.ipc


def test_narrow_width_relaxation(benchmark):
    """§6 extension: narrow results publish their high slices early."""
    trace = collect_trace("gcc", BENCH_INSTRUCTIONS + BENCH_WARMUP)
    base = Features.all()
    ext = Features.extended()

    def run():
        a = simulate(bitslice_config(4, base), trace, warmup=BENCH_WARMUP)
        b = simulate(bitslice_config(4, ext), trace, warmup=BENCH_WARMUP)
        return a, b

    a, b = once(benchmark, run)
    relaxed = b.extra.get("narrow_relaxations", 0)
    print(f"\n  gcc, slice-4: IPC {a.ipc:.3f} -> {b.ipc:.3f} ({relaxed} narrow results relaxed)")
    assert relaxed > 0
    assert b.ipc >= a.ipc * 0.99  # never meaningfully hurts


def test_speculative_forwarding(benchmark):
    """§5.1 extension: forward on a unique partial match instead of
    waiting for the full compare (measured on a forwarding-heavy
    store→load kernel)."""
    kernel = """
        .data
        .align 3
buf:    .space 64
        .text
main:   li   $s0, 5000
        la   $s1, buf
        li   $s3, 7
loop:   addu $t0, $s3, $s3        # slow the store address a little
        addu $t0, $t0, $s3
        andi $t0, $t0, 0x38
        addu $t1, $s1, $t0
        sw   $s3, 0($t1)
        lw   $t2, 0($t1)          # immediately reload: must forward
        addu $s3, $s3, $t2
        andi $s3, $s3, 0xff
        addiu $s3, $s3, 3
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
    """
    trace = tuple(trace_program(assemble(kernel), max_steps=30_000))
    base = Features.all()
    spec = Features(True, True, True, True, True, speculative_forwarding=True)

    def run():
        a = simulate(bitslice_config(4, base), trace, warmup=2_000)
        b = simulate(bitslice_config(4, spec), trace, warmup=2_000)
        return a, b

    a, b = once(benchmark, run)
    forwards = b.extra.get("spec_forwards", 0)
    print(f"\n  forwarding kernel, slice-4: IPC {a.ipc:.3f} -> {b.ipc:.3f} "
          f"({forwards} speculative forwards, {b.store_forwards} total)")
    assert b.store_forwards > 0
    assert forwards > 0
    assert b.ipc >= a.ipc


def test_sum_addressed_cache(benchmark):
    """§5.2 extension: the cache decoder computes base+offset, removing
    the adder from the load index path — orthogonal to partial tag
    matching and combinable with it."""
    trace = collect_trace("mcf", BENCH_INSTRUCTIONS + BENCH_WARMUP)
    base = Features.all()
    with_sam = Features(True, True, True, True, True, sum_addressed_cache=True)

    def run():
        a = simulate(bitslice_config(2, base), trace, warmup=BENCH_WARMUP)
        b = simulate(bitslice_config(2, with_sam), trace, warmup=BENCH_WARMUP)
        return a, b

    a, b = once(benchmark, run)
    print(f"\n  mcf, slice-2: IPC {a.ipc:.3f} -> {b.ipc:.3f} with sum-addressed indexing")
    assert b.ipc >= a.ipc
