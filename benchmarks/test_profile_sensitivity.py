"""Ablation: input-profile (footprint) sensitivity.

The SPEC test/train/ref analogue: smaller inputs shrink working sets,
which raises cache hit rates and collapses partial-tag ambiguity
earlier — the same footprint dependence the paper's Figure 4 shows by
comparing a 64KB and an 8KB cache.
"""

from conftest import BENCH_INSTRUCTIONS, BENCH_WARMUP, once

from repro.characterization.vectorized import characterize_tags_fast
from repro.core.config import baseline_config
from repro.experiments.runner import collect_trace
from repro.memsys.cache import CacheConfig
from repro.timing.simulator import simulate


def test_footprint_profile_sensitivity(benchmark):
    cfg = CacheConfig(size=8 * 1024, assoc=4, line_size=32)

    def run():
        out = {}
        for profile in ("test", "ref"):
            trace = collect_trace(
                "vortex", BENCH_INSTRUCTIONS + BENCH_WARMUP, profile=profile
            )
            tags = characterize_tags_fast(
                trace, cfg, bits=(1, 2, 4, cfg.tag_bits), warmup=BENCH_WARMUP
            )
            timing = simulate(baseline_config(), trace, warmup=BENCH_WARMUP)
            out[profile] = (tags, timing)
        return out

    results = once(benchmark, run)
    print()
    for profile, (tags, timing) in results.items():
        print(
            f"  vortex/{profile}: hit rate {tags.hit_rate:6.1%}  "
            f"IPC {timing.ipc:.3f}  accesses {tags.accesses}"
        )
    test_tags, test_timing = results["test"]
    ref_tags, ref_timing = results["ref"]
    # The smaller footprint must hit (weakly) better and run (weakly)
    # faster on the same machine.
    assert test_tags.hit_rate >= ref_tags.hit_rate - 0.02
    assert test_timing.ipc >= ref_timing.ipc * 0.95
