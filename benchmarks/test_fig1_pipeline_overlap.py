"""Bench: regenerate Figure 1 (conceptual pipeline-overlap diagram).

Prints rendered pipeline timelines for the Figure 1 dependence chain
under the three machines and asserts the conceptual claim: naive EX
pipelining stretches the dependence chain, and the bit-sliced machine
compresses it back toward the non-pipelined schedule.
"""

from conftest import once

from repro.experiments import figure1


def test_figure1(benchmark):
    result = once(benchmark, figure1.run)
    print()
    print(result.render())

    ideal = result.ipcs["ideal"]
    simple = result.ipcs["simple-pipe-2"]
    sliced = result.ipcs["bitslice-2"]
    assert simple < ideal
    assert simple < sliced <= ideal * 1.02

    # The dependence chain spans more cycles under simple pipelining
    # than under the ideal machine; bit-slicing recovers the overlap.
    assert result.chain_span("simple-pipe-2") > result.chain_span("ideal")
    assert result.chain_span("bitslice-2") <= result.chain_span("simple-pipe-2")
