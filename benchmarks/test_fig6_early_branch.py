"""Bench: regenerate Figure 6 (early branch misprediction detection)
and the §5.3 in-text statistics.

Prints one detection curve per benchmark and asserts the paper's
shapes: a substantial fraction of mispredictions detectable from the
low-order bits, a flat middle, and the bit-31 spike (sign/equality
cases) closing the gap to 100%.
"""

from conftest import BENCH_INSTRUCTIONS, BENCH_WARMUP, once

from repro.experiments import figure6
from repro.workloads import BENCHMARK_NAMES


def test_figure6(benchmark):
    result = once(
        benchmark,
        figure6.run,
        BENCHMARK_NAMES,
        instructions=BENCH_INSTRUCTIONS,
        warmup=BENCH_WARMUP,
    )
    print()
    print(result.render())
    # Shape 1: detection grows with bits and completes at 32.
    for name, char in result.curves.items():
        if not char.mispredictions:
            continue
        curve = [char.detected_fraction(b) for b in (1, 8, 16, 31, 32)]
        assert all(b >= a - 1e-9 for a, b in zip(curve, curve[1:])), name
        assert curve[-1] == 1.0
        # Shape 2 (bit-31 spike): some mispredictions need every bit.
        assert char.detected_fraction(31) <= char.detected_fraction(32)
    # Shape 3: the §5.3 aggregates — a meaningful share of
    # mispredictions is detectable early (paper: ~1/3 at 8 bits, 28%
    # at bit 0), and beq/bne carry a large share of branches (61%) and
    # mispredictions (48%).  Synthetic kernels skew beq/bne-richer.
    assert result.mean_detected_at_1 > 0.15
    assert result.mean_detected_at_8 > 0.30
    assert result.mean_eq_branch_fraction > 0.45
    assert result.mean_eq_mispredict_fraction > 0.35
