"""Bench: regenerate the workload-characteristics table and assert the
suite stays within the behaviour bands the substitution argument
(DESIGN.md §2) relies on."""

from conftest import BENCH_INSTRUCTIONS, once

from repro.experiments import workload_table
from repro.workloads import BENCHMARK_NAMES


def test_workload_characteristics(benchmark):
    result = once(benchmark, workload_table.run, BENCHMARK_NAMES, instructions=BENCH_INSTRUCTIONS)
    print()
    print(result.render())
    for name, p in result.profiles.items():
        # Integer-workload bands: memory traffic, control flow and
        # dependence tightness comparable to compiled integer code.
        assert 0.015 < p.load_fraction < 0.6, name  # vpr windows can land in its store-only reset loop
        assert 0.01 < p.branch_fraction < 0.5, name
        assert 0.2 < p.taken_rate <= 1.0, name
        assert p.short_dependence_fraction(2) > 0.25, name
        assert p.data_working_set > 0, name
    # The suite spans memory-light to memory-heavy kernels, and writes
    # meaningfully in aggregate (go's eval loop is read-only by design).
    wsets = [p.data_working_set for p in result.profiles.values()]
    assert max(wsets) > 10 * min(wsets)
    stores = [p.store_fraction for p in result.profiles.values()]
    assert sum(stores) / len(stores) > 0.02
