"""Bench: regenerate Table 1 (benchmark characteristics).

Prints the same rows the paper's Table 1 reports (IPC, % loads, branch
accuracy per benchmark) and asserts they stay in the plausible bands.
"""

from conftest import BENCH_INSTRUCTIONS, BENCH_SUBSET, BENCH_WARMUP, once

from repro.experiments import table1


def test_table1(benchmark):
    result = once(
        benchmark, table1.run, BENCH_SUBSET, instructions=BENCH_INSTRUCTIONS, warmup=BENCH_WARMUP
    )
    print()
    print(result.render())
    rows = result.rows()
    assert [r.benchmark for r in rows] == list(BENCH_SUBSET)
    for row in rows:
        # Paper Table 1: IPC 0.7–2.9, loads 20–35%, accuracy 75–98%.
        # Synthetic kernels land in wider but overlapping bands.
        assert 0.2 < row.ipc < 4.0
        assert 0.03 < row.load_fraction < 0.6
        assert 0.6 < row.branch_accuracy <= 1.0
