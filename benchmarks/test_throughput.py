"""Bench: simulator throughput (the classic pytest-benchmark use).

Measures the functional emulator and the timing simulator in
instructions per second — useful for tracking regressions in the
simulation infrastructure itself.
"""

import pytest

from repro.core.config import baseline_config, bitslice_config
from repro.emulator.machine import Machine
from repro.timing.simulator import simulate
from repro.workloads import get_workload

N = 20_000


@pytest.fixture(scope="module")
def bzip_trace():
    machine = Machine(get_workload("bzip").build(iters=1))
    return tuple(machine.trace(N))


def test_emulator_throughput(benchmark):
    program = get_workload("bzip").build(iters=1)

    def run():
        machine = Machine(program)
        machine.run(N)
        return machine.instret

    executed = benchmark(run)
    assert executed == N


def test_timing_simulator_throughput_ideal(benchmark, bzip_trace):
    stats = benchmark(lambda: simulate(baseline_config(), bzip_trace))
    assert stats.instructions == N


def test_timing_simulator_throughput_bitslice4(benchmark, bzip_trace):
    stats = benchmark(lambda: simulate(bitslice_config(4), bzip_trace))
    assert stats.instructions == N


def test_lsq_characterization_scalar(benchmark, bzip_trace):
    from repro.characterization.lsq_char import characterize_lsq

    result = benchmark(lambda: characterize_lsq(bzip_trace))
    assert result.loads > 0


def test_lsq_characterization_vectorized(benchmark, bzip_trace):
    """The numpy fast path must match the scalar study (asserted in
    tests/) — this bench tracks the speedup."""
    from repro.characterization.vectorized import characterize_lsq_fast

    result = benchmark(lambda: characterize_lsq_fast(bzip_trace))
    assert result.loads > 0
