"""Bench: regenerate Figure 2 (early load–store disambiguation).

Prints the stacked category fractions vs. bits compared for the
paper's two panels (bzip, gcc) and asserts the headline shape: by ~9
bits a load is almost always either cleared past all stores or left
with the unique forwarding candidate.
"""

from conftest import BENCH_INSTRUCTIONS, once

from repro.experiments import figure2
from repro.lsq.disambiguation import LSDCategory


def test_figure2(benchmark):
    result = once(
        benchmark,
        figure2.run,
        ("bzip", "gcc"),
        instructions=3 * BENCH_INSTRUCTIONS,
    )
    print()
    print(result.render())
    for name in ("bzip", "gcc"):
        char = result.panels[name]
        # Shape 1: resolution improves monotonically with bits.
        resolved = [char.resolved_fraction(b) for b in result.bits]
        assert all(b >= a - 1e-9 for a, b in zip(resolved, resolved[1:]))
        # Shape 2: paper — after ~9 bits, decisively disambiguated
        # (we allow a slightly later knee for the synthetic kernels).
        assert char.resolved_fraction(15) > 0.9
        # Shape 3: the full comparison resolves everything.
        assert char.resolved_fraction(31) > 0.999
        # Shape 4: the lone partial matcher at 10+ bits is almost
        # always the true forwarder (paper: single-nonmatch → 0).
        assert char.fraction(15, LSDCategory.SINGLE_NONMATCH) < 0.05
