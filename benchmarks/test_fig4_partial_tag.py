"""Bench: regenerate Figure 4 (partial tag matching).

Prints the outcome stacks for the paper's two panels (mcf 64KB/64B,
twolf 8KB/32B) at 2/4/8 ways and asserts the convergence shape: the
multi-match fraction decays with tag bits and the stack converges to
the true hit/miss split.
"""

from conftest import BENCH_INSTRUCTIONS, BENCH_WARMUP, once

from repro.experiments import figure4
from repro.memsys.partial_tag import PartialTagOutcome


def test_figure4(benchmark):
    result = once(
        benchmark,
        figure4.run,
        instructions=3 * BENCH_INSTRUCTIONS,
        warmup=BENCH_WARMUP,
    )
    print()
    print(result.render())
    for (name, assoc), char in result.panels.items():
        bits = sorted(char.counts)
        multi = [char.fraction(b, PartialTagOutcome.MULTI) for b in bits]
        # Shape 1: ambiguity decays monotonically with bits.
        assert all(b <= a + 1e-9 for a, b in zip(multi, multi[1:])), (name, assoc)
        # Shape 2: the full-width compare is exact.
        full = char.config.tag_bits
        assert char.fraction(full, PartialTagOutcome.MULTI) == 0.0
        assert char.fraction(full, PartialTagOutcome.SINGLE_MISS) == 0.0
        # Shape 3: single-entry-miss stays small once a few tag bits
        # are visible (paper: "the single entry-miss category is quite
        # small at this point" — what makes MRU way prediction safe).
        probe = min(b for b in bits if b >= 4)
        assert char.fraction(probe, PartialTagOutcome.SINGLE_MISS) < 0.15, (name, assoc)
