"""Inter-slice dependence rules (paper Figure 8).

Given an operation class, these functions answer the two questions the
slice scheduler asks per result slice *k*:

1. Which **input** slices must be available before slice *k* can issue?
2. Which of the instruction's **own** slices must have completed first
   (the carry/shift chains)?

Slice indices run low-order first (slice 0 holds bits [0, width)).
"""

from __future__ import annotations

from repro.isa.opclass import OpClass


def input_slices_needed(op_class: OpClass, k: int, num_slices: int) -> tuple[int, ...]:
    """Input operand slices required by result slice *k*.

    * LOGIC / ZERO_TEST / ARITH — slice *k* only (arithmetic gets the
      rest of its information through the carry chain).
    * SHIFT_LEFT — slices 0..k: left-shifted-in bits come from lower
      input slices.
    * SHIFT_RIGHT — slices k..S-1: right shifts pull bits downward.
    * COMPARE / FULL / LOAD / STORE — all slices (COMPARE needs the
      sign; FULL units collect whole operands; LOAD/STORE address
      generation is handled as ARITH by the scheduler, this entry
      covers their *data*/full-unit behaviour).
    """
    _check(k, num_slices)
    if op_class in (OpClass.LOGIC, OpClass.ZERO_TEST, OpClass.ARITH):
        return (k,)
    if op_class is OpClass.SHIFT_LEFT:
        return tuple(range(k + 1))
    if op_class is OpClass.SHIFT_RIGHT:
        return tuple(range(k, num_slices))
    return tuple(range(num_slices))


def intra_slice_dependency(op_class: OpClass, k: int, num_slices: int) -> int | None:
    """The instruction's own slice that slice *k* must wait for, or None.

    * ARITH / SHIFT_LEFT — slice *k-1* (ripple carry / shifted-in bits).
    * SHIFT_RIGHT — slice *k+1* (the chain runs high to low).
    * LOGIC / ZERO_TEST — none: slices are fully independent and may
      execute out of order (paper Figure 8(c)).
    * everything else — executes atomically, no per-slice chain.
    """
    _check(k, num_slices)
    if op_class in (OpClass.ARITH, OpClass.SHIFT_LEFT):
        return k - 1 if k > 0 else None
    if op_class is OpClass.SHIFT_RIGHT:
        return k + 1 if k < num_slices - 1 else None
    return None


def slice_issue_order(op_class: OpClass, num_slices: int) -> tuple[int, ...]:
    """Natural issue order of slices for in-order slice execution.

    Right shifts naturally evaluate high slice first; everything else
    evaluates low first.  (With the out-of-order-slices feature the
    scheduler ignores this order for LOGIC/ZERO_TEST.)
    """
    if op_class is OpClass.SHIFT_RIGHT:
        return tuple(reversed(range(num_slices)))
    return tuple(range(num_slices))


def _check(k: int, num_slices: int) -> None:
    if not 0 <= k < num_slices:
        raise ValueError(f"slice index {k} out of range for {num_slices} slices")
