"""Core contribution: bit-sliced operands and the machine configurations.

:mod:`repro.core.slicing` — exact sliced arithmetic (split/join, carry-
propagating per-slice add/sub) used by both the scheduler model and the
property tests.

:mod:`repro.core.dependences` — the inter-slice dependence rules of
paper Figure 8, per operation class.

:mod:`repro.core.config` — machine configurations: the Table 2 baseline,
the Figure 10 pipeline variants, and the feature flags that build up the
Figure 11/12 stacks.
"""

from repro.core.config import (
    CUMULATIVE_TECHNIQUES,
    TABLE2,
    Features,
    MachineConfig,
    baseline_config,
    bitslice_config,
    cumulative_configs,
    simple_pipeline_config,
)
from repro.core.dependences import input_slices_needed, intra_slice_dependency
from repro.core.slicing import join_slices, slice_width, sliced_add, sliced_sub, split_value

__all__ = [
    "CUMULATIVE_TECHNIQUES",
    "Features",
    "MachineConfig",
    "TABLE2",
    "baseline_config",
    "bitslice_config",
    "cumulative_configs",
    "input_slices_needed",
    "intra_slice_dependency",
    "join_slices",
    "simple_pipeline_config",
    "slice_width",
    "sliced_add",
    "sliced_sub",
    "split_value",
]
