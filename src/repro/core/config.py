"""Machine configurations (paper Table 2 and Figure 10).

Three families of configuration are evaluated:

* **baseline** — the best-case machine with a single-cycle (atomic)
  execution stage: Figure 10(a), the thin "ideal" bars of Figure 11;
* **simple pipeline** — the EX stage pipelined into 2 or 4 stages with
  operands still treated atomically: the bottom bars of Figure 11;
* **bit-sliced** — the EX stage sliced, with the partial-operand
  techniques enabled cumulatively: partial operand bypassing,
  out-of-order slices, early branch resolution, early load–store
  disambiguation, partial tag matching (the Figure 11/12 stacks).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

#: Names and order of the cumulative techniques in Figures 11 and 12.
CUMULATIVE_TECHNIQUES: tuple[str, ...] = (
    "simple pipelining",
    "partial operand bypassing",
    "out-of-order slices",
    "early branch resolution",
    "early l/s disambiguation",
    "partial tag matching",
)


@dataclass(frozen=True)
class Features:
    """Partial-operand techniques (all off = simple pipelining).

    The first five are the paper's evaluated ladder (Figures 11/12).
    The last two are extensions the paper *discusses* but does not
    evaluate, provided here for ablation studies:

    * ``narrow_width_relaxation`` — §6: "if an instruction is known to
      use narrow-width operands, inter-slice dependences could be
      relaxed further since the high-order register operand would be a
      known value of either all 0's or 1's".
    * ``speculative_forwarding`` — §5.1: "we could speculatively
      forward the store data in this case [a unique partial match]
      with very high accuracy".
    * ``sum_addressed_cache`` — §5.2: "Sum-addressed caches take a
      different approach ... performing the address calculation
      (base+offset) in the cache array decoder.  Partial tag matching
      and sum-addressed indexing are orthogonal, and both could be
      combined in a single design."
    """

    partial_operand_bypassing: bool = False
    out_of_order_slices: bool = False
    early_branch_resolution: bool = False
    early_lsq_disambiguation: bool = False
    partial_tag_matching: bool = False
    # Extensions (not part of the paper's evaluated configurations).
    narrow_width_relaxation: bool = False
    speculative_forwarding: bool = False
    sum_addressed_cache: bool = False

    @classmethod
    def none(cls) -> "Features":
        return cls()

    @classmethod
    def all(cls) -> "Features":
        """The paper's full configuration (extensions stay off)."""
        return cls(True, True, True, True, True)

    @classmethod
    def extended(cls) -> "Features":
        """Everything, including the discussed-but-unevaluated extensions."""
        return cls(True, True, True, True, True, True, True, True)


@dataclass(frozen=True)
class MachineConfig:
    """Full machine description consumed by the timing simulator.

    Defaults are the paper's Table 2 / Figure 10 values.
    """

    name: str = "base"
    # Widths and windows (Table 2).
    fetch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    ruu_size: int = 64
    lsq_size: int = 32
    # Pipeline shape (Figure 10): stages before EX, and EX depth.
    frontend_depth: int = 12       # Fetch1..RF2
    dispatch_stage: int = 6        # instruction occupies the RUU from DP2
    retire_stages: int = 2         # RE, CT
    ex_stages: int = 1             # 1 (base), 2, 4
    # Slicing.
    num_slices: int = 1            # 1 = atomic operands
    features: Features = field(default_factory=Features.none)
    # Memory system (Table 2).
    l1_latency: int = 1            # 2 for the slice-by-4 machine (§7.1)
    l2_latency: int = 6
    memory_latency: int = 100
    # Functional units (Table 2).
    int_alus: int = 4
    int_mult_lat: int = 3
    int_div_lat: int = 20
    fp_alu_lat: int = 2
    fp_mult_lat: int = 4
    fp_div_lat: int = 12
    fp_sqrt_lat: int = 24
    # Predictor (Table 2).
    gshare_entries: int = 64 * 1024
    btb_entries: int = 512
    btb_assoc: int = 4
    ras_depth: int = 8
    # Replay penalty charged to consumers scheduled off a wrong
    # speculation (load-hit speculation, PTM way mispredict).
    replay_penalty: int = 2

    def __post_init__(self) -> None:
        if self.num_slices not in (1, 2, 4):
            raise ValueError("num_slices must be 1, 2 or 4")
        if self.num_slices > 1 and self.ex_stages != self.num_slices:
            raise ValueError("sliced machines have one EX stage per slice")

    @property
    def slice_bits(self) -> int:
        return 32 // self.num_slices

    @property
    def is_sliced(self) -> bool:
        return self.num_slices > 1 and self.features.partial_operand_bypassing


def baseline_config() -> MachineConfig:
    """Figure 10(a): single-cycle EX, atomic operands (the ideal bar)."""
    return MachineConfig(name="ideal", ex_stages=1, num_slices=1)


def simple_pipeline_config(ex_stages: int) -> MachineConfig:
    """Pipelined EX with atomic operands (no partial-operand techniques).

    The slice-by-4 machine also takes a 2-cycle L1D (paper §7.1), which
    applies to its simple-pipelining baseline as well so the comparison
    isolates the partial-operand techniques.
    """
    if ex_stages not in (2, 4):
        raise ValueError("the paper pipelines EX into 2 or 4 stages")
    return MachineConfig(
        name=f"simple-pipe-{ex_stages}",
        ex_stages=ex_stages,
        num_slices=1,
        l1_latency=2 if ex_stages == 4 else 1,
    )


def bitslice_config(num_slices: int, features: Features | None = None, name: str | None = None) -> MachineConfig:
    """Figure 10(b)/(c): the bit-sliced machine with the given features."""
    if num_slices not in (2, 4):
        raise ValueError("the paper slices by 2 or by 4")
    features = Features.all() if features is None else features
    return MachineConfig(
        name=name or f"bitslice-{num_slices}",
        ex_stages=num_slices,
        num_slices=num_slices,
        features=features,
        l1_latency=2 if num_slices == 4 else 1,
    )


def cumulative_configs(num_slices: int) -> list[tuple[str, MachineConfig]]:
    """The Figure 11/12 ladder: simple pipelining, then each technique
    enabled on top of the previous ones, in paper order."""
    ladder: list[tuple[str, MachineConfig]] = [
        (CUMULATIVE_TECHNIQUES[0], simple_pipeline_config(num_slices))
    ]
    feature_names = (
        "partial_operand_bypassing",
        "out_of_order_slices",
        "early_branch_resolution",
        "early_lsq_disambiguation",
        "partial_tag_matching",
    )
    enabled: dict[str, bool] = {}
    for label, field_name in zip(CUMULATIVE_TECHNIQUES[1:], feature_names):
        enabled[field_name] = True
        config = bitslice_config(num_slices, Features(**enabled), name=f"{num_slices}s+{field_name}")
        ladder.append((label, config))
    return ladder


def _pretty_features(f: Features) -> str:
    on = [n for n in vars(f) if getattr(f, n)]
    return ", ".join(on) if on else "none"


#: Table 2 as a printable mapping (used by examples and docs).
TABLE2: dict[str, str] = {
    "Out-of-order Execution": (
        "4-wide fetch/issue/commit, 64-entry RUU, 32-entry LSQ, "
        "speculative scheduling for loads, 15-stage pipeline, "
        "no speculative load-store disambiguation"
    ),
    "Branch Prediction": "64K-entry gshare, 8-entry RAS, 4-way 512-entry BTB",
    "Memory System": (
        "L1 I$ 64KB 2-way 64B 1-cycle; L1 D$ 64KB 4-way 64B 1-cycle; "
        "L2 unified 1MB 4-way 64B 6-cycle; main memory 100-cycle"
    ),
    "Functional Units": (
        "4 integer ALUs (1-cycle), 1 integer mult/div (3/20-cycle), "
        "4 FP ALUs (2-cycle), 1 FP mult/div/sqrt (4/12/24-cycle)"
    ),
}


def describe(config: MachineConfig) -> str:
    """One-line human-readable description of a configuration."""
    if config.num_slices == 1 and config.ex_stages == 1:
        shape = "atomic 1-cycle EX (ideal)"
    elif config.num_slices == 1:
        shape = f"pipelined EX x{config.ex_stages}, atomic operands"
    else:
        shape = f"bit-sliced x{config.num_slices} ({config.slice_bits}-bit slices)"
    return f"{config.name}: {shape}; features: {_pretty_features(config.features)}"


def with_name(config: MachineConfig, name: str) -> MachineConfig:
    """Copy of *config* with a new display name."""
    return replace(config, name=name)


def pipeline_diagram(config: MachineConfig) -> str:
    """Render the Figure 10 stage diagram of a configuration.

    >>> print(pipeline_diagram(baseline_config()))
    Fetch1 Fetch2 Dec1 Dec2 DP1 DP2 Sch1 Sch2 Sch3 Iss RF1 RF2 EX [Mem] RE CT
    """
    front = ["Fetch1", "Fetch2", "Dec1", "Dec2", "DP1", "DP2", "Sch1", "Sch2", "Sch3", "Iss", "RF1", "RF2"]
    if config.ex_stages == 1:
        ex = ["EX"]
    else:
        ex = [f"EX{i + 1}" for i in range(config.ex_stages)]
    return " ".join(front + ex + ["[Mem]", "RE", "CT"])
