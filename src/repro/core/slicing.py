"""Exact bit-slice arithmetic.

The bit-sliced machine computes each result slice in its own pipeline
stage.  These helpers implement that computation exactly — including
carry propagation between adder slices — so the model's slice values
always agree with the architectural 32-bit result (verified by the
hypothesis property tests).
"""

from __future__ import annotations

WORD_BITS = 32
_M = 0xFFFFFFFF

#: Slice counts evaluated in the paper (plus 1 = conventional atomic).
VALID_SLICE_COUNTS = (1, 2, 4)


def slice_width(num_slices: int) -> int:
    """Bits per slice (32 / num_slices)."""
    if num_slices not in VALID_SLICE_COUNTS:
        raise ValueError(f"num_slices must be one of {VALID_SLICE_COUNTS}")
    return WORD_BITS // num_slices


def split_value(value: int, num_slices: int) -> tuple[int, ...]:
    """Split a 32-bit value into *num_slices* slices, low-order first."""
    width = slice_width(num_slices)
    mask = (1 << width) - 1
    value &= _M
    return tuple((value >> (i * width)) & mask for i in range(num_slices))


def join_slices(slices: tuple[int, ...] | list[int]) -> int:
    """Reassemble slices (low-order first) into the 32-bit value."""
    num = len(slices)
    width = slice_width(num)
    mask = (1 << width) - 1
    value = 0
    for i, s in enumerate(slices):
        if s & ~mask:
            raise ValueError(f"slice {i} overflows {width} bits: {s:#x}")
        value |= (s & mask) << (i * width)
    return value & _M


def sliced_add(a: int, b: int, num_slices: int, carry_in: int = 0) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Per-slice ripple addition.

    Returns ``(result_slices, carry_out_per_slice)``; the carry-out of
    slice *k* is the carry-in of slice *k+1* — exactly the inter-slice
    dependence arrow of Figure 8(b).
    """
    width = slice_width(num_slices)
    mask = (1 << width) - 1
    a_slices = split_value(a, num_slices)
    b_slices = split_value(b, num_slices)
    results = []
    carries = []
    carry = carry_in & 1
    for k in range(num_slices):
        total = a_slices[k] + b_slices[k] + carry
        results.append(total & mask)
        carry = total >> width
        carries.append(carry)
    return tuple(results), tuple(carries)


def sliced_sub(a: int, b: int, num_slices: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Per-slice subtraction via two's complement (a + ~b + 1)."""
    return sliced_add(a, (~b) & _M, num_slices, carry_in=1)


def sliced_logic(op: str, a: int, b: int, num_slices: int) -> tuple[int, ...]:
    """Per-slice logic: each result slice depends only on its own input
    slices (Figure 8(c) — no inter-slice arrows)."""
    a_slices = split_value(a, num_slices)
    b_slices = split_value(b, num_slices)
    width = slice_width(num_slices)
    mask = (1 << width) - 1
    if op == "and":
        return tuple(x & y for x, y in zip(a_slices, b_slices))
    if op == "or":
        return tuple(x | y for x, y in zip(a_slices, b_slices))
    if op == "xor":
        return tuple(x ^ y for x, y in zip(a_slices, b_slices))
    if op == "nor":
        return tuple((~(x | y)) & mask for x, y in zip(a_slices, b_slices))
    raise ValueError(f"unknown logic op {op!r}")


def first_nonzero_slice(a: int, b: int, num_slices: int) -> int | None:
    """Lowest slice index where *a* and *b* differ, or None when equal.

    This is the slice whose completion resolves a ``beq``/``bne`` early
    (paper §5.3): a per-slice XOR finding any set bit proves inequality.
    """
    diff = (a ^ b) & _M
    if diff == 0:
        return None
    width = slice_width(num_slices)
    lowest_bit = (diff & -diff).bit_length() - 1
    return lowest_bit // width


def slices_containing_difference(a: int, b: int, num_slices: int) -> tuple[int, ...]:
    """All slice indices where *a* and *b* differ (for out-of-order
    slice execution, any one of these resolves the inequality)."""
    a_slices = split_value(a, num_slices)
    b_slices = split_value(b, num_slices)
    return tuple(k for k in range(num_slices) if a_slices[k] != b_slices[k])
