"""Cross-benchmark aggregation helpers.

Speedups and IPC ratios aggregate multiplicatively, so the geometric
mean is the right summary (arithmetic means overweight outliers); the
paper reports arithmetic means, so both are provided and the benches
quote whichever the paper used for each claim.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("arithmetic_mean of empty sequence")
    return sum(values) / len(values)


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean — the right aggregate for rates like IPC when
    benchmarks are weighted by equal instruction counts."""
    if not values:
        raise ValueError("harmonic_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic_mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def speedup_summary(baseline: dict[str, float], improved: dict[str, float]) -> dict[str, float]:
    """Per-benchmark speedups plus their aggregates.

    Args:
        baseline: benchmark → metric (e.g. IPC) for the reference config.
        improved: benchmark → metric for the candidate config.

    Returns:
        mapping with per-benchmark ratios and ``__geomean__`` /
        ``__mean__`` / ``__min__`` / ``__max__`` summary keys.
    """
    common = sorted(set(baseline) & set(improved))
    if not common:
        raise ValueError("no common benchmarks to summarize")
    ratios = {name: improved[name] / baseline[name] for name in common}
    values = list(ratios.values())
    ratios["__geomean__"] = geometric_mean(values)
    ratios["__mean__"] = arithmetic_mean(values)
    ratios["__min__"] = min(values)
    ratios["__max__"] = max(values)
    return ratios


def merge_stats(runs) -> "object":
    """Pool several :class:`~repro.timing.stats.SimStats` into one.

    Counters (and every ``extra`` entry) sum; derived rates recompute
    from the pooled counters — the instruction-weighted aggregate.
    Delegates to :meth:`SimStats.merge` so this module never reaches
    into individual fields.
    """
    from repro.timing.stats import SimStats

    return SimStats.merge_all(runs)


def stats_rows(runs) -> list[dict]:
    """Uniform machine-readable rows for a list of stats.

    Each row is the stats' :meth:`~repro.timing.stats.SimStats.to_dict`
    — counters, the ``extra`` dict and the derived rates — so reporting
    and archiving code consumes one schema instead of ad-hoc fields.
    """
    return [stats.to_dict() for stats in runs]


def confidence_interval(values: Sequence[float], confidence: float = 0.95) -> tuple[float, float]:
    """Student-t confidence interval for the mean of *values*."""
    from scipy import stats as sps

    n = len(values)
    if n < 2:
        raise ValueError("need at least two observations")
    mean = arithmetic_mean(values)
    sd = math.sqrt(sum((v - mean) ** 2 for v in values) / (n - 1))
    half = sps.t.ppf(0.5 + confidence / 2, df=n - 1) * sd / math.sqrt(n)
    return mean - half, mean + half
