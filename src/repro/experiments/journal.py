"""Crash-safe sweep journal: the resume substrate for long campaigns.

A sweep is a (benchmark × configuration) grid of *cells*, each a pure
function of its inputs.  The journal persists the grid's progress so an
interrupted run — a SIGKILLed worker, a Ctrl-C at hour three, a host
reboot — resumes from where it stopped instead of silently losing
everything: ``--resume <journal>`` replays completed cells from the
result store and re-dispatches only the remainder, and because every
cell is deterministic the merged :class:`~repro.timing.stats.SimStats`
are bit-identical to an uninterrupted run.

Layout on disk::

    sweep.journal.json           the journal (atomic, checksummed,
                                 dir-fsynced: survives a power cut)
    sweep.journal.results/       the result store
        <cell key>.json          one finished cell's SimStats payload
                                 (atomic, checksummed)

Safety properties (the same discipline as the trace cache):

* **Keying** — every cell is identified by a SHA-256 over the
  benchmark, the configuration *contents* (not just its name), the
  instruction/warmup budgets, the collection parameters, and the
  assembled program-image hash.  Any change to the sweep's semantics
  changes the keys, so a stale journal can never be silently resumed:
  :meth:`SweepJournal.match_cells` reports the mismatch instead.
* **Integrity** — journal and result files embed a SHA-256 self
  checksum (via :func:`repro.experiments.results_io.payload_checksum`)
  and are written by :func:`repro.harness.atomicio.atomic_write_json`;
  a torn write is impossible, a corrupted file raises
  :class:`~repro.harness.errors.JournalCorruption` (journal) or is
  demoted to a re-executed cell (result store).
* **Monotonicity** — a ``done`` cell's result is written to the store
  *before* the journal flips its state, so the journal never points at
  a result that does not exist.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.results_io import payload_checksum
from repro.harness.atomicio import atomic_write_json
from repro.harness.errors import JournalCorruption
from repro.obs.tracing import active_tracer
from repro.timing.stats import METRIC_CATALOG, SimStats

#: Journal / result-store schema version (strictly validated).
JOURNAL_FORMAT = 1

#: Cell lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
QUARANTINED = "quarantined"

CELL_STATES = (PENDING, RUNNING, DONE, FAILED, QUARANTINED)


# --------------------------------------------------------------------------
# SimStats <-> JSON payload (bit-identical round trip)
# --------------------------------------------------------------------------

def stats_to_payload(stats: SimStats) -> dict:
    """Serialize a :class:`SimStats` for the result store.

    Only the stored counters and ``extra`` go in (all ints/floats,
    which JSON round-trips exactly); derived rates recompute on load,
    so a journal replay merges bit-identically with fresh cells.
    """
    payload = {"config_name": stats.config_name}
    for name in METRIC_CATALOG:
        payload[name] = getattr(stats, name)
    payload["extra"] = dict(stats.extra)
    return payload


def stats_from_payload(payload: dict) -> SimStats:
    """Reconstruct a :class:`SimStats` from :func:`stats_to_payload`."""
    stats = SimStats(config_name=payload["config_name"])
    for name in METRIC_CATALOG:
        setattr(stats, name, payload[name])
    stats.extra = dict(payload.get("extra", {}))
    return stats


# --------------------------------------------------------------------------
# Cell identity
# --------------------------------------------------------------------------

def config_digest(config) -> str:
    """SHA-256 over a frozen :class:`MachineConfig`'s full contents.

    The *name* alone is not identity: two sweeps could bind the same
    name to different feature sets.  Frozen-dataclass ``repr`` is
    deterministic and covers every field.
    """
    return hashlib.sha256(repr(config).encode()).hexdigest()


def cell_key(
    benchmark: str,
    config,
    max_steps: int,
    warmup: int,
    iters: int | None,
    skip: int | None,
    profile: str,
    image_digest: str,
    sampling: str | None = None,
) -> str:
    """Deterministic identity of one (benchmark × config × budget) cell.

    *sampling* is the :meth:`~repro.timing.sampling.SamplingPlan.canonical`
    string of a sampled cell (window/interval/seed/CI knobs all
    included), so a sampled sweep can never resume from an exact
    journal or from one sampled under different parameters.  ``None``
    (exact cells) contributes nothing, keeping pre-sampling keys
    stable.
    """
    parts = [
        f"journal={JOURNAL_FORMAT}",
        f"benchmark={benchmark}",
        f"config={config_digest(config)}",
        f"max_steps={max_steps}",
        f"warmup={warmup}",
        f"iters={'auto' if iters is None else iters}",
        f"skip={'auto' if skip is None else skip}",
        f"profile={profile}",
        f"image={image_digest}",
    ]
    if sampling is not None:
        parts.append(f"sampling={sampling}")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


@dataclass
class CellRecord:
    """One cell's journal entry."""

    benchmark: str
    config: str            # config *name*, for humans; the key is identity
    key: str
    state: str = PENDING
    attempts: int = 0
    error: str | None = None

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "config": self.config,
            "key": self.key,
            "state": self.state,
            "attempts": self.attempts,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CellRecord":
        state = payload["state"]
        if state not in CELL_STATES:
            raise JournalCorruption(f"unknown cell state {state!r}")
        return cls(
            benchmark=payload["benchmark"],
            config=payload["config"],
            key=payload["key"],
            state=state,
            attempts=int(payload["attempts"]),
            error=payload.get("error"),
        )


# --------------------------------------------------------------------------
# The journal
# --------------------------------------------------------------------------

@dataclass
class SweepJournal:
    """Persistent progress record of one sweep grid.

    Every mutation flushes atomically (checksummed, dir-fsynced), so
    the on-disk journal is always a consistent snapshot some prefix of
    the run produced — the property that makes kill-resume safe.
    """

    path: Path
    spec: dict = field(default_factory=dict)
    cells: list[CellRecord] = field(default_factory=list)
    summary: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.path = Path(self.path)
        self._by_key = {cell.key: cell for cell in self.cells}

    # ------------------------------------------------------------ lifecycle

    @classmethod
    def create(cls, path: str | Path, spec: dict, cells: list[CellRecord]) -> "SweepJournal":
        """Start a fresh journal (overwriting any previous file)."""
        journal = cls(path=Path(path), spec=dict(spec), cells=list(cells))
        journal.flush()
        return journal

    @classmethod
    def load(cls, path: str | Path) -> "SweepJournal":
        """Load and validate a journal written by :meth:`flush`.

        Raises:
            JournalCorruption: missing file, invalid JSON, unknown
                format version, or checksum mismatch.
        """
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise JournalCorruption(f"{path}: journal does not exist") from None
        except json.JSONDecodeError as exc:
            raise JournalCorruption(f"{path}: not valid JSON (torn write?): {exc}") from None
        if payload.get("format") != JOURNAL_FORMAT:
            raise JournalCorruption(
                f"{path}: unsupported journal format {payload.get('format')!r}; "
                f"this build writes version {JOURNAL_FORMAT}"
            )
        stored = payload.get("checksum")
        actual = payload_checksum(payload)
        if not stored or stored != actual:
            raise JournalCorruption(
                f"{path}: checksum mismatch — the journal was corrupted or "
                f"hand-edited (stored {str(stored)[:12]}…, computed {actual[:12]}…)"
            )
        journal = cls(
            path=path,
            spec=payload["spec"],
            cells=[CellRecord.from_dict(c) for c in payload["cells"]],
            summary=payload.get("summary", {}),
        )
        # A crash mid-cell leaves RUNNING entries; they never finished
        # (their result was not stored), so a resume re-dispatches them.
        for cell in journal.cells:
            if cell.state == RUNNING:
                cell.state = PENDING
        return journal

    def flush(self) -> None:
        """Persist the journal atomically (checksummed, dir-fsynced)."""
        payload = {
            "format": JOURNAL_FORMAT,
            "spec": self.spec,
            "cells": [cell.to_dict() for cell in self.cells],
            "summary": self.summary,
        }
        payload["checksum"] = payload_checksum(payload)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tracer = active_tracer()
        t0 = time.perf_counter() if tracer is not None else 0.0
        atomic_write_json(self.path, payload, sync_dir=True)
        if tracer is not None:
            # Measure the measurement infrastructure: the journal's
            # atomic+fsync flushes are the supervisor's main overhead.
            tracer.profiler.add("journal.flush", time.perf_counter() - t0)

    def _trace_transition(self, cell: CellRecord, error: str | None = None) -> None:
        """Annotate the merged timeline with one cell state change."""
        tracer = active_tracer()
        if tracer is None:
            return
        args = {
            "cell": f"{cell.benchmark}/{cell.config}",
            "state": cell.state,
            "attempts": cell.attempts,
        }
        if error:
            args["error"] = str(error)[:200]
        tracer.mark("journal.transition", category="journal", **args)

    # ------------------------------------------------------------- queries

    def cell(self, key: str) -> CellRecord:
        return self._by_key[key]

    def by_state(self, state: str) -> list[CellRecord]:
        return [cell for cell in self.cells if cell.state == state]

    def match_cells(self, cells: list[CellRecord]) -> None:
        """Require the journal to describe exactly this grid.

        Raises:
            JournalCorruption: the requested sweep's cell keys differ
                from the journal's — the grid, budgets, configuration
                contents or program images changed since it was
                written, so resuming it would mix incompatible results.
        """
        ours = {cell.key for cell in self.cells}
        theirs = {cell.key for cell in cells}
        if ours != theirs:
            missing, extra = len(theirs - ours), len(ours - theirs)
            raise JournalCorruption(
                f"{self.path}: journal does not match the requested sweep "
                f"({missing} requested cell(s) absent from the journal, "
                f"{extra} journal cell(s) not requested) — the grid, budget, "
                f"configuration or program image changed; start a fresh journal"
            )

    # -------------------------------------------------------- transitions

    def mark_running(self, key: str) -> None:
        cell = self._by_key[key]
        cell.state = RUNNING
        cell.attempts += 1
        self._trace_transition(cell)
        self.flush()

    def mark_done(self, key: str, stats: SimStats) -> None:
        """Store the cell's result, then flip its state (in that order,
        so the journal never references a result that is not on disk)."""
        self.store_result(key, stats)
        cell = self._by_key[key]
        cell.state = DONE
        cell.error = None
        self._trace_transition(cell)
        self.flush()

    def mark_retry(self, key: str, error: str) -> None:
        """A failed attempt that stays retryable: back to pending."""
        cell = self._by_key[key]
        cell.state = PENDING
        cell.error = error
        self._trace_transition(cell, error=error)
        self.flush()

    def mark_failed(self, key: str, error: str, quarantined: bool = False) -> None:
        cell = self._by_key[key]
        cell.state = QUARANTINED if quarantined else FAILED
        cell.error = error
        self._trace_transition(cell, error=error)
        self.flush()

    # -------------------------------------------------------- result store

    @property
    def results_dir(self) -> Path:
        return self.path.with_name(self.path.name + ".results")

    def result_path(self, key: str) -> Path:
        return self.results_dir / f"{key}.json"

    def store_result(self, key: str, stats: SimStats) -> Path:
        payload = {
            "format": JOURNAL_FORMAT,
            "key": key,
            "stats": stats_to_payload(stats),
        }
        payload["checksum"] = payload_checksum(payload)
        path = self.result_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_json(path, payload, sync_dir=True)
        return path

    def load_result(self, key: str) -> SimStats | None:
        """The stored :class:`SimStats` for *key*, or ``None`` if the
        result file is missing or fails validation (the caller demotes
        the cell and re-executes it — degraded speed, never degraded
        correctness)."""
        path = self.result_path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if payload.get("format") != JOURNAL_FORMAT or payload.get("key") != key:
            return None
        if payload.get("checksum") != payload_checksum(payload):
            return None
        return stats_from_payload(payload["stats"])


__all__ = [
    "CELL_STATES",
    "DONE",
    "FAILED",
    "JOURNAL_FORMAT",
    "PENDING",
    "QUARANTINED",
    "RUNNING",
    "CellRecord",
    "SweepJournal",
    "cell_key",
    "config_digest",
    "stats_from_payload",
    "stats_to_payload",
]
