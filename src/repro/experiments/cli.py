"""Command-line driver: ``repro-experiment <experiment> [options]``.

Examples::

    repro-experiment table1
    repro-experiment fig2 --benchmarks bzip gcc
    repro-experiment fig11 --instructions 50000 --benchmarks li mcf
    repro-experiment fig6 --chart
    repro-experiment workloads --profile test
    repro-experiment all --output results.json
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import figure1, figure2, figure4, figure6, figure11, figure12, table1, workload_table
from repro.experiments.runner import DEFAULT_INSTRUCTIONS
from repro.workloads import BENCHMARK_NAMES
from repro.workloads.suite import PROFILES

EXPERIMENTS = ("table1", "fig1", "fig2", "fig4", "fig6", "fig11", "fig12", "workloads", "all")


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate the tables and figures of 'Exploiting Partial Operand Knowledge' (ICPP 2003).",
    )
    p.add_argument("experiment", choices=EXPERIMENTS, help="which artifact to regenerate")
    p.add_argument(
        "--instructions", "-n", type=int, default=DEFAULT_INSTRUCTIONS,
        help=f"steady-state instructions per benchmark (default {DEFAULT_INSTRUCTIONS})",
    )
    p.add_argument(
        "--benchmarks", "-b", nargs="+", default=None, metavar="NAME",
        help=f"benchmark subset (default: experiment-specific; all = {' '.join(BENCHMARK_NAMES)})",
    )
    p.add_argument(
        "--profile", "-p", choices=sorted(PROFILES), default="ref",
        help="input footprint profile (SPEC test/train/ref analogue; default ref)",
    )
    p.add_argument(
        "--chart", action="store_true",
        help="also print ASCII charts where the experiment provides them",
    )
    p.add_argument(
        "--output", "-o", default=None, metavar="FILE",
        help="also save the experiment rows as JSON (regression baseline)",
    )
    return p


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    n = args.instructions
    prof = args.profile
    benches = tuple(args.benchmarks) if args.benchmarks else None
    for name in benches or ():
        if name not in BENCHMARK_NAMES:
            print(f"unknown benchmark {name!r}; choose from {', '.join(BENCHMARK_NAMES)}", file=sys.stderr)
            return 2

    produced: list[tuple[str, object]] = []

    def emit(name: str, result) -> None:
        print(result.render(), end="\n\n")
        if args.chart and hasattr(result, "render_chart"):
            print(result.render_chart(), end="\n\n")
        produced.append((name, result))

    if args.experiment in ("table1", "all"):
        emit("table1", table1.run(benches or BENCHMARK_NAMES, n, profile=prof))
    if args.experiment == "fig1":
        emit("fig1", figure1.run())
    if args.experiment in ("fig2", "all"):
        emit("fig2", figure2.run(benches or figure2.FIGURE2_BENCHMARKS, n, profile=prof))
    if args.experiment in ("fig4", "all"):
        emit("fig4", figure4.run(n, profile=prof))
    if args.experiment in ("fig6", "all"):
        emit("fig6", figure6.run(benches or BENCHMARK_NAMES, n, profile=prof))
    if args.experiment in ("fig11", "fig12", "all"):
        base = figure11.run(benches or BENCHMARK_NAMES, n, profile=prof)
        if args.experiment in ("fig11", "all"):
            emit("fig11", base)
        if args.experiment in ("fig12", "all"):
            emit("fig12", figure12.run(base=base))
    if args.experiment in ("workloads", "all"):
        emit("workloads", workload_table.run(benches or BENCHMARK_NAMES, n, profile=prof))

    if args.output and produced:
        from repro.experiments.results_io import save_rows

        name, result = produced[-1] if len(produced) == 1 else ("all", produced[-1][1])
        # For multi-experiment runs, save the last result's rows; the
        # per-experiment form is the intended regression unit.
        save_rows(args.output, name, result.rows(), metadata={"instructions": n, "profile": prof})
        print(f"rows saved to {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
