"""Command-line driver: ``repro-experiment <experiment> [options]``.

Examples::

    repro-experiment table1
    repro-experiment fig2 --benchmarks bzip gcc
    repro-experiment fig11 --instructions 50000 --benchmarks li mcf
    repro-experiment fig6 --chart
    repro-experiment workloads --input-profile test
    repro-experiment all --output results.json
    repro-experiment all --keep-going --timeout 120
    repro-experiment inject --inject 200 -b li
    repro-experiment fig11 -b li --metrics-out m.json --trace-events t.jsonl --profile

Resilience flags:

* ``--keep-going`` — a failing workload becomes a ``FailureRecord`` in
  a partial-results report (with one bounded retry at a reduced
  instruction budget) instead of aborting the sweep; exit status 1
  signals a partial run.
* ``--timeout SECONDS`` — wall-clock watchdog on each benchmark's trace
  collection.
* ``--inject N`` — fault-injection campaign size for the ``inject``
  experiment (seeded; reports detected/masked/silent per fault kind).

Performance flags (see ``docs/performance.md``):

* ``--jobs N`` — fan trace collection out to N worker processes;
* ``--trace-cache DIR`` / ``--no-trace-cache`` — persistent on-disk
  trace cache location (default ``~/.cache/repro-traces``, also
  settable via ``REPRO_TRACE_CACHE``) or opt-out.

Observability flags (see ``docs/observability.md``):

* ``--metrics-out FILE`` — dump the run's metrics registry (with a
  provenance manifest: config, seed, git SHA, package versions);
* ``--trace-events FILE`` — cycle-event JSONL plus a Perfetto-loadable
  Chrome trace sibling;
* ``--trace-spans FILE`` — sweep-wide distributed trace: spans from the
  orchestrator, the workers, and every cell merged into one JSONL span
  log plus a Perfetto-loadable timeline (one lane per worker);
* ``--profile`` — top-N hottest phases with host inst/s throughput;
* ``--heartbeat SECONDS`` — periodic progress line for long sweeps
  (including ``--jobs`` sweeps: cells done / in flight / failed);
* ``--live`` — live sweep status line (done/pending/failed, cells/s,
  ETA, active-cell ages) for the ``sweep`` experiment.

Any of these also writes a ``BENCH_<run>.json`` perf snapshot (IPC,
host throughput, wall time per benchmark) into ``--bench-dir``.
"""

from __future__ import annotations

import argparse
import difflib
import sys
from dataclasses import asdict
from pathlib import Path

from repro.experiments import figure1, figure2, figure4, figure6, figure11, figure12, table1, workload_table
from repro.emulator.machine import default_dispatch
from repro.experiments import trace_cache
from repro.experiments.runner import (
    DEFAULT_INSTRUCTIONS,
    DEFAULT_WARMUP,
    FailureRecord,
    collect_trace,
    collect_trace_resilient,
    render_failure_report,
    set_wall_timeout,
)
from repro.workloads import BENCHMARK_NAMES
from repro.workloads.suite import PROFILES

EXPERIMENTS = ("table1", "fig1", "fig2", "fig4", "fig6", "fig11", "fig12", "workloads", "inject", "sweep", "all")

#: Default fault-campaign size (also the CI smoke-campaign size).
DEFAULT_FAULTS = 200

#: Default benchmarks for the ``inject`` experiment (kept small so a
#: smoke campaign stays fast).
INJECT_BENCHMARKS = ("li",)


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate the tables and figures of 'Exploiting Partial Operand Knowledge' (ICPP 2003).",
    )
    p.add_argument("experiment", choices=EXPERIMENTS, help="which artifact to regenerate")
    p.add_argument(
        "--instructions", "-n", type=int, default=DEFAULT_INSTRUCTIONS,
        help=f"steady-state instructions per benchmark (default {DEFAULT_INSTRUCTIONS})",
    )
    p.add_argument(
        "--benchmarks", "-b", nargs="+", default=None, metavar="NAME",
        help=f"benchmark subset (default: experiment-specific; all = {' '.join(BENCHMARK_NAMES)})",
    )
    p.add_argument(
        "--input-profile", "-p", dest="profile_input", choices=sorted(PROFILES), default="ref",
        help="input footprint profile (SPEC test/train/ref analogue; default ref)",
    )
    p.add_argument(
        "--chart", action="store_true",
        help="also print ASCII charts where the experiment provides them",
    )
    p.add_argument(
        "--output", "-o", default=None, metavar="FILE",
        help="also save the experiment rows as JSON (regression baseline; atomic write)",
    )
    p.add_argument(
        "--keep-going", "-k", action="store_true",
        help="record failing workloads and continue the sweep (partial results, exit 1)",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock watchdog per benchmark trace collection",
    )
    p.add_argument(
        "--inject", type=int, default=None, metavar="N",
        help=f"fault-injection campaign size for the 'inject' experiment (default {DEFAULT_FAULTS})",
    )
    p.add_argument(
        "--inject-seed", type=int, default=2003, metavar="SEED",
        help="RNG seed for the fault-injection campaign (default 2003)",
    )
    perf = p.add_argument_group("performance (docs/performance.md)")
    perf.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for parallel trace collection (default 1: sequential)",
    )
    perf.add_argument(
        "--trace-cache", default=None, metavar="DIR",
        help="persistent trace-cache directory (default ~/.cache/repro-traces "
             "or $REPRO_TRACE_CACHE)",
    )
    perf.add_argument(
        "--no-trace-cache", action="store_true",
        help="disable the persistent trace cache for this run",
    )
    perf.add_argument(
        "--timing", choices=("fast", "reference"), default=None,
        help="timing-layer implementation: pre-bound fast path (default) or "
             "the golden reference loop (overrides $REPRO_TIMING)",
    )
    perf.add_argument(
        "--dispatch", choices=("fast", "reference", "blocks"), default=None,
        help="emulator interpreter: pre-bound dispatch (default), the golden "
             "reference loop, or the block-compiling tier (overrides $REPRO_DISPATCH)",
    )
    sweep = p.add_argument_group("supervised sweep (docs/robustness.md)")
    sweep.add_argument(
        "--configs", nargs="+", default=None, metavar="NAME",
        help="machine configs for the 'sweep' experiment (default "
             "ideal pipe4 bitslice4; available: ideal pipe2 pipe4 bitslice2 bitslice4)",
    )
    sweep.add_argument(
        "--journal", default=None, metavar="FILE",
        help="crash-safe sweep journal for the 'sweep' experiment "
             "(atomic + checksummed; makes the run kill-resumable)",
    )
    sweep.add_argument(
        "--resume", default=None, metavar="FILE",
        help="resume a journaled sweep: replay completed cells from the "
             "result store, dispatch only the remainder",
    )
    sweep.add_argument(
        "--max-cell-retries", type=int, default=2, metavar="N",
        help="extra attempts per sweep cell before quarantine (default 2)",
    )
    sweep.add_argument(
        "--backoff", type=float, default=0.25, metavar="SECONDS",
        help="base exponential-backoff delay between cell retries (default 0.25)",
    )
    sweep.add_argument(
        "--live", action="store_true",
        help="live sweep status line on stderr (done/pending/failed, "
             "cells/s, ETA, active-cell ages); sweep stdout is unchanged",
    )
    samp = p.add_argument_group("statistical sampling (docs/performance.md)")
    samp.add_argument(
        "--sample", action="store_true",
        help="run 'sweep' cells as SMARTS-style sampled simulation: "
             "blocks-tier functional-warming fast-forward between short "
             "detailed windows, IPC/CPI with bootstrap 95%% CIs "
             "(-n becomes the sampled instruction horizon)",
    )
    samp.add_argument(
        "--sample-window", type=int, default=None, metavar="N",
        help="measured instructions per detailed window (default 500)",
    )
    samp.add_argument(
        "--sample-warmup", type=int, default=None, metavar="N",
        help="detailed-simulated but unmeasured prefix per window (default 200)",
    )
    samp.add_argument(
        "--sample-interval", type=int, default=None, metavar="N",
        help="systematic-sampling period in instructions (default 20000)",
    )
    samp.add_argument(
        "--sample-warm", type=int, default=None, metavar="N",
        help="extra trace-mode warming instructions per window (default 0; "
             "the warming fast-forward usually makes this unnecessary)",
    )
    samp.add_argument(
        "--ci-target", type=float, default=None, metavar="FRAC",
        help="auto-extend each cell until the relative IPC CI half-width "
             "reaches FRAC (e.g. 0.02; default: fixed budget, no extension)",
    )
    samp.add_argument(
        "--sample-seed", type=int, default=None, metavar="SEED",
        help="window-placement + bootstrap RNG seed (default 2003); part "
             "of the journal cell key, so resumes replay bit-identically",
    )
    samp.add_argument(
        "--sample-max-windows", type=int, default=None, metavar="N",
        help="cap on detailed windows per cell, CI extension included (default 512)",
    )
    obs = p.add_argument_group("observability (docs/observability.md)")
    obs.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the run's metrics registry (+ provenance manifest) as JSON",
    )
    obs.add_argument(
        "--trace-events", default=None, metavar="FILE",
        help="write cycle events as JSONL, plus a Perfetto-loadable "
             "<FILE-stem>.perfetto.json Chrome trace",
    )
    obs.add_argument(
        "--trace-spans", default=None, metavar="FILE",
        help="write the sweep-wide distributed trace: span JSONL plus a "
             "Perfetto-loadable <FILE-stem>.perfetto.json merged timeline "
             "(orchestrator + workers + cells)",
    )
    obs.add_argument(
        "--profile", action="store_true",
        help="print the top-N hottest simulation phases (wall time + inst/s)",
    )
    obs.add_argument(
        "--profile-top", type=int, default=10, metavar="N",
        help="phases shown by --profile (default 10)",
    )
    obs.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="print a progress line at most every SECONDS during long sweeps",
    )
    obs.add_argument(
        "--guest-profile", nargs="?", const="exact", default=None,
        choices=("exact", "sample"), metavar="MODE",
        help="profile guest code: per-PC retired counts from the emulator "
             "tiers plus per-PC CPI stacks from the timing layer "
             "(MODE: exact [default] or sample)",
    )
    obs.add_argument(
        "--guest-profile-out", default=None, metavar="FILE",
        help="write the guest profile as JSON (implies --guest-profile; "
             "feed to repro-profile for reports and flamegraphs)",
    )
    obs.add_argument(
        "--guest-profile-period", type=int, default=None, metavar="N",
        help="sampling period for --guest-profile sample (default 1024)",
    )
    obs.add_argument(
        "--bench-dir", default=".benchmarks", metavar="DIR",
        help="directory for BENCH_<run>.json perf snapshots (default .benchmarks)",
    )
    return p


def _validate_benchmarks(names) -> str | None:
    """Return an error message for the first unknown benchmark name."""
    for name in names or ():
        if name not in BENCHMARK_NAMES:
            close = difflib.get_close_matches(name, BENCHMARK_NAMES, n=1)
            hint = f" (did you mean {close[0]!r}?)" if close else ""
            return (
                f"unknown benchmark {name!r}{hint}; choose from {', '.join(BENCHMARK_NAMES)}"
            )
    return None


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    n = args.instructions
    prof = args.profile_input
    benches = tuple(args.benchmarks) if args.benchmarks else None
    error = _validate_benchmarks(benches)
    if error:
        print(error, file=sys.stderr)
        return 2

    set_wall_timeout(args.timeout)
    if args.timing is not None:
        from repro.timing.fastpath import set_timing_mode

        set_timing_mode(args.timing)
    if args.dispatch is not None:
        from repro.emulator.machine import set_dispatch_mode

        set_dispatch_mode(args.dispatch)
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    if args.journal and args.resume:
        print("--journal and --resume are mutually exclusive (resume names the journal)",
              file=sys.stderr)
        return 2
    if args.max_cell_retries < 0:
        print("--max-cell-retries must be >= 0", file=sys.stderr)
        return 2
    sampling_knobs = {
        "--sample-window": args.sample_window,
        "--sample-warmup": args.sample_warmup,
        "--sample-interval": args.sample_interval,
        "--sample-warm": args.sample_warm,
        "--ci-target": args.ci_target,
        "--sample-seed": args.sample_seed,
        "--sample-max-windows": args.sample_max_windows,
    }
    sampling_plan = None
    if args.sample:
        if args.experiment != "sweep":
            print("--sample applies to the 'sweep' experiment only", file=sys.stderr)
            return 2
        from dataclasses import replace as _dc_replace

        from repro.timing.sampling import SamplingPlan

        overrides = {
            field: value
            for field, value in (
                ("window", args.sample_window),
                ("warmup", args.sample_warmup),
                ("interval", args.sample_interval),
                ("warm", args.sample_warm),
                ("ci_target", args.ci_target),
                ("seed", args.sample_seed),
                ("max_windows", args.sample_max_windows),
            )
            if value is not None
        }
        try:
            sampling_plan = _dc_replace(SamplingPlan(), **overrides).validate()
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
    elif any(value is not None for value in sampling_knobs.values()):
        set_flags = ", ".join(k for k, v in sampling_knobs.items() if v is not None)
        print(f"{set_flags}: sampling knobs need --sample", file=sys.stderr)
        return 2
    args.sampling_plan = sampling_plan
    trace_cache.configure(
        args.trace_cache, enabled=False if args.no_trace_cache else None
    )
    trace_cache.reset_stats()
    obs_on = bool(
        args.metrics_out or args.trace_events or args.profile or args.heartbeat is not None
    )
    if obs_on:
        from repro.obs.session import start_session

        start_session(
            trace_events=bool(args.trace_events),
            heartbeat_interval=args.heartbeat,
        )
    tracing_on = bool(args.trace_spans)
    if tracing_on:
        from repro.obs.tracing import start_tracing

        start_tracing()
    guestprof_on = args.guest_profile is not None or bool(args.guest_profile_out)
    if guestprof_on:
        from repro.obs.guestprof import start_guest_profile

        start_guest_profile(
            mode=args.guest_profile or "exact", period=args.guest_profile_period
        )
    try:
        return _run_experiments(args, n, prof, benches, argv)
    finally:
        # Guest profile first (the obs manifest summarizes it), then obs
        # outputs while the tracer is still active (the manifest reads
        # its stats), then the tracer's spans flush to disk.
        collector = None
        if guestprof_on:
            from repro.obs.guestprof import end_guest_profile

            collector = end_guest_profile()
            try:
                _write_guest_profile(args, collector)
            except Exception as exc:  # never mask the experiment's own status
                print(f"guest profile output failed: {exc}", file=sys.stderr)
        if obs_on:
            from repro.obs.session import end_session

            session = end_session()
            try:
                _write_obs_outputs(args, session, argv, collector)
            except Exception as exc:  # never mask the experiment's own status
                print(f"observability output failed: {exc}", file=sys.stderr)
        if tracing_on:
            from repro.obs.tracing import end_tracing

            tracer = end_tracing()
            try:
                _write_span_outputs(args, tracer)
            except Exception as exc:  # never mask the experiment's own status
                print(f"tracing output failed: {exc}", file=sys.stderr)


def _guest_profile_summary(collector) -> dict | None:
    """Manifest block summarizing an ended guest-profile collector."""
    if collector is None:
        return None
    return {
        "mode": collector.mode,
        "period": collector.period,
        "benchmarks": {
            name: {
                "retired": prof.retired,
                "sampled": prof.sampled,
                "cycles_total": prof.cycles_total,
                "pcs": len(prof.counts),
            }
            for name, prof in sorted(collector.benchmarks.items())
        },
    }


def _write_guest_profile(args, collector) -> None:
    """Persist the guest profile (``--guest-profile-out``)."""
    if collector is None:
        return
    if args.guest_profile_out:
        from repro.obs.guestprof import write_profile

        out = Path(args.guest_profile_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        write_profile(out, collector)
        print(
            f"guest profile written to {out} (render with repro-profile)",
            file=sys.stderr,
        )
    else:
        retired = sum(p.retired for p in collector.benchmarks.values())
        print(
            f"guest profile: {len(collector.benchmarks)} benchmark(s), "
            f"{retired} retirements profiled "
            "(use --guest-profile-out FILE to save)",
            file=sys.stderr,
        )


def _write_obs_outputs(args, session, argv, collector=None) -> None:
    """Flush the session's telemetry: profile report, metrics dump,
    event trace (JSONL + Perfetto), and the BENCH_<run> perf snapshot."""
    import time

    from repro.emulator import blocks as blocks_mod
    from repro.experiments.supervisor import supervisor_stats
    from repro.harness.atomicio import atomic_write_text
    from repro.obs.manifest import build_manifest, write_bench_snapshot
    from repro.obs.tracing import active_tracer
    from repro.timing.fastpath import default_timing_mode

    compiler = blocks_mod.telemetry()
    if compiler is not None:
        # The blocks tier ran: export its counters as emu.blocks.*
        # metrics alongside the manifest's compiler-telemetry section.
        blocks_mod.publish_stats(session.registry)
    manifest = build_manifest(
        config={
            "experiment": args.experiment,
            "instructions": args.instructions,
            "input_profile": args.profile_input,
            "benchmarks": list(args.benchmarks or ()),
            "keep_going": args.keep_going,
        },
        seed=args.inject_seed,
        argv=list(argv) if argv is not None else None,
        extra={
            "trace_cache": trace_cache.stats(),
            "jobs": args.jobs,
            "dispatch": default_dispatch(),
            "dispatch_tiers": session.dispatch_tier_stats() or None,
            "blocks": blocks_mod.stats() if default_dispatch() == "blocks" else None,
            "compiler": compiler,
            "timing": default_timing_mode(),
            "supervisor": supervisor_stats(),
            "tracing": active_tracer().stats() if active_tracer() is not None else None,
            "guest_profile": _guest_profile_summary(collector),
        },
    )
    if args.profile:
        print(session.profiler.report(args.profile_top))
    registry = session.finalize_registry()
    if args.metrics_out:
        out = Path(args.metrics_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(out, registry.to_json(manifest))
        print(f"metrics written to {args.metrics_out}", file=sys.stderr)
    if args.trace_events:
        from repro.obs.events import write_chrome_trace, write_jsonl

        Path(args.trace_events).parent.mkdir(parents=True, exist_ok=True)
        n_events = write_jsonl(session.events, args.trace_events)
        perfetto = Path(args.trace_events).with_suffix(".perfetto.json")
        write_chrome_trace(session.events, perfetto)
        print(
            f"{n_events} cycle events written to {args.trace_events} "
            f"(Perfetto view: {perfetto})",
            file=sys.stderr,
        )
    if session.runs:
        run_id = f"{args.experiment}-{time.strftime('%Y%m%dT%H%M%SZ', time.gmtime())}"
        path = write_bench_snapshot(args.bench_dir, run_id, session.bench_records(), manifest)
        print(f"perf snapshot written to {path}", file=sys.stderr)


def _write_span_outputs(args, tracer) -> None:
    """Flush the distributed trace: span JSONL + merged Perfetto timeline."""
    from repro.obs.tracing import write_span_chrome_trace, write_spans_jsonl

    if tracer is None:  # pragma: no cover - guarded by tracing_on
        return
    out = Path(args.trace_spans)
    out.parent.mkdir(parents=True, exist_ok=True)
    spans = list(tracer)
    n_spans = write_spans_jsonl(spans, out)
    perfetto = out.with_suffix(".perfetto.json")
    write_span_chrome_trace(spans, perfetto)
    dropped = f" ({tracer.dropped} dropped by ring bound)" if tracer.dropped else ""
    print(
        f"{n_spans} spans written to {out}{dropped} (Perfetto view: {perfetto})",
        file=sys.stderr,
    )


def _run_experiments(args, n, prof, benches, argv) -> int:
    failures: list[FailureRecord] = []
    degraded: list[FailureRecord] = []
    produced: list[tuple[str, object]] = []

    def emit(name: str, result) -> None:
        print(result.render(), end="\n\n")
        if args.chart and hasattr(result, "render_chart"):
            print(result.render_chart(), end="\n\n")
        produced.append((name, result))

    def guarded(name: str, thunk, show: bool = True):
        """Run one experiment; under --keep-going a crash becomes a record."""
        if not args.keep_going:
            result = thunk()
            if show:
                emit(name, result)
            return result
        try:
            result = thunk()
        except Exception as exc:
            failures.append(
                FailureRecord(benchmark="*", stage=name, error=type(exc).__name__, message=str(exc))
            )
            return None
        if show:
            emit(name, result)
        return result

    # Per-benchmark isolation: pre-collect each workload's trace so a
    # broken/runaway workload is dropped (or degraded) up front instead
    # of killing whichever experiment touches it first.  With --jobs N
    # the same pre-pass fans out across worker processes; either way
    # the experiments below replay preloaded traces.
    # The 'sweep' experiment is excluded: its supervised workers collect
    # (resiliently) inside each cell, and a pre-pass here would not
    # reach them anyway under spawn.
    if (args.keep_going or args.jobs > 1) and args.experiment not in ("fig1", "inject", "sweep"):
        target = benches or BENCHMARK_NAMES
        if args.jobs > 1:
            from repro.experiments.parallel import collect_parallel

            surviving, fails, degr = collect_parallel(
                target, n + DEFAULT_WARMUP, jobs=args.jobs, profile=prof
            )
            if fails and not args.keep_going:
                for record in fails:
                    print(record.describe(), file=sys.stderr)
                return 1
            failures.extend(fails)
            degraded.extend(degr)
        else:
            surviving = []
            for name in target:
                trace, record = collect_trace_resilient(name, n + DEFAULT_WARMUP, profile=prof)
                if trace is None:
                    failures.append(record)
                else:
                    surviving.append(name)
                    if record is not None:
                        degraded.append(record)
        benches = tuple(surviving)
        if not benches:
            print(render_failure_report(failures, degraded))
            return 1

    if args.experiment in ("table1", "all"):
        guarded("table1", lambda: table1.run(benches or BENCHMARK_NAMES, n, profile=prof))
    if args.experiment == "fig1":
        guarded("fig1", figure1.run)
    if args.experiment in ("fig2", "all"):
        guarded("fig2", lambda: figure2.run(benches or figure2.FIGURE2_BENCHMARKS, n, profile=prof))
    if args.experiment in ("fig4", "all"):
        guarded("fig4", lambda: figure4.run(n, profile=prof))
    if args.experiment in ("fig6", "all"):
        guarded("fig6", lambda: figure6.run(benches or BENCHMARK_NAMES, n, profile=prof))
    if args.experiment in ("fig11", "fig12", "all"):
        # fig12 derives from fig11's sweep; for a fig12-only run the
        # base is computed (guarded) but not printed.
        base = guarded(
            "fig11",
            lambda: figure11.run(benches or BENCHMARK_NAMES, n, profile=prof),
            show=args.experiment in ("fig11", "all"),
        )
        if args.experiment in ("fig12", "all") and base is not None:
            guarded("fig12", lambda: figure12.run(base=base))
    if args.experiment in ("workloads", "all"):
        guarded("workloads", lambda: workload_table.run(benches or BENCHMARK_NAMES, n, profile=prof))

    if args.experiment == "sweep":
        from repro.experiments import sweep as sweep_mod
        from repro.experiments.supervisor import SupervisorPolicy

        config_names = list(args.configs) if args.configs else list(sweep_mod.DEFAULT_CONFIGS)
        try:
            sweep_mod.parse_configs(config_names)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        progress = None
        if args.live:
            from repro.experiments.progress import SweepProgress

            # Stderr keeps stdout byte-comparable across kill-resume.
            progress = SweepProgress()
        try:
            result = sweep_mod.run(
                benches or BENCHMARK_NAMES,
                config_names,
                max_steps=n,
                jobs=args.jobs,
                profile=prof,
                journal_path=args.resume or args.journal,
                resume=bool(args.resume),
                policy=SupervisorPolicy(
                    max_cell_retries=args.max_cell_retries, backoff=args.backoff
                ),
                keep_going=args.keep_going,
                progress=progress,
                sampling=args.sampling_plan,
            )
        finally:
            if progress is not None:
                progress.close()
        emit("sweep", result)
        if result.report is not None:
            # Supervision counters go to stderr: they legitimately vary
            # between a calm run and a chaotic one, while stdout stays
            # byte-comparable across kill-resume (the chaos invariant).
            print(result.report.render(), file=sys.stderr)
        failures.extend(result.failures)
        degraded.extend(result.degraded)

    campaign_failed = False
    if args.experiment == "inject":
        from repro.harness.faults import CampaignSuite, run_campaign

        n_faults = args.inject if args.inject is not None else DEFAULT_FAULTS
        reports = {}
        for name in benches or INJECT_BENCHMARKS:
            def campaign(name=name):
                trace = collect_trace(name, n, profile=prof)
                return run_campaign(trace, n_faults=n_faults, seed=args.inject_seed)

            if args.keep_going:
                try:
                    reports[name] = campaign()
                except Exception as exc:
                    failures.append(
                        FailureRecord(benchmark=name, stage="inject", error=type(exc).__name__, message=str(exc))
                    )
            else:
                reports[name] = campaign()
        if reports:
            suite = CampaignSuite(reports)
            emit("inject", suite)
            if not suite.clean:
                campaign_failed = True
                print(
                    f"fault campaign FAILED: {suite.silent_total} silent corruption(s)",
                    file=sys.stderr,
                )

    if args.output and produced:
        from repro.experiments.results_io import save_rows

        name, result = produced[-1] if len(produced) == 1 else ("all", produced[-1][1])
        # For multi-experiment runs, save the last result's rows; the
        # per-experiment form is the intended regression unit.
        metadata = {"instructions": n, "profile": prof}
        if args.keep_going:
            metadata["failures"] = [asdict(f) for f in failures]
            metadata["degraded"] = [asdict(d) for d in degraded]
        save_rows(args.output, name, result.rows(), metadata=metadata)
        print(f"rows saved to {args.output}", file=sys.stderr)

    if args.keep_going:
        print(render_failure_report(failures, degraded))
    if campaign_failed or failures:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
