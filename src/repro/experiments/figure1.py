"""Figure 1: pipelined execution with partial operand knowledge.

The paper's Figure 1 is conceptual: the same dependent-instruction
chain under (a) a non-pipelined EX stage, (b) a conventionally
pipelined EX stage, and (c) a pipelined EX stage exposing partial
operand knowledge.  This experiment regenerates it concretely, as
rendered pipeline timelines over the exact Figure 1 code shape
(add → addi → lw → beq, plus an independent sub).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MachineConfig, baseline_config, bitslice_config, describe, simple_pipeline_config
from repro.emulator.machine import Machine
from repro.isa.assembler import assemble
from repro.timing.pipeview import TimelineEvent, render_timeline
from repro.timing.simulator import TimingSimulator

#: The Figure 1 instruction chain, wrapped in a warm loop.
FIGURE1_SOURCE = """
        .data
        .align 2
table:  .space 512
        .text
main:   li   $s0, 60
        la   $s5, table
        li   $s1, 24
        li   $s2, 3
loop:   add  $s3, $s1, $s2       # add  R3, R2, R1
        addi $s3, $s3, 4         # addi R3, R3, 4
        andi $s3, $s3, 0x1fc
        addu $a1, $s5, $s3
        lw   $s4, 0($a1)         # lw   R4, 0(R3)
        beq  $s6, $s4, taken     # beq  R5, R4, t
        sub  $s6, $s6, $s2       # sub  R5, R5, R1
taken:  addiu $s1, $s1, 5
        andi $s1, $s1, 0xff
        addiu $s0, $s0, -1
        bgtz $s0, loop
        halt
"""

#: The five Figure 1 mnemonic shapes, in chain order.
CHAIN = ("add", "addi", "lw", "beq", "sub")


@dataclass
class Figure1Result:
    #: config name → (config, steady-state window of timeline events).
    panels: dict[str, tuple[MachineConfig, list[TimelineEvent]]]
    ipcs: dict[str, float]

    def chain_span(self, name: str) -> int:
        """Cycles from the chain head's completion to the chain tail's
        completion in the displayed window (the Figure 1 'overlap'
        metric: smaller = more overlap between dependants)."""
        _, events = self.panels[name]
        chain = [e for e in events if e.mnemonic in CHAIN]
        if len(chain) < 2:
            return 0
        return max(e.complete for e in chain) - min(e.complete for e in chain)

    def rows(self):
        return [(name, self.ipcs[name], self.chain_span(name)) for name in self.panels]

    def render(self) -> str:
        parts = ["Figure 1 — the same dependence chain under three pipelines"]
        for name, (config, events) in self.panels.items():
            parts.append(f"\n--- {describe(config)} (IPC {self.ipcs[name]:.3f}) ---")
            parts.append(render_timeline(events, limit=len(events)))
        return "\n".join(parts)


def run(window: int = 11) -> Figure1Result:
    """Regenerate Figure 1's three panels."""
    trace = tuple(Machine(assemble(FIGURE1_SOURCE)).trace(3_000))
    panels: dict[str, tuple[MachineConfig, list[TimelineEvent]]] = {}
    ipcs: dict[str, float] = {}
    for config in (baseline_config(), simple_pipeline_config(2), bitslice_config(2)):
        sim = TimingSimulator(config, record_timeline=True)
        stats = sim.run(iter(trace))
        # One steady-state loop body near the end of the run.
        start = max(0, len(sim.timeline) - window - 22)
        panels[config.name] = (config, sim.timeline[start : start + window])
        ipcs[config.name] = stats.ipc
    return Figure1Result(panels=panels, ipcs=ipcs)
