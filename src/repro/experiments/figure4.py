"""Figure 4: partial tag matching characterization.

Regenerates the paper's six panels: two benchmarks (mcf on a 64KB/64B
cache, twolf on an 8KB/32B cache) at associativities 2, 4 and 8, each
a stack of the four partial-tag outcomes versus tag bits compared.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.characterization.tag_char import TagCharacterization
from repro.characterization.vectorized import characterize_tags_fast
from repro.experiments.report import render_stack
from repro.experiments.runner import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP, collect_trace
from repro.memsys.cache import CacheConfig
from repro.memsys.partial_tag import PartialTagOutcome

#: The paper's panel pairings: benchmark → (size, line size).
FIGURE4_PANELS: tuple[tuple[str, int, int], ...] = (
    ("mcf", 64 * 1024, 64),
    ("twolf", 8 * 1024, 32),
)
ASSOCIATIVITIES: tuple[int, ...] = (2, 4, 8)

CATEGORY_ORDER: tuple[PartialTagOutcome, ...] = (
    PartialTagOutcome.MULTI,
    PartialTagOutcome.SINGLE_MISS,
    PartialTagOutcome.ZERO,
    PartialTagOutcome.SINGLE_HIT,
)


@dataclass
class Figure4Result:
    #: (benchmark, assoc) → characterization.
    panels: dict[tuple[str, int], TagCharacterization]

    def rows(self):
        out = []
        for (name, assoc), char in self.panels.items():
            for bits in sorted(char.counts):
                for cat in CATEGORY_ORDER:
                    out.append((name, assoc, bits, cat.value, char.fraction(bits, cat)))
        return out

    def render(self) -> str:
        parts = []
        for (name, assoc), char in self.panels.items():
            cfg = char.config
            sample = sorted(char.counts)
            per_x = {b: [char.fraction(b, c) for c in CATEGORY_ORDER] for b in sample}
            parts.append(
                render_stack(
                    f"Figure 4 — {name}, {cfg.size // 1024}KB {cfg.line_size}B lines, "
                    f"{assoc}-way ({char.accesses} accesses, hit rate {char.hit_rate:.1%})",
                    [c.value for c in CATEGORY_ORDER],
                    per_x,
                )
            )
        return "\n\n".join(parts)


def run(
    instructions: int = DEFAULT_INSTRUCTIONS,
    panels: tuple[tuple[str, int, int], ...] = FIGURE4_PANELS,
    associativities: tuple[int, ...] = ASSOCIATIVITIES,
    max_bits: int = 12,
    warmup: int = DEFAULT_WARMUP,
    profile: str = "ref",
) -> Figure4Result:
    """Regenerate Figure 4.

    *max_bits* caps the sampled tag widths (plus the full width, which
    is always included as the conventional comparison).
    """
    results: dict[tuple[str, int], TagCharacterization] = {}
    for name, size, line in panels:
        trace = collect_trace(name, instructions + warmup, profile=profile)
        for assoc in associativities:
            config = CacheConfig(size=size, assoc=assoc, line_size=line, name=f"{name}-{assoc}w")
            bits = tuple(range(1, min(max_bits, config.tag_bits) + 1)) + (config.tag_bits,)
            bits = tuple(sorted(set(bits)))
            results[(name, assoc)] = characterize_tags_fast(
                trace, config, benchmark=name, bits=bits, warmup=warmup
            )
    return Figure4Result(panels=results)
