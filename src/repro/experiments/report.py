"""Experiment rendering and paper-fidelity regression reports.

Two layers live here:

* ASCII rendering helpers (:func:`render_table`, :func:`render_series`,
  :func:`render_stack`) shared by the experiment modules' ``render()``
  methods;
* the ``repro-report`` fidelity reporter: :func:`run_fidelity`
  regenerates Figures 1, 2, 4, 6, 11, 12 and Table 1 at a configurable
  budget, scores each paper claim against a tolerance band
  (:class:`FigureCheck`), decomposes the headline configurations into
  CPI stacks, folds in run-over-run trend deltas from ``BENCH_*.json``
  perf snapshots, and renders the whole thing as markdown or a
  self-contained HTML page.  CI runs it after the perf-smoke job and
  fails on out-of-tolerance figures.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Simple fixed-width table."""
    cols = len(headers)
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i in range(cols):
            widths[i] = max(widths[i], len(row[i]))
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def render_series(name: str, points: Sequence[tuple[object, float]], fmt: str = "{:.3f}") -> str:
    """One figure series as ``name: x=y`` pairs."""
    body = "  ".join(f"{x}={fmt.format(y)}" for x, y in points)
    return f"{name}: {body}"


def render_stack(
    title: str,
    categories: Sequence[str],
    per_x: dict[object, Sequence[float]],
    fmt: str = "{:5.1%}",
) -> str:
    """A stacked-bar figure as text: one line per x value."""
    out = [title, "  " + "  ".join(categories)]
    for x, values in per_x.items():
        out.append(f"{x!s:>6} " + "  ".join(fmt.format(v) for v in values))
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


# ===================================================== fidelity reporting

#: Default budget for a fidelity run — big enough that every band below
#: holds, small enough for CI (seconds per benchmark, not minutes).
FIDELITY_INSTRUCTIONS = 4_000
FIDELITY_WARMUP = 1_000
FIDELITY_BENCHMARKS: tuple[str, ...] = ("bzip", "li", "mcf")


@dataclass(frozen=True)
class PaperTarget:
    """One claim from the paper with its acceptance band.

    *lo*/*hi* bound the reproduced value (``None`` = unbounded on that
    side); *paper* records what the paper itself reports, so the
    report reads as "claim / our number / their number" per row.
    """

    figure: str
    claim: str
    lo: float | None
    hi: float | None
    paper: str

    def band(self) -> str:
        lo = "-inf" if self.lo is None else f"{self.lo:g}"
        hi = "+inf" if self.hi is None else f"{self.hi:g}"
        return f"[{lo}, {hi}]"


@dataclass(frozen=True)
class FigureCheck:
    """A reproduced value scored against its :class:`PaperTarget`.

    Exact results score the point value against the band.  Results that
    carry error bars (*ci*, an IPC-style 95% confidence interval from
    the statistical-sampling engine) score by **CI overlap** instead: a
    sampled estimate whose interval intersects the acceptance band is in
    tolerance even when its point sits just outside — and conversely a
    tight interval wholly outside the band fails no matter how close the
    point is.  That is the statistically honest reading of a sampled
    number: the claim is about the interval, not the point.
    """

    target: PaperTarget
    value: float
    ci: tuple[float, float] | None = None

    @property
    def ok(self) -> bool:
        t = self.target
        if self.ci is not None:
            lo, hi = self.ci
            if t.lo is not None and hi < t.lo:
                return False
            if t.hi is not None and lo > t.hi:
                return False
            return True
        if t.lo is not None and self.value < t.lo:
            return False
        if t.hi is not None and self.value > t.hi:
            return False
        return True

    def value_cell(self) -> str:
        """The value as rendered in report tables (± interval if any)."""
        if self.ci is None:
            return f"{self.value:.4g}"
        return f"{self.value:.4g} [{self.ci[0]:.4g}, {self.ci[1]:.4g}]"

    def to_dict(self) -> dict:
        return {
            "figure": self.target.figure,
            "claim": self.target.claim,
            "value": self.value,
            "ci": list(self.ci) if self.ci is not None else None,
            "lo": self.target.lo,
            "hi": self.target.hi,
            "paper": self.target.paper,
            "ok": self.ok,
        }


@dataclass
class FidelityReport:
    """One fidelity run: scored checks + CPI stacks + perf trend."""

    run: str = "fidelity"
    benchmarks: tuple[str, ...] = ()
    instructions: int = 0
    warmup: int = 0
    checks: list[FigureCheck] = field(default_factory=list)
    #: checked CPI stacks for the headline configurations.
    stacks: list = field(default_factory=list)
    #: chronological perf-snapshot trend rows (oldest first).
    trend: list[dict] = field(default_factory=list)
    #: campaign-health counters: trace-cache corruption and supervisor
    #: retry/quarantine/respawn totals, from this run plus the scanned
    #: ``BENCH_*.json`` manifests — so data integrity and orchestration
    #: churn ship with the claim scores.
    campaign: dict = field(default_factory=dict)
    #: JIT-tier compiler telemetry: blocks/superblocks compiled, side-exit
    #: and fault-replay rates, code-cache reuse — from this process's
    #: block engine plus the scanned ``BENCH_*.json`` manifests.  Empty
    #: when no run in scope used the blocks dispatch tier, and the
    #: section is omitted entirely so non-blocks reports are unchanged.
    compiler: dict = field(default_factory=dict)
    #: non-fatal issues hit while collecting (bad snapshots etc.).
    warnings: list[str] = field(default_factory=list)

    @property
    def failed(self) -> list[FigureCheck]:
        return [c for c in self.checks if not c.ok]

    @property
    def ok(self) -> bool:
        return not self.failed

    def to_dict(self) -> dict:
        return {
            "run": self.run,
            "benchmarks": list(self.benchmarks),
            "instructions": self.instructions,
            "warmup": self.warmup,
            "ok": self.ok,
            "checks": [c.to_dict() for c in self.checks],
            "stacks": [s.to_dict() for s in self.stacks],
            "trend": self.trend,
            "campaign": dict(self.campaign),
            "compiler": dict(self.compiler),
            "warnings": list(self.warnings),
        }

    # ------------------------------------------------------------ markdown

    def render_markdown(self) -> str:
        from repro.obs.attribution import render_stacks

        passed = len(self.checks) - len(self.failed)
        lines = [
            f"# Paper-fidelity report — `{self.run}`",
            "",
            f"Reproduction of *Exploiting Partial Operand Knowledge* "
            f"(ICPP 2003) checked on benchmarks "
            f"{', '.join(f'`{b}`' for b in self.benchmarks)} "
            f"({self.instructions} measured instructions, "
            f"{self.warmup} warmup).",
            "",
            f"**{passed}/{len(self.checks)} checks in tolerance**"
            + ("" if self.ok else " — **FIDELITY REGRESSION**"),
            "",
            "| status | figure | claim | value | band | paper |",
            "|--------|--------|-------|-------|------|-------|",
        ]
        for c in self.checks:
            lines.append(
                f"| {'PASS' if c.ok else '**FAIL**'} | {c.target.figure} "
                f"| {c.target.claim} | {c.value_cell()} | {c.target.band()} "
                f"| {c.target.paper} |"
            )
        if self.stacks:
            lines += [
                "",
                "## CPI stacks",
                "",
                "Cycle attribution for the headline configurations "
                "(components sum exactly to measured cycles; "
                "see `docs/observability.md`).",
                "",
                "```",
                render_stacks(self.stacks),
                "```",
            ]
        if self.trend:
            lines += [
                "",
                "## Perf-snapshot trend",
                "",
                "| run | mean IPC | ΔIPC | wall s | Δwall | cache hit rate |",
                "|-----|----------|------|--------|-------|----------------|",
            ]
            prev = None
            for row in self.trend:
                d_ipc = d_wall = "—"
                if prev is not None and prev["mean_ipc"] and row["mean_ipc"]:
                    d_ipc = f"{row['mean_ipc'] / prev['mean_ipc'] - 1:+.1%}"
                if prev is not None and prev["wall_seconds"]:
                    d_wall = f"{row['wall_seconds'] / prev['wall_seconds'] - 1:+.1%}"
                hit = "—" if row["cache_hit_rate"] is None else f"{row['cache_hit_rate']:.0%}"
                lines.append(
                    f"| {row['run']} | {row['mean_ipc']:.3f} | {d_ipc} "
                    f"| {row['wall_seconds']:.2f} | {d_wall} | {hit} |"
                )
                prev = row
        if self.campaign:
            h = self.campaign
            verdict = "clean" if h.get("clean") else "**DEGRADED**"
            lines += [
                "",
                "## Campaign health",
                "",
                f"Data integrity and orchestration churn for this run plus "
                f"{h.get('snapshots_scanned', 0)} perf snapshot(s): {verdict}.",
                "",
                "| counter | value |",
                "|---------|-------|",
                f"| corrupt trace-cache entries | {h.get('cache_corrupt_entries', 0)} |",
                f"| supervisor retries | {h.get('supervisor_retries', 0)} |",
                f"| quarantined cells | {h.get('supervisor_quarantined', 0)} |",
                f"| worker respawns | {h.get('supervisor_respawns', 0)} |",
                f"| corrupt worker results | {h.get('supervisor_corrupt_results', 0)} |",
                f"| straggler cells | {h.get('straggler_cells', 0)} |",
                f"| retry-storm cells | {h.get('retry_storm_cells', 0)} |",
            ]
        if self.compiler:
            t = self.compiler
            lines += [
                "",
                "## Compiler telemetry",
                "",
                f"Block-compiled dispatch tier, from this run plus "
                f"{t.get('snapshots_scanned', 0)} perf snapshot(s) that "
                f"used it.",
                "",
                "| counter | value |",
                "|---------|-------|",
                f"| blocks compiled | {t.get('blocks_compiled', 0)} |",
                f"| superblocks | {t.get('superblocks', 0)} |",
                f"| code-cache binds | {t.get('cache_binds', 0)} |",
                f"| compiled-block executions | {t.get('block_execs', 0)} |",
                f"| side-exit rate | {t.get('side_exit_rate', 0.0):.2%} |",
                f"| fault replays | {t.get('replays', 0)} |",
                f"| block-instruction fraction | {t.get('block_inst_fraction', 0.0):.1%} |",
                f"| batched lw/sw run sites | {t.get('mem_run_sites', 0)} |",
                f"| compile wall seconds | {t.get('compile_seconds', 0.0):.3f} |",
            ]
        if self.warnings:
            lines += ["", "## Warnings", ""]
            lines += [f"- {w}" for w in self.warnings]
        lines.append("")
        return "\n".join(lines)

    # ---------------------------------------------------------------- html

    def render_html(self) -> str:
        from repro.obs.attribution import COMPONENT_KEYS, DESCRIPTIONS

        palette = {
            "base": "#4e79a7", "branch_recovery": "#e15759",
            "ruu_stall": "#f28e2b", "lsq_stall": "#ffbe7d",
            "lsd_wait": "#59a14f", "ptm_replay": "#b07aa1",
            "memory": "#9c755f", "slice_wait": "#edc948",
        }
        passed = len(self.checks) - len(self.failed)
        rows = []
        for c in self.checks:
            cls = "pass" if c.ok else "fail"
            rows.append(
                f"<tr class='{cls}'><td>{'PASS' if c.ok else 'FAIL'}</td>"
                f"<td>{_esc(c.target.figure)}</td><td>{_esc(c.target.claim)}</td>"
                f"<td>{_esc(c.value_cell())}</td><td>{_esc(c.target.band())}</td>"
                f"<td>{_esc(c.target.paper)}</td></tr>"
            )
        bars = []
        if self.stacks:
            worst = max(s.total_cpi for s in self.stacks) or 1.0
            for s in self.stacks:
                label = f"{s.benchmark}/{s.config_name}" if s.benchmark else s.config_name
                segs = []
                for key in COMPONENT_KEYS:
                    if not s.cycles or not s.components[key]:
                        continue
                    pct = 100.0 * (s.components[key] / s.cycles) * (s.total_cpi / worst)
                    segs.append(
                        f"<span class='seg' style='width:{pct:.2f}%;"
                        f"background:{palette[key]}' title='{_esc(key)}: "
                        f"{s.components[key]} cycles ({s.fraction(key):.1%}) — "
                        f"{_esc(DESCRIPTIONS[key])}'></span>"
                    )
                bars.append(
                    f"<div class='row'><div class='label'>{_esc(label)} "
                    f"<small>CPI {s.total_cpi:.3f}</small></div>"
                    f"<div class='bar'>{''.join(segs)}</div></div>"
                )
            legend = "".join(
                f"<span class='key'><span class='swatch' "
                f"style='background:{palette[k]}'></span>{_esc(k)}</span>"
                for k in COMPONENT_KEYS
            )
            bars.append(f"<div class='legend'>{legend}</div>")
        trend_rows = []
        prev = None
        for row in self.trend:
            d_ipc = "—"
            if prev is not None and prev["mean_ipc"] and row["mean_ipc"]:
                d_ipc = f"{row['mean_ipc'] / prev['mean_ipc'] - 1:+.1%}"
            hit = "—" if row["cache_hit_rate"] is None else f"{row['cache_hit_rate']:.0%}"
            trend_rows.append(
                f"<tr><td>{_esc(row['run'])}</td><td>{row['mean_ipc']:.3f}</td>"
                f"<td>{d_ipc}</td><td>{row['wall_seconds']:.2f}</td><td>{hit}</td></tr>"
            )
            prev = row
        campaign_html = ""
        if self.campaign:
            h = self.campaign
            verdict = "clean" if h.get("clean") else "DEGRADED"
            cls = "ok" if h.get("clean") else "bad"
            campaign_rows = "".join(
                f"<tr><td>{_esc(label)}</td><td>{h.get(key, 0)}</td></tr>"
                for label, key in (
                    ("corrupt trace-cache entries", "cache_corrupt_entries"),
                    ("supervisor retries", "supervisor_retries"),
                    ("quarantined cells", "supervisor_quarantined"),
                    ("worker respawns", "supervisor_respawns"),
                    ("corrupt worker results", "supervisor_corrupt_results"),
                    ("straggler cells", "straggler_cells"),
                    ("retry-storm cells", "retry_storm_cells"),
                )
            )
            campaign_html = (
                "<h2>Campaign health</h2>"
                f"<p class='verdict {cls}'><strong>{verdict}</strong> — data "
                "integrity and orchestration churn for this run plus "
                f"{h.get('snapshots_scanned', 0)} perf snapshot(s).</p>"
                "<table><tr><th>counter</th><th>value</th></tr>"
                f"{campaign_rows}</table>"
            )
        compiler_html = ""
        if self.compiler:
            t = self.compiler
            compiler_rows = "".join(
                f"<tr><td>{_esc(label)}</td><td>{value}</td></tr>"
                for label, value in (
                    ("blocks compiled", t.get("blocks_compiled", 0)),
                    ("superblocks", t.get("superblocks", 0)),
                    ("code-cache binds", t.get("cache_binds", 0)),
                    ("compiled-block executions", t.get("block_execs", 0)),
                    ("side-exit rate", f"{t.get('side_exit_rate', 0.0):.2%}"),
                    ("fault replays", t.get("replays", 0)),
                    ("block-instruction fraction",
                     f"{t.get('block_inst_fraction', 0.0):.1%}"),
                    ("batched lw/sw run sites", t.get("mem_run_sites", 0)),
                    ("compile wall seconds", f"{t.get('compile_seconds', 0.0):.3f}"),
                )
            )
            compiler_html = (
                "<h2>Compiler telemetry</h2>"
                "<p>Block-compiled dispatch tier, from this run plus "
                f"{t.get('snapshots_scanned', 0)} perf snapshot(s) that used it.</p>"
                "<table><tr><th>counter</th><th>value</th></tr>"
                f"{compiler_rows}</table>"
            )
        warn_html = "".join(f"<li>{_esc(w)}</li>" for w in self.warnings)
        return f"""<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>Fidelity report — {_esc(self.run)}</title>
<style>
body {{ font: 14px/1.5 -apple-system, "Segoe UI", sans-serif; margin: 2em auto; max-width: 62em; color: #222; }}
table {{ border-collapse: collapse; width: 100%; margin: 1em 0; }}
th, td {{ border: 1px solid #ccc; padding: 4px 8px; text-align: left; }}
tr.pass td:first-child {{ color: #2a7d2a; font-weight: bold; }}
tr.fail td {{ background: #fde8e8; }}
tr.fail td:first-child {{ color: #b01818; font-weight: bold; }}
.verdict.ok {{ color: #2a7d2a; }} .verdict.bad {{ color: #b01818; }}
.row {{ display: flex; align-items: center; margin: 3px 0; }}
.label {{ width: 16em; flex: none; }}
.bar {{ flex: 1; height: 18px; background: #f4f4f4; }}
.seg {{ display: inline-block; height: 100%; }}
.legend {{ margin-top: .6em; }} .key {{ margin-right: 1em; }}
.swatch {{ display: inline-block; width: 10px; height: 10px; margin-right: 4px; }}
</style></head><body>
<h1>Paper-fidelity report — {_esc(self.run)}</h1>
<p>Reproduction of <em>Exploiting Partial Operand Knowledge</em> (ICPP 2003)
checked on {_esc(', '.join(self.benchmarks))}
({self.instructions} measured instructions, {self.warmup} warmup).</p>
<p class="verdict {'ok' if self.ok else 'bad'}"><strong>
{passed}/{len(self.checks)} checks in tolerance{'' if self.ok else ' — FIDELITY REGRESSION'}
</strong></p>
<table><tr><th>status</th><th>figure</th><th>claim</th><th>value</th><th>band</th><th>paper</th></tr>
{''.join(rows)}</table>
<h2>CPI stacks</h2>
<p>Cycle attribution for the headline configurations (bar length ∝ CPI;
components sum exactly to measured cycles).</p>
{''.join(bars) or '<p>(no stacks collected)</p>'}
<h2>Perf-snapshot trend</h2>
{'<table><tr><th>run</th><th>mean IPC</th><th>ΔIPC</th><th>wall s</th><th>cache hit rate</th></tr>' + ''.join(trend_rows) + '</table>' if trend_rows else '<p>(no snapshots found)</p>'}
{campaign_html}
{compiler_html}
{'<h2>Warnings</h2><ul>' + warn_html + '</ul>' if warn_html else ''}
</body></html>
"""


def _esc(text: object) -> str:
    return (
        str(text)
        .replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )


# ------------------------------------------------------------- collection

def _bench_trend(bench_dir: str | Path, warnings: list[str]) -> list[dict]:
    """Chronological per-snapshot summary rows from ``BENCH_*.json``."""
    from repro.obs.manifest import load_bench_snapshot

    rows = []
    directory = Path(bench_dir)
    if not directory.is_dir():
        return rows
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            payload = load_bench_snapshot(path)
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            warnings.append(f"skipped invalid snapshot {path.name}: {exc}")
            continue
        ipcs: list[float] = []
        for record in payload["benchmarks"].values():
            ipc = record.get("ipc")
            if isinstance(ipc, dict):
                ipcs.extend(float(v) for v in ipc.values())
            elif isinstance(ipc, (int, float)):
                ipcs.append(float(ipc))
        cache = payload["manifest"].get("trace_cache") or {}
        hits = cache.get("hits", 0)
        misses = cache.get("misses", 0)
        rows.append(
            {
                "run": payload["run"],
                "created_unix": payload["manifest"]["created_unix"],
                "mean_ipc": sum(ipcs) / len(ipcs) if ipcs else 0.0,
                "wall_seconds": float(payload["totals"].get("wall_seconds", 0.0)),
                "cache_hit_rate": hits / (hits + misses) if hits + misses else None,
            }
        )
    rows.sort(key=lambda r: r["created_unix"])
    return rows


def _campaign_health(bench_dir: str | Path | None, warnings: list[str]) -> dict:
    """Data-integrity and orchestration-churn counters for the campaign.

    Folds this process's live trace-cache / supervisor counters together
    with the totals recorded in the scanned ``BENCH_*.json`` manifests,
    so the fidelity score always ships with the health of the runs
    behind it: corrupt cache entries that were dropped and re-emulated,
    cells that needed retries or were quarantined, workers respawned
    after crashes, and straggler / retry-storm flags.
    """
    from repro.experiments import trace_cache
    from repro.experiments.supervisor import supervisor_stats
    from repro.obs.manifest import load_bench_snapshot

    health = {
        "cache_corrupt_entries": int(trace_cache.stats().get("corrupt_entries", 0)),
        "supervisor_retries": 0,
        "supervisor_quarantined": 0,
        "supervisor_respawns": 0,
        "supervisor_corrupt_results": 0,
        "straggler_cells": 0,
        "retry_storm_cells": 0,
        "snapshots_scanned": 0,
    }
    blocks = []
    live = supervisor_stats()
    if isinstance(live, dict):
        blocks.append(live)
    if bench_dir is not None and Path(bench_dir).is_dir():
        for path in sorted(Path(bench_dir).glob("BENCH_*.json")):
            try:
                payload = load_bench_snapshot(path)
            except (ValueError, OSError, json.JSONDecodeError):
                continue  # _bench_trend already warned about this file
            manifest = payload["manifest"]
            cache = manifest.get("trace_cache") or {}
            health["cache_corrupt_entries"] += int(cache.get("corrupt_entries", 0) or 0)
            block = manifest.get("supervisor")
            if isinstance(block, dict):
                blocks.append(block)
            health["snapshots_scanned"] += 1
    for block in blocks:
        health["supervisor_retries"] += int(block.get("retries", 0) or 0)
        health["supervisor_quarantined"] += int(block.get("quarantined", 0) or 0)
        health["supervisor_respawns"] += int(block.get("respawns", 0) or 0)
        health["supervisor_corrupt_results"] += int(block.get("corrupt_results", 0) or 0)
        health["straggler_cells"] += len(block.get("stragglers") or ())
        health["retry_storm_cells"] += len(block.get("retry_storms") or ())
    health["clean"] = not (
        health["cache_corrupt_entries"]
        or health["supervisor_quarantined"]
        or health["supervisor_corrupt_results"]
    )
    if health["cache_corrupt_entries"]:
        warnings.append(
            f"campaign health: {health['cache_corrupt_entries']} corrupt "
            "trace-cache entries were dropped and re-emulated"
        )
    if health["supervisor_quarantined"]:
        warnings.append(
            f"campaign health: {health['supervisor_quarantined']} sweep "
            "cells exhausted retries and were quarantined"
        )
    if health["supervisor_corrupt_results"]:
        warnings.append(
            f"campaign health: {health['supervisor_corrupt_results']} worker "
            "results failed checksum verification"
        )
    return health


def _compiler_telemetry(bench_dir: str | Path | None, warnings: list[str]) -> dict:
    """JIT-tier counters for the campaign, or ``{}`` when unused.

    Folds this process's live block-engine telemetry together with the
    ``compiler`` blocks recorded in scanned ``BENCH_*.json`` manifests.
    Empty when neither source saw the blocks tier compile anything, so
    reports for fast/reference-tier campaigns render unchanged.
    """
    from repro.emulator import blocks
    from repro.obs.manifest import load_bench_snapshot

    totals = {
        "blocks_compiled": 0,
        "superblocks": 0,
        "compile_seconds": 0.0,
        "block_execs": 0,
        "block_insts": 0,
        "fallback_insts": 0,
        "replays": 0,
        "side_exits": 0,
        "cache_binds": 0,
        "mem_run_sites": 0,
        "snapshots_scanned": 0,
    }

    def fold(stats_block: dict) -> None:
        for key in totals:
            if key == "snapshots_scanned":
                continue
            value = stats_block.get(key, 0) or 0
            totals[key] += float(value) if key == "compile_seconds" else int(value)

    live = blocks.telemetry()
    if live is not None:
        fold(live["stats"])
    if bench_dir is not None and Path(bench_dir).is_dir():
        for path in sorted(Path(bench_dir).glob("BENCH_*.json")):
            try:
                payload = load_bench_snapshot(path)
            except (ValueError, OSError, json.JSONDecodeError):
                continue  # _bench_trend already warned about this file
            block = payload["manifest"].get("compiler")
            if isinstance(block, dict) and isinstance(block.get("stats"), dict):
                fold(block["stats"])
                totals["snapshots_scanned"] += 1
    if not totals["blocks_compiled"]:
        return {}
    execs = totals["block_execs"]
    insts = totals["block_insts"] + totals["fallback_insts"]
    totals["side_exit_rate"] = totals["side_exits"] / execs if execs else 0.0
    totals["block_inst_fraction"] = totals["block_insts"] / insts if insts else 0.0
    if execs and totals["side_exit_rate"] > 0.5:
        warnings.append(
            f"compiler telemetry: side-exit rate {totals['side_exit_rate']:.0%} — "
            "superblock speculation is mostly wasted on this workload mix"
        )
    return totals


def run_fidelity(
    benchmarks: tuple[str, ...] = FIDELITY_BENCHMARKS,
    instructions: int = FIDELITY_INSTRUCTIONS,
    warmup: int = FIDELITY_WARMUP,
    slice_counts: tuple[int, ...] = (2, 4),
    bench_dir: str | Path | None = None,
    run_name: str = "fidelity",
    sampling=None,
) -> FidelityReport:
    """Regenerate the reproduced figures and score them against the paper.

    Tolerance bands mirror ``benchmarks/test_*`` (the tier-2 suite) so a
    figure that fails here would also fail there — this is the fast,
    artifact-producing form of the same contract.

    *sampling* (a :class:`~repro.timing.sampling.SamplingPlan`)
    regenerates Table 1 through the statistical-sampling engine at a
    horizon of *instructions*: its IPC checks then carry 95% confidence
    intervals and score by CI overlap instead of point tolerance (see
    :class:`FigureCheck`), and the rendered table shows ``value [lo,
    hi]``.  The trace-driven figures keep their exact paths.
    """
    from repro.experiments import figure1, figure2, figure4, figure6, figure11, figure12, table1
    from repro.memsys.partial_tag import PartialTagOutcome

    report = FidelityReport(
        run=run_name, benchmarks=tuple(benchmarks),
        instructions=instructions, warmup=warmup,
    )
    checks = report.checks

    def check(figure: str, claim: str, value: float,
              lo: float | None, hi: float | None, paper: str,
              ci: tuple[float, float] | None = None) -> None:
        checks.append(FigureCheck(PaperTarget(figure, claim, lo, hi, paper), value, ci=ci))

    # Figure 11 drives Figure 12 and the CPI stacks, so run it first.
    fig11 = figure11.run(benchmarks, instructions, slice_counts=slice_counts, warmup=warmup)
    rel = {s: fig11.mean_relative_to_ideal(s) for s in slice_counts}
    up = {s: fig11.mean_speedup_over_simple(s) for s in slice_counts}
    check("Figure 11", "slice-by-2 IPC relative to ideal", rel[2], 0.93, 1.02,
          "within ~1% of ideal")
    check("Figure 11", "slice-by-4 IPC relative to ideal", rel[4], 0.80, 1.02,
          "~82% of ideal")
    check("Figure 11", "slice-by-2 speedup over simple pipelining", up[2], 0.03, None,
          "~16% faster")
    check("Figure 11", "slice-by-4 speedup exceeds slice-by-2", up[4] - up[2], 0.0, None,
          "~44% vs ~16%")
    worst_vs_ideal = max(
        fig11.ipc(b, s) / fig11.ideal_ipc(b) for b in benchmarks for s in slice_counts
    )
    check("Figure 11", "bit-sliced IPC never beats ideal (worst ratio)",
          worst_vs_ideal, None, 1.02, "bounded by the ideal machine")

    fig12 = figure12.run(base=fig11)
    contrib = {s: fig12.mean_new_technique_contribution(s) for s in slice_counts}
    check("Figure 12", "new techniques add speedup beyond bypassing (slice-by-2)",
          contrib[2], 0.0, None, "additional ~8%")
    check("Figure 12", "contribution grows with slicing (by-4 minus by-2)",
          contrib[4] - contrib[2], 0.0, None, "~13% vs ~8%")
    worst_total = min(fig12.total_speedup(b, s) for b in benchmarks for s in slice_counts)
    check("Figure 12", "every benchmark speeds up overall (worst total)",
          worst_total, 1e-9, None, "all bars positive")

    t1 = table1.run(benchmarks, instructions, warmup=warmup, sampling=sampling)
    t1_rows = t1.rows()
    t1_min = min(t1_rows, key=lambda r: r.ipc)
    t1_max = max(t1_rows, key=lambda r: r.ipc)
    check("Table 1", "IPC within plausible band (min)",
          t1_min.ipc, 0.2, 4.0, "0.9–2.6 at 4-wide", ci=t1_min.ipc_ci)
    check("Table 1", "IPC within plausible band (max)",
          t1_max.ipc, 0.2, 4.0, "0.9–2.6 at 4-wide", ci=t1_max.ipc_ci)
    check("Table 1", "load fraction (min)",
          min(r.load_fraction for r in t1_rows), 0.03, 0.6, "19–34% loads")
    check("Table 1", "branch accuracy (min)",
          min(r.branch_accuracy for r in t1_rows), 0.6, 1.0, "86–96%")

    fig1 = figure1.run()
    check("Figure 1", "simple pipelining costs IPC (simple/ideal)",
          fig1.ipcs["simple-pipe-2"] / fig1.ipcs["ideal"], None, 0.999,
          "dependant waits full latency")
    check("Figure 1", "bit-slicing recovers IPC (sliced/simple)",
          fig1.ipcs["bitslice-2"] / fig1.ipcs["simple-pipe-2"], 1.0, None,
          "overlapped dependants")
    check("Figure 1", "dependence-chain span shrinks (simple - sliced)",
          fig1.chain_span("simple-pipe-2") - fig1.chain_span("bitslice-2"),
          0.0, None, "slices overlap the chain")

    fig2 = figure2.run(benchmarks, instructions)
    resolved15 = [fig2.resolved_by(b, 15) for b in benchmarks]
    check("Figure 2", "loads disambiguated by bit 15 (mean)",
          sum(resolved15) / len(resolved15), 0.90, 1.0, "~100% by bit 10")
    resolved_full = [fig2.resolved_by(b, 31) for b in benchmarks]
    check("Figure 2", "loads disambiguated at full width (min)",
          min(resolved_full), 0.999, 1.0, "100% by construction")

    fig4 = figure4.run(instructions=instructions, warmup=warmup)
    full_multi = max(
        char.fraction(char.config.tag_bits, PartialTagOutcome.MULTI)
        for char in fig4.panels.values()
    )
    check("Figure 4", "full-width tags never multi-match (max)",
          full_multi, 0.0, 0.0, "conventional compare")
    probe_miss = max(
        char.fraction(min(10, char.config.tag_bits), PartialTagOutcome.SINGLE_MISS)
        for char in fig4.panels.values()
    )
    check("Figure 4", "false single matches at 10 tag bits (max)",
          probe_miss, None, 0.15, "rare by ~10 bits")

    fig6 = figure6.run(benchmarks, instructions, warmup=warmup)
    check("Figure 6", "mispredicts detected from 1 bit (mean)",
          fig6.mean_detected_at_1, 0.15, 1.0, "~28%")
    check("Figure 6", "mispredicts detected from 8 bits (mean)",
          fig6.mean_detected_at_8, 0.30, 1.0, "majority by 8 bits")
    check("Figure 6 (§5.3)", "beq/bne share of dynamic branches (mean)",
          fig6.mean_eq_branch_fraction, 0.45, 1.0, "~61%")
    check("Figure 6 (§5.3)", "beq/bne share of mispredictions (mean)",
          fig6.mean_eq_mispredict_fraction, 0.35, 1.0, "~48%")

    # CPI stacks for the headline configurations, invariant-checked.
    for name in benchmarks:
        report.stacks.append(fig11.ideal[name].cpi_stack(benchmark=name))
        for s in slice_counts:
            ladder = fig11.ladder[(name, s)]
            report.stacks.append(ladder[0].cpi_stack(benchmark=name))
            report.stacks.append(ladder[-1].cpi_stack(benchmark=name))

    if bench_dir is not None:
        report.trend = _bench_trend(bench_dir, report.warnings)
    report.campaign = _campaign_health(bench_dir, report.warnings)
    report.compiler = _compiler_telemetry(bench_dir, report.warnings)
    return report


# -------------------------------------------------------------------- CLI

def main(argv: Sequence[str] | None = None) -> int:
    """``repro-report``: paper-fidelity regression report."""
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Score the reproduced figures against the paper's claims "
        "and render a fidelity report (markdown to stdout by default).",
    )
    parser.add_argument("-b", "--benchmarks", nargs="+", default=list(FIDELITY_BENCHMARKS),
                        help="benchmarks to run (default: %(default)s)")
    parser.add_argument("-n", "--instructions", type=int, default=FIDELITY_INSTRUCTIONS,
                        help="measured instructions per benchmark (default: %(default)s)")
    parser.add_argument("--warmup", type=int, default=FIDELITY_WARMUP,
                        help="warmup instructions (default: %(default)s)")
    parser.add_argument("--run-name", default="fidelity", help="label for the report header")
    parser.add_argument("--bench-dir", default="benchmarks",
                        help="directory scanned for BENCH_*.json trend snapshots "
                        "(default: %(default)s)")
    parser.add_argument("--out-md", metavar="PATH",
                        help="also write the markdown report to PATH")
    parser.add_argument("--out-html", metavar="PATH",
                        help="also write a self-contained HTML report to PATH")
    parser.add_argument("--out-json", metavar="PATH",
                        help="also write the raw check data as JSON to PATH")
    parser.add_argument("--quiet", action="store_true", help="suppress stdout markdown")
    parser.add_argument("--no-fail", action="store_true",
                        help="exit 0 even when checks are out of tolerance")
    samp = parser.add_argument_group("statistical sampling (docs/performance.md)")
    samp.add_argument("--sample", action="store_true",
                      help="regenerate Table 1 through the sampling engine; its "
                      "checks then carry 95%% CIs and score by CI overlap")
    samp.add_argument("--sample-window", type=int, metavar="N",
                      help="measured instructions per window")
    samp.add_argument("--sample-interval", type=int, metavar="N",
                      help="systematic-sampling period")
    samp.add_argument("--ci-target", type=float, metavar="FRAC",
                      help="relative CI half-width target (auto-extends windows)")
    samp.add_argument("--sample-seed", type=int, metavar="SEED",
                      help="window-placement + bootstrap seed")
    args = parser.parse_args(argv)

    sampling = None
    if args.sample:
        import dataclasses

        from repro.timing.sampling import SamplingPlan

        overrides = {
            key: value
            for key, value in (
                ("window", args.sample_window),
                ("interval", args.sample_interval),
                ("ci_target", args.ci_target),
                ("seed", args.sample_seed),
            )
            if value is not None
        }
        try:
            sampling = dataclasses.replace(SamplingPlan(), **overrides).validate()
        except ValueError as exc:
            parser.error(str(exc))
    elif any(v is not None for v in (args.sample_window, args.sample_interval,
                                     args.ci_target, args.sample_seed)):
        parser.error("sampling knobs require --sample")

    report = run_fidelity(
        benchmarks=tuple(args.benchmarks),
        instructions=args.instructions,
        warmup=args.warmup,
        bench_dir=args.bench_dir,
        run_name=args.run_name,
        sampling=sampling,
    )
    markdown = report.render_markdown()
    if not args.quiet:
        print(markdown)
    if args.out_md:
        Path(args.out_md).write_text(markdown)
    if args.out_html:
        Path(args.out_html).write_text(report.render_html())
    if args.out_json:
        Path(args.out_json).write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    if not report.ok:
        for c in report.failed:
            print(
                f"FAIL {c.target.figure}: {c.target.claim} = {c.value:.4g} "
                f"outside {c.target.band()}",
                file=sys.stderr,
            )
        if not args.no_fail:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
