"""ASCII rendering helpers for experiment results.

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers keep the formatting consistent.
"""

from __future__ import annotations

from collections.abc import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Simple fixed-width table."""
    cols = len(headers)
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i in range(cols):
            widths[i] = max(widths[i], len(row[i]))
    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def render_series(name: str, points: Sequence[tuple[object, float]], fmt: str = "{:.3f}") -> str:
    """One figure series as ``name: x=y`` pairs."""
    body = "  ".join(f"{x}={fmt.format(y)}" for x, y in points)
    return f"{name}: {body}"


def render_stack(
    title: str,
    categories: Sequence[str],
    per_x: dict[object, Sequence[float]],
    fmt: str = "{:5.1%}",
) -> str:
    """A stacked-bar figure as text: one line per x value."""
    out = [title, "  " + "  ".join(categories)]
    for x, values in per_x.items():
        out.append(f"{x!s:>6} " + "  ".join(fmt.format(v) for v in values))
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
