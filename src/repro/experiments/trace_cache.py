"""Persistent on-disk trace cache.

Dynamic traces are deterministic: the same benchmark, collection
parameters and program image always emulate to the same record stream.
Re-collecting them in every process is therefore pure waste — the same
observation behind uops.info's cached measurement sets and
way-memoization.  This module memoizes collections on disk, under
``~/.cache/repro-traces/`` by default (override with the
``REPRO_TRACE_CACHE`` environment variable or the CLI's
``--trace-cache``/``--no-trace-cache``).

Safety properties:

* **Keying** — a cache file is named by a SHA-256 over the benchmark
  name, every collection parameter (window, iters, skip, input
  profile), a content hash of the assembled program image, and the
  trace-file + cache schema versions.  Any change to the workload
  source, the assembler output, or the collection semantics changes
  the key: stale entries are never *read*, they are simply orphaned.
* **Integrity** — entries are written atomically
  (:func:`repro.emulator.tracefile.save_trace`: temp file + fsync +
  rename) and carry the trace format's embedded CRC-32.  A torn,
  truncated or bit-rotted file fails validation on load and silently
  falls back to re-collection (the bad file is dropped), never
  corrupting results.
* **Concurrency** — writers never clobber readers (atomic rename), and
  two processes racing to fill the same key both produce identical
  bytes, so last-writer-wins is harmless.  This is what makes the
  ``--jobs`` parallel sweep cheap on a warm cache.
"""

from __future__ import annotations

import hashlib
import os
import sys
from pathlib import Path

from repro.emulator.tracefile import FORMAT_VERSION, load_trace, save_trace
from repro.harness.errors import TraceCorruption

#: Bump when collection semantics change in a way the key cannot see
#: (e.g. the skip-hint estimator): all old entries become orphans.
CACHE_SCHEMA = 1

#: Environment override for the cache directory; the values ``off``,
#: ``0`` and ``none`` disable the cache entirely.
ENV_VAR = "REPRO_TRACE_CACHE"

#: Default location, per the XDG convention.
DEFAULT_DIR = "~/.cache/repro-traces"

_DISABLING_VALUES = ("off", "0", "none", "disabled")

#: Explicit runtime configuration (set by the CLI / tests); ``None``
#: means "fall back to the environment".
_configured_dir: Path | None = None
_configured_enabled: bool | None = None

#: Process-wide hit/miss counters (exported into run manifests).
_hits = 0
_misses = 0
#: Entries that failed validation and were dropped.  Recovery is
#: automatic (re-collect), but it must never be *silent*: a climbing
#: count means disk trouble, and a user deserves to know their warm
#: cache is quietly rotting.
_corrupt_entries = 0


def configure(directory: str | Path | None = None, enabled: bool | None = None) -> None:
    """Set (or with ``None`` arguments, clear) the explicit cache config.

    Explicit configuration wins over the ``REPRO_TRACE_CACHE``
    environment variable, which wins over the default directory.
    """
    global _configured_dir, _configured_enabled
    _configured_dir = Path(directory).expanduser() if directory is not None else None
    _configured_enabled = enabled


def enabled() -> bool:
    """Whether the persistent cache is active for this process."""
    if _configured_enabled is not None:
        return _configured_enabled
    value = os.environ.get(ENV_VAR, "").strip().lower()
    return value not in _DISABLING_VALUES


def cache_dir() -> Path:
    """The active cache directory (not necessarily created yet)."""
    if _configured_dir is not None:
        return _configured_dir
    value = os.environ.get(ENV_VAR, "").strip()
    if value and value.lower() not in _DISABLING_VALUES:
        return Path(value).expanduser()
    return Path(DEFAULT_DIR).expanduser()


def program_digest(program) -> str:
    """SHA-256 content hash of an assembled program image."""
    h = hashlib.sha256()
    h.update(int(program.text_base).to_bytes(8, "little"))
    h.update(int(program.data_base).to_bytes(8, "little"))
    h.update(int(program.entry).to_bytes(8, "little"))
    h.update(b"".join(w.to_bytes(4, "little") for w in program.text))
    h.update(bytes(program.data))
    return h.hexdigest()


def cache_key(
    name: str,
    max_steps: int,
    iters: int | None,
    skip: int | None,
    profile: str,
    program,
) -> str:
    """Deterministic key for one (benchmark, parameters, image) trace."""
    canonical = "|".join(
        (
            f"schema={CACHE_SCHEMA}",
            f"tracefmt={FORMAT_VERSION}",
            f"name={name}",
            f"max_steps={max_steps}",
            f"iters={'auto' if iters is None else iters}",
            f"skip={'auto' if skip is None else skip}",
            f"profile={profile}",
            f"image={program_digest(program)}",
        )
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def entry_path(name: str, key: str) -> Path:
    """File that caches the trace for *key* (name kept for legibility)."""
    return cache_dir() / f"{name}-{key[:24]}.npz"


def load(name: str, key: str):
    """Return the cached trace for *key*, or ``None`` on a miss.

    A corrupt or torn entry counts as a miss: it is removed
    (best-effort) and the caller re-collects — degraded performance,
    never degraded correctness.  Counters update as a side effect.
    """
    global _hits, _misses, _corrupt_entries
    if not enabled():
        return None
    path = entry_path(name, key)
    try:
        records = load_trace(path)
    except FileNotFoundError:
        _misses += 1
        return None
    except (TraceCorruption, OSError) as exc:
        _misses += 1
        _corrupt_entries += 1
        print(
            f"[trace-cache] warning: dropped corrupt entry {path.name} "
            f"({type(exc).__name__}: {exc}); re-collecting {name}",
            file=sys.stderr,
            flush=True,
        )
        from repro.obs.session import active_session

        session = active_session()
        if session is not None:
            session.registry.counter(
                "cache.corrupt_entries",
                help="trace-cache entries dropped after failing validation",
            ).inc()
        try:
            path.unlink()
        except OSError:
            pass
        return None
    _hits += 1
    return tuple(records)


def store(name: str, key: str, records) -> Path | None:
    """Persist a freshly collected trace (best-effort; never raises)."""
    if not enabled():
        return None
    path = entry_path(name, key)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        save_trace(path, records)
    except OSError:
        return None
    return path


def stats() -> dict:
    """Hit/miss counters plus the active configuration, for manifests."""
    return {
        "enabled": enabled(),
        "dir": str(cache_dir()),
        "hits": _hits,
        "misses": _misses,
        "corrupt_entries": _corrupt_entries,
    }


def add_stats(hits: int = 0, misses: int = 0, corrupt_entries: int = 0) -> None:
    """Fold counters observed elsewhere (worker processes) into ours."""
    global _hits, _misses, _corrupt_entries
    _hits += hits
    _misses += misses
    _corrupt_entries += corrupt_entries


def reset_stats() -> None:
    """Zero the hit/miss/corruption counters (tests, fresh sweeps)."""
    global _hits, _misses, _corrupt_entries
    _hits = 0
    _misses = 0
    _corrupt_entries = 0


__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_DIR",
    "ENV_VAR",
    "add_stats",
    "cache_dir",
    "cache_key",
    "configure",
    "enabled",
    "entry_path",
    "load",
    "program_digest",
    "reset_stats",
    "stats",
    "store",
]
