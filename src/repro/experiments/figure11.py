"""Figure 11: IPC of the bit-sliced microarchitecture.

For each benchmark and each slice count (2, 4): the ideal machine
(non-pipelined EX), simple pipelining, and the cumulative ladder of
partial-operand techniques.  The paper's headline numbers derived here:

* slice-by-2 with all techniques lands within ~1% of ideal IPC;
* that is a ~16% average speedup over simple pipelining;
* slice-by-4 recovers much of the (larger) loss, a ~44% speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import CUMULATIVE_TECHNIQUES, baseline_config, cumulative_configs
from repro.experiments.report import render_table
from repro.experiments.runner import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP, collect_trace
from repro.timing.simulator import simulate
from repro.timing.stats import SimStats
from repro.workloads import BENCHMARK_NAMES


@dataclass
class Figure11Result:
    #: benchmark → ideal-machine stats.
    ideal: dict[str, SimStats] = field(default_factory=dict)
    #: (benchmark, num_slices) → stats per ladder step, in
    #: CUMULATIVE_TECHNIQUES order.
    ladder: dict[tuple[str, int], list[SimStats]] = field(default_factory=dict)
    slice_counts: tuple[int, ...] = (2, 4)

    def ipc(self, benchmark: str, num_slices: int, step: int = -1) -> float:
        """IPC at a ladder step (default: all techniques enabled)."""
        return self.ladder[(benchmark, num_slices)][step].ipc

    def ideal_ipc(self, benchmark: str) -> float:
        return self.ideal[benchmark].ipc

    def simple_ipc(self, benchmark: str, num_slices: int) -> float:
        return self.ladder[(benchmark, num_slices)][0].ipc

    def mean_relative_to_ideal(self, num_slices: int) -> float:
        """Mean of (full bit-slice IPC / ideal IPC) across benchmarks."""
        ratios = [
            self.ipc(b, num_slices) / self.ideal_ipc(b)
            for b in self.ideal
        ]
        return sum(ratios) / len(ratios)

    def mean_speedup_over_simple(self, num_slices: int) -> float:
        """Mean of (full bit-slice IPC / simple-pipelining IPC) - 1."""
        ratios = [
            self.ipc(b, num_slices) / self.simple_ipc(b, num_slices)
            for b in self.ideal
        ]
        return sum(ratios) / len(ratios) - 1.0

    def rows(self):
        out = []
        for (name, s), stats_list in self.ladder.items():
            for label, st in zip(CUMULATIVE_TECHNIQUES, stats_list):
                out.append((name, s, label, st.ipc))
            out.append((name, s, "ideal", self.ideal[name].ipc))
        return out

    def render(self) -> str:
        parts = []
        for s in self.slice_counts:
            headers = ["Benchmark", "ideal"] + [t.replace(" ", "_") for t in CUMULATIVE_TECHNIQUES]
            rows = []
            for name in self.ideal:
                stats_list = self.ladder[(name, s)]
                rows.append([name, f"{self.ideal[name].ipc:.3f}"] + [f"{st.ipc:.3f}" for st in stats_list])
            parts.append(
                render_table(headers, rows, title=f"Figure 11 — IPC, slice by {s} (cumulative techniques)")
            )
            parts.append(
                f"  mean bit-slice/ideal: {self.mean_relative_to_ideal(s):.1%};"
                f"  mean speedup over simple pipelining: {self.mean_speedup_over_simple(s):+.1%}"
            )
        return "\n".join(parts)

    def render_chart(self) -> str:
        """Figure 11 as bar charts: full bit-slice IPC per benchmark,
        with the ideal machine drawn as the paper's thin tick bar."""
        from repro.experiments.ascii_plot import hbar_chart

        parts = []
        for s in self.slice_counts:
            rows = [(name, self.ipc(name, s)) for name in self.ideal]
            ticks = {name: self.ideal_ipc(name) for name in self.ideal}
            parts.append(f"Figure 11 chart — slice by {s} (| = ideal machine)")
            parts.append(hbar_chart(rows, ticks=ticks))
        return "\n".join(parts)


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    instructions: int = DEFAULT_INSTRUCTIONS,
    slice_counts: tuple[int, ...] = (2, 4),
    warmup: int = DEFAULT_WARMUP,
    profile: str = "ref",
) -> Figure11Result:
    """Regenerate Figure 11 (and the data behind Figure 12)."""
    result = Figure11Result(slice_counts=slice_counts)
    ideal_cfg = baseline_config()
    for name in benchmarks:
        trace = collect_trace(name, instructions + warmup, profile=profile)
        result.ideal[name] = simulate(ideal_cfg, trace, warmup=warmup)
        for s in slice_counts:
            stats_list = [
                simulate(cfg, trace, warmup=warmup) for _, cfg in cumulative_configs(s)
            ]
            result.ladder[(name, s)] = stats_list
    return result
