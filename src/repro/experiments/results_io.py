"""Experiment-result serialization and regression comparison.

Every experiment result exposes ``rows()``; this module captures those
rows (plus metadata) as JSON so runs can be archived and later runs
diffed against a stored baseline — the regression-tracking loop for a
simulator codebase: run, archive, change code, re-run, compare.

Format version 2 adds crash-safety: :func:`save_rows` writes via a
temp-file-then-rename so an interrupted run never clobbers a baseline
with a half-written file, and every payload embeds a SHA-256 checksum
that :func:`load_rows` verifies, raising
:class:`~repro.harness.errors.ResultCorruption` on tampering or bit
rot.  Version-1 (pre-checksum) files still load; unknown versions are
rejected outright.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.harness.atomicio import atomic_write_text as _atomic_write_text
from repro.harness.errors import ResultCorruption

#: Version 2 added the embedded payload checksum.
FORMAT_VERSION = 2

#: Oldest format this build still reads.
OLDEST_SUPPORTED_VERSION = 1


def payload_checksum(payload: dict) -> str:
    """SHA-256 over the canonical JSON of the payload sans checksum.

    Shared with the sweep journal (:mod:`repro.experiments.journal`),
    which embeds the same self-checksum in its own artifacts.
    """
    body = {k: v for k, v in payload.items() if k != "checksum"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


#: Backwards-compatible private alias (pre-journal name).
_payload_checksum = payload_checksum


def rows_to_json(experiment: str, rows, metadata: dict | None = None) -> str:
    """Serialize an experiment's rows.

    Rows may be dataclasses, tuples or lists of JSON-compatible scalars
    (enum values should be pre-stringified by the experiment's rows()).
    """
    def normalize(row):
        if hasattr(row, "__dataclass_fields__"):
            from dataclasses import asdict

            return asdict(row)
        return list(row)

    payload = {
        "format": FORMAT_VERSION,
        "experiment": experiment,
        "metadata": metadata or {},
        "rows": [normalize(r) for r in rows],
    }
    payload["checksum"] = _payload_checksum(payload)
    return json.dumps(payload, indent=2, sort_keys=True)


def save_rows(path: str | Path, experiment: str, rows, metadata: dict | None = None) -> None:
    """Archive rows at *path* atomically (temp file + rename)."""
    _atomic_write_text(Path(path), rows_to_json(experiment, rows, metadata))


def load_rows(path: str | Path) -> dict:
    """Load a result file; returns the full payload dict.

    Raises:
        ResultCorruption: not valid JSON (e.g. a truncated legacy
            write), an unknown format version, or a checksum mismatch.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ResultCorruption(f"{path}: not valid JSON (truncated write?): {exc}") from None
    fmt = payload.get("format")
    if fmt == 1:
        return payload  # legacy, pre-checksum
    if fmt != FORMAT_VERSION:
        raise ResultCorruption(
            f"{path}: unsupported result format {fmt!r}; this build reads versions "
            f"{OLDEST_SUPPORTED_VERSION}..{FORMAT_VERSION}"
        )
    stored = payload.get("checksum")
    if not stored:
        raise ResultCorruption(f"{path}: version-2 result file is missing its checksum")
    actual = _payload_checksum(payload)
    if stored != actual:
        raise ResultCorruption(
            f"{path}: checksum mismatch — the file was corrupted or hand-edited "
            f"(stored {stored[:12]}…, computed {actual[:12]}…)"
        )
    return payload


@dataclass(frozen=True)
class Regression:
    """One metric that moved beyond tolerance between two runs."""

    key: str
    baseline: float
    current: float

    @property
    def relative_change(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current else 0.0
        return (self.current - self.baseline) / abs(self.baseline)

    def __str__(self) -> str:
        return f"{self.key}: {self.baseline:.4f} -> {self.current:.4f} ({self.relative_change:+.1%})"


def _metric_map(payload: dict) -> dict[str, float]:
    """Flatten rows into key → numeric metric.

    The last numeric field of each row is treated as the metric and the
    preceding fields as its identity — the convention all experiment
    ``rows()`` follow ((benchmark, ..., value)).
    """
    metrics: dict[str, float] = {}
    for row in payload["rows"]:
        if isinstance(row, dict):
            items = list(row.items())
            ident = [f"{k}={v}" for k, v in items if not isinstance(v, (int, float)) or isinstance(v, bool)]
            nums = [(k, v) for k, v in items if isinstance(v, (int, float)) and not isinstance(v, bool)]
            for k, v in nums:
                metrics["|".join(ident + [k])] = float(v)
        else:
            cells = list(row)
            # Sampled sweep rows pad missing error bars with "" — strip
            # trailing blanks so the metric is never silently dropped.
            while cells and cells[-1] == "":
                cells.pop()
            if not cells:
                continue
            *ident, value = cells
            if isinstance(value, (int, float)):
                metrics["|".join(str(i) for i in ident)] = float(value)
    return metrics


def compare_results(
    baseline: dict, current: dict, tolerance: float = 0.05
) -> list[Regression]:
    """Metrics that moved more than *tolerance* (relative) between runs.

    Metrics present in only one run are reported with the other side as
    0 — additions and removals both surface.
    """
    base_metrics = _metric_map(baseline)
    cur_metrics = _metric_map(current)
    out: list[Regression] = []
    for key in sorted(set(base_metrics) | set(cur_metrics)):
        b = base_metrics.get(key, 0.0)
        c = cur_metrics.get(key, 0.0)
        denom = max(abs(b), abs(c), 1e-12)
        if abs(c - b) / denom > tolerance:
            out.append(Regression(key=key, baseline=b, current=c))
    return out
