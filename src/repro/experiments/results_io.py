"""Experiment-result serialization and regression comparison.

Every experiment result exposes ``rows()``; this module captures those
rows (plus metadata) as JSON so runs can be archived and later runs
diffed against a stored baseline — the regression-tracking loop for a
simulator codebase: run, archive, change code, re-run, compare.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

FORMAT_VERSION = 1


def rows_to_json(experiment: str, rows, metadata: dict | None = None) -> str:
    """Serialize an experiment's rows.

    Rows may be dataclasses, tuples or lists of JSON-compatible scalars
    (enum values should be pre-stringified by the experiment's rows()).
    """
    def normalize(row):
        if hasattr(row, "__dataclass_fields__"):
            from dataclasses import asdict

            return asdict(row)
        return list(row)

    payload = {
        "format": FORMAT_VERSION,
        "experiment": experiment,
        "metadata": metadata or {},
        "rows": [normalize(r) for r in rows],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def save_rows(path: str | Path, experiment: str, rows, metadata: dict | None = None) -> None:
    Path(path).write_text(rows_to_json(experiment, rows, metadata))


def load_rows(path: str | Path) -> dict:
    """Load a result file; returns the full payload dict."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported result format {payload.get('format')}")
    return payload


@dataclass(frozen=True)
class Regression:
    """One metric that moved beyond tolerance between two runs."""

    key: str
    baseline: float
    current: float

    @property
    def relative_change(self) -> float:
        if self.baseline == 0:
            return float("inf") if self.current else 0.0
        return (self.current - self.baseline) / abs(self.baseline)

    def __str__(self) -> str:
        return f"{self.key}: {self.baseline:.4f} -> {self.current:.4f} ({self.relative_change:+.1%})"


def _metric_map(payload: dict) -> dict[str, float]:
    """Flatten rows into key → numeric metric.

    The last numeric field of each row is treated as the metric and the
    preceding fields as its identity — the convention all experiment
    ``rows()`` follow ((benchmark, ..., value)).
    """
    metrics: dict[str, float] = {}
    for row in payload["rows"]:
        if isinstance(row, dict):
            items = list(row.items())
            ident = [f"{k}={v}" for k, v in items if not isinstance(v, (int, float)) or isinstance(v, bool)]
            nums = [(k, v) for k, v in items if isinstance(v, (int, float)) and not isinstance(v, bool)]
            for k, v in nums:
                metrics["|".join(ident + [k])] = float(v)
        else:
            *ident, value = row
            if isinstance(value, (int, float)):
                metrics["|".join(str(i) for i in ident)] = float(value)
    return metrics


def compare_results(
    baseline: dict, current: dict, tolerance: float = 0.05
) -> list[Regression]:
    """Metrics that moved more than *tolerance* (relative) between runs.

    Metrics present in only one run are reported with the other side as
    0 — additions and removals both surface.
    """
    base_metrics = _metric_map(baseline)
    cur_metrics = _metric_map(current)
    out: list[Regression] = []
    for key in sorted(set(base_metrics) | set(cur_metrics)):
        b = base_metrics.get(key, 0.0)
        c = cur_metrics.get(key, 0.0)
        denom = max(abs(b), abs(c), 1e-12)
        if abs(c - b) / denom > tolerance:
            out.append(Regression(key=key, baseline=b, current=c))
    return out
