"""``repro-profile``: guest hot-path reports from a guest profile.

Renders the output of the guest profiler (``--guest-profile`` /
:mod:`repro.obs.guestprof`) as human-readable reports:

* **hot-function and hot-line tables** — retired-instruction share and
  per-line CPI, with each line's cycles decomposed into the same CPI
  components the ``SimStats`` stack reports (the per-line stacks sum
  exactly to the run's measured cycles);
* **annotated disassembly** — every instruction of the hot functions
  with its retired share and cycle components alongside the assembly;
* **collapsed-stack flamegraphs** — ``stack count`` lines keyed on the
  static call graph (:func:`repro.emulator.analysis.static_call_graph`),
  ready for ``flamegraph.pl`` or speedscope.

Two input modes: ``--in profile.json`` loads a profile saved by
``repro-experiment ... --guest-profile-out`` (or :func:`write_profile`);
without ``--in`` the tool collects one itself by running the named
benchmarks through the emulator and timing simulator.

Examples::

    repro-profile -b gzip -n 30000
    repro-profile -b li --config bitslice4 --annotate
    repro-profile --in profile.json --flamegraph li.folded
    repro-profile -b mcf --mode sample --period 512 --out profile.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.emulator.analysis import collapsed_stacks, static_call_graph, write_collapsed_stacks
from repro.isa.disassembler import disassemble
from repro.obs.attribution import COMPONENT_KEYS
from repro.obs.guestprof import (
    DEFAULT_PERIOD,
    SHORTFALL_PC,
    end_guest_profile,
    load_profile,
    start_guest_profile,
    write_profile,
)
from repro.workloads import BENCHMARK_NAMES

#: Default benchmark for self-collected profiles (small and quick).
DEFAULT_BENCHMARKS = ("li",)


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-profile",
        description="Guest hot-path report: hot functions/lines with per-line "
        "CPI stacks, annotated disassembly, and collapsed-stack flamegraphs.",
    )
    p.add_argument(
        "--in", dest="profile_in", default=None, metavar="FILE",
        help="load a saved guest profile (from --guest-profile-out) instead "
        "of collecting one",
    )
    p.add_argument(
        "-b", "--benchmarks", nargs="+", default=None, metavar="NAME",
        help=f"benchmarks to profile (default {' '.join(DEFAULT_BENCHMARKS)}; "
        f"all = {' '.join(BENCHMARK_NAMES)})",
    )
    p.add_argument(
        "-n", "--instructions", type=int, default=30_000,
        help="measured instructions per benchmark (default 30000)",
    )
    p.add_argument(
        "--warmup", type=int, default=10_000,
        help="warmup instructions before the measured window (default 10000)",
    )
    p.add_argument(
        "--config", default="bitslice4",
        help="machine config for cycle attribution (default bitslice4; "
        "available: ideal pipe2 pipe4 bitslice2 bitslice4)",
    )
    p.add_argument(
        "--mode", choices=("exact", "sample"), default="exact",
        help="counting mode (default exact: every retirement)",
    )
    p.add_argument(
        "--period", type=int, default=None, metavar="N",
        help=f"sampling period for --mode sample (default {DEFAULT_PERIOD})",
    )
    p.add_argument(
        "--input-profile", dest="input_profile", default="ref",
        choices=("test", "train", "ref"),
        help="workload input footprint, also used to rebuild the program "
        "image for disassembly (default ref)",
    )
    p.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="hot lines shown per benchmark (default 10)",
    )
    p.add_argument(
        "--annotate", action="store_true",
        help="append annotated disassembly of the hot functions",
    )
    p.add_argument(
        "--annotate-min", type=float, default=1.0, metavar="PCT",
        help="annotate functions with at least PCT%% of retirements (default 1.0)",
    )
    p.add_argument(
        "--flamegraph", default=None, metavar="FILE",
        help="write collapsed stacks (flamegraph.pl / speedscope format)",
    )
    p.add_argument(
        "--flame-weight", choices=("counts", "cycles"), default="counts",
        help="flamegraph weight: retired counts (default) or attributed cycles",
    )
    p.add_argument(
        "--out", default=None, metavar="FILE",
        help="also save the profile as JSON (self-collection mode)",
    )
    return p


def _collect_profile(args):
    """Run the benchmarks under an active collector; returns it ended."""
    from repro.experiments.runner import collect_trace
    from repro.experiments.sweep import parse_configs
    from repro.timing.simulator import simulate

    config = parse_configs([args.config])[0]
    names = tuple(args.benchmarks or DEFAULT_BENCHMARKS)
    start_guest_profile(mode=args.mode, period=args.period)
    try:
        for name in names:
            trace = collect_trace(
                name, args.instructions + args.warmup, profile=args.input_profile
            )
            simulate(config, trace, warmup=args.warmup)
    finally:
        collector = end_guest_profile()
    return collector


def _program_for(name: str, input_profile: str):
    """The program image behind benchmark *name* (None when unknown)."""
    if name not in BENCHMARK_NAMES:
        return None
    from repro.workloads import get_workload

    return get_workload(name).build(profile=input_profile)


def _line_text(program, pc: int) -> str:
    """Disassembly for *pc*, or a placeholder outside the text segment."""
    if pc == SHORTFALL_PC:
        return "<end-of-run shortfall>"
    if program is None:
        return "?"
    index = (pc - program.text_base) // 4
    if 0 <= index < len(program.text):
        try:
            return disassemble(program.text[index], pc)
        except Exception:
            return f".word {program.text[index]:#010x}"
    return "?"


def _components_summary(parts, limit: int = 2) -> str:
    """Top cycle components of one per-line stack, e.g. ``mem 38% base 52%``."""
    total = sum(parts)
    if not total:
        return ""
    pairs = sorted(zip(COMPONENT_KEYS, parts), key=lambda kv: -kv[1])
    out = [f"{key} {v / total:.0%}" for key, v in pairs[:limit] if v]
    return " ".join(out)


def _function_rows(graph, prof):
    """Aggregate per-function retired/cycles rows, hottest first."""
    rows: dict[object, dict] = {}
    for pc, count in prof.counts.items():
        entry = graph.function_of(pc) if graph is not None else None
        rec = rows.setdefault(entry, {"retired": 0, "cycles": 0})
        rec["retired"] += count
    for pc, parts in prof.cycles.items():
        entry = graph.function_of(pc) if graph is not None else None
        rec = rows.setdefault(entry, {"retired": 0, "cycles": 0})
        rec["cycles"] += sum(parts)
    out = []
    for entry, rec in rows.items():
        name = "?" if entry is None or graph is None else graph.names[entry]
        out.append((name, entry, rec["retired"], rec["cycles"]))
    out.sort(key=lambda row: (-row[2], -row[3], row[0]))
    return out


def _render_benchmark(name, prof, program, top, annotate, annotate_min, mode):
    lines = []
    unit = "retirements" if mode == "exact" else "samples"
    total = sum(prof.counts.values()) or 1
    cpi = prof.cycles_total / prof.retired if prof.retired else 0.0
    lines.append(f"=== {name} ===")
    lines.append(
        f"retired {prof.retired}  profiled {sum(prof.counts.values())} {unit}"
        + (f"  cycles {prof.cycles_total}  CPI {cpi:.3f}" if prof.cycles_total else "")
    )
    graph = static_call_graph(program) if program is not None else None

    funcs = _function_rows(graph, prof)
    if funcs:
        lines.append("")
        lines.append(f"hot functions ({unit}):")
        lines.append(f"  {'function':<24} {'retired':>10} {'share':>7} {'cycles':>10} {'CPI':>6}")
        for fname, _entry, retired, cycles in funcs[:top]:
            fcpi = f"{cycles / retired:6.2f}" if retired and cycles else "     -"
            lines.append(
                f"  {fname:<24} {retired:>10} {retired / total:>6.1%} "
                f"{cycles:>10} {fcpi}"
            )

    hot = sorted(prof.counts.items(), key=lambda kv: (-kv[1], kv[0]))[:top]
    if hot:
        lines.append("")
        lines.append(f"hot lines (top {len(hot)}):")
        cum = 0
        for pc, count in hot:
            cum += count
            parts = prof.cycles.get(pc)
            lcpi = f"{sum(parts) / count:6.2f}" if parts and count else "     -"
            comp = _components_summary(parts) if parts else ""
            where = f"{pc:#010x}" if pc >= 0 else f"{pc:>10}"
            lines.append(
                f"  {where}  {count / total:>6.1%}  cum {cum / total:>6.1%}  "
                f"CPI {lcpi}  {_line_text(program, pc):<28} {comp}"
            )

    if annotate and graph is not None:
        threshold = annotate_min / 100.0
        for fname, entry, retired, _cycles in funcs:
            if entry is None or retired / total < threshold:
                continue
            lines.append("")
            lines.append(f"--- {fname} ({retired / total:.1%} of {unit}) ---")
            i = graph.entries.index(entry)
            stop = graph.entries[i + 1] if i + 1 < len(graph.entries) else graph.limit
            for pc in range(entry, stop, 4):
                count = prof.counts.get(pc, 0)
                parts = prof.cycles.get(pc)
                share = f"{count / total:>6.1%}" if count else "      "
                lcpi = f"{sum(parts) / count:5.2f}" if parts and count else "     "
                comp = _components_summary(parts) if parts else ""
                lines.append(
                    f"  {pc:#010x}  {share}  {lcpi}  "
                    f"{_line_text(program, pc):<28} {comp}"
                )
    return "\n".join(lines)


def _flame_counts(prof, weight: str) -> dict[int, int]:
    if weight == "cycles":
        return {pc: sum(parts) for pc, parts in prof.cycles.items() if sum(parts)}
    return dict(prof.counts)


def main(argv=None) -> int:
    args = _parser().parse_args(argv)
    for name in args.benchmarks or ():
        if name not in BENCHMARK_NAMES:
            print(
                f"unknown benchmark {name!r}; choose from {', '.join(BENCHMARK_NAMES)}",
                file=sys.stderr,
            )
            return 2

    if args.profile_in:
        try:
            collector = load_profile(args.profile_in)
        except (OSError, ValueError) as exc:
            print(f"cannot load {args.profile_in}: {exc}", file=sys.stderr)
            return 2
    else:
        collector = _collect_profile(args)

    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        write_profile(out, collector)
        print(f"profile saved to {out}", file=sys.stderr)

    wanted = set(args.benchmarks) if args.benchmarks and args.profile_in else None
    names = [
        n for n in sorted(collector.benchmarks)
        if wanted is None or n in wanted
    ]
    if not names:
        print("profile contains no benchmarks to report", file=sys.stderr)
        return 1

    programs = {n: _program_for(n, args.input_profile) for n in names}
    sections = [
        _render_benchmark(
            n, collector.benchmarks[n], programs[n],
            args.top, args.annotate, args.annotate_min, collector.mode,
        )
        for n in names
    ]
    print("\n\n".join(sections))

    from repro.emulator.blocks import telemetry

    jit = telemetry()
    if jit is not None:
        s = jit["stats"]
        print(
            "\ncompiler telemetry: "
            f"{s['blocks_compiled']} blocks compiled "
            f"({s['superblocks']} superblocks, {s['cache_binds']} cache binds), "
            f"{s['block_execs']} execs, side-exit rate {jit['side_exit_rate']:.1%}, "
            f"block-inst fraction {jit['block_inst_fraction']:.1%}"
        )

    if args.flamegraph:
        stacks: dict[str, int] = {}
        for n in names:
            program = programs[n]
            prof = collector.benchmarks[n]
            weights = _flame_counts(prof, args.flame_weight)
            if program is None:
                folded = {"?": sum(weights.values())} if weights else {}
            else:
                folded = collapsed_stacks(static_call_graph(program), weights)
            for key, count in folded.items():
                full = f"{n};{key}"
                stacks[full] = stacks.get(full, 0) + count
        out = Path(args.flamegraph)
        out.parent.mkdir(parents=True, exist_ok=True)
        written = write_collapsed_stacks(out, stacks)
        print(
            f"{written} collapsed stacks written to {out} "
            f"(weight: {args.flame_weight})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
