"""Live sweep progress: the ``repro-experiment sweep --live`` status line.

A :class:`SweepProgress` watches the supervised sweep's cell lifecycle
(the same ``on_event`` stream the journal consumes) and renders a
one-line status — cells done/pending/failed, throughput, ETA, and the
ages of the cells currently in flight so a straggler is visible while
it is still running, not only in the post-mortem trace.

On a TTY the line redraws in place (carriage return, no scrollback
spam); on a pipe it degrades to a periodic plain line.  Either way it
writes to *stream* (stderr by default) so sweep stdout stays
byte-comparable across kill-resume runs — the chaos invariant.
"""

from __future__ import annotations

import sys
import time


def _fmt_eta(seconds: float) -> str:
    if seconds < 0 or seconds != seconds or seconds == float("inf"):
        return "--:--"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"
    return f"{seconds // 60:02d}:{seconds % 60:02d}"


class SweepProgress:
    """Tracks and renders one sweep's live cell status."""

    def __init__(
        self,
        stream=None,
        interval: float = 0.5,
        clock=time.monotonic,
        force_tty: bool | None = None,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.clock = clock
        isatty = getattr(self.stream, "isatty", lambda: False)
        self.tty = bool(isatty()) if force_tty is None else force_tty
        self.total = 0
        self.done = 0
        self.failed = 0
        self.resumed = 0
        self.active: dict[str, tuple[str, float]] = {}  # key -> (label, started)
        self._t0 = self.clock()
        self._last_render = 0.0
        self._last_len = 0

    # ------------------------------------------------------------- updates

    def set_total(self, total: int) -> None:
        self.total = total
        self._render()

    def resume_hit(self, n: int = 1) -> None:
        self.resumed += n
        self.done += n
        self._render()

    def dispatch(self, key: str, label: str) -> None:
        self.active[key] = (label, self.clock())
        self._render()

    def retire(self, key: str, failed: bool = False) -> None:
        self.active.pop(key, None)
        if failed:
            self.failed += 1
        else:
            self.done += 1
        self._render(force=failed)

    # ------------------------------------------------------------ derived

    @property
    def elapsed(self) -> float:
        return self.clock() - self._t0

    @property
    def pending(self) -> int:
        return max(self.total - self.done - self.failed - len(self.active), 0)

    def cells_per_second(self) -> float:
        executed = self.done - self.resumed
        return executed / self.elapsed if self.elapsed > 0 else 0.0

    def eta_seconds(self) -> float:
        rate = self.cells_per_second()
        remaining = self.pending + len(self.active)
        return remaining / rate if rate > 0 else float("inf")

    # ----------------------------------------------------------- rendering

    def status_line(self) -> str:
        parts = [
            f"[sweep] {self.done}/{self.total} done",
            f"{self.pending} pending",
            f"{self.failed} failed",
            f"{self.cells_per_second():.2f} cells/s",
            f"ETA {_fmt_eta(self.eta_seconds())}",
        ]
        if self.resumed:
            parts.insert(1, f"{self.resumed} resumed")
        if self.active:
            now = self.clock()
            ages = sorted(
                ((label, now - started) for label, started in self.active.values()),
                key=lambda pair: -pair[1],
            )
            shown = ", ".join(f"{label} {age:.0f}s" for label, age in ages[:3])
            more = f" +{len(ages) - 3}" if len(ages) > 3 else ""
            parts.append(f"active: {shown}{more}")
        return " | ".join(parts)

    def _render(self, force: bool = False) -> None:
        now = self.clock()
        if not force and now - self._last_render < self.interval:
            return
        self._last_render = now
        line = self.status_line()
        if self.tty:
            pad = " " * max(self._last_len - len(line), 0)
            self.stream.write(f"\r{line}{pad}")
            self._last_len = len(line)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def close(self) -> None:
        """Final render plus the newline a TTY redraw line still needs."""
        self._last_render = 0.0
        self._render(force=True)
        if self.tty:
            self.stream.write("\n")
            self.stream.flush()


__all__ = ["SweepProgress"]
