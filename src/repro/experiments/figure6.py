"""Figure 6: early branch misprediction detection.

Regenerates the cumulative-detection curves (one per benchmark) and
the §5.3 aggregate statistics: the fraction of dynamic branches and of
mispredictions that are beq/bne, and the average detection fraction
after 1 and 8 bits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.characterization.branch_char import (
    BranchCharacterization,
    average_detected_fraction,
    characterize_branches,
)
from repro.experiments.report import render_series, render_table
from repro.experiments.runner import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP, collect_trace
from repro.workloads import BENCHMARK_NAMES

#: Cumulative bit positions plotted (Figure 6's x axis).
DEFAULT_BITS: tuple[int, ...] = (1, 2, 4, 8, 12, 16, 20, 24, 28, 31, 32)


@dataclass
class Figure6Result:
    curves: dict[str, BranchCharacterization]
    bits: tuple[int, ...]

    def rows(self):
        return [
            (name, b, char.detected_fraction(b))
            for name, char in self.curves.items()
            for b in self.bits
        ]

    @property
    def mean_detected_at_8(self) -> float:
        """The paper's headline: average fraction of mispredictions
        detectable after examining 8 bits."""
        return average_detected_fraction(list(self.curves.values()), 8)

    @property
    def mean_detected_at_1(self) -> float:
        """Paper: 28% of mispredictions detectable from bit 0 alone."""
        return average_detected_fraction(list(self.curves.values()), 1)

    @property
    def mean_eq_branch_fraction(self) -> float:
        """Paper §5.3: beq/bne are 61% of dynamic branches on average."""
        vals = [c.eq_type_branch_fraction for c in self.curves.values() if c.branches]
        return sum(vals) / len(vals) if vals else 0.0

    @property
    def mean_eq_mispredict_fraction(self) -> float:
        """Paper §5.3: beq/bne take 48% of mispredictions on average."""
        vals = [c.eq_type_mispredict_fraction for c in self.curves.values() if c.mispredictions]
        return sum(vals) / len(vals) if vals else 0.0

    def render(self) -> str:
        parts = ["Figure 6 — % of mispredictions detected vs. bits used (cumulative from bit 0)"]
        for name, char in self.curves.items():
            parts.append(
                render_series(
                    f"{name:8s} (acc {char.accuracy:.1%}, {char.mispredictions} mp)",
                    [(b, char.detected_fraction(b)) for b in self.bits],
                    fmt="{:.2f}",
                )
            )
        parts.append(
            render_table(
                ["aggregate", "value"],
                [
                    ("mean detected @1 bit", f"{self.mean_detected_at_1:.1%}"),
                    ("mean detected @8 bits", f"{self.mean_detected_at_8:.1%}"),
                    ("beq/bne share of branches", f"{self.mean_eq_branch_fraction:.1%}"),
                    ("beq/bne share of mispredicts", f"{self.mean_eq_mispredict_fraction:.1%}"),
                ],
            )
        )
        return "\n".join(parts)

    def render_chart(self) -> str:
        """Figure 6 as a character-grid line plot (one series per
        benchmark, detection fraction vs. bits examined)."""
        from repro.experiments.ascii_plot import line_plot

        series = {
            name: [(b, char.detected_fraction(b)) for b in self.bits]
            for name, char in self.curves.items()
            if char.mispredictions
        }
        return "Figure 6 chart — fraction of mispredictions detected\n" + line_plot(
            series, x_label="bits examined (cumulative from bit 0)"
        )


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    instructions: int = DEFAULT_INSTRUCTIONS,
    bits: tuple[int, ...] = DEFAULT_BITS,
    warmup: int = DEFAULT_WARMUP,
    profile: str = "ref",
) -> Figure6Result:
    """Regenerate Figure 6."""
    curves = {}
    for name in benchmarks:
        trace = collect_trace(name, instructions + warmup, profile=profile)
        curves[name] = characterize_branches(trace, benchmark=name, warmup=warmup)
    return Figure6Result(curves=curves, bits=bits)
