"""Parallel sweep execution: fan work out to worker processes.

Trace collection and timing simulation are pure functions of their
inputs, so a sweep's (benchmark × configuration) grid is embarrassingly
parallel.  This module fans cells out over the supervised worker pool
of :mod:`repro.experiments.supervisor` (the CLI's ``--jobs N``) and
merges the results with the commutative
:meth:`repro.timing.stats.SimStats.merge`, so parallel totals are
bit-identical to a sequential run regardless of completion order.

Design constraints honoured here:

* **Explicit state inheritance** — the runner's wall-clock timeout and
  per-benchmark budget overrides, and the trace cache's configuration,
  live in module globals that a ``spawn``-ed worker would silently
  lose.  :func:`repro.experiments.supervisor.apply_worker_state`
  re-applies all of them in every worker (and every *respawned*
  worker), so a ``--timeout 60 --jobs 8`` run enforces the same budget
  in all eight processes.
* **Failure isolation** — a crashing workload inside a worker becomes
  the same :class:`FailureRecord` a sequential ``--keep-going`` run
  would produce; one bad benchmark never takes down the pool.  A
  worker that *dies* (segfault, OOM kill) surfaces the same way — the
  supervisor reaps it and reports a ``WorkerCrash`` record instead of
  hanging the sweep, which the bare ``multiprocessing.Pool.map`` this
  module used to wrap would do.
* **Interruption safety** — Ctrl-C used to be able to orphan or hang
  the pool: the terminal delivers SIGINT to the whole process group,
  workers died mid-task, and ``map`` blocked forever on results that
  would never arrive.  Supervised workers ignore SIGINT; the parent
  turns it into a drain that terminates every worker before raising
  ``KeyboardInterrupt``.
* **Cheap transport** — traces travel between processes as the packed
  numpy arrays of :mod:`repro.emulator.tracefile` (a few MB), not as
  pickled ``TraceRecord`` lists (hundreds of MB), and are re-inflated
  once in the parent via :func:`repro.experiments.runner.preload_trace`.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass

from repro.emulator.tracefile import pack_trace, unpack_trace
from repro.experiments import runner, trace_cache
from repro.experiments.runner import FailureRecord
from repro.experiments.supervisor import (
    PoolTask,
    SupervisedPool,
    SupervisorPolicy,
    apply_worker_state,
    current_worker_state,
)
from repro.harness.errors import TraceCorruption
from repro.timing.stats import SimStats

#: ``spawn`` everywhere: identical worker lifecycle on every platform,
#: and no accidental fork-time inheritance masking a missing initarg.
_MP_CONTEXT = "spawn"

#: Backwards-compatible alias: the worker-state re-application now
#: lives with the supervisor (which also needs it at respawn time).
_worker_init = apply_worker_state

#: These entry points keep the pre-supervisor behaviour: no automatic
#: cell retries (``run_sweep`` is the retrying, journaled orchestrator).
_PASSTHROUGH_POLICY = SupervisorPolicy(max_cell_retries=0, backoff=0.0)


def default_jobs() -> int:
    """A sane worker count: physical parallelism, small floor."""
    return max(1, multiprocessing.cpu_count() - 1)


@dataclass(frozen=True)
class CollectResult:
    """One benchmark's collection outcome, shipped parent-ward."""

    name: str
    max_steps: int                    # budget actually used (post-degradation)
    arrays: dict | None               # packed trace, None on failure
    failure: FailureRecord | None
    degraded_steps: int | None
    seconds: float
    cache_hits: int
    cache_misses: int


def _collect_worker(task) -> CollectResult:
    name, max_steps, iters, skip, profile = task
    trace_cache.reset_stats()
    t0 = time.perf_counter()
    trace, record = runner.collect_trace_resilient(
        name, max_steps, iters=iters, skip=skip, profile=profile
    )
    seconds = time.perf_counter() - t0
    stats = trace_cache.stats()
    degraded = record.degraded_steps if record is not None else None
    used = degraded if degraded is not None else max_steps
    return CollectResult(
        name=name,
        max_steps=used,
        arrays=pack_trace(trace) if trace is not None else None,
        failure=record,
        degraded_steps=degraded,
        seconds=seconds,
        cache_hits=stats["hits"],
        cache_misses=stats["misses"],
    )


def collect_parallel(
    names,
    max_steps: int,
    jobs: int,
    iters: int | None = None,
    skip: int | None = None,
    profile: str = "ref",
):
    """Collect traces for *names* across *jobs* worker processes.

    Every successful trace is preloaded into this process's runner
    cache, so the experiments that follow never re-emulate; worker
    cache hit/miss counts fold into the parent's counters (and thus the
    run manifest).  Returns ``(surviving, failures, degraded)`` with
    the same semantics as the sequential ``--keep-going`` pre-pass.
    """
    from repro.obs.session import active_session

    names = list(names)
    session = active_session()
    tasks = [
        PoolTask(
            id=name,
            fn="repro.experiments.parallel:_collect_worker",
            payload=(name, max_steps, iters, skip, profile),
            label=f"collect/{name}",
        )
        for name in names
    ]

    # Orchestrator-level heartbeats: collection happens inside workers
    # (no session there), so without this hook a --jobs run was silent
    # until the pool drained — --heartbeat now reports cells done and
    # in flight for parallel runs too.
    done_count = 0
    failed_count = 0
    inflight: set[str] = set()

    def on_event(kind, task, info) -> None:
        nonlocal done_count, failed_count
        if kind == "dispatch":
            inflight.add(task.id)
        elif kind == "done":
            inflight.discard(task.id)
            done_count += 1
        elif kind == "failed":
            inflight.discard(task.id)
            failed_count += 1
        else:
            return
        if kind != "dispatch":
            session.note_sweep_progress(
                done=done_count, total=len(tasks),
                failed=failed_count, in_flight=len(inflight),
            )

    with SupervisedPool(
        jobs, policy=_PASSTHROUGH_POLICY, init_state=current_worker_state()
    ) as pool:
        outcomes = pool.run(tasks, on_event=on_event if session is not None else None)

    surviving: list[str] = []
    failures: list[FailureRecord] = []
    degraded: list[FailureRecord] = []
    for name in names:
        outcome = outcomes.get(name)
        if outcome is None:  # pragma: no cover - drain interrupts before here
            continue
        if not outcome.ok:
            failures.append(
                FailureRecord(
                    benchmark=name, stage="collect",
                    error=outcome.error, message=outcome.message,
                )
            )
            continue
        result = outcome.value
        trace_cache.add_stats(result.cache_hits, result.cache_misses)
        if result.arrays is None:
            failures.append(result.failure)
            continue
        try:
            records = unpack_trace(result.arrays)
        except TraceCorruption as exc:  # pragma: no cover - transport bug guard
            failures.append(
                FailureRecord(
                    benchmark=result.name, stage="collect",
                    error=type(exc).__name__, message=str(exc),
                )
            )
            continue
        if result.degraded_steps is not None:
            runner.set_budget_override(result.name, result.degraded_steps)
            degraded.append(result.failure)
        runner.preload_trace(
            result.name, result.max_steps, iters, skip, profile, records
        )
        if session is not None:
            if result.cache_hits and not result.cache_misses:
                session.note_cache_hit(result.name, len(records), result.seconds)
            else:
                # Workers re-apply the parent's dispatch override
                # (apply_worker_state), so the parent's default names
                # the tier that actually emulated the trace.
                from repro.emulator.machine import default_dispatch

                session.note_collection(
                    result.name, len(records), result.seconds,
                    dispatch_mode=default_dispatch(),
                )
        surviving.append(result.name)
    return surviving, failures, degraded


def _simulate_cell(task):
    """One (benchmark, config) timing run inside a worker."""
    name, config, max_steps, warmup, iters, skip, profile = task
    from repro.timing.simulator import simulate

    try:
        trace = runner.collect_trace(name, max_steps + warmup, iters=iters, skip=skip, profile=profile)
        stats = simulate(config, trace, warmup=warmup)
    except Exception as exc:
        return name, config.name, None, FailureRecord(
            benchmark=name, stage=f"simulate[{config.name}]",
            error=type(exc).__name__, message=str(exc),
        )
    return name, config.name, stats, None


def run_cells(
    names,
    configs,
    max_steps: int,
    warmup: int,
    jobs: int,
    iters: int | None = None,
    skip: int | None = None,
    profile: str = "ref",
    keep_going: bool = False,
):
    """Fan a (benchmark × config) grid out to *jobs* workers.

    Returns ``(grid, failures)`` where ``grid[name][config_name]`` is
    the cell's :class:`SimStats`.  Without *keep_going* the first cell
    failure raises.  Per-config totals merged from the grid are
    bit-identical to a sequential sweep because ``SimStats.merge`` is
    commutative and associative.

    For journaled, resumable, retrying sweeps use
    :func:`repro.experiments.supervisor.run_sweep` instead; this entry
    point keeps the simple fail-fast semantics.
    """
    tasks = [
        PoolTask(
            id=f"{name}|{config.name}",
            fn="repro.experiments.parallel:_simulate_cell",
            payload=(name, config, max_steps, warmup, iters, skip, profile),
            label=f"{name}/{config.name}",
        )
        for name in names
        for config in configs
    ]
    with SupervisedPool(
        jobs, policy=_PASSTHROUGH_POLICY, init_state=current_worker_state()
    ) as pool:
        outcomes = pool.run(tasks)

    grid: dict[str, dict[str, SimStats]] = {}
    failures: list[FailureRecord] = []
    for task in tasks:
        outcome = outcomes.get(task.id)
        if outcome is None:  # pragma: no cover - drain interrupts before here
            continue
        if outcome.ok:
            name, config_name, stats, failure = outcome.value
        else:
            name, config, *_ = task.payload
            name, config_name, stats = name, config.name, None
            failure = FailureRecord(
                benchmark=name, stage=f"simulate[{config_name}]",
                error=outcome.error, message=outcome.message,
            )
        if failure is not None:
            if not keep_going:
                raise RuntimeError(failure.describe())
            failures.append(failure)
            continue
        grid.setdefault(name, {})[config_name] = stats
    return grid, failures


def merge_by_config(grid) -> dict[str, SimStats]:
    """Collapse a ``run_cells`` grid into per-config suite totals."""
    totals: dict[str, list[SimStats]] = {}
    for per_config in grid.values():
        for config_name, stats in per_config.items():
            totals.setdefault(config_name, []).append(stats)
    return {
        config_name: SimStats.merge_all(runs)
        for config_name, runs in totals.items()
    }


__all__ = [
    "CollectResult",
    "collect_parallel",
    "default_jobs",
    "merge_by_config",
    "run_cells",
]
