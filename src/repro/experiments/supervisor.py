"""Supervised, resumable sweep orchestration.

:mod:`repro.experiments.parallel` made sweeps *parallel*; this module
makes them *survivable*.  It replaces the bare ``multiprocessing.Pool``
with a supervised worker pool and layers a crash-safe journal
(:mod:`repro.experiments.journal`) on top, so a sweep tolerates:

* **dead workers** — each worker runs over its own pipe with a
  heartbeat; a SIGKILLed or hung worker is detected, its cell retried
  on a respawned worker (with the parent's runner/cache/timing state
  re-applied), and the respawn counted in ``sweep.supervisor.*``;
* **poison cells** — a cell that keeps failing is retried with
  exponential backoff plus seeded jitter and, past the retry budget,
  quarantined as a :class:`~repro.experiments.runner.FailureRecord`
  instead of hanging the sweep;
* **corrupt transport** — every worker result travels as a
  SHA-256-checksummed pickle; a corrupted payload is rejected and the
  cell retried, never silently merged;
* **orchestrator death** — :func:`run_sweep` journals every cell
  transition atomically, so ``--resume <journal>`` replays completed
  cells from the result store and re-dispatches only the remainder,
  with merged stats bit-identical to an uninterrupted run;
* **Ctrl-C / SIGTERM** — a drain flag stops dispatch, terminates the
  workers, flushes the journal, and re-raises, so an interrupted
  campaign is one ``--resume`` away from continuing.

Chaos testing drives all of it: a
:class:`~repro.harness.faults.ProcessFaultPlan` (``$REPRO_CHAOS``)
injects seeded worker kills/stalls/corruptions, and
``$REPRO_CHAOS_ORCH_KILL`` SIGKILLs the orchestrator itself after N
completed cells — ``scripts/chaos_sweep.py`` asserts the byte-identical
recovery invariant end to end.
"""

from __future__ import annotations

import hashlib
import importlib
import os
import pickle
import random
import signal
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from multiprocessing import connection, get_context
from multiprocessing.sharedctypes import RawValue
from pathlib import Path

from repro.experiments import trace_cache
from repro.obs import guestprof, tracing
from repro.experiments.journal import (
    DONE,
    FAILED,
    PENDING,
    QUARANTINED,
    CellRecord,
    SweepJournal,
    cell_key,
)
from repro.harness.faults import ProcessFaultPlan
from repro.timing.stats import SimStats

#: Same ``spawn`` discipline as :mod:`repro.experiments.parallel`.
_MP_CONTEXT = "spawn"

#: Orchestrator-kill chaos knob: SIGKILL this process after N cells
#: complete (used by ``scripts/chaos_sweep.py`` to test kill-resume).
ORCH_KILL_ENV_VAR = "REPRO_CHAOS_ORCH_KILL"

#: Supervisor poll tick (seconds) while waiting on busy workers.
_TICK = 0.05


# --------------------------------------------------------------------------
# Policy and accounting
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SupervisorPolicy:
    """Supervision knobs for one sweep.

    ``max_cell_retries`` is the number of *extra* attempts a cell gets
    beyond its first; past that it is quarantined.  Retry *n* is
    delayed ``backoff * 2**(n-1)`` seconds plus seeded jitter (a
    fraction of the delay), so a transiently sick host is not hammered
    and simultaneous retries decorrelate deterministically.
    """

    max_cell_retries: int = 2
    backoff: float = 0.25
    backoff_jitter: float = 0.25        # fraction of the delay, seeded
    cell_timeout: float | None = None   # wall seconds before a stalled cell is killed
    heartbeat_interval: float = 0.5     # worker heartbeat period
    heartbeat_timeout: float | None = 60.0  # stale-heartbeat kill threshold
    seed: int = 2003
    #: A done cell is flagged as a straggler when its wall time exceeds
    #: this multiple of the sweep's median cell wall time (<= 0: off).
    straggler_factor: float = 3.0

    def retry_delay(self, task_id: str, attempt: int) -> float:
        """Backoff before re-dispatching *task_id* after failed *attempt*."""
        base = self.backoff * (2 ** max(attempt - 1, 0))
        if base <= 0:
            return 0.0
        jitter = random.Random(f"{self.seed}|{task_id}|{attempt}|backoff").uniform(
            0.0, self.backoff_jitter * base
        )
        return base + jitter


@dataclass
class SupervisorReport:
    """Counters describing how much supervision one sweep needed."""

    cells_total: int = 0
    cells_executed: int = 0
    resume_hits: int = 0
    respawns: int = 0
    retries: int = 0
    quarantined: int = 0
    corrupt_results: int = 0
    drained: bool = False
    #: Done cells whose wall time exceeded ``straggler_factor`` × the
    #: sweep median (each: cell, wall_seconds, median_seconds, factor).
    stragglers: list = field(default_factory=list)
    #: Cells that needed more than one attempt (each: cell, attempts).
    retry_storms: list = field(default_factory=list)

    @property
    def resume_hit_rate(self) -> float:
        return self.resume_hits / self.cells_total if self.cells_total else 0.0

    def to_dict(self) -> dict:
        return {
            "cells_total": self.cells_total,
            "cells_executed": self.cells_executed,
            "resume_hits": self.resume_hits,
            "resume_hit_rate": self.resume_hit_rate,
            "respawns": self.respawns,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "corrupt_results": self.corrupt_results,
            "drained": self.drained,
            "stragglers": list(self.stragglers),
            "retry_storms": list(self.retry_storms),
        }

    def publish(self, registry) -> None:
        """Accumulate into a metrics registry under ``sweep.supervisor.*``."""
        counters = (
            ("cells_total", "sweep cells in the grid"),
            ("cells_executed", "cells executed this run (not resumed)"),
            ("resume_hits", "cells replayed from a resumed journal"),
            ("respawns", "workers respawned after death or stall"),
            ("retries", "cell retry dispatches"),
            ("quarantined", "poison cells quarantined after exhausting retries"),
            ("corrupt_results", "worker results rejected by checksum"),
        )
        for name, help in counters:
            registry.counter(f"sweep.supervisor.{name}", help=help).inc(getattr(self, name))
        registry.gauge(
            "sweep.supervisor.resume_hit_rate", help="fraction of cells served by --resume"
        ).set(self.resume_hit_rate)

    def render(self) -> str:
        extras = ""
        if self.stragglers:
            extras += f", {len(self.stragglers)} straggler(s)"
        if self.retry_storms:
            extras += f", {len(self.retry_storms)} retry-storm cell(s)"
        return (
            f"supervisor: {self.cells_executed}/{self.cells_total} cells executed, "
            f"{self.resume_hits} resumed ({self.resume_hit_rate:.0%} hit rate), "
            f"{self.respawns} respawns, {self.retries} retries, "
            f"{self.quarantined} quarantined, {self.corrupt_results} corrupt results"
            + extras
            + (" [drained on signal]" if self.drained else "")
        )


#: Last completed sweep's report, exported into bench manifests the way
#: :func:`repro.experiments.trace_cache.stats` is.
_last_report: SupervisorReport | None = None


def last_report() -> SupervisorReport | None:
    return _last_report


def supervisor_stats() -> dict | None:
    """Manifest form of the last sweep's supervision counters."""
    return _last_report.to_dict() if _last_report is not None else None


def reset_stats() -> None:
    global _last_report
    _last_report = None


def detect_stragglers(
    cell_wall: dict[str, float], labels: dict[str, str], factor: float
) -> list[dict]:
    """Flag cells whose wall time exceeded *factor* × the sweep median.

    Returns manifest-ready records (worst first).  Needs at least three
    timed cells — a median of one or two walls flags nothing but noise.
    """
    if factor is None or factor <= 0 or len(cell_wall) < 3:
        return []
    walls = sorted(cell_wall.values())
    median = walls[len(walls) // 2]
    if median <= 0:
        return []
    out = [
        {
            "cell": labels.get(key, key),
            "wall_seconds": round(wall, 3),
            "median_seconds": round(median, 3),
            "factor": round(wall / median, 2),
        }
        for key, wall in cell_wall.items()
        if wall > factor * median
    ]
    out.sort(key=lambda rec: -rec["factor"])
    return out


def _tspan(tracer, name: str, category: str = "span", **args):
    """A tracer span, or a no-op context when tracing is off."""
    if tracer is None:
        return nullcontext()
    return tracer.span(name, category=category, **args)


# --------------------------------------------------------------------------
# Worker process
# --------------------------------------------------------------------------

def current_worker_state() -> tuple:
    """Snapshot the parent module state every worker must re-apply.

    The same tuple is used at first spawn and at every respawn, so a
    replacement worker is indistinguishable from the one it replaces.
    """
    from repro.emulator.machine import dispatch_mode_override
    from repro.experiments import runner
    from repro.timing.fastpath import timing_mode_override

    enabled = trace_cache.enabled()
    gp = guestprof.active_collector()
    return (
        runner.wall_timeout(),
        dict(runner._budget_overrides),
        str(trace_cache.cache_dir()) if enabled else None,
        enabled,
        timing_mode_override(),
        dispatch_mode_override(),
        (gp.mode, gp.period) if gp is not None else None,
    )


def apply_worker_state(
    wall_timeout,
    budget_overrides,
    cache_dir,
    cache_enabled,
    timing_mode=None,
    dispatch_mode=None,
    guest_profile=None,
) -> None:
    """Re-apply parent-process module state inside a fresh worker.

    Everything the runner keeps in globals must be passed explicitly: a
    spawned interpreter starts from ``import repro``, not from a copy
    of the parent's memory.
    """
    from repro.experiments import runner

    runner.set_wall_timeout(wall_timeout)
    for name, cap in budget_overrides.items():
        runner.set_budget_override(name, cap)
    trace_cache.configure(cache_dir, cache_enabled)
    if timing_mode is not None:
        from repro.timing.fastpath import set_timing_mode

        set_timing_mode(timing_mode)
    if dispatch_mode is not None:
        from repro.emulator.machine import set_dispatch_mode

        set_dispatch_mode(dispatch_mode)
    if guest_profile is not None:
        # (mode, period) snapshot of the parent's collector: the worker
        # runs its own, drained into every reply's aux for the
        # orchestrator to merge (commutative per-PC sums).
        guestprof.start_guest_profile(mode=guest_profile[0], period=guest_profile[1])


def _drain_aux(tracer):
    """Build one reply's aux payload: tracer spans plus the worker's
    drained guest profile (shipped even when tracing is off)."""
    aux = tracer.drain() if tracer is not None else None
    gp = guestprof.active_collector()
    if gp is not None and gp.benchmarks:
        aux = dict(aux) if isinstance(aux, dict) else {}
        aux["guestprof"] = gp.drain()
    return aux


def _resolve(fn_name: str):
    """Import a ``module:function`` task executor inside a worker."""
    module, _, attr = fn_name.partition(":")
    return getattr(importlib.import_module(module), attr)


def _heartbeat_loop(hb, interval: float) -> None:
    while True:
        hb.value = time.monotonic()
        time.sleep(interval)


def _worker_main(
    conn, hb, init_state, fault_plan, heartbeat_interval, tracing_on=False
) -> None:
    """Worker loop: receive a task, execute it, send a checksummed reply.

    The parent owns interruption (it terminates workers on drain), so
    SIGINT — which a terminal delivers to the whole process group — is
    ignored here; a worker must never die mid-``send`` with a torn
    message because the user pressed Ctrl-C.

    With *tracing_on* the worker runs its own process-global tracer:
    each task adopts the span context the orchestrator sent, executes
    under a ``worker.execute`` span (instrumentation points deeper in
    the stack — trace-cache hits, collection — nest under it), and the
    finished spans plus phase-profiler samples ride back in the reply's
    ``aux`` slot for the orchestrator to merge.  A SIGKILLed worker
    simply never ships its spans — the orchestrator's attempt span
    records the loss.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    apply_worker_state(*init_state)
    tracer = tracing.start_tracing(process=tracing.worker_process_label()) if tracing_on else None
    threading.Thread(
        target=_heartbeat_loop, args=(hb, heartbeat_interval), daemon=True
    ).start()
    executors: dict[str, object] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg[0] == "exit":
            return
        _, task_id, attempt, fn_name, payload, ctx = msg
        fault = fault_plan.decide(task_id, attempt) if fault_plan is not None else None
        if fault == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if fault == "stall":
            time.sleep(fault_plan.stall_seconds)
        task_span = None
        if tracer is not None:
            tracer.adopt(ctx[:2] if ctx is not None else None)
            label = ctx[2] if ctx is not None and len(ctx) > 2 else task_id
            task_span = tracer.begin(
                label, category="worker.execute", attempt=attempt, pid=os.getpid()
            )
            tracer.default_parent = task_span.span_id
        try:
            fn = executors.get(fn_name)
            if fn is None:
                fn = executors[fn_name] = _resolve(fn_name)
            value = fn(payload)
        except Exception as exc:
            if task_span is not None:
                tracer.finish(task_span, status=tracing.ERROR, error=type(exc).__name__)
            aux = _drain_aux(tracer)
            reply = ("error", task_id, attempt, type(exc).__name__, str(exc), aux)
        else:
            if task_span is not None:
                tracer.finish(task_span)
            aux = _drain_aux(tracer)
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            digest = hashlib.sha256(blob).hexdigest()
            if fault == "corrupt":
                offset, mask = fault_plan.corrupt_byte(task_id, attempt, len(blob))
                corrupted = bytearray(blob)
                corrupted[offset] ^= mask
                blob = bytes(corrupted)
            reply = ("ok", task_id, attempt, blob, digest, aux)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            # The parent is gone (e.g. the orchestrator itself was
            # SIGKILLed under chaos); exit quietly — the journal makes
            # this work recoverable, a traceback would just be noise.
            return


# --------------------------------------------------------------------------
# The supervised pool
# --------------------------------------------------------------------------

@dataclass
class PoolTask:
    """One unit of work for :class:`SupervisedPool`."""

    id: str
    fn: str                 # "module:function" resolved inside the worker
    payload: tuple
    max_retries: int = 0
    #: Human-readable span name ("li/bitslice4"); falls back to ``id``.
    label: str = ""


@dataclass
class TaskOutcome:
    """Final fate of one task after supervision."""

    task_id: str
    value: object = None
    error: str | None = None
    message: str = ""
    attempts: int = 0
    quarantined: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


class _TaskState:
    __slots__ = ("task", "attempts", "ready_at")

    def __init__(self, task: PoolTask) -> None:
        self.task = task
        self.attempts = 0
        self.ready_at = 0.0


class _Worker:
    __slots__ = ("proc", "conn", "hb", "state", "dispatched_at", "lane", "span")

    def __init__(self, proc, conn, hb, lane: int = 0) -> None:
        self.proc = proc
        self.conn = conn
        self.hb = hb
        self.state: _TaskState | None = None
        self.dispatched_at = 0.0
        #: Stable per-worker render lane for the orchestrator's attempt
        #: spans — one Perfetto track per worker slot, respawns included.
        self.lane = lane
        #: In-flight attempt span (tracing on only).
        self.span = None


class SupervisedPool:
    """A worker pool that survives its workers.

    Use as a context manager — ``__exit__`` force-terminates every
    worker, so an exception (or Ctrl-C) anywhere in the sweep can never
    leak orphaned processes::

        with SupervisedPool(jobs, init_state=current_worker_state()) as pool:
            outcomes = pool.run(tasks, on_event=...)

    ``on_event(kind, task, info)`` observes the lifecycle —
    ``dispatch`` (info: attempt), ``done`` (info: value), ``retry``
    (info: message), ``failed`` (info: (error, message, quarantined)),
    ``respawn`` (info: reason), ``corrupt`` (info: message), ``drain``
    — which is how :func:`run_sweep` keeps its journal exact.
    """

    def __init__(
        self,
        jobs: int,
        policy: SupervisorPolicy | None = None,
        init_state: tuple | None = None,
        fault_plan: ProcessFaultPlan | None = None,
    ) -> None:
        self.jobs = max(1, jobs)
        self.policy = policy or SupervisorPolicy()
        self.init_state = init_state if init_state is not None else current_worker_state()
        self.fault_plan = fault_plan
        self.tracer = tracing.active_tracer()
        self._ctx = get_context(_MP_CONTEXT)
        self._workers: list[_Worker] = []
        self._next_lane = 0
        self._drain = False
        self._old_handlers: list[tuple[int, object]] = []

    # ---------------------------------------------------------- lifecycle

    def __enter__(self) -> "SupervisedPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Terminate and reap every worker (idempotent, never raises)."""
        for worker in self._workers:
            try:
                worker.proc.terminate()
            except Exception:
                pass
        for worker in self._workers:
            try:
                worker.proc.join(timeout=5.0)
                if worker.proc.is_alive():
                    worker.proc.kill()
                    worker.proc.join(timeout=5.0)
            except Exception:
                pass
            try:
                worker.conn.close()
            except Exception:
                pass
        self._workers.clear()

    def _spawn_worker(self, lane: int | None = None) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        hb = RawValue("d", 0.0)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, hb, self.init_state, self.fault_plan,
                  self.policy.heartbeat_interval, self.tracer is not None),
            daemon=True,
        )
        proc.start()
        child_conn.close()  # parent must not hold the child end: EOF detection
        if lane is None:
            lane = self._next_lane
            self._next_lane += 1
        if self.tracer is not None:
            self.tracer.mark("worker.spawn", category="worker", lane=lane, pid=proc.pid)
        return _Worker(proc, parent_conn, hb, lane=lane)

    # ------------------------------------------------------------ signals

    def _signal_drain(self, signum, frame) -> None:
        self._drain = True

    def _install_signals(self) -> None:
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._old_handlers.append((signum, signal.signal(signum, self._signal_drain)))
            except ValueError:  # pragma: no cover - not the main thread
                pass

    def _restore_signals(self) -> None:
        for signum, handler in self._old_handlers:
            try:
                signal.signal(signum, handler)
            except ValueError:  # pragma: no cover
                pass
        self._old_handlers.clear()

    # ---------------------------------------------------------------- run

    def run(self, tasks, on_event=None) -> dict[str, TaskOutcome]:
        """Supervise *tasks* to completion; returns ``{id: outcome}``.

        Raises:
            KeyboardInterrupt: a SIGINT/SIGTERM arrived; dispatch
                stopped, workers were terminated and ``on_event`` saw a
                ``drain`` — the caller flushes its journal and exits.
        """
        emit = on_event or (lambda kind, task, info: None)
        tasks = list(tasks)
        queue: list[_TaskState] = [_TaskState(t) for t in tasks]
        waiting: list[_TaskState] = []
        outcomes: dict[str, TaskOutcome] = {}
        self._install_signals()
        try:
            want = min(self.jobs, len(tasks)) or 1
            while len(self._workers) < want:
                self._workers.append(self._spawn_worker())
            while True:
                now = time.monotonic()
                for state in [s for s in waiting if s.ready_at <= now]:
                    waiting.remove(state)
                    queue.append(state)
                if self._drain:
                    break
                for worker in self._workers:
                    if worker.state is None and queue:
                        self._dispatch(worker, queue.pop(0), outcomes, waiting, emit)
                busy = [w for w in self._workers if w.state is not None]
                if not busy:
                    if waiting:
                        next_ready = min(s.ready_at for s in waiting)
                        time.sleep(min(max(next_ready - now, 0.0), _TICK) or 0.001)
                        continue
                    if queue:  # pragma: no cover - dispatch always drains it
                        continue
                    break
                ready = connection.wait([w.conn for w in busy], timeout=_TICK)
                for conn in ready:
                    worker = next(w for w in self._workers if w.conn is conn)
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        self._worker_lost(worker, "worker process died", outcomes, waiting, emit)
                        continue
                    self._on_message(worker, msg, outcomes, waiting, emit)
                self._check_liveness(outcomes, waiting, emit)
            if self._drain:
                emit("drain", None, None)
                self.shutdown()
                raise KeyboardInterrupt("sweep drained on SIGINT/SIGTERM")
            return outcomes
        finally:
            self._restore_signals()

    # ----------------------------------------------------------- plumbing

    def _dispatch(self, worker: _Worker, state: _TaskState, outcomes, waiting, emit) -> None:
        state.attempts += 1
        worker.state = state
        worker.dispatched_at = time.monotonic()
        emit("dispatch", state.task, state.attempts)
        ctx = None
        if self.tracer is not None:
            label = state.task.label or state.task.id
            worker.span = self.tracer.begin(
                label, category="cell.attempt", lane=worker.lane,
                attempt=state.attempts, worker_lane=worker.lane,
            )
            ctx = (*self.tracer.context(worker.span), label)
        try:
            worker.conn.send(
                ("task", state.task.id, state.attempts, state.task.fn,
                 state.task.payload, ctx)
            )
        except (BrokenPipeError, OSError):  # pragma: no cover - spawn-time race
            self._worker_lost(worker, "worker pipe broke at dispatch",
                              outcomes, waiting, emit)

    def _on_message(self, worker, msg, outcomes, waiting, emit) -> None:
        state = worker.state
        span = worker.span
        worker.state = None
        worker.span = None
        kind = msg[0]
        if state is None or msg[1] != state.task.id:  # pragma: no cover - protocol guard
            return
        aux = msg[5] if len(msg) > 5 else None
        if self.tracer is not None:
            self.tracer.ingest(aux)
        if isinstance(aux, dict) and aux.get("guestprof") is not None:
            gp = guestprof.active_collector()
            if gp is not None:
                gp.ingest(aux["guestprof"])
        if kind == "error":
            error, message = msg[3], msg[4]
            if self.tracer is not None and span is not None:
                self.tracer.finish(span, status=tracing.ERROR, error=error)
            self._register_failure(state, error, message, outcomes, waiting, emit)
            return
        blob, digest = msg[3], msg[4]
        if hashlib.sha256(blob).hexdigest() != digest:
            if self.tracer is not None and span is not None:
                self.tracer.finish(span, status=tracing.ERROR, error="ResultCorruption")
            emit("corrupt", state.task,
                 f"result payload failed checksum on attempt {state.attempts}")
            self._register_failure(
                state, "ResultCorruption",
                "worker result rejected by SHA-256 transport checksum",
                outcomes, waiting, emit,
            )
            return
        if self.tracer is not None and span is not None:
            self.tracer.finish(span)
        value = pickle.loads(blob)
        outcomes[state.task.id] = TaskOutcome(
            task_id=state.task.id, value=value, attempts=state.attempts
        )
        emit("done", state.task, value)

    def _check_liveness(self, outcomes, waiting, emit) -> None:
        now = time.monotonic()
        for worker in list(self._workers):
            if worker.state is None:
                continue
            if not worker.proc.is_alive():
                self._worker_lost(worker, "worker process died", outcomes, waiting, emit)
                continue
            age = now - worker.dispatched_at
            if self.policy.cell_timeout is not None and age > self.policy.cell_timeout:
                self._worker_lost(
                    worker,
                    f"cell exceeded its {self.policy.cell_timeout:g}s timeout (stalled worker)",
                    outcomes, waiting, emit, kill=True,
                )
                continue
            beat = worker.hb.value
            if (
                self.policy.heartbeat_timeout is not None
                and beat > 0.0
                and now - beat > self.policy.heartbeat_timeout
            ):
                self._worker_lost(
                    worker,
                    f"worker heartbeat silent for {now - beat:.1f}s",
                    outcomes, waiting, emit, kill=True,
                )

    def _worker_lost(self, worker, reason, outcomes, waiting, emit, kill=False) -> None:
        """A worker died or must die: reap it, respawn, retry its cell."""
        state = worker.state
        span = worker.span
        worker.state = None
        worker.span = None
        if self.tracer is not None:
            if span is not None:
                self.tracer.finish(span, status=tracing.ERROR, error="WorkerCrash",
                                   reason=reason)
            self.tracer.mark("worker.lost", category="worker", lane=worker.lane,
                             reason=reason)
        if kill:
            try:
                worker.proc.kill()
            except Exception:
                pass
        try:
            worker.proc.join(timeout=5.0)
        except Exception:
            pass
        try:
            worker.conn.close()
        except Exception:
            pass
        self._workers.remove(worker)
        if not self._drain:
            self._workers.append(self._spawn_worker(lane=worker.lane))
            emit("respawn", state.task if state else None, reason)
        if state is not None:
            self._register_failure(state, "WorkerCrash", reason, outcomes, waiting, emit)

    def _register_failure(self, state, error, message, outcomes, waiting, emit) -> None:
        task = state.task
        if state.attempts <= task.max_retries:
            delay = self.policy.retry_delay(task.id, state.attempts)
            state.ready_at = time.monotonic() + delay
            waiting.append(state)
            if self.tracer is not None:
                self.tracer.mark(
                    "cell.backoff", category="cell", attempt=state.attempts,
                    delay_seconds=round(delay, 3), error=error,
                )
            emit("retry", task, f"{error}: {message}")
            return
        quarantined = task.max_retries > 0
        outcomes[task.id] = TaskOutcome(
            task_id=task.id, error=error, message=message,
            attempts=state.attempts, quarantined=quarantined,
        )
        emit("failed", task, (error, message, quarantined))


# --------------------------------------------------------------------------
# The journal-aware sweep orchestrator
# --------------------------------------------------------------------------

def _execute_cell(payload) -> tuple[SimStats, object]:
    """One (benchmark × config) timing cell, inside a worker.

    Collection is *resilient* (one bounded retry at a degraded budget —
    the inner retry the supervisor's outer backoff retry composes
    with); the degradation record, if any, rides back so the parent can
    register the reduced budget and report the cell as degraded.

    An eighth payload element (a
    :class:`~repro.timing.sampling.SamplingPlan`) switches the cell to
    statistical sampling: the plan's deterministic schedule replaces
    the trace-collect/simulate pipeline, ``max_steps`` becomes the
    sampled instruction horizon, and the returned stats carry the
    ``sampling.*`` error-bar fields in ``extra``.
    """
    from repro.experiments import runner
    from repro.timing.simulator import simulate

    name, config, max_steps, warmup, iters, skip, profile, *rest = payload
    plan = rest[0] if rest else None
    tracer = tracing.active_tracer()
    if plan is not None:
        from repro.harness.watchdog import Watchdog
        from repro.timing.sampling import sample_benchmark

        wall = runner.wall_timeout()
        watchdog = Watchdog(max_seconds=wall, label=f"sample[{name}]") if wall else None
        with _tspan(tracer, f"sample.{name}/{config.name}", category="simulate"):
            result = sample_benchmark(
                name, config, plan, budget=max_steps,
                iters=iters, skip=skip, profile=profile, watchdog=watchdog,
            )
        return result.stats, None
    with _tspan(tracer, f"collect.{name}", category="collect"):
        trace, record = runner.collect_trace_resilient(
            name, max_steps + warmup, iters=iters, skip=skip, profile=profile
        )
    if trace is None:
        raise RuntimeError(record.describe())
    t0 = time.perf_counter()
    with _tspan(tracer, f"simulate.{name}/{config.name}", category="simulate"):
        stats = simulate(config, trace, warmup=warmup)
    if tracer is not None:
        tracer.profiler.add(
            f"simulate.{name}", time.perf_counter() - t0, items=stats.instructions
        )
    return stats, record


class _NullJournal:
    """In-memory stand-in when no ``--journal`` was requested."""

    def __init__(self, cells: list[CellRecord]) -> None:
        self.cells = cells
        self.summary: dict = {}
        self._by_key = {cell.key: cell for cell in cells}

    def flush(self) -> None:
        pass

    def load_result(self, key: str):
        return None

    def mark_running(self, key: str) -> None:
        cell = self._by_key[key]
        cell.state, cell.attempts = "running", cell.attempts + 1

    def mark_done(self, key: str, stats) -> None:
        self._by_key[key].state = DONE

    def mark_retry(self, key: str, error: str) -> None:
        cell = self._by_key[key]
        cell.state, cell.error = PENDING, error

    def mark_failed(self, key: str, error: str, quarantined: bool = False) -> None:
        cell = self._by_key[key]
        cell.state, cell.error = (QUARANTINED if quarantined else FAILED), error


def run_sweep(
    names,
    configs,
    max_steps: int,
    warmup: int,
    jobs: int = 1,
    iters: int | None = None,
    skip: int | None = None,
    profile: str = "ref",
    journal_path: str | Path | None = None,
    resume: bool = False,
    policy: SupervisorPolicy | None = None,
    fault_plan: ProcessFaultPlan | None = None,
    keep_going: bool = False,
    progress=None,
    sampling=None,
):
    """Run a (benchmark × config) grid under supervision, journaled.

    Returns ``(grid, failures, degraded, report)``: the cell grid (as
    :func:`repro.experiments.parallel.run_cells` returns it), the
    quarantined/failed cells as ``FailureRecord``s, degraded-budget
    records, and the :class:`SupervisorReport`.

    With *journal_path* every cell transition is persisted atomically;
    with *resume* a matching existing journal replays its completed
    cells from the result store (zero re-execution) and re-dispatches
    only the remainder — previously failed or quarantined cells get a
    fresh retry budget.  Merged results are bit-identical to an
    uninterrupted run because every cell is a pure function and
    :meth:`SimStats.merge` is commutative.

    *sampling* (a :class:`~repro.timing.sampling.SamplingPlan`) runs
    every cell in statistical-sampling mode: ``max_steps`` becomes the
    sampled horizon, results carry bootstrap error bars, and the plan's
    canonical string joins the cell keys — a sampled journal can never
    be resumed as an exact one (or under different sampling knobs), and
    the whole sweep replays bit-identically under ``--resume`` and any
    ``--jobs N``.

    When a tracer is active (``--trace-spans``) the whole lifecycle is
    spanned: a ``sweep.run`` root, journal load/replay, one completed
    ``cell`` span per done cell (resumed cells get a zero-cost span
    flagged ``resume``), per-attempt spans on one lane per worker, and
    retry/quarantine/straggler annotations.  *progress* (a
    :class:`~repro.experiments.progress.SweepProgress`) drives the
    ``--live`` status line from the same event stream.
    """
    global _last_report
    from repro.experiments import runner
    from repro.experiments.runner import FailureRecord
    from repro.obs.session import active_session
    from repro.workloads import get_workload

    policy = policy or SupervisorPolicy()
    names, configs = list(names), list(configs)
    tracer = tracing.active_tracer()
    session = active_session()
    root = None
    if tracer is not None:
        root = tracer.begin(
            "sweep.run", category="sweep",
            benchmarks=len(names), configs=len(configs), jobs=jobs,
        )
        tracer.default_parent = root.span_id
    if fault_plan is None:
        fault_plan = ProcessFaultPlan.from_env()
    orch_kill_after = int(os.environ.get(ORCH_KILL_ENV_VAR, "0") or 0)

    report = SupervisorReport(cells_total=len(names) * len(configs))
    failures: list[FailureRecord] = []
    degraded: list[FailureRecord] = []

    # Cell identities: keyed over config contents and program image, so
    # a journal can never be resumed against a semantically different
    # sweep.
    images: dict[str, str] = {}
    ok_names: list[str] = []
    for name in names:
        try:
            program = get_workload(name).build(iters=iters, profile=profile)
            images[name] = trace_cache.program_digest(program)
            ok_names.append(name)
        except Exception as exc:
            if not keep_going:
                raise
            failures.append(
                FailureRecord(benchmark=name, stage="build",
                              error=type(exc).__name__, message=str(exc))
            )
            report.cells_total -= len(configs)
    sampling_id = sampling.canonical() if sampling is not None else None
    cells: list[CellRecord] = []
    specs: dict[str, tuple] = {}
    labels: dict[str, str] = {}
    for name in ok_names:
        for config in configs:
            key = cell_key(name, config, max_steps, warmup, iters, skip, profile,
                           images[name], sampling=sampling_id)
            cells.append(CellRecord(benchmark=name, config=config.name, key=key))
            specs[key] = (name, config, max_steps, warmup, iters, skip, profile, sampling)
            labels[key] = f"{name}/{config.name}"

    if journal_path is not None:
        path = Path(journal_path)
        if resume and path.exists():
            with _tspan(tracer, "journal.load", category="journal", path=str(path)):
                journal = SweepJournal.load(path)
                journal.match_cells(cells)
        else:
            with _tspan(tracer, "journal.create", category="journal", path=str(path)):
                journal = SweepJournal.create(
                    path,
                    spec={
                        "benchmarks": ok_names,
                        "configs": [c.name for c in configs],
                        "max_steps": max_steps,
                        "warmup": warmup,
                        "iters": iters,
                        "skip": skip,
                        "profile": profile,
                        "images": images,
                        "sampling": sampling_id,
                    },
                    cells=cells,
                )
    else:
        journal = _NullJournal(cells)

    # Resume replay: completed cells come back from the result store;
    # cells whose stored result is missing/corrupt are demoted and
    # re-executed (never trusted); failed/quarantined cells get a fresh
    # retry budget.
    results: dict[str, SimStats] = {}
    with _tspan(tracer, "journal.replay", category="journal"):
        for cell in journal.cells:
            if cell.state == DONE:
                stats = journal.load_result(cell.key)
                if stats is None:
                    report.corrupt_results += 1
                    cell.state = PENDING
                    cell.error = "stored result missing or corrupt; re-executing"
                else:
                    results[cell.key] = stats
                    report.resume_hits += 1
                    if tracer is not None:
                        # The one completed span a resumed cell gets: it
                        # cost a journal read, not a re-execution.
                        tracer.record(
                            labels.get(cell.key, cell.key), category="cell",
                            resume=True, attempts=cell.attempts,
                        )
            elif cell.state in (FAILED, QUARANTINED):
                cell.state = PENDING
                cell.error = None
    journal.flush()

    pending = [cell for cell in journal.cells if cell.state == PENDING]
    if progress is not None:
        progress.set_total(report.cells_total)
        if report.resume_hits:
            progress.resume_hit(report.resume_hits)
    executed = 0
    failed_cells = 0
    dispatched_at: dict[str, float] = {}
    cell_wall: dict[str, float] = {}
    cell_spans: dict[str, object] = {}
    attempts_by_key: dict[str, int] = {}
    inflight: set[str] = set()

    def on_event(kind, task, info) -> None:
        nonlocal executed, failed_cells
        if kind == "dispatch":
            if info > 1:
                report.retries += 1
            attempts_by_key[task.id] = info
            dispatched_at[task.id] = time.monotonic()
            inflight.add(task.id)
            journal.mark_running(task.id)
            if tracer is not None and task.id not in cell_spans:
                cell_spans[task.id] = tracer.begin(
                    labels.get(task.id, task.id), category="cell"
                )
            if progress is not None:
                progress.dispatch(task.id, labels.get(task.id, task.id))
        elif kind == "done":
            stats, record = info
            cell_wall[task.id] = time.monotonic() - dispatched_at.get(task.id, time.monotonic())
            inflight.discard(task.id)
            if record is not None and record.degraded_steps is not None:
                degraded.append(record)
                runner.set_budget_override(record.benchmark, record.degraded_steps)
            journal.mark_done(task.id, stats)
            executed += 1
            report.cells_executed += 1
            if tracer is not None:
                span = cell_spans.pop(task.id, None)
                if span is not None:
                    tracer.finish(span, attempts=attempts_by_key.get(task.id, 1))
            if progress is not None:
                progress.retire(task.id)
            if session is not None:
                session.note_sweep_progress(
                    done=report.resume_hits + executed,
                    total=report.cells_total,
                    failed=failed_cells,
                    in_flight=len(inflight),
                )
            if orch_kill_after and executed >= orch_kill_after:
                # Chaos: the orchestrator itself dies mid-sweep, with
                # the journal flushed through this very cell.
                os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "retry":
            journal.mark_retry(task.id, info)
        elif kind == "corrupt":
            report.corrupt_results += 1
        elif kind == "respawn":
            report.respawns += 1
        elif kind == "failed":
            error, message, quarantined = info
            inflight.discard(task.id)
            failed_cells += 1
            journal.mark_failed(task.id, f"{error}: {message}", quarantined=quarantined)
            if tracer is not None:
                span = cell_spans.pop(task.id, None)
                if span is not None:
                    tracer.finish(
                        span, status=tracing.ERROR, error=error,
                        quarantined=quarantined,
                        attempts=attempts_by_key.get(task.id, 1),
                    )
                if quarantined:
                    tracer.mark("cell.quarantine", category="cell",
                                cell=labels.get(task.id, task.id), error=error)
            if progress is not None:
                progress.retire(task.id, failed=True)
            if session is not None:
                session.note_sweep_progress(
                    done=report.resume_hits + executed,
                    total=report.cells_total,
                    failed=failed_cells,
                    in_flight=len(inflight),
                )

    if pending:
        tasks = [
            PoolTask(
                id=cell.key,
                fn="repro.experiments.supervisor:_execute_cell",
                payload=specs[cell.key],
                max_retries=policy.max_cell_retries,
                label=labels.get(cell.key, ""),
            )
            for cell in pending
        ]
        try:
            with SupervisedPool(
                jobs, policy=policy, init_state=current_worker_state(),
                fault_plan=fault_plan,
            ) as pool:
                outcomes = pool.run(tasks, on_event=on_event)
        except KeyboardInterrupt:
            # Graceful drain: the journal already reflects every
            # completed cell; record the interruption and re-raise.
            report.drained = True
            journal.summary = report.to_dict()
            journal.flush()
            _last_report = report
            if tracer is not None and root is not None:
                tracer.finish(root, status=tracing.ERROR, error="Drained")
            raise
        for cell in pending:
            outcome = outcomes.get(cell.key)
            if outcome is None:  # pragma: no cover - drain leaves no outcome
                continue
            if outcome.ok:
                stats, _record = outcome.value
                results[cell.key] = stats
            else:
                if outcome.quarantined:
                    report.quarantined += 1
                failures.append(
                    FailureRecord(
                        benchmark=cell.benchmark,
                        stage=f"simulate[{cell.config}]",
                        error=outcome.error,
                        message=outcome.message,
                        retried=outcome.attempts > 1,
                    )
                )

    # Canonical-order grid: identical regardless of completion order.
    grid: dict[str, dict[str, SimStats]] = {}
    for cell in cells:
        stats = results.get(cell.key)
        if stats is not None:
            grid.setdefault(cell.benchmark, {})[cell.config] = stats

    # Campaign-health detectors: cells far beyond the median wall time,
    # and cells that burned retries.  Both land in the manifest's
    # supervisor block (and the journal summary) with the counters.
    report.stragglers = detect_stragglers(cell_wall, labels, policy.straggler_factor)
    report.retry_storms = sorted(
        (
            {"cell": labels.get(key, key), "attempts": n}
            for key, n in attempts_by_key.items()
            if n > 1
        ),
        key=lambda rec: -rec["attempts"],
    )
    if tracer is not None:
        for rec in report.stragglers:
            tracer.mark("cell.straggler", category="cell", **rec)

    journal.summary = report.to_dict()
    journal.flush()
    _last_report = report
    if session is not None:
        from repro.emulator.machine import default_dispatch
        from repro.timing.fastpath import default_timing_mode

        # Cells simulate inside workers (no session there), so the
        # orchestrator records them for the BENCH snapshot here —
        # executed cells with their dispatch-to-done wall time, resumed
        # cells at zero wall (they cost one journal read).  Workers
        # re-apply both mode overrides (apply_worker_state), so the
        # parent's defaults name what actually ran.
        mode = default_timing_mode()
        dmode = default_dispatch()
        for cell in cells:
            stats = results.get(cell.key)
            if stats is not None:
                session.current_benchmark = cell.benchmark
                session.record_run(
                    stats,
                    cell_wall.get(cell.key, 0.0),
                    timing_mode=mode,
                    dispatch_mode=dmode,
                )
        report.publish(session.registry)
        session.note_supervisor(report)
    if tracer is not None and root is not None:
        tracer.finish(
            root,
            status=tracing.ERROR if failures else tracing.OK,
            cells_executed=report.cells_executed,
            resume_hits=report.resume_hits,
            failed=len(failures),
        )
    if failures and not keep_going:
        raise RuntimeError(failures[0].describe())
    return grid, failures, degraded, report


__all__ = [
    "ORCH_KILL_ENV_VAR",
    "PoolTask",
    "SupervisedPool",
    "SupervisorPolicy",
    "SupervisorReport",
    "TaskOutcome",
    "apply_worker_state",
    "current_worker_state",
    "detect_stragglers",
    "last_report",
    "reset_stats",
    "run_sweep",
    "supervisor_stats",
]
