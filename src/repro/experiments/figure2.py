"""Figure 2: early load–store disambiguation characterization.

Regenerates the two Figure 2 panels (bzip and gcc in the paper) plus
any other benchmark on request: stacked category fractions as a
function of the highest address bit compared, for a 32-entry LSQ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.characterization.lsq_char import LSQCharacterization
from repro.characterization.vectorized import characterize_lsq_fast
from repro.experiments.report import render_stack
from repro.experiments.runner import DEFAULT_INSTRUCTIONS, collect_trace
from repro.lsq.disambiguation import LSDCategory

#: The benchmarks shown in the paper's Figure 2.
FIGURE2_BENCHMARKS: tuple[str, ...] = ("bzip", "gcc")

#: Bit positions sampled for the bars (full resolution is 2..31).
DEFAULT_BITS: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 15, 19, 23, 27, 31)

#: Legend order, matching the paper's stacking.
CATEGORY_ORDER: tuple[LSDCategory, ...] = (
    LSDCategory.MULTI_DIFF_ADDR,
    LSDCategory.MULTI_SAME_ADDR,
    LSDCategory.SINGLE_MATCH_MULT_STORES,
    LSDCategory.SINGLE_MATCH_ONE_STORE,
    LSDCategory.SINGLE_NONMATCH,
    LSDCategory.ZERO_MATCH,
    LSDCategory.NO_STORES,
)


@dataclass
class Figure2Result:
    panels: dict[str, LSQCharacterization]
    bits: tuple[int, ...]

    def rows(self):
        """(benchmark, bit, category, fraction) tuples."""
        out = []
        for name, char in self.panels.items():
            for b in self.bits:
                for cat in CATEGORY_ORDER:
                    out.append((name, b, cat.value, char.fraction(b, cat)))
        return out

    def resolved_by(self, benchmark: str, bit: int) -> float:
        """Fraction of loads decisively disambiguated by *bit* — the
        paper's claim is ~100% by bit 10 (9 bits compared)."""
        return self.panels[benchmark].resolved_fraction(bit)

    def render(self) -> str:
        parts = []
        for name, char in self.panels.items():
            per_x = {b: [char.fraction(b, c) for c in CATEGORY_ORDER] for b in self.bits}
            parts.append(
                render_stack(
                    f"Figure 2 — {name} ({char.loads} loads, 32-entry LSQ)",
                    [c.value for c in CATEGORY_ORDER],
                    per_x,
                )
            )
        return "\n\n".join(parts)


def run(
    benchmarks: tuple[str, ...] = FIGURE2_BENCHMARKS,
    instructions: int = DEFAULT_INSTRUCTIONS,
    bits: tuple[int, ...] = DEFAULT_BITS,
    lsq_size: int = 32,
    profile: str = "ref",
) -> Figure2Result:
    """Regenerate Figure 2."""
    panels = {}
    for name in benchmarks:
        trace = collect_trace(name, instructions, profile=profile)
        panels[name] = characterize_lsq_fast(trace, benchmark=name, lsq_size=lsq_size, bits=bits)
    return Figure2Result(panels=panels, bits=bits)
