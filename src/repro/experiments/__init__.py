"""Experiment layer: one module per paper table/figure.

Each experiment module exposes a ``run(...)`` function returning a
result object with ``rows()`` (machine-readable) and ``render()``
(paper-style ASCII) methods.  The shared :mod:`repro.experiments.runner`
collects and caches traces so a full sweep emulates each benchmark only
once.  The ``repro-experiment`` console script (:mod:`.cli`) drives
everything from the command line.
"""

from repro.experiments.runner import collect_trace, sweep_configs

#: Experiment modules, importable as `from repro.experiments import figureN`:
#: figure1 (pipeline overlap), figure2 (LSQ disambiguation), figure4
#: (partial tags), figure6 (early branches), figure11 (IPC), figure12
#: (speedup decomposition), table1 (benchmark characteristics),
#: workload_table (suite validation).  Shared helpers: report (tables),
#: ascii_plot (charts), aggregate (means/CIs), results_io (JSON +
#: regression diff), cli (console entry point).

__all__ = ["collect_trace", "sweep_configs"]
