"""Figure 12: speed-up decomposition over simple pipelining.

Derived from the Figure 11 sweep: per benchmark and slice count, the
incremental IPC speed-up contributed by each technique as it is added
(the stacking order matters, as the paper notes — later techniques
benefit from earlier ones).  Also reports the paper's aggregate: the
three *new* techniques plus out-of-order slices contribute an
additional ~8% (slice-by-2) / ~13% (slice-by-4) over partial operand
bypassing alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import CUMULATIVE_TECHNIQUES
from repro.experiments import figure11
from repro.experiments.report import render_table
from repro.experiments.runner import DEFAULT_INSTRUCTIONS
from repro.workloads import BENCHMARK_NAMES


@dataclass
class Figure12Result:
    base: figure11.Figure11Result

    def increments(self, benchmark: str, num_slices: int) -> list[tuple[str, float]]:
        """(technique, incremental speedup over simple pipelining)."""
        stats_list = self.base.ladder[(benchmark, num_slices)]
        simple = stats_list[0].ipc
        out = []
        prev = simple
        for label, st in zip(CUMULATIVE_TECHNIQUES[1:], stats_list[1:]):
            out.append((label, (st.ipc - prev) / simple))
            prev = st.ipc
        return out

    def total_speedup(self, benchmark: str, num_slices: int) -> float:
        stats_list = self.base.ladder[(benchmark, num_slices)]
        return stats_list[-1].ipc / stats_list[0].ipc - 1.0

    def mean_new_technique_contribution(self, num_slices: int) -> float:
        """Mean extra speedup beyond partial operand bypassing (the
        paper's "additional 8% / 13%")."""
        vals = []
        for name in self.base.ideal:
            stats_list = self.base.ladder[(name, num_slices)]
            simple, pob, full = stats_list[0].ipc, stats_list[1].ipc, stats_list[-1].ipc
            vals.append((full - pob) / simple)
        return sum(vals) / len(vals)

    def rows(self):
        out = []
        for s in self.base.slice_counts:
            for name in self.base.ideal:
                for label, inc in self.increments(name, s):
                    out.append((name, s, label, inc))
                out.append((name, s, "total", self.total_speedup(name, s)))
        return out

    def render(self) -> str:
        parts = []
        techniques = list(CUMULATIVE_TECHNIQUES[1:])
        for s in self.base.slice_counts:
            rows = []
            for name in self.base.ideal:
                incs = dict(self.increments(name, s))
                rows.append(
                    [name]
                    + [f"{incs[t]:+.1%}" for t in techniques]
                    + [f"{self.total_speedup(name, s):+.1%}"]
                )
            parts.append(
                render_table(
                    ["Benchmark"] + [t.replace(" ", "_") for t in techniques] + ["total"],
                    rows,
                    title=f"Figure 12 — speed-up over simple pipelining, slice by {s}",
                )
            )
            parts.append(
                f"  mean contribution of new techniques beyond bypassing: "
                f"{self.mean_new_technique_contribution(s):+.1%}"
            )
        return "\n".join(parts)


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    instructions: int = DEFAULT_INSTRUCTIONS,
    slice_counts: tuple[int, ...] = (2, 4),
    base: figure11.Figure11Result | None = None,
) -> Figure12Result:
    """Regenerate Figure 12 (reusing a Figure 11 sweep when given)."""
    if base is None:
        base = figure11.run(benchmarks, instructions, slice_counts)
    return Figure12Result(base=base)
