"""Workload-characteristics table (suite-validation report).

Not a paper artifact per se, but the data behind our DESIGN.md §2
substitution argument: for each benchmark, the dynamic properties that
determine how the paper's techniques behave — instruction mix,
dependence tightness, working-set size, and branch behaviour.  Shipped
as an experiment so the suite's character is regenerable and asserted
in the benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.emulator.analysis import TraceProfile, profile_trace
from repro.experiments.report import render_table
from repro.experiments.runner import DEFAULT_INSTRUCTIONS, collect_trace
from repro.workloads import BENCHMARK_NAMES


@dataclass
class WorkloadTableResult:
    profiles: dict[str, TraceProfile]

    def rows(self):
        out = []
        for name, p in self.profiles.items():
            out.append(
                (
                    name,
                    p.load_fraction,
                    p.store_fraction,
                    p.branch_fraction,
                    p.taken_rate,
                    p.short_dependence_fraction(2),
                    p.data_working_set,
                )
            )
        return out

    def render(self) -> str:
        return render_table(
            ["Benchmark", "loads", "stores", "branches", "taken", "dep<=2", "wset(KB)"],
            [
                (
                    name,
                    f"{p.load_fraction:.1%}",
                    f"{p.store_fraction:.1%}",
                    f"{p.branch_fraction:.1%}",
                    f"{p.taken_rate:.0%}",
                    f"{p.short_dependence_fraction(2):.1%}",
                    p.data_working_set // 1024,
                )
                for name, p in self.profiles.items()
            ],
            title="Workload characteristics (steady state)",
        )


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    instructions: int = DEFAULT_INSTRUCTIONS,
    profile: str = "ref",
) -> WorkloadTableResult:
    """Profile every benchmark's steady-state trace."""
    profiles = {}
    for name in benchmarks:
        profiles[name] = profile_trace(collect_trace(name, instructions, profile=profile))
    return WorkloadTableResult(profiles=profiles)
