"""ASCII charts for experiment results.

Terminal-friendly renderings of the paper's figures: horizontal bar
charts (the Figure 11 IPC bars, with the ideal machine drawn as a tick
mark, matching the paper's thin ideal bars) and multi-series line plots
(the Figure 6 detection curves).
"""

from __future__ import annotations

from collections.abc import Sequence


def hbar_chart(
    rows: Sequence[tuple[str, float]],
    width: int = 50,
    max_value: float | None = None,
    fmt: str = "{:.3f}",
    ticks: dict[str, float] | None = None,
) -> str:
    """Horizontal bars, one per (label, value) row.

    *ticks* optionally marks a reference value per label with ``|``
    (used for the ideal-machine IPC in the Figure 11 rendering).
    """
    if not rows:
        return "(no data)"
    top = max_value if max_value is not None else max(v for _, v in rows + [(None, 0.0)])
    if ticks:
        top = max(top, max(ticks.values()))
    top = top or 1.0
    label_w = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        filled = round(width * value / top)
        bar = list("#" * filled + " " * (width - filled))
        if ticks and label in ticks:
            pos = min(width - 1, round(width * ticks[label] / top))
            bar[pos] = "|"
        lines.append(f"{label:<{label_w}} [{''.join(bar)}] {fmt.format(value)}")
    return "\n".join(lines)


def line_plot(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    y_max: float = 1.0,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Multi-series scatter/line plot on a character grid.

    Each series gets a distinct marker; collisions show the later
    series' marker.  Intended for the Figure 6 cumulative curves.
    """
    if not series:
        return "(no data)"
    markers = "ox+*#@%&$~"
    xs = [x for pts in series.values() for x, _ in pts]
    if not xs:
        return "(no data)"
    x_min, x_max = min(xs), max(xs)
    span = (x_max - x_min) or 1
    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), markers * 10):
        for x, y in pts:
            col = round((x - x_min) / span * (width - 1))
            row = height - 1 - round(min(max(y, 0.0), y_max) / y_max * (height - 1))
            grid[row][col] = marker
    lines = []
    for i, row in enumerate(grid):
        y_val = y_max * (height - 1 - i) / (height - 1)
        prefix = f"{y_val:5.2f} |" if i % 4 == 0 or i == height - 1 else "      |"
        lines.append(prefix + "".join(row))
    lines.append("      +" + "-" * width)
    lines.append(f"       {x_min:<10g}{x_label:^{max(0, width - 20)}}{x_max:>10g}")
    legend = "  ".join(f"{m}={n}" for (n, _), m in zip(series.items(), markers * 10))
    lines.append(f"      [{legend}]")
    if y_label:
        lines.insert(0, f"      {y_label}")
    return "\n".join(lines)


def stacked_hbar(
    rows: Sequence[tuple[str, Sequence[float]]],
    segment_chars: str = "#=+*o.",
    width: int = 50,
    max_value: float | None = None,
) -> str:
    """Stacked horizontal bars (the Figure 12 decomposition shape)."""
    if not rows:
        return "(no data)"
    totals = [sum(vals) for _, vals in rows]
    top = max_value if max_value is not None else max(totals) or 1.0
    label_w = max(len(label) for label, _ in rows)
    lines = []
    for (label, vals), total in zip(rows, totals):
        bar = []
        for value, ch in zip(vals, segment_chars * 10):
            bar.append(ch * round(width * value / top))
        body = "".join(bar)[:width]
        lines.append(f"{label:<{label_w}} [{body:<{width}}] {total:.3f}")
    return "\n".join(lines)
