"""Shared experiment infrastructure: trace collection and config sweeps.

Emulating a workload dominates experiment wall-clock, so the dynamic
trace (a list of immutable :class:`TraceRecord`) is collected once per
(benchmark, length) and replayed across every machine configuration.

Resilience: collection runs under an optional wall-clock watchdog
(:func:`set_wall_timeout`), and :func:`collect_trace_resilient` turns a
failing workload into a :class:`FailureRecord` — with one bounded retry
at a reduced instruction budget — instead of an aborted sweep.  A
successful retry registers a per-benchmark budget override so every
later collection of that benchmark stays inside the budget that worked.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache

from repro.core.config import MachineConfig
from repro.emulator.machine import default_dispatch
from repro.emulator.trace import TraceRecord
from repro.experiments import trace_cache
from repro.harness.watchdog import Watchdog
from repro.obs.guestprof import active_collector, profile_from_records
from repro.obs.session import active_session
from repro.obs.tracing import active_tracer
from repro.timing.simulator import simulate
from repro.timing.stats import SimStats
from repro.workloads import get_workload

#: Default steady-state window for timing experiments.  Small enough
#: for pure-Python simulation, long enough for stable IPC (the paper
#: used 500M-instruction windows on native simulators).
DEFAULT_INSTRUCTIONS = 30_000

#: Instructions simulated (but not measured) before the IPC window to
#: warm caches and predictors.
DEFAULT_WARMUP = 10_000

#: Wall-clock budget (seconds) applied to every trace collection, or
#: ``None`` for unbounded.  Set from the CLI's ``--timeout``.
_wall_timeout: float | None = None

#: Per-benchmark instruction-budget caps registered by graceful
#: degradation (a collection that only succeeded at a reduced budget).
_budget_overrides: dict[str, int] = {}

#: Traces collected elsewhere (parallel worker processes) and injected
#: into this process so ``_collect`` never re-emulates them.
_preloaded: dict[tuple, tuple[TraceRecord, ...]] = {}


def set_wall_timeout(seconds: float | None) -> None:
    """Set (or clear, with ``None``) the collection wall-clock budget."""
    global _wall_timeout
    _wall_timeout = seconds


def wall_timeout() -> float | None:
    """The current collection wall-clock budget."""
    return _wall_timeout


def set_budget_override(name: str, max_steps: int) -> None:
    """Cap every future collection of *name* at *max_steps*."""
    _budget_overrides[name] = max_steps


def budget_override(name: str) -> int | None:
    """The degraded budget registered for *name*, if any."""
    return _budget_overrides.get(name)


@lru_cache(maxsize=32)
def _collect(
    name: str, max_steps: int, iters: int | None, skip: int | None, profile: str
) -> tuple[TraceRecord, ...]:
    gp = active_collector()
    if gp is not None:
        # Route machine-loop counts (cold) / record replays (cache hit)
        # at this benchmark's bucket.  Preloaded traces are NOT counted
        # here: the collecting worker already profiled them and shipped
        # its collector in the reply aux.
        gp.begin_benchmark(name)
    preloaded = _preloaded.get((name, max_steps, iters, skip, profile))
    if preloaded is not None:
        return preloaded
    workload = get_workload(name)
    session = active_session()
    tracer = active_tracer()
    # L2: the persistent on-disk cache.  The key covers the program
    # image, so a stale entry after a workload edit is unreachable.
    key = None
    if trace_cache.enabled():
        program = workload.build(iters=iters, profile=profile)
        key = trace_cache.cache_key(name, max_steps, iters, skip, profile, program)
        t0 = time.perf_counter()
        w0 = time.time()
        cached = trace_cache.load(name, key)
        if cached is not None:
            if gp is not None:
                profile_from_records(cached, gp)
            if session is not None:
                session.note_cache_hit(name, len(cached), time.perf_counter() - t0)
            if tracer is not None:
                tracer.record(
                    f"cache.hit.{name}", category="cache",
                    start=w0, end=time.time(), records=len(cached),
                )
            return cached
        if tracer is not None:
            tracer.mark(f"cache.miss.{name}", category="cache")
    watchdog = (
        Watchdog(max_seconds=_wall_timeout, label=f"collect[{name}]")
        if _wall_timeout is not None
        else None
    )
    t0 = time.perf_counter()
    w0 = time.time()
    trace = tuple(
        workload.trace(max_steps=max_steps, iters=iters, skip=skip, profile=profile, watchdog=watchdog)
    )
    seconds = time.perf_counter() - t0
    if session is not None:
        session.note_collection(name, len(trace), seconds, dispatch_mode=default_dispatch())
    if tracer is not None:
        tracer.record(
            f"emulate.{name}", category="emulate",
            start=w0, end=time.time(), records=len(trace),
        )
        tracer.profiler.add(f"collect.{name}", seconds, items=len(trace))
    if key is not None:
        trace_cache.store(name, key, trace)
    return trace


def collect_trace(
    name: str,
    max_steps: int = DEFAULT_INSTRUCTIONS,
    iters: int | None = None,
    skip: int | None = None,
    profile: str = "ref",
) -> tuple[TraceRecord, ...]:
    """Steady-state dynamic trace of benchmark *name* (cached).

    *profile* selects the input footprint (test/train/ref, the SPEC
    input-set analogue).  A registered budget override (graceful
    degradation) caps *max_steps*.
    """
    cap = _budget_overrides.get(name)
    if cap is not None and max_steps > cap:
        max_steps = cap
    session = active_session()
    if session is not None:
        # Keep the benchmark context current even when the trace is a
        # cache hit, so subsequent simulate() runs attribute correctly.
        session.current_benchmark = name
    gp = active_collector()
    if gp is not None:
        # Same for the guest profiler: timing cycles attributed by the
        # simulate() that follows must land in this benchmark's bucket
        # even when the trace itself is an in-memory cache hit.
        gp.begin_benchmark(name)
    return _collect(name, max_steps, iters, skip, profile)


@dataclass(frozen=True)
class FailureRecord:
    """One benchmark (or experiment) failure captured during a sweep."""

    benchmark: str
    stage: str                       # "collect" or the experiment name
    error: str                       # exception class name
    message: str
    retried: bool = False
    degraded_steps: int | None = None

    def describe(self) -> str:
        note = ""
        if self.degraded_steps is not None:
            note = f" (degraded to {self.degraded_steps} instructions and continued)"
        elif self.retried:
            note = " (retry at reduced budget also failed)"
        return f"{self.benchmark}: {self.stage} failed with {self.error}: {self.message}{note}"


def collect_trace_resilient(
    name: str,
    max_steps: int = DEFAULT_INSTRUCTIONS,
    iters: int | None = None,
    skip: int | None = None,
    profile: str = "ref",
    retry_divisor: int = 4,
    min_retry_steps: int = 1_000,
) -> tuple[tuple[TraceRecord, ...] | None, FailureRecord | None]:
    """Collect a trace, degrading gracefully instead of raising.

    Returns ``(trace, failure)``:

    * ``(trace, None)`` — clean collection;
    * ``(trace, record)`` — first attempt failed, but one retry at
      ``max_steps // retry_divisor`` succeeded; the reduced budget is
      registered as this benchmark's override and *record* describes
      the degradation;
    * ``(None, record)`` — both attempts failed; the benchmark should
      be dropped from the sweep.
    """
    try:
        return collect_trace(name, max_steps, iters, skip, profile), None
    except Exception as exc:
        first = exc
    reduced = max(min_retry_steps, max_steps // retry_divisor)
    record = FailureRecord(
        benchmark=name, stage="collect", error=type(first).__name__,
        message=str(first), retried=True,
    )
    if reduced < max_steps:
        try:
            trace = collect_trace(name, reduced, iters, skip, profile)
        except Exception:
            return None, record
        set_budget_override(name, reduced)
        return trace, FailureRecord(
            benchmark=name, stage="collect", error=type(first).__name__,
            message=str(first), retried=True, degraded_steps=reduced,
        )
    return None, record


def render_failure_report(failures, degraded=()) -> str:
    """Human-readable partial-results report for a keep-going sweep."""
    lines = ["=== Sweep failure report ==="]
    if not failures and not degraded:
        lines.append("no failures: all benchmarks completed at full budget")
    for record in failures:
        lines.append(f"FAILED   {record.describe()}")
    for record in degraded:
        lines.append(f"DEGRADED {record.describe()}")
    return "\n".join(lines)


def sweep_configs(
    name: str,
    configs: list[MachineConfig],
    max_steps: int = DEFAULT_INSTRUCTIONS,
    warmup: int = DEFAULT_WARMUP,
) -> list[SimStats]:
    """Run every configuration over the same trace of one benchmark."""
    trace = collect_trace(name, max_steps + warmup)
    return [simulate(config, trace, warmup=warmup) for config in configs]


def preload_trace(
    name: str,
    max_steps: int,
    iters: int | None,
    skip: int | None,
    profile: str,
    records,
) -> None:
    """Inject a trace collected elsewhere (a ``--jobs`` worker).

    The next ``collect_trace`` with the same parameters returns this
    trace instead of re-emulating the workload.
    """
    _preloaded[(name, max_steps, iters, skip, profile)] = tuple(records)


def clear_trace_cache() -> None:
    """Drop cached traces and degradation state (tests, memory).

    Clears the in-memory layers only; the persistent on-disk cache is
    content-addressed and needs no invalidation (its hit/miss counters
    are reset so tests observe a clean slate).
    """
    _collect.cache_clear()
    _budget_overrides.clear()
    _preloaded.clear()
    trace_cache.reset_stats()
