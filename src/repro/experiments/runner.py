"""Shared experiment infrastructure: trace collection and config sweeps.

Emulating a workload dominates experiment wall-clock, so the dynamic
trace (a list of immutable :class:`TraceRecord`) is collected once per
(benchmark, length) and replayed across every machine configuration.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.config import MachineConfig
from repro.emulator.trace import TraceRecord
from repro.timing.simulator import simulate
from repro.timing.stats import SimStats
from repro.workloads import get_workload

#: Default steady-state window for timing experiments.  Small enough
#: for pure-Python simulation, long enough for stable IPC (the paper
#: used 500M-instruction windows on native simulators).
DEFAULT_INSTRUCTIONS = 30_000

#: Instructions simulated (but not measured) before the IPC window to
#: warm caches and predictors.
DEFAULT_WARMUP = 10_000


@lru_cache(maxsize=32)
def _collect(
    name: str, max_steps: int, iters: int | None, skip: int | None, profile: str
) -> tuple[TraceRecord, ...]:
    workload = get_workload(name)
    return tuple(workload.trace(max_steps=max_steps, iters=iters, skip=skip, profile=profile))


def collect_trace(
    name: str,
    max_steps: int = DEFAULT_INSTRUCTIONS,
    iters: int | None = None,
    skip: int | None = None,
    profile: str = "ref",
) -> tuple[TraceRecord, ...]:
    """Steady-state dynamic trace of benchmark *name* (cached).

    *profile* selects the input footprint (test/train/ref, the SPEC
    input-set analogue).
    """
    return _collect(name, max_steps, iters, skip, profile)


def sweep_configs(
    name: str,
    configs: list[MachineConfig],
    max_steps: int = DEFAULT_INSTRUCTIONS,
    warmup: int = DEFAULT_WARMUP,
) -> list[SimStats]:
    """Run every configuration over the same trace of one benchmark."""
    trace = collect_trace(name, max_steps + warmup)
    return [simulate(config, trace, warmup=warmup) for config in configs]


def clear_trace_cache() -> None:
    """Drop cached traces (mainly for tests managing memory)."""
    _collect.cache_clear()
