"""The ``sweep`` experiment: a supervised, journaled (benchmark × config) grid.

This is the CLI face of :func:`repro.experiments.supervisor.run_sweep`:
pick benchmarks and machine configurations, fan the grid out over
supervised workers, and (with ``--journal``) record every cell
transition crash-safely so ``--resume`` continues an interrupted
campaign without re-executing completed cells.

The rendered table is **deterministic** — canonical (benchmark, config)
order, exact counter values — which is what lets the chaos harness
(``scripts/chaos_sweep.py``) assert that a kill-and-resume run's output
is byte-identical to an uninterrupted one.  Supervision counters
(respawns, retries, resume hits) are *not* part of the table; they go
to stderr and the run manifest, because they legitimately differ
between a calm run and a chaotic one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import (
    MachineConfig,
    baseline_config,
    bitslice_config,
    simple_pipeline_config,
)
from repro.experiments.report import render_table
from repro.experiments.runner import DEFAULT_WARMUP, FailureRecord
from repro.experiments.supervisor import SupervisorPolicy, SupervisorReport, run_sweep
from repro.timing.stats import SimStats

#: Machine configurations addressable from ``--configs``.
CONFIG_BUILDERS = {
    "ideal": baseline_config,
    "pipe2": lambda: simple_pipeline_config(2),
    "pipe4": lambda: simple_pipeline_config(4),
    "bitslice2": lambda: bitslice_config(2),
    "bitslice4": lambda: bitslice_config(4),
}

DEFAULT_CONFIGS = ("ideal", "pipe4", "bitslice4")


def parse_configs(names) -> list[MachineConfig]:
    """Resolve ``--configs`` names; raises ``ValueError`` on unknowns."""
    configs = []
    for name in names:
        builder = CONFIG_BUILDERS.get(name)
        if builder is None:
            raise ValueError(
                f"unknown config {name!r}; choose from {', '.join(sorted(CONFIG_BUILDERS))}"
            )
        configs.append(builder())
    return configs


@dataclass
class SweepResult:
    """The grid plus everything the run learned getting it."""

    benchmarks: list[str]
    config_names: list[str]          # display order == request order
    grid: dict[str, dict[str, SimStats]]
    failures: list[FailureRecord] = field(default_factory=list)
    degraded: list[FailureRecord] = field(default_factory=list)
    report: SupervisorReport | None = None

    @property
    def sampled(self) -> bool:
        """True when any cell carries sampling error bars."""
        from repro.timing.sampling import stats_error_bars

        return any(
            stats_error_bars(stats) is not None
            for per in self.grid.values()
            for stats in per.values()
        )

    def rows(self):
        """Table rows; sampled grids grow ``ipc_lo``/``ipc_hi`` columns.

        Exact grids keep the historical five-column shape byte-for-byte
        — the CI columns appear only when a cell actually carries error
        bars, so disabled-mode output (and the chaos harness's
        byte-identity invariant over it) is untouched.
        """
        from repro.timing.sampling import stats_error_bars

        sampled = self.sampled
        out = []
        for name in self.benchmarks:
            per = self.grid.get(name, {})
            for config in self.config_names:
                stats = per.get(config)
                if stats is None:
                    continue
                row = (name, config, stats.instructions, stats.cycles,
                       round(stats.ipc, 4))
                if sampled:
                    bars = stats_error_bars(stats)
                    if bars is None:
                        row += ("", "")
                    else:
                        row += (round(bars[0], 4), round(bars[1], 4))
                out.append(row)
        return out

    def render(self) -> str:
        headers = ("benchmark", "config", "instructions", "cycles", "ipc")
        if self.sampled:
            headers += ("ipc_lo", "ipc_hi")
        return render_table(
            headers,
            self.rows(),
            title="Supervised sweep (benchmark x config)",
        )


def run(
    benchmarks,
    config_names=DEFAULT_CONFIGS,
    max_steps: int = 30_000,
    warmup: int = DEFAULT_WARMUP,
    jobs: int = 1,
    profile: str = "ref",
    journal_path=None,
    resume: bool = False,
    policy: SupervisorPolicy | None = None,
    keep_going: bool = False,
    progress=None,
    sampling=None,
) -> SweepResult:
    """Run the supervised sweep experiment.

    *progress* is an optional
    :class:`~repro.experiments.progress.SweepProgress` (the CLI's
    ``--live``); it renders to stderr, so the deterministic stdout
    table — the chaos harness's byte-identity invariant — is untouched.

    *sampling* (a :class:`~repro.timing.sampling.SamplingPlan`) switches
    every cell to statistical sampling — ``max_steps`` becomes the
    sampled horizon and the rendered table grows 95% CI columns.
    """
    config_names = list(config_names)
    configs = parse_configs(config_names)
    grid, failures, degraded, report = run_sweep(
        benchmarks,
        configs,
        max_steps=max_steps,
        warmup=warmup,
        jobs=jobs,
        profile=profile,
        journal_path=journal_path,
        resume=resume,
        policy=policy,
        keep_going=keep_going,
        progress=progress,
        sampling=sampling,
    )
    return SweepResult(
        benchmarks=list(benchmarks),
        config_names=[c.name for c in configs],
        grid=grid,
        failures=failures,
        degraded=degraded,
        report=report,
    )


__all__ = [
    "CONFIG_BUILDERS",
    "DEFAULT_CONFIGS",
    "SweepResult",
    "parse_configs",
    "run",
]
