"""Table 1: baseline benchmark characteristics.

For every benchmark: baseline IPC (non-pipelined EX, the paper's base
machine), the fraction of dynamic instructions that are loads, and the
conditional-branch prediction accuracy of the Table 2 front end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import baseline_config
from repro.experiments.report import render_table
from repro.experiments.runner import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP, collect_trace
from repro.timing.simulator import simulate
from repro.workloads import BENCHMARK_NAMES


@dataclass(frozen=True)
class Table1Row:
    benchmark: str
    instructions: int
    ipc: float
    load_fraction: float
    branch_accuracy: float


@dataclass
class Table1Result:
    rows_: list[Table1Row]

    def rows(self) -> list[Table1Row]:
        return self.rows_

    def render(self) -> str:
        return render_table(
            ["Benchmark", "Simulated Instr", "IPC", "% Loads", "Branch Accuracy"],
            [
                (r.benchmark, r.instructions, f"{r.ipc:.2f}", f"{r.load_fraction:.1%}", f"{r.branch_accuracy:.0%}")
                for r in self.rows_
            ],
            title="Table 1: Benchmark Programs Simulated (baseline machine)",
        )


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    instructions: int = DEFAULT_INSTRUCTIONS,
    warmup: int = DEFAULT_WARMUP,
    profile: str = "ref",
) -> Table1Result:
    """Regenerate Table 1 on the baseline (ideal-EX) machine."""
    config = baseline_config()
    rows = []
    for name in benchmarks:
        trace = collect_trace(name, instructions + warmup, profile=profile)
        stats = simulate(config, trace, warmup=warmup)
        rows.append(
            Table1Row(
                benchmark=name,
                instructions=stats.instructions,
                ipc=stats.ipc,
                load_fraction=stats.load_fraction,
                branch_accuracy=stats.branch_accuracy,
            )
        )
    return Table1Result(rows)
