"""Table 1: baseline benchmark characteristics.

For every benchmark: baseline IPC (non-pipelined EX, the paper's base
machine), the fraction of dynamic instructions that are loads, and the
conditional-branch prediction accuracy of the Table 2 front end.

With a :class:`~repro.timing.sampling.SamplingPlan` the table is
regenerated through the statistical-sampling engine instead of full
detailed simulation: each row then carries the IPC 95% confidence
interval and the rendered table grows a ``IPC 95% CI`` column.  The
exact path is untouched — rows without error bars render byte-for-byte
as before.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import baseline_config
from repro.experiments.report import render_table
from repro.experiments.runner import DEFAULT_INSTRUCTIONS, DEFAULT_WARMUP, collect_trace
from repro.timing.simulator import simulate
from repro.workloads import BENCHMARK_NAMES


@dataclass(frozen=True)
class Table1Row:
    benchmark: str
    instructions: int
    ipc: float
    load_fraction: float
    branch_accuracy: float
    #: IPC 95% bootstrap CI — populated only on sampled runs.
    ipc_lo: float | None = None
    ipc_hi: float | None = None

    @property
    def ipc_ci(self) -> tuple[float, float] | None:
        if self.ipc_lo is None or self.ipc_hi is None:
            return None
        return self.ipc_lo, self.ipc_hi


@dataclass
class Table1Result:
    rows_: list[Table1Row]

    def rows(self) -> list[Table1Row]:
        return self.rows_

    @property
    def sampled(self) -> bool:
        """True when any row carries an IPC confidence interval."""
        return any(r.ipc_ci is not None for r in self.rows_)

    def render(self) -> str:
        headers = ["Benchmark", "Simulated Instr", "IPC", "% Loads", "Branch Accuracy"]
        sampled = self.sampled
        if sampled:
            headers.insert(3, "IPC 95% CI")
        rows = []
        for r in self.rows_:
            row = [r.benchmark, r.instructions, f"{r.ipc:.2f}",
                   f"{r.load_fraction:.1%}", f"{r.branch_accuracy:.0%}"]
            if sampled:
                ci = r.ipc_ci
                row.insert(3, f"[{ci[0]:.2f}, {ci[1]:.2f}]" if ci else "")
            rows.append(tuple(row))
        return render_table(
            headers,
            rows,
            title="Table 1: Benchmark Programs Simulated (baseline machine)",
        )


def run(
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    instructions: int = DEFAULT_INSTRUCTIONS,
    warmup: int = DEFAULT_WARMUP,
    profile: str = "ref",
    sampling=None,
) -> Table1Result:
    """Regenerate Table 1 on the baseline (ideal-EX) machine.

    *sampling* (a :class:`~repro.timing.sampling.SamplingPlan`) switches
    every benchmark to the statistical-sampling engine: *instructions*
    becomes the sampled horizon, *warmup* is subsumed by the plan's
    per-window warmup, and each row gains its IPC 95% CI.
    """
    config = baseline_config()
    rows = []
    if sampling is not None:
        from repro.timing.sampling import sample_benchmark

        for name in benchmarks:
            result = sample_benchmark(name, config, sampling, budget=instructions,
                                      profile=profile)
            stats = result.stats
            rows.append(
                Table1Row(
                    benchmark=name,
                    instructions=stats.instructions,
                    ipc=result.ipc_point,
                    load_fraction=stats.load_fraction,
                    branch_accuracy=stats.branch_accuracy,
                    ipc_lo=result.ipc_lo,
                    ipc_hi=result.ipc_hi,
                )
            )
        return Table1Result(rows)
    for name in benchmarks:
        trace = collect_trace(name, instructions + warmup, profile=profile)
        stats = simulate(config, trace, warmup=warmup)
        rows.append(
            Table1Row(
                benchmark=name,
                instructions=stats.instructions,
                ipc=stats.ipc,
                load_fraction=stats.load_fraction,
                branch_accuracy=stats.branch_accuracy,
            )
        )
    return Table1Result(rows)
