"""Set-associative cache model with LRU replacement and MRU tracking.

The model tracks tags only (data values live in the emulator's memory);
that is sufficient for hit/miss timing, partial tag matching, and MRU
way prediction.  Recency is kept as an explicit per-set ordering so both
LRU (replacement) and MRU (way prediction, paper §7) fall out of the
same state.
"""

from __future__ import annotations

from dataclasses import dataclass


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Attributes:
        size: total bytes.
        assoc: ways per set.
        line_size: bytes per line.
        name: label for stats output.
    """

    size: int
    assoc: int
    line_size: int
    name: str = "cache"

    def __post_init__(self) -> None:
        if not (_is_pow2(self.size) and _is_pow2(self.assoc) and _is_pow2(self.line_size)):
            raise ValueError("cache size, associativity and line size must be powers of two")
        if self.size < self.assoc * self.line_size:
            raise ValueError("cache smaller than one set")

    @property
    def num_sets(self) -> int:
        return self.size // (self.assoc * self.line_size)

    @property
    def offset_bits(self) -> int:
        return self.line_size.bit_length() - 1

    @property
    def index_bits(self) -> int:
        return self.num_sets.bit_length() - 1

    @property
    def tag_shift(self) -> int:
        """Bit position where the tag field starts."""
        return self.offset_bits + self.index_bits

    @property
    def tag_bits(self) -> int:
        """Width of the tag field of a 32-bit address."""
        return 32 - self.tag_shift

    def split(self, addr: int) -> tuple[int, int]:
        """Decompose a 32-bit address into ``(set_index, tag)``."""
        return (addr >> self.offset_bits) & (self.num_sets - 1), addr >> self.tag_shift


class SetAssociativeCache:
    """Tag store with LRU replacement.

    Each set is a list of tags ordered most-recently-used first, so
    ``set[0]`` is the MRU way and ``set[-1]`` the LRU victim.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        # Geometry is immutable; precompute the address-split constants
        # once — the dataclass properties recompute bit widths on every
        # call, and access() sits on the hot path of both the timing
        # model and the sampling fast-forward.
        self._off = config.offset_bits
        self._mask = config.num_sets - 1
        self._tshift = config.tag_shift
        self._assoc = config.assoc
        self.hits = 0
        self.misses = 0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def probe(self, addr: int) -> bool:
        """Non-destructive lookup: True when *addr* hits."""
        return addr >> self._tshift in self._sets[(addr >> self._off) & self._mask]

    def access(self, addr: int) -> bool:
        """Reference *addr*: returns hit/miss and updates LRU + contents.

        A miss allocates the line, evicting the LRU way when the set is
        full (write-allocate; since only tags are modeled, loads and
        stores are handled identically).  The MRU way is checked before
        the general scan — most references hit it, and the scan plus
        reorder cost only matters off that fast path.
        """
        ways = self._sets[(addr >> self._off) & self._mask]
        tag = addr >> self._tshift
        if ways:
            if ways[0] == tag:
                self.hits += 1
                return True
            try:
                pos = ways.index(tag, 1)
            except ValueError:
                pass
            else:
                ways.insert(0, ways.pop(pos))
                self.hits += 1
                return True
        self.misses += 1
        if len(ways) >= self._assoc:
            ways.pop()
        ways.insert(0, tag)
        return False

    def set_tags(self, addr: int) -> list[int]:
        """Tags resident in the set *addr* maps to, MRU-first (a copy)."""
        index, _ = self.config.split(addr)
        return list(self._sets[index])

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        c = self.config
        return (
            f"<{c.name}: {c.size}B {c.assoc}-way {c.line_size}B lines, "
            f"{self.hits} hits / {self.misses} misses>"
        )
