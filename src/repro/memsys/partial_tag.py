"""Partial tag matching (paper §5.2, Figures 3 and 4).

While the high half of an effective address is still being generated,
the low-order tag bits that *are* available can be compared against the
resident tags of the indexed set.  Four outcomes are possible at any
partial width (paper's Figure 4 categories):

* ``SINGLE_HIT`` — exactly one way matches the partial tag and it will
  also match the full tag (safe to speculate on it);
* ``SINGLE_MISS`` — exactly one way matches the partial tag but the full
  tag will mismatch (speculating picks a wrong line: a cache miss);
* ``ZERO`` — no way matches: the miss is known **early and
  non-speculatively**;
* ``MULTI`` — more than one way matches; a way predictor (MRU here)
  must pick among the partial matchers.
"""

from __future__ import annotations

import enum

from repro.memsys.cache import SetAssociativeCache


class PartialTagOutcome(enum.Enum):
    """Category of a partial tag comparison (Figure 4 legend)."""

    SINGLE_HIT = "single entry - hit"
    SINGLE_MISS = "single entry - miss"
    ZERO = "zero match"
    MULTI = "mult match"


def classify_partial_tag(full_tag: int, resident_tags: list[int], bits: int, tag_width: int) -> PartialTagOutcome:
    """Classify a partial tag compare of *bits* low-order tag bits.

    Args:
        full_tag: tag of the accessed address.
        resident_tags: tags currently in the indexed set (MRU-first).
        bits: number of low-order tag bits available (1..tag_width).
        tag_width: full width of the tag field.
    """
    if not 1 <= bits <= tag_width:
        raise ValueError(f"bits must be in 1..{tag_width}, got {bits}")
    mask = (1 << bits) - 1 if bits < tag_width else (1 << tag_width) - 1
    partial = full_tag & mask
    matches = [t for t in resident_tags if (t & mask) == partial]
    if not matches:
        return PartialTagOutcome.ZERO
    if len(matches) > 1:
        return PartialTagOutcome.MULTI
    return PartialTagOutcome.SINGLE_HIT if matches[0] == full_tag else PartialTagOutcome.SINGLE_MISS


def partial_tag_lookup(
    cache: SetAssociativeCache, addr: int, available_bits: int
) -> tuple[PartialTagOutcome, int | None, bool]:
    """Perform a partial-tag way selection with MRU prediction.

    Models the access of Figure 3: the index is assumed fully available;
    *available_bits* low-order tag bits take part in the compare.  When
    several ways match partially, the MRU way among the matchers is
    predicted (paper §7: "MRU policy for way prediction").

    Returns:
        ``(outcome, predicted_tag, correct)`` where *predicted_tag* is
        the selected way's tag (None when no way is selected) and
        *correct* says whether acting on the prediction agrees with the
        full-tag access: for ZERO the early-miss signal is always
        correct; for a selected way it is correct iff that way's full
        tag matches.
    """
    config = cache.config
    tag_width = config.tag_bits
    bits = max(1, min(available_bits, tag_width))
    _, full_tag = config.split(addr)
    resident = cache.set_tags(addr)
    mask = (1 << bits) - 1
    partial = full_tag & mask
    matches = [t for t in resident if (t & mask) == partial]
    if not matches:
        # Early non-speculative miss: correct by construction, since a
        # partial mismatch implies a full mismatch.
        return PartialTagOutcome.ZERO, None, True
    predicted = matches[0]  # resident list is MRU-first
    if len(matches) == 1:
        outcome = PartialTagOutcome.SINGLE_HIT if predicted == full_tag else PartialTagOutcome.SINGLE_MISS
    else:
        outcome = PartialTagOutcome.MULTI
    return outcome, predicted, predicted == full_tag


def tag_bits_available(address_bits_ready: int, tag_shift: int) -> int:
    """Tag bits usable when the low *address_bits_ready* bits are known.

    E.g. with a 16-bit first adder slice and a 64KB 4-way cache
    (tag_shift 14), two tag bits are available (paper §7.1).
    """
    return max(0, address_bits_ready - tag_shift)
