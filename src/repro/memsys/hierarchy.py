"""Cache hierarchy: L1I, L1D, unified L2, main memory (paper Table 2).

The hierarchy returns access latencies for the timing simulator and
keeps per-level hit/miss statistics.  Latencies are additive down the
hierarchy, with the L1 latency configurable because the slice-by-4
machine uses a 2-cycle L1D (paper §7.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsys.cache import CacheConfig, SetAssociativeCache

#: Table 2 geometries.
L1I_CONFIG = CacheConfig(size=64 * 1024, assoc=2, line_size=64, name="L1I")
L1D_CONFIG = CacheConfig(size=64 * 1024, assoc=4, line_size=64, name="L1D")
L2_CONFIG = CacheConfig(size=1024 * 1024, assoc=4, line_size=64, name="L2")


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one hierarchy access."""

    latency: int
    l1_hit: bool
    l2_hit: bool

    @property
    def is_miss(self) -> bool:
        return not self.l1_hit


class MemoryHierarchy:
    """Two cache levels over a fixed-latency main memory."""

    def __init__(
        self,
        l1i: CacheConfig = L1I_CONFIG,
        l1d: CacheConfig = L1D_CONFIG,
        l2: CacheConfig = L2_CONFIG,
        l1_latency: int = 1,
        l2_latency: int = 6,
        memory_latency: int = 100,
    ) -> None:
        self.l1i = SetAssociativeCache(l1i)
        self.l1d = SetAssociativeCache(l1d)
        self.l2 = SetAssociativeCache(l2)
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self.memory_latency = memory_latency
        self._warm_iline = -1
        self._d_line = self.l1d.config.line_size
        self._i_off = self.l1i.config.offset_bits

    def _access(self, l1: SetAssociativeCache, addr: int) -> AccessResult:
        if l1.access(addr):
            return AccessResult(self.l1_latency, True, True)
        if self.l2.access(addr):
            return AccessResult(self.l1_latency + self.l2_latency, False, True)
        return AccessResult(self.l1_latency + self.l2_latency + self.memory_latency, False, False)

    def access_instruction(self, addr: int) -> AccessResult:
        """Instruction fetch through L1I → L2 → memory."""
        return self._access(self.l1i, addr)

    def access_data(self, addr: int) -> AccessResult:
        """Load/store through L1D → L2 → memory."""
        return self._access(self.l1d, addr)

    # Functional-warming entry points: same replacement-state effects as
    # the access_* methods, but no AccessResult construction — these sit
    # in the statistical-sampling fast-forward hot loop, where latency
    # is never consumed and object allocation would dominate the cost.

    def warm_data(self, addr: int) -> None:
        """Touch *addr* through L1D → L2 without reporting a latency."""
        if not self.l1d.access(addr):
            self.l2.access(addr)

    def warm_data_span(self, addr: int, length: int) -> None:
        """Touch every line of ``[addr, addr + length)`` through L1D → L2.

        Batched word runs access line-by-line: consecutive same-line
        accesses only re-promote an already-MRU line, so the per-line
        walk leaves content and replacement order identical to the
        per-word access stream the detailed model sees.
        """
        line = self._d_line
        a = addr - (addr & (line - 1))
        end = addr + length
        while a < end:
            if not self.l1d.access(a):
                self.l2.access(a)
            a += line

    def warm_instruction(self, addr: int) -> None:
        """Touch the I-side line of *addr*, deduplicating repeats.

        The fetch model accesses the L1I once per fetch-line
        *transition*, not per instruction; tracking the last warmed
        line here reproduces that stream across compiled-block
        boundaries.
        """
        line = addr >> self._i_off
        if line == self._warm_iline:
            return
        self._warm_iline = line
        if not self.l1i.access(addr):
            self.l2.access(addr)

    def reset_stats(self) -> None:
        for cache in (self.l1i, self.l1d, self.l2):
            cache.reset_stats()


def Table2Hierarchy(l1_latency: int = 1) -> MemoryHierarchy:
    """The paper's Table 2 hierarchy, with a configurable L1 latency."""
    return MemoryHierarchy(l1_latency=l1_latency)
