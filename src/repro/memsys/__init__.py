"""Memory-system substrate: set-associative caches and a hierarchy model.

Provides the Table 2 cache configuration (64KB 2-way L1I, 64KB 4-way
L1D, 1MB 4-way unified L2, 100-cycle memory) plus the partial-tag
matching machinery of paper §5.2 / Figure 3.
"""

from repro.memsys.cache import CacheConfig, SetAssociativeCache
from repro.memsys.hierarchy import AccessResult, MemoryHierarchy, Table2Hierarchy
from repro.memsys.partial_tag import PartialTagOutcome, classify_partial_tag, partial_tag_lookup

__all__ = [
    "AccessResult",
    "CacheConfig",
    "MemoryHierarchy",
    "PartialTagOutcome",
    "SetAssociativeCache",
    "Table2Hierarchy",
    "classify_partial_tag",
    "partial_tag_lookup",
]
