"""Bit-serial load–store disambiguation (paper §5.1, Figure 2).

A load entering the LSQ compares its address against all prior stores
serially from bit 2 upward (bits 0–1 select bytes within a word and do
not participate).  At any partial width the comparison lands in one of
the paper's categories; Figure 2 shows how quickly loads converge to
"zero entries match" (safe to issue past all stores) or a unique
forwarding candidate.
"""

from __future__ import annotations

import enum
from collections.abc import Sequence

#: Byte-offset bits are excluded from the comparison (paper starts at bit 2).
FIRST_COMPARE_BIT = 2

#: The last address bit (paper: "until we reach the 31st bit").
LAST_COMPARE_BIT = 31


class LSDCategory(enum.Enum):
    """Figure 2 legend categories."""

    NO_STORES = "no stores in queue"
    ZERO_MATCH = "zero entries match"
    SINGLE_NONMATCH = "single entry - non-match"
    SINGLE_MATCH_ONE_STORE = "single entry - match (one store)"
    SINGLE_MATCH_MULT_STORES = "single entry - match (mult stores)"
    MULTI_SAME_ADDR = "mult entries match - same addr"
    MULTI_DIFF_ADDR = "mult entries match - diff addr"


#: Categories in which the store must (eventually) forward to the load.
FORWARDING_CATEGORIES = frozenset(
    {LSDCategory.SINGLE_MATCH_ONE_STORE, LSDCategory.SINGLE_MATCH_MULT_STORES, LSDCategory.MULTI_SAME_ADDR}
)


def _mask_through(high_bit: int) -> int:
    """Mask selecting bits FIRST_COMPARE_BIT..high_bit inclusive."""
    return ((1 << (high_bit + 1)) - 1) & ~((1 << FIRST_COMPARE_BIT) - 1)


def classify_disambiguation(load_addr: int, store_addrs: Sequence[int], high_bit: int) -> LSDCategory:
    """Classify the comparison using bits ``[2, high_bit]`` of the addresses.

    Args:
        load_addr: the load's effective address.
        store_addrs: addresses of all *prior* stores in the queue
            (assumed known, as in the paper's characterization).
        high_bit: highest address bit examined so far (2..31);
            31 is the conventional full comparison.
    """
    if not FIRST_COMPARE_BIT <= high_bit <= LAST_COMPARE_BIT:
        raise ValueError(f"high_bit must be in [2, 31], got {high_bit}")
    if not store_addrs:
        return LSDCategory.NO_STORES
    mask = _mask_through(high_bit)
    load_bits = load_addr & mask
    partial_matches = [s for s in store_addrs if (s & mask) == load_bits]
    if not partial_matches:
        return LSDCategory.ZERO_MATCH
    full_mask = _mask_through(LAST_COMPARE_BIT)
    if len(partial_matches) == 1:
        store = partial_matches[0]
        if (store & full_mask) == (load_addr & full_mask):
            if len(store_addrs) == 1:
                return LSDCategory.SINGLE_MATCH_ONE_STORE
            return LSDCategory.SINGLE_MATCH_MULT_STORES
        return LSDCategory.SINGLE_NONMATCH
    first = partial_matches[0] & full_mask
    if all((s & full_mask) == first for s in partial_matches):
        return LSDCategory.MULTI_SAME_ADDR
    return LSDCategory.MULTI_DIFF_ADDR


def bits_to_disambiguate(load_addr: int, store_addrs: Sequence[int]) -> int:
    """Smallest ``high_bit`` at which the load is disambiguated.

    "Disambiguated" means the partial comparison has become decisive:
    either zero stores match (the load may issue past them
    non-speculatively) or a single candidate remains (which Figure 2
    shows is then almost always the true forwarding store).  Returns 31
    when only the full comparison decides (e.g. multiple stores to the
    same address as the load cannot be told apart sooner, which is fine
    — same-address stores forward identically).
    """
    if not store_addrs:
        return FIRST_COMPARE_BIT
    for high_bit in range(FIRST_COMPARE_BIT, LAST_COMPARE_BIT + 1):
        category = classify_disambiguation(load_addr, store_addrs, high_bit)
        if category in (
            LSDCategory.ZERO_MATCH,
            LSDCategory.SINGLE_NONMATCH,  # will resolve to zero-match by 31
            LSDCategory.SINGLE_MATCH_ONE_STORE,
            LSDCategory.SINGLE_MATCH_MULT_STORES,
            LSDCategory.MULTI_SAME_ADDR,
        ):
            if category is LSDCategory.SINGLE_NONMATCH:
                continue  # not yet decisive: the lone candidate still mismatches later
            return high_bit
    return LAST_COMPARE_BIT
