"""Load/store queue substrate with partial-address disambiguation.

Implements the 32-entry unified LSQ of Table 2 and the bit-serial
early load–store disambiguation of paper §5.1 / Figure 2.
"""

from repro.lsq.disambiguation import (
    FIRST_COMPARE_BIT,
    LSDCategory,
    bits_to_disambiguate,
    classify_disambiguation,
)
from repro.lsq.queue import LoadStoreQueue, LSQEntry, PartialSearchResult

__all__ = [
    "FIRST_COMPARE_BIT",
    "LSDCategory",
    "LSQEntry",
    "LoadStoreQueue",
    "PartialSearchResult",
    "bits_to_disambiguate",
    "classify_disambiguation",
]
