"""Unified load/store queue model (Table 2: 32 entries).

Used by the timing simulator.  Entries are kept in program order; store
addresses may be only partially known (low-order slices computed while
high slices are still in flight), and loads search older stores with
whatever bits both sides have available — the mechanism behind early
load–store disambiguation (paper §5.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.lsq.disambiguation import FIRST_COMPARE_BIT


class PartialSearchResult(enum.Enum):
    """Outcome of a load's (partial) search of older stores."""

    NO_CONFLICT = "no-conflict"       # all older stores ruled out
    FORWARD = "forward"               # unique older store matches fully
    PARTIAL_CANDIDATE = "candidate"   # unique partial match, not yet confirmed
    AMBIGUOUS = "ambiguous"           # several partial matches remain
    UNKNOWN = "unknown"               # an older store has no usable bits yet


@dataclass
class LSQEntry:
    """One queue slot."""

    seq: int
    is_store: bool
    addr: int | None = None          # full effective address once known
    addr_bits_known: int = 0         # how many low-order address bits are valid
    addr_partial: int = 0            # the partially generated address image
    data_ready: bool = False         # store data available (stores only)
    issued: bool = False

    def known_mask(self, up_to_bit: int | None = None) -> int:
        """Mask of comparable bits: [2, addr_bits_known) intersected
        with the caller's window."""
        bits = self.addr_bits_known if up_to_bit is None else min(self.addr_bits_known, up_to_bit)
        if bits <= FIRST_COMPARE_BIT:
            return 0
        return ((1 << bits) - 1) & ~((1 << FIRST_COMPARE_BIT) - 1)


@dataclass
class LoadStoreQueue:
    """Program-ordered unified queue with partial-address search."""

    capacity: int = 32
    entries: list[LSQEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.capacity

    def insert(self, seq: int, is_store: bool) -> LSQEntry:
        """Allocate a slot at dispatch (program order).

        Raises:
            OverflowError: when the queue is full (caller must stall).
        """
        if self.full:
            raise OverflowError("LSQ full")
        entry = LSQEntry(seq=seq, is_store=is_store)
        self.entries.append(entry)
        return entry

    def set_address_bits(self, entry: LSQEntry, partial_addr: int, bits_known: int) -> None:
        """Record that the low *bits_known* bits of the address are valid."""
        entry.addr_partial = partial_addr
        entry.addr_bits_known = bits_known
        if bits_known >= 32:
            entry.addr = partial_addr & 0xFFFFFFFF

    def older_stores(self, seq: int) -> list[LSQEntry]:
        """Stores preceding instruction *seq*, program order."""
        return [e for e in self.entries if e.is_store and e.seq < seq]

    def search(self, load: LSQEntry, load_bits_known: int | None = None) -> tuple[PartialSearchResult, LSQEntry | None]:
        """Search older stores with the bits available on both sides.

        Mirrors the paper's early-disambiguation rules: compare only
        bits both the load and each store have generated (from bit 2
        up); a store whose comparable window is empty makes the search
        UNKNOWN (the paper's model does not let loads pass stores with
        unknown addresses).  Returns the decisive store for FORWARD /
        PARTIAL_CANDIDATE.
        """
        load_bits = load.addr_bits_known if load_bits_known is None else load_bits_known
        if load_bits <= FIRST_COMPARE_BIT:
            return PartialSearchResult.UNKNOWN, None
        stores = self.older_stores(load.seq)
        if not stores:
            return PartialSearchResult.NO_CONFLICT, None
        candidates: list[LSQEntry] = []
        for store in stores:
            window = min(load_bits, store.addr_bits_known)
            if window <= FIRST_COMPARE_BIT:
                return PartialSearchResult.UNKNOWN, None
            mask = ((1 << window) - 1) & ~((1 << FIRST_COMPARE_BIT) - 1)
            if (store.addr_partial & mask) == (load.addr_partial & mask):
                candidates.append(store)
        if not candidates:
            return PartialSearchResult.NO_CONFLICT, None
        if len(candidates) == 1:
            store = candidates[0]
            window = min(load_bits, store.addr_bits_known)
            if window >= 32:
                return PartialSearchResult.FORWARD, store
            return PartialSearchResult.PARTIAL_CANDIDATE, store
        # Multiple partial matchers: if they are provably the same
        # address and all fully known, the youngest forwards.
        if all(c.addr is not None for c in candidates) and load.addr is not None:
            exact = [c for c in candidates if c.addr == load.addr]
            if len(exact) == len(candidates):
                return PartialSearchResult.FORWARD, max(exact, key=lambda e: e.seq)
            if not exact:
                return PartialSearchResult.NO_CONFLICT, None
            return PartialSearchResult.FORWARD, max(exact, key=lambda e: e.seq)
        return PartialSearchResult.AMBIGUOUS, None

    def remove(self, entry: LSQEntry) -> None:
        """Retire an entry at commit."""
        self.entries.remove(entry)

    def clear_after(self, seq: int) -> None:
        """Squash entries younger than *seq* (branch misprediction flush)."""
        self.entries = [e for e in self.entries if e.seq <= seq]
