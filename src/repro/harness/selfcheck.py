"""Guest self-check verification.

Every workload in the suite ends with the shared reporting epilogue
(:mod:`repro.workloads.common`): it prints ``<name>:<checksum>\\n`` and
exits.  A run whose output does not match that contract — the guest
never halted, printed the wrong banner, or produced a non-numeric
checksum — indicates guest-visible corruption and raises
:class:`~repro.harness.errors.GuestSelfCheckFailure`.
"""

from __future__ import annotations

from repro.harness.errors import GuestSelfCheckFailure


def verify_guest_output(machine, name: str, expected_checksum: int | None = None) -> int:
    """Validate a finished workload run; returns the printed checksum.

    Args:
        machine: a (finished) :class:`~repro.emulator.machine.Machine`.
        name: the workload's benchmark name (the expected banner).
        expected_checksum: when given, the printed checksum must equal
            it exactly.

    Raises:
        GuestSelfCheckFailure: the guest never halted, the banner is
            wrong, the checksum is not an integer, or it mismatches
            *expected_checksum*.
    """
    if not machine.halted:
        raise GuestSelfCheckFailure(
            f"{name}: guest did not halt within its budget ({machine.instret} instructions retired)"
        )
    out = machine.stdout
    prefix = f"{name}:"
    if not out.startswith(prefix):
        raise GuestSelfCheckFailure(
            f"{name}: self-check banner missing; guest printed {out[:60]!r}"
        )
    body = out[len(prefix):].strip()
    try:
        checksum = int(body.split()[0]) if body else int("")
    except (ValueError, IndexError):
        raise GuestSelfCheckFailure(
            f"{name}: self-check checksum is not an integer: {body[:60]!r}"
        ) from None
    if expected_checksum is not None and checksum != expected_checksum:
        raise GuestSelfCheckFailure(
            f"{name}: self-check checksum mismatch: got {checksum}, expected {expected_checksum}"
        )
    return checksum


__all__ = ["verify_guest_output"]
