"""Seeded fault injection with golden-model cross-checking.

The paper's premise is that a sliced datapath must provably agree with
full-width architectural execution.  This engine actively attacks that
agreement: it flips single bits in (1) instruction operands, (2) slice
results, and (3) serialized trace fields, then cross-checks the sliced
computation (:mod:`repro.core.slicing`) against the full-width
architectural result and classifies every injected fault:

* **detected** — the cross-check (or the trace checksum) observed a
  divergence from the golden model;
* **masked** — the corrupted value is architecturally invisible (e.g. a
  flipped operand bit that an AND with zero annihilates, or flipping
  one of several differing bits under an equality test);
* **silent** — the corruption changed the outcome *and* no check caught
  it.  A correct implementation reports **zero** silent corruptions,
  and the campaign is the executable proof.

Campaigns are fully deterministic given their seed, so a campaign
failure in CI is reproducible bit-for-bit.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field, replace

from repro.core.slicing import (
    join_slices,
    sliced_add,
    sliced_logic,
    sliced_sub,
    split_value,
)
from repro.emulator.tracefile import pack_trace, unpack_trace
from repro.harness.errors import TraceCorruption

_M = 0xFFFFFFFF

#: Fault kinds a campaign draws from (with their relative weights).
FAULT_KINDS = ("operand", "slice", "trace")
_KIND_WEIGHTS = (5, 3, 2)

#: Mnemonic → abstract op for two-register sliceable instructions.
_TWO_REG_OPS = {
    "addu": "add", "add": "add", "subu": "sub", "sub": "sub",
    "and": "and", "or": "or", "xor": "xor", "nor": "nor",
    "beq": "eq", "bne": "eq",
}
#: Immediate forms: only the register operand is a fault target.
_IMM_SIGNED_OPS = {"addiu": "add", "addi": "add"}
_IMM_LOGIC_OPS = {"andi": "and", "ori": "or", "xori": "xor"}


@dataclass(frozen=True)
class _Candidate:
    """One sliceable dynamic instruction usable as a fault target."""

    op: str                 # "add" | "sub" | "and" | "or" | "xor" | "nor" | "eq"
    a: int
    b: int
    mutable: tuple[int, ...]  # operand indices a fault may flip (0 = a, 1 = b)
    pc: int


def _full(op: str, a: int, b: int) -> int:
    """Full-width architectural result — the golden model."""
    if op == "add":
        return (a + b) & _M
    if op == "sub":
        return (a - b) & _M
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "nor":
        return ~(a | b) & _M
    if op == "eq":
        return int(a == b)
    raise ValueError(f"unknown op {op!r}")


def _slices(op: str, a: int, b: int, num_slices: int) -> tuple[int, ...]:
    """Per-slice result values of the sliced datapath."""
    if op == "add":
        return sliced_add(a, b, num_slices)[0]
    if op == "sub":
        return sliced_sub(a, b, num_slices)[0]
    return sliced_logic(op, a, b, num_slices)


def _sliced(op: str, a: int, b: int, num_slices: int) -> int:
    """The sliced datapath's full result, reassembled."""
    if op == "eq":
        a_s, b_s = split_value(a, num_slices), split_value(b, num_slices)
        return int(all(x == y for x, y in zip(a_s, b_s)))
    return join_slices(_slices(op, a, b, num_slices))


def candidates(trace) -> list[_Candidate]:
    """Extract every sliceable dynamic instruction from *trace*."""
    out: list[_Candidate] = []
    for r in trace:
        m = r.inst.mnemonic
        if m in _TWO_REG_OPS:
            out.append(_Candidate(_TWO_REG_OPS[m], r.rs_val, r.rt_val, (0, 1), r.pc))
        elif m in _IMM_SIGNED_OPS:
            out.append(_Candidate(_IMM_SIGNED_OPS[m], r.rs_val, r.inst.imm & _M, (0,), r.pc))
        elif m in _IMM_LOGIC_OPS:
            out.append(_Candidate(_IMM_LOGIC_OPS[m], r.rs_val, r.inst.imm & 0xFFFF, (0,), r.pc))
    return out


@dataclass
class KindStats:
    """Outcome counters for one fault kind."""

    injected: int = 0
    detected: int = 0
    masked: int = 0
    silent: int = 0


@dataclass
class CampaignReport:
    """Aggregate outcome of one fault-injection campaign."""

    seed: int
    slice_counts: tuple[int, ...]
    stats: dict[str, KindStats] = field(default_factory=dict)
    silent_examples: list[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return sum(s.injected for s in self.stats.values())

    @property
    def detected_total(self) -> int:
        return sum(s.detected for s in self.stats.values())

    @property
    def masked_total(self) -> int:
        return sum(s.masked for s in self.stats.values())

    @property
    def silent_total(self) -> int:
        return sum(s.silent for s in self.stats.values())

    @property
    def clean(self) -> bool:
        """True when every fault was detected or architecturally masked."""
        return self.silent_total == 0

    def rows(self) -> list[tuple]:
        out = [
            (kind, s.injected, s.detected, s.masked, s.silent)
            for kind, s in sorted(self.stats.items())
        ]
        out.append(("total", self.total, self.detected_total, self.masked_total, self.silent_total))
        return out

    def render(self) -> str:
        from repro.experiments.report import render_table

        table = render_table(
            ["Fault kind", "Injected", "Detected", "Masked", "Silent"],
            self.rows(),
            title=f"Fault-injection campaign (seed {self.seed}, slices {self.slice_counts})",
        )
        verdict = (
            "verdict: OK — every fault detected or architecturally masked"
            if self.clean
            else f"verdict: FAILED — {self.silent_total} silent corruption(s)!\n"
            + "\n".join(f"  {e}" for e in self.silent_examples[:10])
        )
        return f"{table}\n{verdict}"


def run_campaign(
    trace,
    n_faults: int = 200,
    seed: int = 2003,
    slice_counts: tuple[int, ...] = (2, 4),
    kinds: tuple[str, ...] = FAULT_KINDS,
) -> CampaignReport:
    """Inject *n_faults* seeded single-bit faults and classify each one.

    Args:
        trace: iterable of :class:`~repro.emulator.trace.TraceRecord`
            to draw fault targets from.
        n_faults: campaign size.
        seed: RNG seed — identical seeds give identical campaigns.
        slice_counts: datapath slicings to cross-check (paper: x2, x4).
        kinds: subset of :data:`FAULT_KINDS` to draw from.

    Raises:
        ValueError: the trace contains no sliceable instructions.
    """
    records = list(trace)
    cands = candidates(records)
    if not cands:
        raise ValueError("trace contains no sliceable instructions to inject faults into")
    slice_cands = [c for c in cands if c.op != "eq"]
    rng = random.Random(seed)
    weights = [_KIND_WEIGHTS[FAULT_KINDS.index(k)] for k in kinds]
    packed = pack_trace(records[: min(len(records), 256)])
    trace_fields = [k for k in packed if packed[k].size]
    report = CampaignReport(seed=seed, slice_counts=tuple(slice_counts))
    for k in kinds:
        report.stats[k] = KindStats()

    for _ in range(n_faults):
        kind = rng.choices(kinds, weights=weights)[0]
        st = report.stats[kind]
        st.injected += 1
        num_slices = rng.choice(slice_counts)

        if kind == "operand":
            c = rng.choice(cands)
            which = rng.choice(c.mutable)
            bit = rng.randrange(32)
            a, b = c.a, c.b
            if which == 0:
                a ^= 1 << bit
            else:
                b ^= 1 << bit
            golden = _full(c.op, c.a, c.b)
            full_faulty = _full(c.op, a, b)
            sliced_faulty = _sliced(c.op, a, b, num_slices)
            if sliced_faulty != full_faulty:
                st.silent += 1
                report.silent_examples.append(
                    f"operand fault at pc={c.pc:#x} op={c.op} bit={bit}: "
                    f"sliced {sliced_faulty:#x} != full {full_faulty:#x}"
                )
            elif full_faulty != golden:
                st.detected += 1
            else:
                st.masked += 1

        elif kind == "slice":
            c = rng.choice(slice_cands)
            width = 32 // num_slices
            k = rng.randrange(num_slices)
            bit = rng.randrange(width)
            corrupted = list(_slices(c.op, c.a, c.b, num_slices))
            corrupted[k] ^= 1 << bit
            golden = _full(c.op, c.a, c.b)
            if join_slices(corrupted) != golden:
                st.detected += 1
            else:
                st.silent += 1
                report.silent_examples.append(
                    f"slice fault at pc={c.pc:#x} op={c.op} slice={k} bit={bit}: "
                    f"corrupted slice reassembled to the golden value"
                )

        else:  # trace-field fault
            arrays = {name: arr.copy() for name, arr in packed.items()}
            fname = rng.choice(trace_fields)
            buf = arrays[fname].view("uint8")
            byte = rng.randrange(buf.size)
            buf[byte] ^= 1 << rng.randrange(8)
            try:
                unpack_trace(arrays)
            except TraceCorruption:
                st.detected += 1
            else:
                st.silent += 1
                report.silent_examples.append(
                    f"trace fault in field {fname!r} byte {byte}: "
                    f"corrupted arrays unpacked without a checksum error"
                )

    return report


# --------------------------------------------------------------------------
# Process-level fault injection (chaos testing for the sweep supervisor)
# --------------------------------------------------------------------------

#: Environment variable carrying a :class:`ProcessFaultPlan` spec into
#: worker processes and CLI subprocesses (``scripts/chaos_sweep.py``).
CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Faults a worker can suffer, in the order the decision roll consumes
#: its probability mass.
PROCESS_FAULT_KINDS = ("kill", "stall", "corrupt")


@dataclass(frozen=True)
class ProcessFaultPlan:
    """Seeded plan of process-level faults for chaos-testing a sweep.

    Unlike the single-bit data faults above, these attack the *worker
    processes* of a supervised sweep: ``kill`` SIGKILLs the worker
    before it touches the cell, ``stall`` makes it sleep past the
    supervisor's cell timeout, and ``corrupt`` flips one byte of the
    serialized result payload after its checksum was computed (so the
    parent's integrity check must reject it).

    Decisions are a pure function of ``(seed, cell id, attempt)``, so a
    campaign replays bit-for-bit — and a cell that was killed on its
    first attempt rolls fresh dice on the retry, which is what lets a
    chaotic sweep still converge to the clean run's exact results.
    """

    seed: int = 2003
    kill_rate: float = 0.0
    stall_rate: float = 0.0
    corrupt_rate: float = 0.0
    stall_seconds: float = 30.0

    def decide(self, cell_id: str, attempt: int) -> str | None:
        """The fault (if any) this worker suffers on this attempt."""
        roll = random.Random(f"{self.seed}|{cell_id}|{attempt}").random()
        if roll < self.kill_rate:
            return "kill"
        if roll < self.kill_rate + self.stall_rate:
            return "stall"
        if roll < self.kill_rate + self.stall_rate + self.corrupt_rate:
            return "corrupt"
        return None

    def corrupt_byte(self, cell_id: str, attempt: int, size: int) -> tuple[int, int]:
        """Deterministic (offset, xor-mask) for a ``corrupt`` fault."""
        rng = random.Random(f"{self.seed}|{cell_id}|{attempt}|corrupt")
        return rng.randrange(max(size, 1)), 1 << rng.randrange(8)

    # ------------------------------------------------------------- spec IO

    def to_spec(self) -> str:
        """Compact ``key=value,...`` form for ``$REPRO_CHAOS``."""
        return (
            f"seed={self.seed},kill={self.kill_rate:g},stall={self.stall_rate:g},"
            f"corrupt={self.corrupt_rate:g},stall_seconds={self.stall_seconds:g}"
        )

    @classmethod
    def from_spec(cls, spec: str) -> "ProcessFaultPlan":
        """Parse a ``key=value,...`` spec (unknown keys are an error)."""
        plan = cls()
        fields_by_key = {
            "seed": ("seed", int),
            "kill": ("kill_rate", float),
            "stall": ("stall_rate", float),
            "corrupt": ("corrupt_rate", float),
            "stall_seconds": ("stall_seconds", float),
        }
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, _, value = item.partition("=")
            if key not in fields_by_key:
                raise ValueError(
                    f"unknown chaos spec key {key!r}; expected one of {sorted(fields_by_key)}"
                )
            name, cast = fields_by_key[key]
            plan = replace(plan, **{name: cast(value)})
        return plan

    @classmethod
    def from_env(cls) -> "ProcessFaultPlan | None":
        """The plan carried by ``$REPRO_CHAOS``, or ``None`` if unset."""
        spec = os.environ.get(CHAOS_ENV_VAR, "").strip()
        return cls.from_spec(spec) if spec else None

    @property
    def active(self) -> bool:
        return (self.kill_rate + self.stall_rate + self.corrupt_rate) > 0


@dataclass
class CampaignSuite:
    """Per-benchmark campaign reports, renderable like an experiment."""

    reports: dict[str, CampaignReport]

    @property
    def silent_total(self) -> int:
        return sum(r.silent_total for r in self.reports.values())

    @property
    def clean(self) -> bool:
        return self.silent_total == 0

    def rows(self) -> list[tuple]:
        return [
            (bench, kind, injected, detected, masked, silent)
            for bench, report in sorted(self.reports.items())
            for kind, injected, detected, masked, silent in report.rows()
        ]

    def render(self) -> str:
        parts = [f"== {bench} ==\n{report.render()}" for bench, report in sorted(self.reports.items())]
        return "\n\n".join(parts)


__all__ = [
    "CHAOS_ENV_VAR",
    "FAULT_KINDS",
    "PROCESS_FAULT_KINDS",
    "CampaignReport",
    "CampaignSuite",
    "KindStats",
    "ProcessFaultPlan",
    "candidates",
    "run_campaign",
]
