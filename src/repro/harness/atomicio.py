"""Crash-safe file writes shared by results and observability IO.

One primitive: write to a temp file in the destination directory,
fsync, then ``os.replace`` — so readers never observe a half-written
artifact and an interrupted run never clobbers a good one.  Extracted
from :mod:`repro.experiments.results_io` so the observability layer
(metrics dumps, run manifests, perf snapshots) gets the same guarantee
without depending on the experiments package.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path


def atomic_write_text(path: Path, text: str, sync_dir: bool = False) -> None:
    """Write *text* to *path* via temp file + fsync + rename.

    With *sync_dir* the parent directory is fsynced after the rename as
    well, so the *replacement itself* survives a host crash — the extra
    guarantee a crash-safe journal needs (a metrics dump that reverts
    to its previous version after a power cut is an inconvenience; a
    sweep journal that does so would replay completed work).
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent) or ".", prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if sync_dir:
        try:
            dfd = os.open(str(path.parent) or ".", os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(dfd)
        except OSError:  # pragma: no cover - fsync unsupported on dirs
            pass
        finally:
            os.close(dfd)


def atomic_write_json(path: Path, payload: dict, indent: int = 2, sync_dir: bool = False) -> None:
    """Serialize *payload* deterministically and write it atomically."""
    atomic_write_text(
        Path(path), json.dumps(payload, indent=indent, sort_keys=True), sync_dir=sync_dir
    )


__all__ = ["atomic_write_json", "atomic_write_text"]
