"""Structured error taxonomy for the resilient experiment harness.

Every failure the harness can classify derives from :class:`HarnessError`,
so sweep drivers can catch one base class and still report precise
categories.  The emulator-facing subset derives from
:class:`EmulatorError`, preserving the historical name that the rest of
the codebase (and its tests) already catch.

This module is intentionally a leaf — it imports nothing from
``repro`` — so the emulator, memory, timing and experiments layers can
all share the taxonomy without import cycles.
"""

from __future__ import annotations


class HarnessError(RuntimeError):
    """Base class for every structured failure the harness classifies."""


class EmulatorError(HarnessError):
    """Illegal guest execution (bad PC, unknown op, runaway loop)."""


class IllegalInstruction(EmulatorError):
    """The PC left the text segment or the fetched word does not decode."""


class MemoryFault(EmulatorError):
    """An invalid guest memory access (e.g. a misaligned word access)."""


class RunawayExecution(EmulatorError):
    """A watchdog budget (step count or wall clock) was exhausted."""


class GuestSelfCheckFailure(HarnessError):
    """A workload ran but did not produce its expected self-check output."""


class TraceCorruption(HarnessError, ValueError):
    """A serialized trace failed checksum, field or format validation.

    Also a :class:`ValueError` so pre-taxonomy callers that caught
    ``ValueError`` from :func:`repro.emulator.tracefile.unpack_trace`
    keep working.
    """


class ResultCorruption(HarnessError, ValueError):
    """A serialized result file failed checksum or format validation.

    Also a :class:`ValueError` for the same compatibility reason as
    :class:`TraceCorruption`.
    """


class JournalCorruption(HarnessError, ValueError):
    """A sweep journal failed checksum/format validation, or a resume
    was attempted against a journal recorded for a different sweep
    (grid, budgets, or program images changed).

    Also a :class:`ValueError` for consistency with the other
    serialization errors.
    """


class WorkerCrash(HarnessError):
    """A supervised worker process died (or stalled past its heartbeat
    budget) while holding a sweep cell.

    Raised parent-side by the supervisor; the cell it interrupted is
    retried on a respawned worker and, past the retry budget,
    quarantined as a :class:`~repro.experiments.runner.FailureRecord`.
    """


__all__ = [
    "EmulatorError",
    "GuestSelfCheckFailure",
    "HarnessError",
    "IllegalInstruction",
    "JournalCorruption",
    "MemoryFault",
    "ResultCorruption",
    "RunawayExecution",
    "TraceCorruption",
    "WorkerCrash",
]
