"""Step-budget and wall-clock watchdogs for long-running simulations.

A :class:`Watchdog` is polled from inside an execution loop (the
emulator's interpreter, the timing simulator's record loop) and raises
:class:`~repro.harness.errors.RunawayExecution` when either budget is
exhausted.  The step budget is checked on every poll (one integer
compare); the wall clock is sampled only every *check_every* polls so
the watchdog stays out of the hot path.
"""

from __future__ import annotations

import time

from repro.harness.errors import RunawayExecution


class Watchdog:
    """A combined step-count and wall-clock budget.

    Args:
        max_steps: hard step budget; ``poll(steps)`` raises once *steps*
            exceeds it.  ``None`` disables the step budget.
        max_seconds: wall-clock budget measured from :meth:`start`.
            ``None`` disables the clock budget.
        check_every: how many polls between wall-clock samples (the
            clock is also sampled on every argument-less ``poll()``).
        clock: monotonic time source, injectable for tests.
        label: context string included in the raised message.
    """

    __slots__ = ("max_steps", "max_seconds", "check_every", "label", "_clock", "_t0", "_polls")

    def __init__(
        self,
        max_steps: int | None = None,
        max_seconds: float | None = None,
        check_every: int = 2048,
        clock=time.monotonic,
        label: str = "",
    ) -> None:
        if max_steps is None and max_seconds is None:
            raise ValueError("watchdog needs a step budget, a wall-clock budget, or both")
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.max_steps = max_steps
        self.max_seconds = max_seconds
        self.check_every = check_every
        self.label = label
        self._clock = clock
        self._t0: float | None = None
        self._polls = 0

    # ------------------------------------------------------------------ clock

    def start(self) -> "Watchdog":
        """Arm the wall clock if it is not already running (idempotent)."""
        if self._t0 is None:
            self._t0 = self._clock()
        return self

    def restart(self) -> "Watchdog":
        """Re-arm the wall clock and reset the poll counter."""
        self._t0 = self._clock()
        self._polls = 0
        return self

    def elapsed(self) -> float:
        """Seconds since :meth:`start` (0.0 if never started)."""
        return 0.0 if self._t0 is None else self._clock() - self._t0

    # ------------------------------------------------------------------- poll

    def poll(self, steps: int | None = None) -> None:
        """Check the budgets; raise :class:`RunawayExecution` on breach.

        *steps* is the caller's progress counter (checked against
        ``max_steps``).  Passing ``None`` forces a wall-clock sample
        regardless of *check_every*.
        """
        where = f" in {self.label}" if self.label else ""
        if self.max_steps is not None and steps is not None and steps > self.max_steps:
            raise RunawayExecution(
                f"step budget exhausted{where}: {steps} steps > limit {self.max_steps}"
            )
        if self.max_seconds is None:
            return
        self._polls += 1
        if steps is not None and self._polls % self.check_every:
            return
        if self._t0 is None:
            self.start()
            return
        elapsed = self._clock() - self._t0
        if elapsed > self.max_seconds:
            raise RunawayExecution(
                f"wall-clock budget exhausted{where}: {elapsed:.2f}s > limit {self.max_seconds:g}s"
            )


__all__ = ["Watchdog"]
