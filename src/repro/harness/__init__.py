"""Robustness subsystem: error taxonomy, watchdogs, fault injection.

The harness makes long sweeps survivable: structured errors so failures
classify instead of surfacing as raw tracebacks
(:mod:`repro.harness.errors`), step/wall-clock watchdogs so runaway
guests are bounded (:mod:`repro.harness.watchdog`), guest self-check
validation (:mod:`repro.harness.selfcheck`), and a seeded
fault-injection engine that proves the sliced datapath's golden-model
cross-check catches every injected bit flip
(:mod:`repro.harness.faults` — imported lazily; it pulls in the
emulator's trace serialization).
"""

from repro.harness.errors import (
    EmulatorError,
    GuestSelfCheckFailure,
    HarnessError,
    IllegalInstruction,
    MemoryFault,
    ResultCorruption,
    RunawayExecution,
    TraceCorruption,
)
from repro.harness.selfcheck import verify_guest_output
from repro.harness.watchdog import Watchdog

__all__ = [
    "EmulatorError",
    "GuestSelfCheckFailure",
    "HarnessError",
    "IllegalInstruction",
    "MemoryFault",
    "ResultCorruption",
    "RunawayExecution",
    "TraceCorruption",
    "Watchdog",
    "verify_guest_output",
]
