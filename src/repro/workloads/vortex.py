"""Synthetic ``vortex``: pointer-rich object store traversal.

Reproduces the paper's Figure 9 address-generation idiom: record
addresses formed by ``sll`` (index scaling), ``lui`` (segment base) and
``addu``, followed by ``lw`` with a large displacement, then short
pointer chases through ``next`` links and field updates — the OO
database access pattern of the original.
"""

from __future__ import annotations

from repro.workloads.common import epilogue, rand_asm, scaled_size

MAX_FOOTPRINT_DIVISOR = 4
DEFAULT_ITERS = 3500
_NUM_RECORDS = 8192   # power of two
_RECORD_SHIFT = 5    # 32-byte records
# record layout: +0 key, +4 value, +8 next index, +12 hits, rest pad


def source(iters: int = DEFAULT_ITERS, footprint_divisor: int = 1) -> str:
    """Assembly source for the vortex workload with *iters* transactions.

    *footprint_divisor* shrinks the data footprint (power of two),
    giving the SPEC-style test/train/ref input profiles.
    """
    div = min(footprint_divisor, MAX_FOOTPRINT_DIVISOR)
    records = scaled_size(_NUM_RECORDS, div)
    return f"""
# vortex: object store of {records} 32-byte records
        .data
        .align 2
store:  .space {records * (1 << _RECORD_SHIFT)}
        .text
main:   la   $s0, store
        li   $s7, 0

# --- initialize records ------------------------------------------------------
        li   $s3, 0
vinit:  sll  $t0, $s3, {_RECORD_SHIFT}
        addu $t0, $s0, $t0
        jal  rand
        andi $t1, $v0, 0xffff
        sw   $t1, 0($t0)         # key
        jal  rand
        andi $t1, $v0, 0xff
        sw   $t1, 4($t0)         # value
        jal  rand
        andi $t1, $v0, {records - 1}
        sw   $t1, 8($t0)         # next index
        sw   $0, 12($t0)         # hits
        addiu $s3, $s3, 1
        slti $t1, $s3, {records}
        bne  $t1, $0, vinit

        li   $s6, {iters}
txn:    # pick a record index, form its address Figure-9 style
        jal  rand
        andi $s3, $v0, {records - 1}
        sll  $t0, $s3, {_RECORD_SHIFT}   # sll: scale index
        la   $t1, store                  # lui/ori: segment base
        addu $t1, $t1, $t0               # addu: record address
        lw   $t2, 4($t1)                 # lw: value field
        addu $s7, $s7, $t2
        # chase next links three deep, bumping hit counters
        li   $t7, 3
chase:  lw   $t3, 8($t1)                 # next index
        sll  $t3, $t3, {_RECORD_SHIFT}
        la   $t1, store
        addu $t1, $t1, $t3
        lw   $t4, 12($t1)                # hits
        addiu $t4, $t4, 1
        sw   $t4, 12($t1)
        lw   $t2, 0($t1)                 # key
        xor  $s7, $s7, $t2
        addiu $t7, $t7, -1
        bgtz $t7, chase
        # occasionally rewrite a next pointer (store mutation)
        andi $t5, $s6, 0x7
        bne  $t5, $0, txn_next
        jal  rand
        andi $t5, $v0, {records - 1}
        sw   $t5, 8($t1)
txn_next:
        addiu $s6, $s6, -1
        bgtz $s6, txn
        j    finish
{rand_asm(seed=0x0B1EC701)}
{epilogue("vortex")}
"""
