"""Synthetic ``mcf``: reduced-cost relaxation over network arcs.

Mirrors min-cost-flow's hot loop: streaming through an arc array of
(tail, head, cost) records, two dependent indexed loads of node
potentials per arc, a signed compare, and occasional potential updates
— a memory-bound, branchy kernel like the original.
"""

from __future__ import annotations

from repro.workloads.common import epilogue, rand_asm, scaled_size

MAX_FOOTPRINT_DIVISOR = 4
DEFAULT_ITERS = 2
_NUM_NODES = 4096
_NUM_ARCS = 16384
_ARC_SIZE = 12  # tail, head, cost words


def source(iters: int = DEFAULT_ITERS, footprint_divisor: int = 1) -> str:
    """Assembly source for the mcf workload with *iters* relaxation sweeps.

    *footprint_divisor* shrinks the data footprint (power of two),
    giving the SPEC-style test/train/ref input profiles.
    """
    div = min(footprint_divisor, MAX_FOOTPRINT_DIVISOR)
    nodes = scaled_size(_NUM_NODES, div)
    arcs = scaled_size(_NUM_ARCS, div)
    return f"""
# mcf: arc relaxation over {arcs} arcs / {nodes} nodes
        .data
        .align 2
arcs:   .space {arcs * _ARC_SIZE}
potential: .space {nodes * 4}
        .text
main:   la   $s0, arcs
        la   $s1, potential
        li   $s7, 0

# --- build random arcs ----------------------------------------------------
        li   $s3, 0
abuild: sll  $t0, $s3, 3
        sll  $t1, $s3, 2
        addu $t0, $t0, $t1       # idx * 12
        addu $t0, $s0, $t0
        jal  rand
        andi $t1, $v0, {nodes - 1}
        sw   $t1, 0($t0)         # tail
        jal  rand
        andi $t1, $v0, {nodes - 1}
        sw   $t1, 4($t0)         # head
        jal  rand
        andi $t1, $v0, 0x3ff
        addiu $t1, $t1, -512     # cost in [-512, 511]
        sw   $t1, 8($t0)
        addiu $s3, $s3, 1
        slti $t1, $s3, {arcs}
        bne  $t1, $0, abuild

# --- initial potentials ----------------------------------------------------
        li   $s3, 0
pinit:  sll  $t0, $s3, 2
        addu $t0, $s1, $t0
        jal  rand
        andi $t1, $v0, 0xff
        sw   $t1, 0($t0)
        addiu $s3, $s3, 1
        slti $t1, $s3, {nodes}
        bne  $t1, $0, pinit

        li   $s6, {iters}
sweep_iter:
        li   $s3, 0              # arc index
        move $s4, $s0            # arc cursor
arc_loop:
        lw   $t0, 0($s4)         # tail
        lw   $t1, 4($s4)         # head
        lw   $t2, 8($s4)         # cost
        sll  $t0, $t0, 2
        addu $t0, $s1, $t0
        lw   $t3, 0($t0)         # pot[tail]   (dependent load)
        sll  $t1, $t1, 2
        addu $t1, $s1, $t1
        lw   $t4, 0($t1)         # pot[head]   (dependent load)
        addu $t5, $t2, $t3
        subu $t5, $t5, $t4       # reduced cost
        bgez $t5, arc_next       # non-negative: nothing to do
        # negative reduced cost: pull head potential halfway toward legality
        sra  $t6, $t5, 1
        addu $t4, $t4, $t6
        sw   $t4, 0($t1)
        xor  $s7, $s7, $t5
        addiu $s7, $s7, 1
arc_next:
        addiu $s4, $s4, {_ARC_SIZE}
        addiu $s3, $s3, 1
        slti $t0, $s3, {arcs}
        bne  $t0, $0, arc_loop
        addiu $s6, $s6, -1
        bgtz $s6, sweep_iter
        j    finish
{rand_asm(seed=0x00FC0FFE)}
{epilogue("mcf")}
"""
