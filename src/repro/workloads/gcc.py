"""Synthetic ``gcc``: token scanner plus symbol hash table.

Mirrors a compiler front end's hot loops: per-character class lookup,
an indirect jump through a dispatch table (exercising the BTB), rolling
identifier hashes, and linear-probed symbol-table insertion/lookup.
"""

from __future__ import annotations

from repro.workloads.common import epilogue, rand_asm, scaled_size

MAX_FOOTPRINT_DIVISOR = 4
DEFAULT_ITERS = 3
_TEXT_SIZE = 8192
_SYMTAB_SLOTS = 512  # power of two


def source(iters: int = DEFAULT_ITERS, footprint_divisor: int = 1) -> str:
    """Assembly source for the gcc workload with *iters* scan passes.

    *footprint_divisor* shrinks the data footprint (power of two),
    giving the SPEC-style test/train/ref input profiles.
    """
    div = min(footprint_divisor, MAX_FOOTPRINT_DIVISOR)
    text_size = scaled_size(_TEXT_SIZE, div)
    slots = scaled_size(_SYMTAB_SLOTS, div)
    return f"""
# gcc: character-class dispatch + symbol hashing
        .data
        .align 2
text:   .space {text_size}
class_tab: .space 256            # 0 space, 1 alpha, 2 digit, 3 punct
symtab: .space {slots * 8}   # (hash, count) pairs
jump_tab: .word on_space, on_alpha, on_digit, on_punct
        .text
main:   la   $s0, text
        la   $s1, class_tab
        la   $s2, symtab
        li   $s7, 0

# --- build class table --------------------------------------------------
        li   $t0, 0
ctab:   li   $t1, 0              # default: space-like
        slti $t2, $t0, 97
        bne  $t2, $0, not_alpha
        slti $t2, $t0, 123
        beq  $t2, $0, not_alpha
        li   $t1, 1              # 'a'..'z'
not_alpha:
        slti $t2, $t0, 48
        bne  $t2, $0, not_digit
        slti $t2, $t0, 58
        beq  $t2, $0, not_digit
        li   $t1, 2              # '0'..'9'
not_digit:
        slti $t2, $t0, 33
        bne  $t2, $0, have_class
        slti $t2, $t0, 48
        beq  $t2, $0, have_class
        li   $t1, 3              # punctuation band
have_class:
        addu $t3, $s1, $t0
        sb   $t1, 0($t3)
        addiu $t0, $t0, 1
        slti $t2, $t0, 256
        bne  $t2, $0, ctab

# --- fill text with a plausible token mix -------------------------------
        li   $s3, 0
tfill:  jal  rand
        andi $t0, $v0, 0x3f
        slti $t1, $t0, 40
        beq  $t1, $0, pick_other
        andi $t0, $v0, 25
        addiu $t0, $t0, 97       # letter (most common)
        b    tput
pick_other:
        slti $t1, $t0, 52
        beq  $t1, $0, pick_punct
        andi $t0, $v0, 7
        addiu $t0, $t0, 48       # digit
        b    tput
pick_punct:
        slti $t1, $t0, 58
        beq  $t1, $0, pick_space
        andi $t0, $v0, 7
        addiu $t0, $t0, 40       # punct band
        b    tput
pick_space:
        li   $t0, 32
tput:   addu $t2, $s0, $s3
        sb   $t0, 0($t2)
        addiu $s3, $s3, 1
        slti $t1, $s3, {text_size}
        bne  $t1, $0, tfill

        li   $s6, {iters}
scan_iter:
        jal  scan
        # mutate one character between passes
        jal  rand
        andi $t0, $v0, {text_size - 1}
        addu $t2, $s0, $t0
        jal  rand
        andi $t1, $v0, 25
        addiu $t1, $t1, 97
        sb   $t1, 0($t2)
        addiu $s6, $s6, -1
        bgtz $s6, scan_iter
        j    finish

# --- one scan pass -------------------------------------------------------
scan:   move $s5, $ra            # save return (leaf calls below use $ra? no, but keep)
        li   $s3, 0              # cursor
        li   $s4, 0              # current identifier hash
sloop:  slti $t0, $s3, {text_size}
        beq  $t0, $0, sdone
        addu $t1, $s0, $s3
        lbu  $t2, 0($t1)         # character
        addu $t3, $s1, $t2
        lbu  $t4, 0($t3)         # class
        sll  $t4, $t4, 2
        la   $t5, jump_tab
        addu $t5, $t5, $t4
        lw   $t5, 0($t5)
        jr   $t5                 # indirect dispatch
on_alpha:
        # hash = hash*33 + c  (shift+add)
        sll  $t6, $s4, 5
        addu $t6, $t6, $s4
        addu $s4, $t6, $t2
        addiu $s3, $s3, 1
        b    sloop
on_digit:
        sll  $t6, $t2, 1
        addu $s7, $s7, $t6       # numbers feed checksum directly
        addiu $s3, $s3, 1
        b    sloop
on_punct:
        xor  $s7, $s7, $t2
        addiu $s3, $s3, 1
        b    sloop
on_space:
        beq  $s4, $0, snext      # no pending identifier
        # insert/lookup hash in symtab (linear probe, bounded)
        andi $t6, $s4, {slots - 1}
        li   $t9, {slots}
probe:  addiu $t9, $t9, -1
        blez $t9, giveup         # table full: drop the symbol
        sll  $t7, $t6, 3
        addu $t7, $s2, $t7
        lw   $t0, 0($t7)         # stored hash
        beq  $t0, $s4, bump      # hit
        beq  $t0, $0, insert     # empty slot
        addiu $t6, $t6, 1
        andi $t6, $t6, {slots - 1}
        b    probe
insert: sw   $s4, 0($t7)
bump:   lw   $t1, 4($t7)
        addiu $t1, $t1, 1
        sw   $t1, 4($t7)
        addu $s7, $s7, $t1
giveup: li   $s4, 0
snext:  addiu $s3, $s3, 1
        b    sloop
sdone:  jr   $s5
{rand_asm(seed=0x6CC6CC01)}
{epilogue("gcc")}
"""
