"""Synthetic ``twolf``: annealing-style cell swap and cost evaluation.

Mirrors the placer's inner loop: pick two cells pseudo-randomly,
compute the half-perimeter wirelength delta against each cell's
connected neighbors (absolute differences, branchy accepts), and swap
positions when the move helps or a random threshold allows it.
"""

from __future__ import annotations

from repro.workloads.common import epilogue, rand_asm, scaled_size

MAX_FOOTPRINT_DIVISOR = 4
DEFAULT_ITERS = 600
_NUM_CELLS = 2048  # power of two
_NUM_NEIGHBORS = 4


def source(iters: int = DEFAULT_ITERS, footprint_divisor: int = 1) -> str:
    """Assembly source for the twolf workload with *iters* attempted moves.

    *footprint_divisor* shrinks the data footprint (power of two),
    giving the SPEC-style test/train/ref input profiles.
    """
    div = min(footprint_divisor, MAX_FOOTPRINT_DIVISOR)
    cells = scaled_size(_NUM_CELLS, div)
    return f"""
# twolf: annealing moves over {cells} placed cells
        .data
        .align 2
xs:     .space {cells * 4}
ys:     .space {cells * 4}
nets:   .space {cells * _NUM_NEIGHBORS * 4}  # neighbor cell ids
        .text
main:   la   $s0, xs
        la   $s1, ys
        la   $s2, nets
        li   $s7, 0

# --- random placement -------------------------------------------------------
        li   $s3, 0
place:  sll  $t0, $s3, 2
        jal  rand
        andi $t1, $v0, 0x3ff
        addu $t2, $s0, $t0
        sw   $t1, 0($t2)
        jal  rand
        andi $t1, $v0, 0x3ff
        addu $t2, $s1, $t0
        sw   $t1, 0($t2)
        # neighbors
        li   $t3, 0
nbr:    sll  $t4, $s3, {_NUM_NEIGHBORS.bit_length() + 1}
        sll  $t5, $t3, 2
        addu $t4, $t4, $t5
        addu $t4, $s2, $t4
        jal  rand
        andi $t5, $v0, {cells - 1}
        sw   $t5, 0($t4)
        addiu $t3, $t3, 1
        slti $t5, $t3, {_NUM_NEIGHBORS}
        bne  $t5, $0, nbr
        addiu $s3, $s3, 1
        slti $t0, $s3, {cells}
        bne  $t0, $0, place

        li   $s6, {iters}
anneal: # pick cells a ($s3) and b ($s4)
        jal  rand
        andi $s3, $v0, {cells - 1}
        jal  rand
        andi $s4, $v0, {cells - 1}
        # cost of a at its position + cost of b at its position
        move $a0, $s3
        jal  cell_cost
        move $s5, $v1
        move $a0, $s4
        jal  cell_cost
        addu $s5, $s5, $v1       # old cost
        # swap positions
        sll  $t0, $s3, 2
        sll  $t1, $s4, 2
        addu $t2, $s0, $t0
        addu $t3, $s0, $t1
        lw   $t4, 0($t2)
        lw   $t5, 0($t3)
        sw   $t5, 0($t2)
        sw   $t4, 0($t3)
        addu $t2, $s1, $t0
        addu $t3, $s1, $t1
        lw   $t4, 0($t2)
        lw   $t5, 0($t3)
        sw   $t5, 0($t2)
        sw   $t4, 0($t3)
        # new cost
        move $a0, $s3
        jal  cell_cost
        move $a1, $v1
        move $a0, $s4
        jal  cell_cost
        addu $a1, $a1, $v1
        subu $t6, $a1, $s5       # delta
        blez $t6, accept         # improvement: keep
        # uphill: accept with small random probability (temperature-ish)
        jal  rand
        andi $t7, $v0, 0x1f
        slti $t7, $t7, 3
        bne  $t7, $0, accept
        # reject: swap back
        sll  $t0, $s3, 2
        sll  $t1, $s4, 2
        addu $t2, $s0, $t0
        addu $t3, $s0, $t1
        lw   $t4, 0($t2)
        lw   $t5, 0($t3)
        sw   $t5, 0($t2)
        sw   $t4, 0($t3)
        addu $t2, $s1, $t0
        addu $t3, $s1, $t1
        lw   $t4, 0($t2)
        lw   $t5, 0($t3)
        sw   $t5, 0($t2)
        sw   $t4, 0($t3)
        b    next_move
accept: addu $s7, $s7, $t6
next_move:
        addiu $s6, $s6, -1
        bgtz $s6, anneal
        j    finish

# --- wirelength of cell $a0 against its neighbors; result in $v1 ------------
cell_cost:
        sll  $t0, $a0, 2
        addu $t1, $s0, $t0
        lw   $t2, 0($t1)         # x
        addu $t1, $s1, $t0
        lw   $t3, 0($t1)         # y
        li   $v1, 0
        li   $t4, 0              # neighbor index
cc_loop:
        sll  $t5, $a0, {_NUM_NEIGHBORS.bit_length() + 1}
        sll  $t6, $t4, 2
        addu $t5, $t5, $t6
        addu $t5, $s2, $t5
        lw   $t5, 0($t5)         # neighbor id
        sll  $t5, $t5, 2
        addu $t6, $s0, $t5
        lw   $t7, 0($t6)         # nx
        addu $t6, $s1, $t5
        lw   $t6, 0($t6)         # ny
        # |x - nx| branchless: d = x-nx; m = d>>31; |d| = (d^m)-m
        subu $t7, $t2, $t7
        sra  $t8, $t7, 31
        xor  $t7, $t7, $t8
        subu $t7, $t7, $t8
        addu $v1, $v1, $t7
        subu $t6, $t3, $t6
        sra  $t8, $t6, 31
        xor  $t6, $t6, $t8
        subu $t6, $t6, $t8
        addu $v1, $v1, $t6
        addiu $t4, $t4, 1
        slti $t5, $t4, {_NUM_NEIGHBORS}
        bne  $t5, $0, cc_loop
        jr   $ra
{rand_asm(seed=0x20F0F001)}
{epilogue("twolf")}
"""
