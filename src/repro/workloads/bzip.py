"""Synthetic ``bzip``: run-length coding over a byte buffer.

Mirrors the compressor's dominant behaviour: byte-granularity streaming
loads/stores, short data-dependent run loops, and a rolling checksum.
The buffer is filled with run-structured pseudo-random data, then
repeatedly re-encoded with a single byte mutated between passes.
"""

from __future__ import annotations

from repro.workloads.common import epilogue, rand_asm, scaled_size

MAX_FOOTPRINT_DIVISOR = 4
DEFAULT_ITERS = 3
_BUF_SIZE = 32768  # power of two so `rand % size` is a mask


def source(iters: int = DEFAULT_ITERS, footprint_divisor: int = 1) -> str:
    """Assembly source for the bzip workload with *iters* encode passes.

    *footprint_divisor* shrinks the buffer (power of two), giving the
    SPEC-style test/train/ref input profiles.
    """
    div = min(footprint_divisor, MAX_FOOTPRINT_DIVISOR)
    size = scaled_size(_BUF_SIZE, div)
    return f"""
# bzip: run-length encoder over a {size}-byte buffer
        .data
        .align 2
buf:    .space {size}
out:    .space {2 * size}
        .text
main:   la   $s0, buf
        la   $s1, out
        li   $s2, {size}
        li   $s7, 0

# --- fill buffer with runs of random bytes ----------------------------
        li   $s3, 0              # i
fill_loop:
        jal  rand
        andi $t0, $v0, 0xff      # run value
        jal  rand
        andi $t1, $v0, 15
        addiu $t1, $t1, 1        # run length 1..16
fill_run:
        beq  $s3, $s2, fill_done
        addu $t2, $s0, $s3
        sb   $t0, 0($t2)
        addiu $s3, $s3, 1
        addiu $t1, $t1, -1
        bgtz $t1, fill_run
        b    fill_loop
fill_done:

        li   $s6, {iters}        # encode passes
iter_loop:
        # mutate one byte so every pass differs
        jal  rand
        andi $t0, $v0, {size - 1}
        addu $t2, $s0, $t0
        jal  rand
        andi $t1, $v0, 0xff
        sb   $t1, 0($t2)
        jal  encode
        addiu $s6, $s6, -1
        bgtz $s6, iter_loop
        j    finish

# --- one RLE encode pass ----------------------------------------------
encode: li   $s3, 0              # input index
        li   $t7, 0              # output index
enc_outer:
        beq  $s3, $s2, enc_done
        addu $t2, $s0, $s3
        lbu  $t0, 0($t2)         # run value
        li   $t1, 1              # run count
enc_run:
        addiu $s3, $s3, 1
        beq  $s3, $s2, enc_emit
        addu $t2, $s0, $s3
        lbu  $t3, 0($t2)
        bne  $t3, $t0, enc_emit
        addiu $t1, $t1, 1
        b    enc_run
enc_emit:
        addu $t4, $s1, $t7
        sb   $t1, 0($t4)
        sb   $t0, 1($t4)
        addiu $t7, $t7, 2
        # checksum = rotl1(checksum) ^ (count << 8 | value)
        sll  $t5, $t1, 8
        or   $t5, $t5, $t0
        sll  $t6, $s7, 1
        srl  $t3, $s7, 31
        or   $t6, $t6, $t3
        xor  $s7, $t6, $t5
        b    enc_outer
enc_done:
        jr   $ra
{rand_asm(seed=0x1234ABCD)}
{epilogue("bzip")}
"""
