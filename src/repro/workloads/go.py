"""Synthetic ``go``: board-position heuristic evaluation.

Mirrors a go engine's leaf evaluation: a 19x19 byte board, per-point
neighbor inspection with bounds checks (highly branchy, data-dependent
directions), and accumulation of a weighted influence score.
"""

from __future__ import annotations

from repro.workloads.common import epilogue, rand_asm

MAX_FOOTPRINT_DIVISOR = 1
DEFAULT_ITERS = 25
_N = 19


def source(iters: int = DEFAULT_ITERS, footprint_divisor: int = 1) -> str:
    """Assembly source for the go workload with *iters* board evaluations.

    The board/grid size is intrinsic to this kernel, so
    *footprint_divisor* is accepted but has no effect.
    """
    return f"""
# go: neighbor-counting evaluation of a {_N}x{_N} board
        .equ N, {_N}
        .data
        .align 2
board:  .space {_N * _N}
        .text
main:   la   $s0, board
        li   $s7, 0

# --- random board fill: 0 empty, 1 black, 2 white -----------------------
        li   $s3, 0
bfill:  jal  rand
        andi $t0, $v0, 3
        slti $t1, $t0, 3
        bne  $t1, $0, bput
        li   $t0, 0              # map 3 -> empty
bput:   addu $t2, $s0, $s3
        sb   $t0, 0($t2)
        addiu $s3, $s3, 1
        slti $t1, $s3, {_N * _N}
        bne  $t1, $0, bfill

        li   $s6, {iters}
eval_iter:
        jal  evaluate
        # play a pseudo-random stone between evaluations
        jal  rand
        andi $t0, $v0, 511
        li   $t1, {_N * _N}
        slt  $t2, $t0, $t1
        bne  $t2, $0, inb
        andi $t0, $t0, 255
inb:    addu $t2, $s0, $t0
        jal  rand
        andi $t1, $v0, 1
        addiu $t1, $t1, 1        # 1 or 2
        sb   $t1, 0($t2)
        addiu $s6, $s6, -1
        bgtz $s6, eval_iter
        j    finish

# --- full-board evaluation ----------------------------------------------
evaluate:
        li   $s3, 0              # row
erow:   li   $s4, 0              # col
ecol:   # point address and color
        li   $t0, N
        mult $s3, $t0
        mflo $t0
        addu $t0, $t0, $s4
        addu $t1, $s0, $t0       # &board[r][c]
        lbu  $t2, 0($t1)         # color
        beq  $t2, $0, enext      # empty point: no score
        li   $t3, 0              # friendly neighbors
        li   $t4, 0              # liberties (empty neighbors)
        # north
        blez $s3, s_south
        lbu  $t5, -N($t1)
        beq  $t5, $0, n_lib
        bne  $t5, $t2, s_south
        addiu $t3, $t3, 1
        b    s_south
n_lib:  addiu $t4, $t4, 1
s_south:
        addiu $t6, $s3, 1
        slti $t7, $t6, N
        beq  $t7, $0, s_west
        lbu  $t5, N($t1)
        beq  $t5, $0, s_lib
        bne  $t5, $t2, s_west
        addiu $t3, $t3, 1
        b    s_west
s_lib:  addiu $t4, $t4, 1
s_west: blez $s4, s_east
        lbu  $t5, -1($t1)
        beq  $t5, $0, w_lib
        bne  $t5, $t2, s_east
        addiu $t3, $t3, 1
        b    s_east
w_lib:  addiu $t4, $t4, 1
s_east: addiu $t6, $s4, 1
        slti $t7, $t6, N
        beq  $t7, $0, escore
        lbu  $t5, 1($t1)
        beq  $t5, $0, e_lib
        bne  $t5, $t2, escore
        addiu $t3, $t3, 1
        b    escore
e_lib:  addiu $t4, $t4, 1
escore: # score = 4*liberties + friends, negated for white
        sll  $t5, $t4, 2
        addu $t5, $t5, $t3
        slti $t6, $t2, 2         # black?
        bne  $t6, $0, eacc
        subu $t5, $0, $t5
eacc:   addu $s7, $s7, $t5
enext:  addiu $s4, $s4, 1
        slti $t7, $s4, N
        bne  $t7, $0, ecol
        addiu $s3, $s3, 1
        slti $t7, $s3, N
        bne  $t7, $0, erow
        jr   $ra
{rand_asm(seed=0x600D1DEA)}
{epilogue("go")}
"""
