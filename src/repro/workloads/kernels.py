"""Classic kernels: small, independently-checkable assembly programs.

Unlike the benchmark suite (which mimics SPEC behaviours), these are
textbook algorithms whose results can be verified against Python
implementations — the strongest possible end-to-end check of the
assembler + emulator, and handy self-contained inputs for the timing
simulator.  Each builder returns assembly whose program prints a result
that the host can recompute exactly.
"""

from __future__ import annotations

from repro.workloads.common import epilogue


def fibonacci(n: int = 25) -> str:
    """Iterative Fibonacci; prints fib(n) mod 2^32 (as the checksum)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return f"""
# fib({n}) via iteration
        .text
main:   li   $t0, 0              # fib(0)
        li   $t1, 1              # fib(1)
        li   $t2, {n}
floop:  addu $t3, $t0, $t1
        move $t0, $t1
        move $t1, $t3
        addiu $t2, $t2, -1
        bgtz $t2, floop
        move $s7, $t0
        j    finish
{epilogue("fib")}
"""


def sieve(limit: int = 1000) -> str:
    """Sieve of Eratosthenes; prints the number of primes <= limit."""
    if not 10 <= limit <= 65535:
        raise ValueError("limit must be in [10, 65535]")
    return f"""
# count primes below {limit}
        .data
flags:  .space {limit + 1}
        .text
main:   la   $s0, flags
        li   $s1, {limit}
        li   $t0, 2              # candidate
outer:  addu $t1, $s0, $t0
        lbu  $t2, 0($t1)
        bne  $t2, $0, next       # composite
        # mark multiples
        addu $t3, $t0, $t0       # 2*candidate
mark:   slt  $t4, $s1, $t3
        bne  $t4, $0, next
        addu $t5, $s0, $t3
        li   $t6, 1
        sb   $t6, 0($t5)
        addu $t3, $t3, $t0
        b    mark
next:   addiu $t0, $t0, 1
        slt  $t4, $s1, $t0
        beq  $t4, $0, outer
        # count zeros from 2..limit
        li   $s7, 0
        li   $t0, 2
count:  addu $t1, $s0, $t0
        lbu  $t2, 0($t1)
        bne  $t2, $0, notp
        addiu $s7, $s7, 1
notp:   addiu $t0, $t0, 1
        slt  $t4, $s1, $t0
        beq  $t4, $0, count
        j    finish
{epilogue("sieve")}
"""


def crc32(data: bytes) -> str:
    """Bitwise CRC-32 (IEEE 802.3, reflected) over *data*.

    The printed checksum equals Python's ``binascii.crc32(data)``
    (interpreted as a signed 32-bit integer by the print syscall).
    """
    if not data or len(data) > 2048:
        raise ValueError("data must be 1..2048 bytes")
    byte_list = ", ".join(str(b) for b in data)
    return f"""
# CRC-32 (bitwise, reflected polynomial 0xEDB88320) over {len(data)} bytes
        .data
        .align 2
data:   .byte {byte_list}
        .text
main:   la   $s0, data
        li   $s1, {len(data)}
        li   $s2, -1             # crc = 0xFFFFFFFF
        li   $s3, 0xEDB88320
cbyte:  lbu  $t0, 0($s0)
        xor  $s2, $s2, $t0
        li   $t1, 8
cbit:   andi $t2, $s2, 1
        srl  $s2, $s2, 1
        beq  $t2, $0, noxor
        xor  $s2, $s2, $s3
noxor:  addiu $t1, $t1, -1
        bgtz $t1, cbit
        addiu $s0, $s0, 1
        addiu $s1, $s1, -1
        bgtz $s1, cbyte
        nor  $s7, $s2, $0        # final xor with 0xFFFFFFFF
        j    finish
{epilogue("crc32")}
"""


def bubble_sort(values: list[int]) -> str:
    """Bubble sort; prints a rolling hash of the sorted array."""
    if not values or len(values) > 512:
        raise ValueError("values must have 1..512 elements")
    if any(not -0x8000_0000 <= v < 0x8000_0000 for v in values):
        raise ValueError("values must be 32-bit")
    words = ", ".join(str(v & 0xFFFFFFFF) for v in values)
    n = len(values)
    return f"""
# bubble sort of {n} words, then hash
        .data
        .align 2
arr:    .word {words}
        .text
main:   la   $s0, arr
        li   $s1, {n}
        addiu $t9, $s1, -1       # passes
opass:  blez $t9, hash
        li   $t0, 0              # index
ipass:  sll  $t1, $t0, 2
        addu $t2, $s0, $t1
        lw   $t3, 0($t2)
        lw   $t4, 4($t2)
        slt  $t5, $t4, $t3       # signed compare
        beq  $t5, $0, noswap
        sw   $t4, 0($t2)
        sw   $t3, 4($t2)
noswap: addiu $t0, $t0, 1
        slt  $t5, $t0, $t9
        bne  $t5, $0, ipass
        addiu $t9, $t9, -1
        b    opass
hash:   li   $s7, 0
        li   $t0, 0
hloop:  sll  $t1, $t0, 2
        addu $t2, $s0, $t1
        lw   $t3, 0($t2)
        sll  $t4, $s7, 5
        subu $t4, $t4, $s7       # hash * 31
        addu $s7, $t4, $t3
        addiu $t0, $t0, 1
        slt  $t5, $t0, $s1
        bne  $t5, $0, hloop
        j    finish
{epilogue("sort")}
"""


def gcd(a: int, b: int) -> str:
    """Euclid's algorithm by repeated subtraction; prints gcd(a, b)."""
    if a <= 0 or b <= 0 or a >= 2**31 or b >= 2**31:
        raise ValueError("a, b must be positive 31-bit integers")
    return f"""
# gcd({a}, {b}) by subtraction
        .text
main:   li   $t0, {a}
        li   $t1, {b}
gloop:  beq  $t0, $t1, done
        slt  $t2, $t0, $t1
        bne  $t2, $0, swap
        subu $t0, $t0, $t1
        b    gloop
swap:   subu $t1, $t1, $t0
        b    gloop
done:   move $s7, $t0
        j    finish
{epilogue("gcd")}
"""


def matmul(n: int = 8, seed: int = 7) -> str:
    """Dense n×n integer matrix multiply; prints the trace of C=A·B.

    Matrices are generated at assembly time from a tiny LCG so the host
    can recompute the expected value exactly.
    """
    if not 2 <= n <= 24:
        raise ValueError("n must be in [2, 24]")
    a, b = host_matrices(n, seed)
    a_words = ", ".join(str(v) for row in a for v in row)
    b_words = ", ".join(str(v) for row in b for v in row)
    return f"""
# {n}x{n} integer matmul, trace of the product
        .equ N, {n}
        .data
        .align 2
A:      .word {a_words}
B:      .word {b_words}
        .text
main:   li   $s7, 0
        li   $s1, 0              # i
iloop:  li   $s2, 0              # j == i for trace: only compute C[i][i]
        li   $s3, 0              # k
        li   $s4, 0              # acc
kloop:  li   $t0, N
        mult $s1, $t0
        mflo $t1
        addu $t1, $t1, $s3       # i*N + k
        sll  $t1, $t1, 2
        la   $t2, A
        addu $t2, $t2, $t1
        lw   $t3, 0($t2)         # A[i][k]
        li   $t0, N
        mult $s3, $t0
        mflo $t1
        addu $t1, $t1, $s1       # k*N + i
        sll  $t1, $t1, 2
        la   $t2, B
        addu $t2, $t2, $t1
        lw   $t4, 0($t2)         # B[k][i]
        mult $t3, $t4
        mflo $t5
        addu $s4, $s4, $t5
        addiu $s3, $s3, 1
        slti $t0, $s3, N
        bne  $t0, $0, kloop
        addu $s7, $s7, $s4       # trace += C[i][i]
        addiu $s1, $s1, 1
        slti $t0, $s1, N
        bne  $t0, $0, iloop
        j    finish
{epilogue("matmul")}
"""


def host_matrices(n: int, seed: int) -> tuple[list[list[int]], list[list[int]]]:
    """The matrices :func:`matmul` embeds (host-side oracle)."""
    state = seed
    def nxt() -> int:
        nonlocal state
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        return state % 17  # small values: products stay well in range
    a = [[nxt() for _ in range(n)] for _ in range(n)]
    b = [[nxt() for _ in range(n)] for _ in range(n)]
    return a, b
