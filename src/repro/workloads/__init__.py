"""Synthetic workload suite.

One workload per benchmark in the paper's Table 1 (bzip, gcc, go, gzip,
ijpeg, li, mcf, parser, twolf, vortex, vpr).  Each is a hand-written
assembly kernel that mimics the dominant behaviour of its SPEC namesake
(see DESIGN.md §2 for the substitution rationale).  All workloads are
deterministic, self-checking (they print a checksum) and parameterized
by an iteration count so trace lengths can be scaled to the available
simulation budget.
"""

from repro.workloads.suite import (
    BENCHMARK_NAMES,
    Workload,
    build_program,
    get_workload,
    iter_workloads,
)

__all__ = [
    "BENCHMARK_NAMES",
    "Workload",
    "build_program",
    "get_workload",
    "iter_workloads",
]
