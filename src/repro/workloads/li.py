"""Synthetic ``li``: cons-cell interpreter with a mark/sweep pass.

Reproduces the paper's Figure 5 hot spot exactly: the mark loop tests a
flag byte with ``lbu``/``andi``/``bne`` against zero, the branch whose
misprediction is detectable from bit 0 alone.  Cells are 12 bytes
(tag byte, flags byte at offset 1, car word, cdr pointer); lists are
threaded pseudo-randomly through the heap; each iteration marks from
every root, then sweeps, then sums cars along each list.
"""

from __future__ import annotations

from repro.workloads.common import epilogue, rand_asm, scaled_size

MAX_FOOTPRINT_DIVISOR = 4
DEFAULT_ITERS = 3
_NUM_CELLS = 8192
_CELL_SIZE = 12
_NUM_ROOTS = 32


def source(iters: int = DEFAULT_ITERS, footprint_divisor: int = 1) -> str:
    """Assembly source for the li workload with *iters* GC+eval cycles.

    *footprint_divisor* shrinks the data footprint (power of two),
    giving the SPEC-style test/train/ref input profiles.
    """
    div = min(footprint_divisor, MAX_FOOTPRINT_DIVISOR)
    cells = scaled_size(_NUM_CELLS, div)
    return f"""
# li: cons cells, mark/sweep, list evaluation
        .equ NCELLS, {cells}
        .equ CSIZE, {_CELL_SIZE}
        .data
        .align 2
heap:   .space {cells * _CELL_SIZE}
roots:  .space {_NUM_ROOTS * 4}
        .text
main:   la   $s0, heap
        la   $s1, roots
        li   $s7, 0

# --- build: thread lists through the heap ------------------------------
        # every cell: tag = low rand bits, car = small value, cdr = next
        li   $s3, 0              # cell index
build:  sll  $t0, $s3, 3
        sll  $t1, $s3, 2
        addu $t0, $t0, $t1       # idx * 12
        addu $t0, $s0, $t0       # cell addr
        jal  rand
        andi $t1, $v0, 0x7f
        sb   $t1, 0($t0)         # tag
        sb   $0, 1($t0)          # flags = 0
        jal  rand
        andi $t1, $v0, 0xff
        sw   $t1, 4($t0)         # car
        # cdr -> pseudo-random successor, nil if rand low bits are 0
        jal  rand
        andi $t1, $v0, {cells - 1}
        andi $t2, $v0, 0x1f
        beq  $t2, $0, set_nil
        sll  $t3, $t1, 3
        sll  $t4, $t1, 2
        addu $t3, $t3, $t4
        addu $t3, $s0, $t3
        sw   $t3, 8($t0)
        b    built
set_nil:
        sw   $0, 8($t0)
built:  addiu $s3, $s3, 1
        slti $t0, $s3, NCELLS
        bne  $t0, $0, build

        # roots: every 64th cell
        li   $s3, 0
rootl:  sll  $t0, $s3, 6         # s3 * 64 cell index
        sll  $t1, $t0, 3
        sll  $t2, $t0, 2
        addu $t1, $t1, $t2
        addu $t1, $s0, $t1
        sll  $t3, $s3, 2
        addu $t3, $s1, $t3
        sw   $t1, 0($t3)
        addiu $s3, $s3, 1
        slti $t0, $s3, {_NUM_ROOTS}
        bne  $t0, $0, rootl

        li   $s6, {iters}
gc_iter:

# --- mark phase: Figure 5 idiom ----------------------------------------
        li   $s3, 0              # root index
mark_roots:
        sll  $t0, $s3, 2
        addu $t0, $s1, $t0
        lw   $s4, 0($t0)         # this = root
mark_walk:
        beq  $s4, $0, mark_next  # nil
        lbu  $t1, 1($s4)         # lbu  $3, 1($16)
        andi $t2, $t1, 0x0001    # andi $2, $3, 0x0001
        bne  $t2, $0, mark_next  # bne  $2, $0, $L110  (already marked)
        ori  $t1, $t1, 0x0001    # this->n_flags |= MARK
        sb   $t1, 1($s4)
        lw   $s4, 8($s4)         # this = this->cdr
        b    mark_walk
mark_next:
        addiu $s3, $s3, 1
        slti $t0, $s3, {_NUM_ROOTS}
        bne  $t0, $0, mark_roots

# --- sweep phase: clear marks, count marked cells -----------------------
        li   $s3, 0
        li   $s5, 0              # marked count
sweep:  sll  $t0, $s3, 3
        sll  $t1, $s3, 2
        addu $t0, $t0, $t1
        addu $t0, $s0, $t0
        lbu  $t1, 1($t0)
        andi $t2, $t1, 0x0001
        beq  $t2, $0, swept
        addiu $s5, $s5, 1
        andi $t1, $t1, 0xfe
        sb   $t1, 1($t0)
swept:  addiu $s3, $s3, 1
        slti $t0, $s3, NCELLS
        bne  $t0, $0, sweep
        addu $s7, $s7, $s5

# --- eval phase: sum cars along each root list (bounded walk) -----------
        li   $s3, 0
eval_roots:
        sll  $t0, $s3, 2
        addu $t0, $s1, $t0
        lw   $s4, 0($t0)
        li   $t7, 64             # walk bound (lists may cycle)
eval_walk:
        beq  $s4, $0, eval_next
        beq  $t7, $0, eval_next
        lw   $t1, 4($s4)         # car
        addu $s7, $s7, $t1
        lw   $s4, 8($s4)         # cdr
        addiu $t7, $t7, -1
        b    eval_walk
eval_next:
        addiu $s3, $s3, 1
        slti $t0, $s3, {_NUM_ROOTS}
        bne  $t0, $0, eval_roots

        # rethread one random cdr so iterations differ
        jal  rand
        andi $t1, $v0, {cells - 1}
        sll  $t0, $t1, 3
        sll  $t2, $t1, 2
        addu $t0, $t0, $t2
        addu $t0, $s0, $t0
        jal  rand
        andi $t1, $v0, {cells - 1}
        sll  $t3, $t1, 3
        sll  $t4, $t1, 2
        addu $t3, $t3, $t4
        addu $t3, $s0, $t3
        sw   $t3, 8($t0)

        addiu $s6, $s6, -1
        bgtz $s6, gc_iter
        j    finish
{rand_asm(seed=0x00C0FFEE)}
{epilogue("li")}
"""
