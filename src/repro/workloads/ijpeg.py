"""Synthetic ``ijpeg``: 8x8 integer block transform with quantization.

Mirrors the codec's hot path: blocked access over an image, butterfly
add/sub stages, coefficient multiplies (exercising the FULL slice
class), arithmetic shifts for quantization, and stores of coefficients.
"""

from __future__ import annotations

from repro.workloads.common import epilogue, rand_asm, scaled_size

MAX_FOOTPRINT_DIVISOR = 2
DEFAULT_ITERS = 2
_DIM = 128  # image is _DIM x _DIM bytes; 8x8 blocks


def source(iters: int = DEFAULT_ITERS, footprint_divisor: int = 1) -> str:
    """Assembly source for the ijpeg workload with *iters* image passes.

    *footprint_divisor* shrinks the data footprint (power of two),
    giving the SPEC-style test/train/ref input profiles.
    """
    div = min(footprint_divisor, MAX_FOOTPRINT_DIVISOR)
    dim = scaled_size(_DIM, div)
    return f"""
# ijpeg: 8x8 block transform over a {_DIM}x{_DIM} image
        .equ DIM, {dim}
        .data
        .align 2
image:  .space {dim * dim}
coeff:  .space {dim * dim * 2}     # halfword outputs
row:    .space 32                    # 8 word scratch
        .text
main:   la   $s0, image
        la   $s1, coeff
        li   $s7, 0

# --- fill image ----------------------------------------------------------
        li   $s3, 0
ifill:  jal  rand
        andi $t0, $v0, 0xff
        addu $t2, $s0, $s3
        sb   $t0, 0($t2)
        addiu $s3, $s3, 1
        slti $t1, $s3, {dim * dim}
        bne  $t1, $0, ifill

        li   $s6, {iters}
jiter:  jal  transform_image
        # perturb one pixel between passes
        jal  rand
        andi $t0, $v0, {dim * dim - 1}
        addu $t2, $s0, $t0
        jal  rand
        andi $t1, $v0, 0xff
        sb   $t1, 0($t2)
        addiu $s6, $s6, -1
        bgtz $s6, jiter
        j    finish

# --- transform every 8x8 block -------------------------------------------
transform_image:
        move $s5, $ra
        li   $s3, 0              # block row (0..7)
tbr:    li   $s4, 0              # block col (0..7)
tbc:    jal  transform_block
        addiu $s4, $s4, 1
        slti $t0, $s4, 8
        bne  $t0, $0, tbc
        addiu $s3, $s3, 1
        slti $t0, $s3, 8
        bne  $t0, $0, tbr
        jr   $s5

# --- one 8x8 block: row transform + quantize ------------------------------
transform_block:
        # base = image + (block_row*8)*DIM + block_col*8
        sll  $t0, $s3, 3
        li   $t1, DIM
        mult $t0, $t1
        mflo $t0
        sll  $t1, $s4, 3
        addu $t0, $t0, $t1
        addu $a1, $s0, $t0       # input base
        sll  $t2, $t0, 1
        addu $a2, $s1, $t2       # output base (halfwords)
        li   $a3, 0              # row counter
trow:   # load 8 pixels into scratch words
        la   $t9, row
        lbu  $t0, 0($a1)
        sw   $t0, 0($t9)
        lbu  $t0, 1($a1)
        sw   $t0, 4($t9)
        lbu  $t0, 2($a1)
        sw   $t0, 8($t9)
        lbu  $t0, 3($a1)
        sw   $t0, 12($t9)
        lbu  $t0, 4($a1)
        sw   $t0, 16($t9)
        lbu  $t0, 5($a1)
        sw   $t0, 20($t9)
        lbu  $t0, 6($a1)
        sw   $t0, 24($t9)
        lbu  $t0, 7($a1)
        sw   $t0, 28($t9)
        # butterfly stage 1: s[i] = x[i] + x[7-i], d[i] = x[i] - x[7-i]
        lw   $t0, 0($t9)
        lw   $t1, 28($t9)
        addu $t2, $t0, $t1       # s0
        subu $t3, $t0, $t1       # d0
        lw   $t0, 4($t9)
        lw   $t1, 24($t9)
        addu $t4, $t0, $t1       # s1
        subu $t5, $t0, $t1       # d1
        lw   $t0, 8($t9)
        lw   $t1, 20($t9)
        addu $t6, $t0, $t1       # s2
        subu $t7, $t0, $t1       # d2
        lw   $t0, 12($t9)
        lw   $t1, 16($t9)
        addu $t8, $t0, $t1       # s3
        subu $t1, $t0, $t1       # d3
        # stage 2 (even part): e0 = s0+s3, e1 = s1+s2, o0 = s0-s3, o1 = s1-s2
        addu $t0, $t2, $t8
        addu $v1, $t4, $t6
        subu $t2, $t2, $t8
        subu $t4, $t4, $t6
        # coefficients: c0 = e0 + e1, c4 = e0 - e1 (DC and mid band)
        addu $a0, $t0, $v1       # c0
        subu $v1, $t0, $v1       # c4
        # c2 = o0*3 + o1 (cheap rotation approximation, uses multiplier)
        li   $t6, 3
        mult $t2, $t6
        mflo $t0
        addu $t2, $t0, $t4
        # odd part: c1 = d0*2 + d1, c3 = d2 - d3, c5 = d1 - d3, c7 = d0 - d2
        sll  $t0, $t3, 1
        addu $t4, $t0, $t5       # c1
        subu $t6, $t7, $t1       # c3
        subu $t5, $t5, $t1       # c5
        subu $t7, $t3, $t7       # c7
        # quantize (>> 3) and store 8 halfword coefficients
        sra  $t0, $a0, 3
        sh   $t0, 0($a2)
        addu $s7, $s7, $t0
        sra  $t0, $t4, 3
        sh   $t0, 2($a2)
        xor  $s7, $s7, $t0
        sra  $t0, $t2, 3
        sh   $t0, 4($a2)
        addu $s7, $s7, $t0
        sra  $t0, $t6, 3
        sh   $t0, 6($a2)
        xor  $s7, $s7, $t0
        sra  $t0, $v1, 3
        sh   $t0, 8($a2)
        addu $s7, $s7, $t0
        sra  $t0, $t5, 3
        sh   $t0, 10($a2)
        xor  $s7, $s7, $t0
        sra  $t0, $t3, 3
        sh   $t0, 12($a2)
        addu $s7, $s7, $t0
        sra  $t0, $t7, 3
        sh   $t0, 14($a2)
        xor  $s7, $s7, $t0
        # next row of the block
        addiu $a1, $a1, DIM
        addiu $a2, $a2, {2 * dim}
        addiu $a3, $a3, 1
        slti $t0, $a3, 8
        bne  $t0, $0, trow
        jr   $ra
{rand_asm(seed=0x1DC70001)}
{epilogue("ijpeg")}
"""
