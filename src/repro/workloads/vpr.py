"""Synthetic ``vpr``: wavefront expansion over a routing grid.

Mirrors the router's maze expansion: a FIFO work queue in memory, cost
array updates with bounds-checked neighbor visits, and repeated
route attempts from pseudo-random sources — a mix of queue pointer
arithmetic, short dependent load chains, and branchy comparisons.
"""

from __future__ import annotations

from repro.workloads.common import epilogue, rand_asm

MAX_FOOTPRINT_DIVISOR = 1
DEFAULT_ITERS = 4
_DIM = 32           # grid is _DIM x _DIM
_QUEUE_CAP = 4096   # words


def source(iters: int = DEFAULT_ITERS, footprint_divisor: int = 1) -> str:
    """Assembly source for the vpr workload with *iters* route attempts.

    The board/grid size is intrinsic to this kernel, so
    *footprint_divisor* is accepted but has no effect.
    """
    return f"""
# vpr: BFS wavefront over a {_DIM}x{_DIM} routing grid
        .equ DIM, {_DIM}
        .equ GRID, {_DIM * _DIM}
        .data
        .align 2
cost:   .space {_DIM * _DIM * 4}
queue:  .space {_QUEUE_CAP * 4}
        .text
main:   la   $s0, cost
        la   $s1, queue
        li   $s7, 0

        li   $s6, {iters}
route:  # reset cost array to "infinity" (0x7fff)
        li   $t0, 0
        li   $t1, 0x7fff
rinit:  sll  $t2, $t0, 2
        addu $t2, $s0, $t2
        sw   $t1, 0($t2)
        addiu $t0, $t0, 1
        slti $t2, $t0, GRID
        bne  $t2, $0, rinit

        # seed: random source cell at cost 0
        jal  rand
        andi $t0, $v0, {_DIM * _DIM - 1}
        sll  $t1, $t0, 2
        addu $t1, $s0, $t1
        sw   $0, 0($t1)
        sw   $t0, 0($s1)         # queue[0] = seed
        li   $s2, 0              # head
        li   $s3, 1              # tail

bfs:    slt  $t0, $s2, $s3
        beq  $t0, $0, bfs_done   # queue empty
        sll  $t0, $s2, 2
        addu $t0, $s1, $t0
        lw   $s4, 0($t0)         # cell = queue[head]
        addiu $s2, $s2, 1
        sll  $t1, $s4, 2
        addu $t1, $s0, $t1
        lw   $s5, 0($t1)         # cost[cell]
        addiu $s5, $s5, 1        # neighbor cost
        # decompose cell into row/col
        srl  $t2, $s4, 5         # row  (DIM = 32)
        andi $t3, $s4, 31        # col
        # west
        blez $t3, try_east
        addiu $a0, $s4, -1
        jal  visit
try_east:
        addiu $t4, $t3, 1
        slti $t5, $t4, DIM
        beq  $t5, $0, try_north
        addiu $a0, $s4, 1
        jal  visit
try_north:
        blez $t2, try_south
        addiu $a0, $s4, -DIM
        jal  visit
try_south:
        addiu $t4, $t2, 1
        slti $t5, $t4, DIM
        beq  $t5, $0, bfs_next
        addiu $a0, $s4, DIM
        jal  visit
bfs_next:
        b    bfs
bfs_done:
        # sample a few final costs into the checksum
        li   $t0, 0
samp:   sll  $t1, $t0, 6         # every 16th cell (16 * 4 bytes)
        addu $t1, $s0, $t1
        lw   $t2, 0($t1)
        addu $s7, $s7, $t2
        addiu $t0, $t0, 1
        slti $t2, $t0, {_DIM * _DIM // 16}
        bne  $t2, $0, samp
        addiu $s6, $s6, -1
        bgtz $s6, route
        j    finish

# --- visit neighbor $a0 with candidate cost $s5 ------------------------------
visit:  sll  $t6, $a0, 2
        addu $t6, $s0, $t6
        lw   $t7, 0($t6)         # current cost
        slt  $t8, $s5, $t7
        beq  $t8, $0, vret       # not an improvement
        sw   $s5, 0($t6)
        # push if queue has room
        slti $t8, $s3, {_QUEUE_CAP}
        beq  $t8, $0, vret
        sll  $t8, $s3, 2
        addu $t8, $s1, $t8
        sw   $a0, 0($t8)
        addiu $s3, $s3, 1
vret:   jr   $ra
{rand_asm(seed=0x09071E01)}
{epilogue("vpr")}
"""
