"""Shared assembly fragments for the workload suite.

Every workload links in the same deterministic xorshift32 PRNG (state
lives in guest memory, seeded statically) and the same reporting
epilogue, so that runs are bit-reproducible and self-checking.

Register conventions inside workloads:

* ``$at`` is reserved for assembler expansions (``la``, ``li``, pseudo
  branches) and must not be live across them.
* ``$t8``/``$t9`` are clobbered by the ``rand`` subroutine.
* ``$v0``/``$a0`` are clobbered by syscalls and ``rand``.
"""

from __future__ import annotations

#: xorshift32 PRNG; result in $v0, clobbers $t8/$t9/$at.
RAND_ASM = """
# --- deterministic xorshift32 PRNG ------------------------------------
        .data
        .align 2
rng_state: .word {seed}
        .text
rand:   lw   $v0, rng_state
        sll  $t8, $v0, 13
        xor  $v0, $v0, $t8
        srl  $t8, $v0, 17
        xor  $v0, $v0, $t8
        sll  $t8, $v0, 5
        xor  $v0, $v0, $t8
        la   $t9, rng_state
        sw   $v0, 0($t9)
        jr   $ra
"""


def rand_asm(seed: int = 0x2545F491) -> str:
    """The PRNG fragment with the given non-zero 32-bit seed."""
    if seed == 0:
        raise ValueError("xorshift32 seed must be non-zero")
    return RAND_ASM.format(seed=seed & 0xFFFFFFFF)


def epilogue(name: str, checksum_reg: str = "$s7") -> str:
    """Reporting epilogue: prints ``<name>:<checksum>\\n`` then exits.

    The checksum register defaults to ``$s7``, which workloads
    accumulate into as they run.
    """
    return f"""
# --- report checksum and exit -----------------------------------------
        .data
bench_name: .asciiz "{name}:"
        .text
finish: la   $a0, bench_name
        li   $v0, 4
        syscall
        move $a0, {checksum_reg}
        li   $v0, 1
        syscall
        li   $a0, 10
        li   $v0, 11
        syscall
        halt
"""


def expected_output_prefix(name: str) -> str:
    """The stdout prefix a run of workload *name* must produce."""
    return f"{name}:"


def scaled_size(base: int, footprint_divisor: int) -> int:
    """Shrink a power-of-two footprint by a power-of-two divisor.

    Used by the input profiles (test/train/ref): dividing keeps every
    ``value & (size - 1)`` mask a valid 16-bit immediate, which growing
    the footprint would not.
    """
    if footprint_divisor <= 0 or footprint_divisor & (footprint_divisor - 1):
        raise ValueError("footprint_divisor must be a positive power of two")
    if base % footprint_divisor:
        raise ValueError(f"footprint {base} not divisible by {footprint_divisor}")
    size = base // footprint_divisor
    if size <= 0:
        raise ValueError("footprint divided away entirely")
    return size
