"""Workload registry.

Maps the paper's Table 1 benchmark names to synthetic workload builders
and exposes uniform construction, tracing and scaling helpers.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from functools import lru_cache

from repro.isa.assembler import Program, assemble

#: Input profiles (the SPEC test/train/ref analogue): name → footprint
#: divisor.  Workloads with intrinsic sizes (go's 19x19 board, vpr's
#: grid) clamp the divisor to what their kernel supports.
PROFILES: dict[str, int] = {"test": 4, "train": 2, "ref": 1}

#: The 11 benchmark names from the paper's Table 1, in table order.
BENCHMARK_NAMES: tuple[str, ...] = (
    "bzip", "gcc", "go", "gzip", "ijpeg", "li",
    "mcf", "parser", "twolf", "vortex", "vpr",
)

_DESCRIPTIONS: dict[str, str] = {
    "bzip": "run-length coding over a byte buffer (compression)",
    "gcc": "token scanner + symbol hash table (compiler front end)",
    "go": "board-position heuristic evaluation (game tree leaf)",
    "gzip": "LZ77 window matching with a hash head table (deflate)",
    "ijpeg": "8x8 integer block transform + quantization (image codec)",
    "li": "cons-cell interpreter with mark/sweep GC (lisp)",
    "mcf": "network-arc reduced-cost relaxation (min-cost flow)",
    "parser": "dictionary hash lookup with string compares (link parser)",
    "twolf": "annealing-style cell swap/cost evaluation (placement)",
    "vortex": "pointer-rich object store traversal (OO database)",
    "vpr": "wavefront grid expansion (FPGA routing)",
}


@dataclass(frozen=True)
class Workload:
    """One benchmark: name, provenance, and a parameterized builder."""

    name: str
    description: str
    default_iters: int

    def source(self, iters: int | None = None, profile: str = "ref") -> str:
        """Assembly source with the given iteration count and profile."""
        module = importlib.import_module(f"repro.workloads.{self.name}")
        return module.source(
            iters if iters is not None else self.default_iters,
            footprint_divisor=_divisor(profile),
        )

    def build(self, iters: int | None = None, profile: str = "ref") -> Program:
        """Assemble this workload (cached per iteration count/profile)."""
        return _build_cached(
            self.name, iters if iters is not None else self.default_iters, profile
        )

    def run(self, iters: int | None = None, max_steps: int = 50_000_000, profile: str = "ref"):
        """Run to completion; returns the finished machine (self-check aid)."""
        from repro.emulator.machine import Machine

        machine = Machine(self.build(iters, profile))
        machine.run(max_steps)
        return machine

    def run_checked(
        self,
        iters: int | None = None,
        max_steps: int = 50_000_000,
        profile: str = "ref",
        wall_timeout: float | None = None,
    ):
        """Run to completion under a watchdog and verify the self-check.

        Returns the finished machine.

        Raises:
            RunawayExecution: the guest did not halt within *max_steps*
                or *wall_timeout* seconds.
            GuestSelfCheckFailure: the guest halted without printing its
                ``<name>:<checksum>`` banner.
        """
        from repro.emulator.machine import Machine
        from repro.harness.errors import RunawayExecution
        from repro.harness.selfcheck import verify_guest_output
        from repro.harness.watchdog import Watchdog

        machine = Machine(self.build(iters, profile))
        watchdog = (
            Watchdog(max_seconds=wall_timeout, label=f"run[{self.name}]")
            if wall_timeout is not None
            else None
        )
        machine.run(max_steps, watchdog=watchdog)
        if not machine.halted:
            raise RunawayExecution(
                f"{self.name}: guest still running after {max_steps} instructions"
            )
        verify_guest_output(machine, self.name)
        return machine

    @property
    def skip_hint(self) -> int:
        """Dynamic instructions spent in one-time initialization.

        The paper fast-forwards past program startup before measuring;
        this is the equivalent knob at our scale.  Estimated from two
        short runs: with T(i) = init + i*per_iteration, the init cost is
        2*T(1) - T(2).  Cached per workload.
        """
        return _skip_hint_cached(self.name, "ref")

    def iters_for_budget(self, budget: int, profile: str = "ref") -> int:
        """Iteration count scaled so the guest outlives *budget*.

        Long-horizon variant knob for the statistical-sampling gate
        set: returns an iteration count at which the workload retires
        at least ``init + budget`` dynamic instructions before halting,
        estimated from the same two calibration runs that back
        :attr:`skip_hint` (T(i) = init + i*per_iteration).  One extra
        iteration of margin absorbs calibration rounding, so a sampled
        run over *budget* post-skip instructions never falls off the
        end of the guest.
        """
        init, per_iter = _iter_costs_cached(self.name, profile)
        need = -(-budget // per_iter) + 1  # ceil + margin
        return max(self.default_iters, need)

    def trace(
        self,
        max_steps: int,
        iters: int | None = None,
        skip: int | None = None,
        profile: str = "ref",
        watchdog=None,
    ):
        """Steady-state trace: skips initialization by default.

        *watchdog* (a :class:`~repro.harness.watchdog.Watchdog`) bounds
        the skip fast-forward and the traced window together.
        """
        from repro.emulator.machine import Machine
        from repro.obs.guestprof import suspended_guest_profile

        machine = Machine(self.build(iters, profile))
        if skip is None:
            skip = _skip_hint_cached(self.name, profile)
        # The fast-forward stays out of any active guest profile: the
        # profile covers exactly the traced window, so a cold collection
        # and a cache-hit replay count the same instructions.
        with suspended_guest_profile():
            machine.run(skip, watchdog=watchdog)
        yield from machine.trace(max_steps, watchdog=watchdog)


def _divisor(profile: str) -> int:
    try:
        return PROFILES[profile]
    except KeyError:
        raise KeyError(f"unknown profile {profile!r}; expected one of {sorted(PROFILES)}") from None


@lru_cache(maxsize=128)
def _build_cached(name: str, iters: int, profile: str = "ref") -> Program:
    module = importlib.import_module(f"repro.workloads.{name}")
    return assemble(module.source(iters, footprint_divisor=_divisor(profile)))


@lru_cache(maxsize=None)
def _iter_costs_cached(name: str, profile: str = "ref") -> tuple[int, int]:
    """Calibrated ``(init, per_iteration)`` dynamic instruction costs.

    Two short runs fit T(i) = init + i*per_iteration; both the skip
    hint (init) and the long-horizon budget scaling (per_iteration)
    derive from this one cached fit.
    """
    from repro.emulator.machine import Machine
    from repro.obs.guestprof import suspended_guest_profile

    lengths = []
    # Calibration runs are bookkeeping, not the measured window — keep
    # them out of any active guest profile.
    with suspended_guest_profile():
        for iters in (1, 2):
            machine = Machine(_build_cached(name, iters, profile))
            machine.run(20_000_000)
            lengths.append(machine.instret)
    init = max(0, 2 * lengths[0] - lengths[1])
    per_iter = max(1, lengths[1] - lengths[0])
    return init, per_iter


def _skip_hint_cached(name: str, profile: str = "ref") -> int:
    return _iter_costs_cached(name, profile)[0]


def skip_hint(name: str, profile: str = "ref") -> int:
    """Public skip-hint lookup (initialization instructions to skip)."""
    return _iter_costs_cached(name, profile)[0]


@lru_cache(maxsize=None)
def get_workload(name: str) -> Workload:
    """Look up a workload by benchmark name."""
    if name not in BENCHMARK_NAMES:
        raise KeyError(f"unknown benchmark {name!r}; expected one of {BENCHMARK_NAMES}")
    module = importlib.import_module(f"repro.workloads.{name}")
    return Workload(name=name, description=_DESCRIPTIONS[name], default_iters=module.DEFAULT_ITERS)


def iter_workloads():
    """Yield all 11 workloads in Table 1 order."""
    for name in BENCHMARK_NAMES:
        yield get_workload(name)


def build_program(name: str, iters: int | None = None) -> Program:
    """Assemble benchmark *name* (convenience wrapper)."""
    return get_workload(name).build(iters)
