"""Synthetic ``gzip``: LZ77-style window matching with a hash head table.

Mirrors deflate's hot path: hashing short prefixes, chasing a head
table, and byte-compare match loops whose trip counts depend on the
data.  A small alphabet makes matches plentiful, as in text input.
"""

from __future__ import annotations

from repro.workloads.common import epilogue, rand_asm, scaled_size

MAX_FOOTPRINT_DIVISOR = 4
DEFAULT_ITERS = 2
_BUF_SIZE = 16384
_MAX_MATCH = 16


def source(iters: int = DEFAULT_ITERS, footprint_divisor: int = 1) -> str:
    """Assembly source for the gzip workload with *iters* deflate passes.

    *footprint_divisor* shrinks the data footprint (power of two),
    giving the SPEC-style test/train/ref input profiles.
    """
    div = min(footprint_divisor, MAX_FOOTPRINT_DIVISOR)
    size = scaled_size(_BUF_SIZE, div)
    return f"""
# gzip: LZ77 window matcher over a {size}-byte buffer
        .data
        .align 2
buf:    .space {size}
head:   .space 1024              # 256 word entries: hash -> last position+1
        .text
main:   la   $s0, buf
        la   $s1, head
        li   $s2, {size}
        li   $s7, 0

# --- fill buffer from a small alphabet so matches are common -----------
        li   $s3, 0
gfill:  jal  rand
        andi $t0, $v0, 7
        addiu $t0, $t0, 97       # 'a'..'h'
        addu $t2, $s0, $s3
        sb   $t0, 0($t2)
        addiu $s3, $s3, 1
        bne  $s3, $s2, gfill

        li   $s6, {iters}
giter:  # mutate a byte between passes
        jal  rand
        andi $t0, $v0, {size - 1}
        addu $t2, $s0, $t0
        jal  rand
        andi $t1, $v0, 7
        addiu $t1, $t1, 97
        sb   $t1, 0($t2)
        jal  deflate
        addiu $s6, $s6, -1
        bgtz $s6, giter
        j    finish

# --- one deflate pass ---------------------------------------------------
deflate:
        # clear head table (256 words)
        li   $t0, 0
        li   $t1, 256
dclr:   sll  $t2, $t0, 2
        addu $t2, $s1, $t2
        sw   $0, 0($t2)
        addiu $t0, $t0, 1
        bne  $t0, $t1, dclr

        li   $s3, 0              # position i
dloop:  addiu $t9, $s2, -{_MAX_MATCH}
        slt  $t0, $s3, $t9
        beq  $t0, $0, ddone      # stop near buffer end
        # hash = (buf[i] << 3) ^ buf[i+1], 8 bits
        addu $t2, $s0, $s3
        lbu  $t0, 0($t2)
        lbu  $t1, 1($t2)
        sll  $t3, $t0, 3
        xor  $t3, $t3, $t1
        andi $t3, $t3, 0xff
        # candidate = head[hash] - 1 ; head[hash] = i + 1
        sll  $t4, $t3, 2
        addu $t4, $s1, $t4
        lw   $t5, 0($t4)
        addiu $t6, $s3, 1
        sw   $t6, 0($t4)
        beq  $t5, $0, dliteral   # no prior occurrence
        addiu $t5, $t5, -1       # candidate position
        # match length loop, up to {_MAX_MATCH}
        li   $t6, 0              # length
        addu $t7, $s0, $t5       # cand ptr
        addu $t2, $s0, $s3       # cur ptr
dmatch: lbu  $t0, 0($t7)
        lbu  $t1, 0($t2)
        bne  $t0, $t1, dmend
        addiu $t6, $t6, 1
        addiu $t7, $t7, 1
        addiu $t2, $t2, 1
        slti $t0, $t6, {_MAX_MATCH}
        bne  $t0, $0, dmatch
dmend:  slti $t0, $t6, 3
        bne  $t0, $0, dliteral   # too short: literal
        # emit match(dist, len): checksum ^= (dist << 5) + len, advance
        subu $t1, $s3, $t5
        sll  $t1, $t1, 5
        addu $t1, $t1, $t6
        sll  $t2, $s7, 1
        srl  $t3, $s7, 31
        or   $t2, $t2, $t3
        xor  $s7, $t2, $t1
        addu $s3, $s3, $t6
        b    dloop
dliteral:
        addu $t2, $s0, $s3
        lbu  $t0, 0($t2)
        xor  $s7, $s7, $t0
        addiu $s3, $s3, 1
        b    dloop
ddone:  jr   $ra
{rand_asm(seed=0x9E3779B9)}
{epilogue("gzip")}
"""
