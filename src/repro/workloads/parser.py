"""Synthetic ``parser``: dictionary hash lookup with string compares.

Mirrors the link parser's dictionary phase: a stream of words looked up
in a chained hash table, with a byte-by-byte string-compare inner loop
(``lbu``/``lbu``/``bne``) and insertions of unseen words.
"""

from __future__ import annotations

from repro.workloads.common import epilogue, rand_asm, scaled_size

MAX_FOOTPRINT_DIVISOR = 4
DEFAULT_ITERS = 4
_NUM_WORDS = 512       # vocabulary size
_WORD_BYTES = 12      # fixed-size slots, NUL-padded
_NUM_BUCKETS = 128     # power of two
_STREAM_LEN = 512     # words looked up per pass
# dictionary entry: word copy (12) + next ptr (4) = 16 bytes
_ENTRY_SIZE = 16
_MAX_ENTRIES = 1024


def source(iters: int = DEFAULT_ITERS, footprint_divisor: int = 1) -> str:
    """Assembly source for the parser workload with *iters* stream passes.

    *footprint_divisor* shrinks the data footprint (power of two),
    giving the SPEC-style test/train/ref input profiles.
    """
    div = min(footprint_divisor, MAX_FOOTPRINT_DIVISOR)
    words = scaled_size(_NUM_WORDS, div)
    entries = scaled_size(_MAX_ENTRIES, div)
    return f"""
# parser: hash-chained dictionary over a {words}-word vocabulary
        .data
        .align 2
vocab:  .space {words * _WORD_BYTES}
buckets: .space {_NUM_BUCKETS * 4}
entries: .space {entries * _ENTRY_SIZE}
nextent: .word 0
        .text
main:   la   $s0, vocab
        la   $s1, buckets
        la   $s2, entries
        li   $s7, 0

# --- build vocabulary: words of 3..10 lowercase letters --------------------
        li   $s3, 0
vbuild: sll  $t0, $s3, 3
        sll  $t1, $s3, 2
        addu $t0, $t0, $t1       # idx * 12
        addu $t0, $s0, $t0       # slot
        jal  rand
        andi $t2, $v0, 7
        addiu $t2, $t2, 3        # length 3..10
        li   $t3, 0              # char index
vchar:  jal  rand
        andi $t4, $v0, 25
        addiu $t4, $t4, 97
        addu $t5, $t0, $t3
        sb   $t4, 0($t5)
        addiu $t3, $t3, 1
        slt  $t6, $t3, $t2
        bne  $t6, $0, vchar
        addu $t5, $t0, $t3
        sb   $0, 0($t5)          # NUL terminate
        addiu $s3, $s3, 1
        slti $t6, $s3, {words}
        bne  $t6, $0, vbuild

        li   $s6, {iters}
piter:  jal  lookup_stream
        addiu $s6, $s6, -1
        bgtz $s6, piter
        j    finish

# --- look up {_STREAM_LEN} random words --------------------------------------
lookup_stream:
        move $s5, $ra
        li   $s3, 0
lsloop: jal  rand
        andi $t0, $v0, {words - 1}
        sll  $t1, $t0, 3
        sll  $t2, $t0, 2
        addu $t1, $t1, $t2
        addu $a0, $s0, $t1       # word pointer
        jal  dict_lookup
        addu $s7, $s7, $v1       # v1 = entry count for word
        addiu $s3, $s3, 1
        slti $t0, $s3, {_STREAM_LEN}
        bne  $t0, $0, lsloop
        jr   $s5

# --- hash+chain lookup; $a0 = word; returns chain hits in $v1 ---------------
dict_lookup:
        # hash = sum of bytes * 31 rolling
        li   $t0, 0              # hash
        move $t1, $a0
dhash:  lbu  $t2, 0($t1)
        beq  $t2, $0, dhashed
        sll  $t3, $t0, 5
        subu $t3, $t3, $t0       # hash * 31
        addu $t0, $t3, $t2
        addiu $t1, $t1, 1
        b    dhash
dhashed:
        andi $t0, $t0, {_NUM_BUCKETS - 1}
        sll  $t0, $t0, 2
        addu $t0, $s1, $t0       # &buckets[h]
        lw   $t1, 0($t0)         # entry ptr (0 = empty)
        li   $v1, 0
dchain: beq  $t1, $0, dinsert
        # string compare entry word vs $a0
        move $t2, $t1            # entry word bytes
        move $t3, $a0
dscmp:  lbu  $t4, 0($t2)
        lbu  $t5, 0($t3)
        bne  $t4, $t5, dnomatch
        beq  $t4, $0, dfound     # both NUL: equal
        addiu $t2, $t2, 1
        addiu $t3, $t3, 1
        b    dscmp
dnomatch:
        addiu $v1, $v1, 1        # chain position feeds checksum
        lw   $t1, {_WORD_BYTES}($t1) # next entry
        b    dchain
dfound: addiu $v1, $v1, 1
        jr   $ra
dinsert:
        # allocate a new entry (bounded), copy word, link at bucket head
        la   $t6, nextent
        lw   $t7, 0($t6)
        slti $t8, $t7, {entries}
        beq  $t8, $0, dfull      # arena exhausted: count miss only
        addiu $t5, $t7, 1
        sw   $t5, 0($t6)
        sll  $t5, $t7, 4         # * {_ENTRY_SIZE}
        addu $t5, $s2, $t5       # new entry
        # copy word ({_WORD_BYTES} bytes)
        li   $t7, 0
dcopy:  addu $t2, $a0, $t7
        lbu  $t3, 0($t2)
        addu $t2, $t5, $t7
        sb   $t3, 0($t2)
        addiu $t7, $t7, 1
        slti $t2, $t7, {_WORD_BYTES}
        bne  $t2, $0, dcopy
        lw   $t2, 0($t0)
        sw   $t2, {_WORD_BYTES}($t5)  # next = old head
        sw   $t5, 0($t0)         # bucket head = new
dfull:  addiu $v1, $v1, 2
        jr   $ra
{rand_asm(seed=0x9A15E501)}
{epilogue("parser")}
"""
