"""Vectorized characterization kernels.

The scalar studies in :mod:`repro.characterization.lsq_char` and
:mod:`repro.characterization.tag_char` classify every access at every
partial width with a Python loop — O(bits × entries) per access.  These
numpy equivalents exploit a simple observation: a comparison's category
at width *b* is fully determined by each entry's **first differing bit**
against the probe, so one pass computes the whole per-access curve.

For an entry with first-diff bit *d* (32 when it matches fully), the
entry partially matches at width *b* iff ``d > b``.  Counting entries
and distinct addresses above each threshold gives every category at
every width from two sorted arrays — no per-bit work at all.

Equivalence with the scalar implementations is enforced by property
tests (`tests/test_vectorized.py`); the speedup is tracked by
`benchmarks/test_throughput.py`.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.characterization.lsq_char import LSQCharacterization
from repro.characterization.tag_char import TagCharacterization
from repro.lsq.disambiguation import FIRST_COMPARE_BIT, LSDCategory
from repro.memsys.cache import CacheConfig, SetAssociativeCache
from repro.memsys.partial_tag import PartialTagOutcome

_ADDR_MASK = 0xFFFFFFFC  # bits 0-1 never participate (§5.1)
_FULL_BIT = 32           # sentinel: no differing bit (full match)


def first_diff_bits(probe: int, entries: np.ndarray, mask: int = _ADDR_MASK) -> np.ndarray:
    """First differing bit of *probe* vs. each entry (32 = full match)."""
    diffs = (entries ^ np.uint64(probe)) & np.uint64(mask)
    out = np.full(len(entries), _FULL_BIT, dtype=np.int64)
    nz = diffs != 0
    if nz.any():
        d = diffs[nz].astype(np.uint64)
        lowest = d & (~d + np.uint64(1))
        # bit_length - 1 via log2 on exact powers of two.
        out[nz] = np.log2(lowest.astype(np.float64)).astype(np.int64)
    return out


def lsd_category_curve(load_addr: int, store_addrs: list[int]) -> list[LSDCategory]:
    """Figure 2 categories for high_bit = 2..31, computed in one pass."""
    bits = np.arange(FIRST_COMPARE_BIT, 32)
    if not store_addrs:
        return [LSDCategory.NO_STORES] * len(bits)
    stores = np.asarray(store_addrs, dtype=np.uint64)
    fdb = first_diff_bits(load_addr, stores)
    # Per-store and per-distinct-address survivor counts above each bit.
    fdb_sorted = np.sort(fdb)
    survivors = len(fdb) - np.searchsorted(fdb_sorted, bits, side="right")
    unique_addrs = np.unique(stores & np.uint64(_ADDR_MASK))
    ufdb = np.sort(first_diff_bits(load_addr, unique_addrs))
    group_survivors = len(ufdb) - np.searchsorted(ufdb, bits, side="right")
    has_full_match = bool((fdb == _FULL_BIT).any())
    multiple_stores = len(store_addrs) > 1

    out: list[LSDCategory] = []
    for p, g in zip(survivors, group_survivors):
        if p == 0:
            out.append(LSDCategory.ZERO_MATCH)
        elif p == 1:
            if has_full_match:
                # The lone survivor is necessarily the longest-matching
                # store, i.e. the full matcher when one exists.
                out.append(
                    LSDCategory.SINGLE_MATCH_MULT_STORES
                    if multiple_stores
                    else LSDCategory.SINGLE_MATCH_ONE_STORE
                )
            else:
                out.append(LSDCategory.SINGLE_NONMATCH)
        elif g == 1:
            out.append(LSDCategory.MULTI_SAME_ADDR)
        else:
            out.append(LSDCategory.MULTI_DIFF_ADDR)
    return out


def characterize_lsq_fast(
    trace,
    benchmark: str = "",
    lsq_size: int = 32,
    bits: tuple[int, ...] | None = None,
) -> LSQCharacterization:
    """Drop-in vectorized equivalent of
    :func:`repro.characterization.lsq_char.characterize_lsq`."""
    sample_bits = tuple(range(FIRST_COMPARE_BIT, 32)) if bits is None else bits
    result = LSQCharacterization(benchmark=benchmark)
    result.counts = {b: {} for b in sample_bits}
    window: deque[tuple[int, int]] = deque()
    mem_seq = 0
    for record in trace:
        inst = record.inst
        if inst.is_store:
            window.append((mem_seq, record.mem_addr))
            mem_seq += 1
            while window and window[0][0] < mem_seq - lsq_size:
                window.popleft()
            continue
        if not inst.is_load:
            continue
        mem_seq += 1
        while window and window[0][0] < mem_seq - lsq_size:
            window.popleft()
        result.loads += 1
        curve = lsd_category_curve(record.mem_addr, [a for _, a in window])
        for b in sample_bits:
            category = curve[b - FIRST_COMPARE_BIT]
            bucket = result.counts[b]
            bucket[category] = bucket.get(category, 0) + 1
    return result


def tag_outcome_curve(full_tag: int, resident_tags: list[int], tag_width: int) -> list[PartialTagOutcome]:
    """Figure 4 outcomes for bits = 1..tag_width, computed in one pass."""
    bits = np.arange(1, tag_width + 1)
    if not resident_tags:
        return [PartialTagOutcome.ZERO] * len(bits)
    tags = np.asarray(resident_tags, dtype=np.uint64)
    fdb = np.sort(first_diff_bits(full_tag, tags, mask=(1 << tag_width) - 1))
    fdb = np.where(fdb == _FULL_BIT, tag_width, fdb)
    # A resident matches at width b iff its first-diff bit >= b.
    survivors = len(fdb) - np.searchsorted(fdb, bits, side="left")
    truly_hits = full_tag in resident_tags
    out: list[PartialTagOutcome] = []
    for p in survivors:
        if p == 0:
            out.append(PartialTagOutcome.ZERO)
        elif p > 1:
            out.append(PartialTagOutcome.MULTI)
        else:
            out.append(PartialTagOutcome.SINGLE_HIT if truly_hits else PartialTagOutcome.SINGLE_MISS)
    return out


def characterize_tags_fast(
    trace,
    config: CacheConfig,
    benchmark: str = "",
    bits: tuple[int, ...] | None = None,
    warmup: int = 0,
) -> TagCharacterization:
    """Drop-in vectorized equivalent of
    :func:`repro.characterization.tag_char.characterize_tags`."""
    tag_width = config.tag_bits
    sample_bits = tuple(range(1, tag_width + 1)) if bits is None else bits
    cache = SetAssociativeCache(config)
    result = TagCharacterization(benchmark=benchmark, config=config)
    result.counts = {b: {} for b in sample_bits}
    seen = 0
    for record in trace:
        seen += 1
        if record.mem_addr < 0:
            continue
        addr = record.mem_addr
        if seen <= warmup:
            cache.access(addr)
            continue
        _, full_tag = config.split(addr)
        resident = cache.set_tags(addr)
        result.accesses += 1
        curve = tag_outcome_curve(full_tag, resident, tag_width)
        for b in sample_bits:
            outcome = curve[min(b, tag_width) - 1]
            bucket = result.counts[b]
            bucket[outcome] = bucket.get(outcome, 0) + 1
        cache.access(addr)
    return result
