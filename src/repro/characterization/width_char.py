"""Operand/result width characterization.

The paper's §6 points at the narrow-width optimization of Brooks &
Martonosi [3] and Canal/González/Smith [6]: "if an instruction is known
to use narrow-width operands, inter-slice dependences could be relaxed
further since the high-order register operand would be a known value of
either all 0's or 1's."  This study quantifies the opportunity on our
traces: for each produced result, the minimum number of slices that
carry information (the rest being sign/zero extension), per slice
granularity and op class.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.isa.opclass import OpClass, op_class

_M = 0xFFFFFFFF


def significant_slices(value: int, num_slices: int) -> int:
    """Minimum low-order slices that determine *value*.

    The remaining high slices are all-zeros or all-ones (a sign/zero
    extension of the top significant slice), exactly the condition under
    which the §6 relaxation applies.
    """
    if num_slices not in (1, 2, 4):
        raise ValueError("num_slices must be 1, 2 or 4")
    width = 32 // num_slices
    value &= _M
    for k in range(1, num_slices + 1):
        bits = k * width
        low = value & ((1 << bits) - 1)
        if value == low:  # zero-extended
            return k
        sign = (low >> (bits - 1)) & 1
        if sign and value == (low | (_M << bits)) & _M:  # sign-extended
            return k
    return num_slices


@dataclass
class WidthCharacterization:
    """Distribution of significant result slices for one trace."""

    num_slices: int = 2
    results: int = 0
    #: histogram: significant slice count → results.
    histogram: Counter = field(default_factory=Counter)
    #: per-opclass histograms.
    by_class: dict[OpClass, Counter] = field(default_factory=dict)

    def narrow_fraction(self, max_slices: int = 1) -> float:
        """Fraction of results needing at most *max_slices* slices —
        the §6 relaxation opportunity."""
        if not self.results:
            return 0.0
        return sum(n for k, n in self.histogram.items() if k <= max_slices) / self.results

    def class_narrow_fraction(self, klass: OpClass, max_slices: int = 1) -> float:
        counts = self.by_class.get(klass)
        if not counts:
            return 0.0
        total = sum(counts.values())
        return sum(n for k, n in counts.items() if k <= max_slices) / total

    def summary(self) -> str:
        lines = [
            f"results analyzed : {self.results} ({self.num_slices} slices of {32 // self.num_slices} bits)",
            f"narrow (1 slice) : {self.narrow_fraction(1):.1%}",
        ]
        for k in range(1, self.num_slices + 1):
            lines.append(f"  <= {k} slice(s)  : {self.narrow_fraction(k):.1%}")
        for klass, counts in sorted(self.by_class.items(), key=lambda kv: -sum(kv[1].values())):
            total = sum(counts.values())
            lines.append(
                f"  {klass.name:<12s}: {total:>7d} results, "
                f"{self.class_narrow_fraction(klass, 1):.0%} narrow"
            )
        return "\n".join(lines)


def characterize_widths(trace, num_slices: int = 2, warmup: int = 0) -> WidthCharacterization:
    """Run the width study over *trace* (register-writing results only)."""
    result = WidthCharacterization(num_slices=num_slices)
    seen = 0
    for record in trace:
        seen += 1
        if seen <= warmup:
            continue
        inst = record.inst
        if not inst.dst_regs():
            continue
        klass = op_class(inst.mnemonic)
        k = significant_slices(record.result, num_slices)
        result.results += 1
        result.histogram[k] += 1
        result.by_class.setdefault(klass, Counter())[k] += 1
    return result
