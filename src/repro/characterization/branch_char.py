"""Figure 6 and §5.3: early branch misprediction detection.

Runs the Table 2 front end (64k gshare) over a trace and, for every
conditional-branch misprediction, records how many low-order operand
bits must be examined before the misprediction is detectable.  Also
collects the §5.3 statistics: the fraction of dynamic branches and of
mispredictions contributed by ``beq``/``bne`` (the early-resolvable
types).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.branch.early import ALL_BITS, bits_to_detect_mispredict
from repro.branch.gshare import GsharePredictor


@dataclass
class BranchCharacterization:
    """Cumulative-detection curve for one benchmark (one Figure 6 line)."""

    benchmark: str = ""
    branches: int = 0
    mispredictions: int = 0
    eq_type_branches: int = 0         # dynamic beq/bne
    eq_type_mispredictions: int = 0
    #: histogram: bits needed (1..32) -> misprediction count.
    needed_bits: dict[int, int] = field(default_factory=dict)

    def detected_fraction(self, bits: int) -> float:
        """Fraction of all mispredictions detectable with the low
        *bits* operand bits (one point of a Figure 6 curve)."""
        if not self.mispredictions:
            return 0.0
        detected = sum(n for b, n in self.needed_bits.items() if b <= bits)
        return detected / self.mispredictions

    @property
    def accuracy(self) -> float:
        return 1.0 - self.mispredictions / self.branches if self.branches else 0.0

    @property
    def eq_type_branch_fraction(self) -> float:
        """Fraction of dynamic conditional branches that are beq/bne
        (paper §5.3: 61% on average)."""
        return self.eq_type_branches / self.branches if self.branches else 0.0

    @property
    def eq_type_mispredict_fraction(self) -> float:
        """Fraction of mispredictions on beq/bne (paper: 48% average)."""
        return self.eq_type_mispredictions / self.mispredictions if self.mispredictions else 0.0


def characterize_branches(
    trace,
    benchmark: str = "",
    gshare_entries: int = 64 * 1024,
    warmup: int = 0,
) -> BranchCharacterization:
    """Run the Figure 6 study over *trace*.

    The first *warmup* instructions train the predictor without being
    counted (cold-start control, as the paper's long runs amortize).
    """
    predictor = GsharePredictor(gshare_entries)
    result = BranchCharacterization(benchmark=benchmark)
    seen = 0
    for record in trace:
        seen += 1
        inst = record.inst
        if not inst.is_branch:
            continue
        m = inst.mnemonic
        predicted = predictor.predict(record.pc)
        predictor.update(record.pc, record.taken)
        if seen <= warmup:
            continue
        result.branches += 1
        is_eq_type = m in ("beq", "bne")
        if is_eq_type:
            result.eq_type_branches += 1
        if predicted == record.taken:
            continue
        result.mispredictions += 1
        if is_eq_type:
            result.eq_type_mispredictions += 1
        needed = bits_to_detect_mispredict(m, record.rs_val, record.rt_val, predicted, record.taken)
        assert needed is not None
        result.needed_bits[needed] = result.needed_bits.get(needed, 0) + 1
    return result


def average_detected_fraction(results: list[BranchCharacterization], bits: int) -> float:
    """Benchmark-mean of the detection fraction at *bits* (the paper's
    "on average ... after analyzing 8 bits" headline)."""
    vals = [r.detected_fraction(bits) for r in results if r.mispredictions]
    return sum(vals) / len(vals) if vals else 0.0


__all__ = [
    "ALL_BITS",
    "BranchCharacterization",
    "average_detected_fraction",
    "characterize_branches",
]
