"""Figure 2: early load–store disambiguation characterization.

For every dynamic load, at the moment it (notionally) enters a 32-entry
unified LSQ, its address is compared bit-serially from bit 2 against
the addresses of all prior stores still in the queue, and the outcome
is classified per the Figure 2 legend at every partial width.  As in
the paper, store addresses are assumed perfectly known ("for this
characterization we assume perfect knowledge of prior store
addresses").

The queue occupancy is approximated structurally: a store remains
"prior and in the queue" for the next ``lsq_size`` memory operations,
mirroring a 32-entry unified queue of in-flight memory instructions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.emulator.trace import TraceRecord
from repro.lsq.disambiguation import (
    FIRST_COMPARE_BIT,
    LAST_COMPARE_BIT,
    LSDCategory,
    classify_disambiguation,
)


@dataclass
class LSQCharacterization:
    """Per-bit category counts for one benchmark (one Figure 2 panel)."""

    benchmark: str = ""
    loads: int = 0
    #: counts[high_bit][category] for high_bit in 2..31.
    counts: dict[int, dict[LSDCategory, int]] = field(default_factory=dict)

    def fraction(self, high_bit: int, category: LSDCategory) -> float:
        """Fraction of all loads in *category* after comparing bits
        [2, high_bit] (one bar segment of Figure 2)."""
        if not self.loads:
            return 0.0
        return self.counts[high_bit].get(category, 0) / self.loads

    def resolved_fraction(self, high_bit: int) -> float:
        """Fraction of loads decisively disambiguated at *high_bit*:
        either all stores ruled out or a unique true match found."""
        decisive = (
            LSDCategory.NO_STORES,
            LSDCategory.ZERO_MATCH,
            LSDCategory.SINGLE_MATCH_ONE_STORE,
            LSDCategory.SINGLE_MATCH_MULT_STORES,
            LSDCategory.MULTI_SAME_ADDR,
        )
        return sum(self.fraction(high_bit, c) for c in decisive)


def characterize_lsq(
    trace,
    benchmark: str = "",
    lsq_size: int = 32,
    bits: tuple[int, ...] | None = None,
) -> LSQCharacterization:
    """Run the Figure 2 study over *trace*.

    Args:
        trace: iterable of :class:`TraceRecord`.
        benchmark: label for reporting.
        lsq_size: unified queue capacity (Table 2: 32).
        bits: the high-bit sample points; defaults to every bit 2..31.
    """
    sample_bits = tuple(range(FIRST_COMPARE_BIT, LAST_COMPARE_BIT + 1)) if bits is None else bits
    result = LSQCharacterization(benchmark=benchmark)
    result.counts = {b: {} for b in sample_bits}
    # Each element: (age_counter, addr).  A store stays "in the queue"
    # while fewer than lsq_size younger memory ops have entered.
    window: deque[tuple[int, int]] = deque()
    mem_seq = 0
    for record in trace:
        inst = record.inst
        if inst.is_store:
            window.append((mem_seq, record.mem_addr))
            mem_seq += 1
            while window and window[0][0] < mem_seq - lsq_size:
                window.popleft()
            continue
        if not inst.is_load:
            continue
        mem_seq += 1
        while window and window[0][0] < mem_seq - lsq_size:
            window.popleft()
        store_addrs = [a for _, a in window]
        result.loads += 1
        for b in sample_bits:
            category = classify_disambiguation(record.mem_addr, store_addrs, b)
            bucket = result.counts[b]
            bucket[category] = bucket.get(category, 0) + 1
    return result
