"""Trace-driven characterization studies (paper §4–5).

One module per paper figure:

* :mod:`repro.characterization.lsq_char` — Figure 2, early load–store
  disambiguation categories vs. address bits compared;
* :mod:`repro.characterization.tag_char` — Figure 4, partial tag
  matching categories vs. tag bits compared;
* :mod:`repro.characterization.branch_char` — Figure 6, fraction of
  mispredictions detectable vs. operand bits examined, plus the §5.3
  branch-mix statistics.
"""

from repro.characterization.branch_char import BranchCharacterization, characterize_branches
from repro.characterization.lsq_char import LSQCharacterization, characterize_lsq
from repro.characterization.tag_char import TagCharacterization, characterize_tags

__all__ = [
    "BranchCharacterization",
    "LSQCharacterization",
    "TagCharacterization",
    "characterize_branches",
    "characterize_lsq",
    "characterize_tags",
]
