"""Figure 4: partial tag matching characterization.

For every L1 data-cache access, tag bits are compared serially from the
first tag bit upward against the resident tags of the indexed set, and
the outcome is classified per the Figure 4 legend at every partial
width.  The study sweeps cache geometry the way the paper does: two
sizes (64KB/64B-line and 8KB/32B-line) at three associativities
(2/4/8-way).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memsys.cache import CacheConfig, SetAssociativeCache
from repro.memsys.partial_tag import PartialTagOutcome, classify_partial_tag


@dataclass
class TagCharacterization:
    """Per-bit outcome counts for one (benchmark, geometry) pair."""

    benchmark: str = ""
    config: CacheConfig | None = None
    accesses: int = 0
    #: counts[bits_used][outcome] for bits_used in 1..tag_bits.
    counts: dict[int, dict[PartialTagOutcome, int]] = field(default_factory=dict)

    def fraction(self, bits: int, outcome: PartialTagOutcome) -> float:
        """One bar segment of Figure 4."""
        if not self.accesses:
            return 0.0
        return self.counts[bits].get(outcome, 0) / self.accesses

    @property
    def hit_rate(self) -> float:
        """Full-tag hit rate: the SINGLE_HIT fraction at full width."""
        full = self.config.tag_bits
        return self.fraction(full, PartialTagOutcome.SINGLE_HIT)

    def converged_bit(self, tolerance: float = 0.01) -> int:
        """First width at which the MULTI fraction drops below
        *tolerance* (where the bars of Figure 4 have converged)."""
        for bits in sorted(self.counts):
            if self.fraction(bits, PartialTagOutcome.MULTI) < tolerance:
                return bits
        return self.config.tag_bits


def characterize_tags(
    trace,
    config: CacheConfig,
    benchmark: str = "",
    bits: tuple[int, ...] | None = None,
    warmup: int = 0,
) -> TagCharacterization:
    """Run the Figure 4 study over the data references of *trace*.

    The first *warmup* instructions update the cache without being
    classified (cold-start control).
    """
    tag_width = config.tag_bits
    sample_bits = tuple(range(1, tag_width + 1)) if bits is None else bits
    cache = SetAssociativeCache(config)
    result = TagCharacterization(benchmark=benchmark, config=config)
    result.counts = {b: {} for b in sample_bits}
    seen = 0
    for record in trace:
        seen += 1
        if record.mem_addr < 0:
            continue
        addr = record.mem_addr
        if seen <= warmup:
            cache.access(addr)
            continue
        _, full_tag = config.split(addr)
        resident = cache.set_tags(addr)
        result.accesses += 1
        for b in sample_bits:
            outcome = classify_partial_tag(full_tag, resident, b, tag_width)
            bucket = result.counts[b]
            bucket[outcome] = bucket.get(outcome, 0) + 1
        cache.access(addr)
    return result


#: The two geometries of Figure 4 at each paper associativity.
FIGURE4_GEOMETRIES: tuple[tuple[str, int, int], ...] = (
    ("64KB, 64B lines", 64 * 1024, 64),
    ("8KB, 32B lines", 8 * 1024, 32),
)
FIGURE4_ASSOCIATIVITIES: tuple[int, ...] = (2, 4, 8)


def figure4_configs() -> list[CacheConfig]:
    """The six cache geometries plotted in Figure 4."""
    configs = []
    for label, size, line in FIGURE4_GEOMETRIES:
        for assoc in FIGURE4_ASSOCIATIVITIES:
            configs.append(CacheConfig(size=size, assoc=assoc, line_size=line, name=f"{label}, {assoc}-way"))
    return configs
