"""Block-compiled execution: the emulator's third tier.

Pre-bound dispatch (:mod:`repro.emulator.dispatch`) made each retired
instruction one indirect call; this module removes even that.  At
decode time the text segment is partitioned into basic blocks (leaders
= the entry point, every branch/jump target, every index after a
control transfer or system instruction).  A lightweight execution-count
profile — a per-leader countdown in the dispatch table — triggers
compilation of hot leaders into specialized Python functions:

* guest registers live in host locals for the whole block (registers
  are loaded from ``R[n]`` only if read before written, and stored
  back once per exit),
* immediates, branch targets, PCs and next-PC values are
  constant-folded into the source,
* adjacent same-base contiguous ``lw``/``sw`` runs are batched through
  the vectorized :meth:`SparseMemory.read_words` /
  :meth:`SparseMemory.write_words` helpers,
* superblocks extend through unconditional ``j``/``jal`` *and* through
  conditional branches: backward branches continue along the taken
  edge (unrolling tight loops up to ``MAX_BLOCK_LEN`` instructions),
  forward branches continue along the fallthrough edge, and the cold
  direction becomes a side exit that commits and returns early.

Each block compiles to two variants.  The *run* variant returns a
packed ``(next_leader_index + 1) << 8 | retired_count`` so the
machine's chain loop can jump compiled-block-to-compiled-block without
re-deriving the PC.  The *trace* variant builds the exact
:class:`~repro.emulator.trace.TraceRecord` list the reference
interpreter would emit — byte-identical traces, so the SHA-256 trace
cache, packed transport and all downstream timing machinery are
untouched.

Fault discipline — replay on exception.  A compiled body mutates no
architectural state (registers, PC, instret) until a commit point (a
side exit or the block end); mid-block memory *writes* are the only
side effect and are idempotent under deterministic re-execution from
the entry state.  If anything raises inside a compiled body (alignment
trap, illegal access), the machine re-executes the block
per-instruction through the pre-bound handlers, reproducing the
reference fault semantics exactly: same partial trace, same exception,
same architectural state at the faulting instruction.

Everything that is not a hot compiled block — cold code, syscalls,
``break``, undecodable words, the tail of a bounded run — falls back
to pre-bound dispatch, instruction by instruction.

``cross_check_blocks`` is the differential harness: a blocks-mode
machine and the golden reference run in lockstep (states align at
block exits) and any record or final-state mismatch raises
:class:`DispatchDivergence`.
"""

from __future__ import annotations

import math
import os
import time
import weakref

from repro.emulator.dispatch import (
    DispatchDivergence,
    _fp_cvt_w_s,
    _fp_sqrt,
    bits_from_f32,
    f32_from_bits,
)
from repro.emulator.trace import TraceRecord
from repro.isa.instructions import BRANCH_OPS
from repro.isa.registers import FCC, FP_BASE, HI, LO
from repro.obs.tracing import active_tracer

_M = 0xFFFFFFFF

#: Fetch-line granularity of the warm variant's I-side touches (64-byte
#: lines, matching the Table 2 L1I).  ``warm_instruction`` deduplicates
#: by its own line size, so a mismatch only costs extra calls.
_ILINE_SHIFT = 6

#: Environment knob: executions of a leader before its block compiles.
#: 0 compiles on first entry (what tests and cross_check use).
THRESHOLD_ENV = "REPRO_BLOCKS_THRESHOLD"
DEFAULT_THRESHOLD = 8

#: Superblock growth cap (instructions per compiled function).  Must
#: stay below 256: the run variant packs the retired count into the
#: low byte of its return value.
MAX_BLOCK_LEN = 64

#: Blocks shorter than this stay on pre-bound dispatch: the per-block
#: call + commit overhead eats the per-instruction saving (see the
#: host-op cost table in docs/performance.md).  Two instructions is the
#: break-even point; hot 2-instruction chunks (e.g. the argument setup
#: before a syscall) are common enough to matter.
MIN_BLOCK_LEN = 2

#: Minimum adjacent lw/sw run length routed through read_words /
#: write_words; below this the scalar accessors are cheaper.
BATCH_MIN = 4

_BRANCHES = frozenset(BRANCH_OPS)
_LINKS = frozenset({"j", "jal"})
_INDIRECT = frozenset({"jr", "jalr"})
_UNSUPPORTED = frozenset({"syscall", "break"})

_R3_EXPR = {
    "addu": "(({a} + {b}) & 4294967295)",
    "add": "(({a} + {b}) & 4294967295)",
    "subu": "(({a} - {b}) & 4294967295)",
    "sub": "(({a} - {b}) & 4294967295)",
    "and": "({a} & {b})",
    "or": "({a} | {b})",
    "xor": "({a} ^ {b})",
    "nor": "(~({a} | {b}) & 4294967295)",
    "slt": "(1 if {sa} < {sb} else 0)",
    "sltu": "(1 if {a} < {b} else 0)",
    "sllv": "((({b}) << ({a} & 31)) & 4294967295)",
    "srlv": "(({b}) >> ({a} & 31))",
    "srav": "(({sb} >> ({a} & 31)) & 4294967295)",
}

_FP_CMP_OP = {"c.eq.s": "==", "c.lt.s": "<", "c.le.s": "<="}

_FP_ARITH = frozenset({
    "add.s", "sub.s", "mul.s", "div.s",
    "mov.s", "neg.s", "abs.s", "sqrt.s", "cvt.w.s", "cvt.s.w",
    "c.eq.s", "c.lt.s", "c.le.s",
})

#: Mnemonics whose run-variant code never reads rs (resp. rt) — the
#: trace variant always reads both for the record's rs_val/rt_val.
#: Wrong membership fails loudly: the placeholder is an undefined local,
#: so any stray use raises NameError, which replay turns into
#: DispatchDivergence under the differential tests.
_RS_UNUSED_RUN = _FP_ARITH | frozenset({
    "lui", "sll", "srl", "sra", "mfhi", "mflo", "mfc1", "mtc1", "j", "jal",
    "bc1t", "bc1f",
})
_RT_UNUSED_RUN = _FP_ARITH | frozenset({
    "lw", "lb", "lbu", "lh", "lhu", "lui", "lwc1", "swc1",
    "mfhi", "mflo", "mfc1", "mthi", "mtlo", "j", "jal", "jr", "jalr",
    "blez", "bgtz", "bltz", "bgez", "bc1t", "bc1f",
})

_BRANCH2_OP = {"beq": "==", "bne": "!="}

_BRANCH1_OP = {"blez": "<= 0", "bgtz": "> 0", "bltz": "< 0", "bgez": ">= 0"}


def default_block_threshold() -> int:
    """Compile threshold from the environment (non-negative int)."""
    raw = os.environ.get(THRESHOLD_ENV, "")
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_THRESHOLD


# ------------------------------------------------------------------- stats

_STATS = {
    "blocks_compiled": 0,
    "superblocks": 0,
    "compile_seconds": 0.0,
    "block_execs": 0,
    "block_insts": 0,
    "fallback_insts": 0,
    "replays": 0,
    # JIT-tier telemetry (this PR): how the compiled tier behaved, not
    # just how much it ran.
    "side_exits": 0,       # compiled execs that left a superblock early
    "cache_binds": 0,      # compile_block calls served by the code cache
    "mem_run_sites": 0,    # batched lw/sw runs in compiled blocks (static)
    "mem_run_words": 0,    # words covered by those runs (static)
}

#: Per-compile telemetry events (pc, shape, cost); bounded so a
#: pathological workload cannot grow memory without bound.
_COMPILE_EVENTS: list[dict] = []
_COMPILE_EVENT_CAP = 4096

#: Span lane for JIT compile instants in the Perfetto timeline — far
#: from the low lane numbers the sweep orchestrator assigns to cells,
#: so compile marks always render on their own track.
JIT_LANE = 90


def stats() -> dict:
    """Process-wide block-engine counters (for manifests / metrics)."""
    return dict(_STATS)


def compile_events() -> list[dict]:
    """Per-compile telemetry events recorded since the last reset."""
    return [dict(e) for e in _COMPILE_EVENTS]


def reset_stats() -> None:
    for key in _STATS:
        _STATS[key] = 0.0 if key == "compile_seconds" else 0
    _COMPILE_EVENTS.clear()


def publish_stats(registry) -> None:
    """Export the engine counters as ``emu.blocks.*`` metrics."""
    s = stats()
    registry.counter("emu.blocks.compiled", help="blocks compiled").inc(s["blocks_compiled"])
    registry.counter("emu.blocks.superblocks", help="superblocks among compiled").inc(
        s["superblocks"]
    )
    registry.timer("emu.blocks.compile_wall", help="block compile wall time").add(
        s["compile_seconds"]
    )
    registry.counter("emu.blocks.execs", help="compiled-block executions").inc(
        s["block_execs"]
    )
    registry.counter("emu.blocks.insts", help="instructions retired in blocks").inc(
        s["block_insts"]
    )
    registry.counter(
        "emu.blocks.fallback_insts", help="instructions retired on fallback dispatch"
    ).inc(s["fallback_insts"])
    registry.counter("emu.blocks.replays", help="fault replays of compiled blocks").inc(
        s["replays"]
    )
    registry.counter("emu.blocks.side_exits", help="early superblock exits").inc(
        s["side_exits"]
    )
    registry.counter(
        "emu.blocks.cache_binds", help="compiles served by the per-program code cache"
    ).inc(s["cache_binds"])
    registry.counter(
        "emu.blocks.mem_run_sites", help="batched lw/sw runs in compiled blocks"
    ).inc(s["mem_run_sites"])
    registry.counter(
        "emu.blocks.mem_run_words", help="words covered by batched lw/sw runs"
    ).inc(s["mem_run_words"])
    registry.gauge(
        "emu.blocks.code_cache_programs", help="programs with live code caches"
    ).set(len(_CODE_CACHE))
    registry.gauge(
        "emu.blocks.code_cache_entries", help="cached code objects (all programs)"
    ).set(sum(len(c) for c in _CODE_CACHE.values()))


def telemetry() -> dict | None:
    """Manifest-ready "Compiler telemetry" block, or ``None``.

    ``None`` when the blocks tier never compiled anything this process —
    reports and manifests gate the section on data presence, so runs on
    the other tiers render byte-identically to pre-telemetry builds.
    """
    if not _STATS["blocks_compiled"] and not _COMPILE_EVENTS:
        return None
    s = stats()
    execs = s["block_execs"]
    total_insts = s["block_insts"] + s["fallback_insts"]
    return {
        "stats": s,
        "side_exit_rate": s["side_exits"] / execs if execs else 0.0,
        "block_inst_fraction": s["block_insts"] / total_insts if total_insts else 0.0,
        "code_cache": {
            "programs": len(_CODE_CACHE),
            "entries": sum(len(c) for c in _CODE_CACHE.values()),
        },
        "compile_events": compile_events(),
    }


def _note_compile(
    pc: int, n_inst: int, superblock: bool, seconds: float, cache_hit: bool, variant: str
) -> None:
    """Record one compile/bind event and its Perfetto instant."""
    if len(_COMPILE_EVENTS) < _COMPILE_EVENT_CAP:
        _COMPILE_EVENTS.append(
            {
                "pc": pc,
                "n_inst": n_inst,
                "superblock": superblock,
                "seconds": seconds,
                "cache_hit": cache_hit,
                "variant": variant,
            }
        )
    tracer = active_tracer()
    if tracer is not None:
        tracer.mark(
            f"jit.compile {pc:#x}",
            category="jit",
            lane=JIT_LANE,
            pc=pc,
            n_inst=n_inst,
            superblock=superblock,
            seconds=seconds,
            cache_hit=cache_hit,
            variant=variant,
        )


#: Per-program cache of compiled code objects, keyed ``id(program)``
#: then ``(leader_index, trace)`` → ``(n_inst, code, insts, superblock)``
#: or ``None`` (rejected).  CPython's ``compile`` dominates
#: block-compilation cost; the code object is machine-independent
#: (machine state binds at ``exec`` time), so every later Machine over
#: the same Program — repeat bench iterations, sweep cells, workers —
#: skips straight to the cheap bind.  Entries die with their Program
#: (``weakref.finalize``); Program is an unhashable dataclass, hence
#: the id key.
_CODE_CACHE: dict[int, dict] = {}


def _program_code_cache(program) -> dict:
    key = id(program)
    cache = _CODE_CACHE.get(key)
    if cache is None:
        cache = _CODE_CACHE[key] = {}
        weakref.finalize(program, _CODE_CACHE.pop, key, None)
    return cache


def _sgn(name: str) -> str:
    """Signed-interpretation expression for a simple operand name."""
    if name == "0":
        return "0"
    return f"({name} - 4294967296 if {name} & 2147483648 else {name})"


class _Block:
    __slots__ = ("items", "superblock")

    def __init__(self, items, superblock):
        # items: list of (text_index, Instruction, continue_direction)
        # where continue_direction is "taken"/"fall" for control
        # transfers the superblock extends through, None otherwise.
        self.items = items
        self.superblock = superblock


class BlockEngine:
    """Per-machine block discovery, profiling, and lazy compilation.

    The engine owns two dispatch tables indexed like the machine's
    bound-handler list.  A table entry is ``None`` (never compile —
    not a leader, or block rejected), an ``int`` countdown (leader
    profile: executions left before compiling), or a ``(max_inst, fn)``
    tuple once compiled.  ``run_table`` holds the index-chaining
    variants, ``trace_table`` the record-building variants.
    """

    def __init__(self, machine, threshold: int | None = None) -> None:
        self.m = machine
        self.decoded = machine.decoded
        self.base = machine.program.text_base
        self.threshold = default_block_threshold() if threshold is None else max(0, threshold)
        self.max_len = MAX_BLOCK_LEN
        self.min_len = MIN_BLOCK_LEN
        self._compiled: dict[tuple, tuple | None] = {}
        self._extents: dict[int, _Block | None] = {}
        self._counted: set[int] = set()
        # instance-local counters, folded into module _STATS by flush_stats()
        self.compiled = 0
        self.superblocks = 0
        self.compile_seconds = 0.0
        self.execs = 0
        self.insts = 0
        self.fallback = 0
        self.replays = 0
        self.side_exits = 0
        self.cache_binds = 0
        self.mem_run_sites = 0
        self.mem_run_words = 0

        size = len(self.decoded)
        initial = max(1, self.threshold)
        run_table: list = [None] * size
        trace_table: list = [None] * size
        warm_table: list = [None] * size
        for idx in self._leaders():
            inst = self.decoded[idx]
            if inst is not None and inst.mnemonic not in _UNSUPPORTED:
                run_table[idx] = initial
                trace_table[idx] = initial
                warm_table[idx] = initial
        self.run_table = run_table
        self.trace_table = trace_table
        self.warm_table = warm_table
        self.tables = {"run": run_table, "trace": trace_table, "warm": warm_table}

    # -------------------------------------------------------------- discovery

    def _leaders(self) -> set:
        decoded = self.decoded
        base = self.base
        size = len(decoded)
        leaders = set()
        entry_idx = (self.m.program.entry - base) >> 2
        if 0 <= entry_idx < size:
            leaders.add(entry_idx)
        for idx, inst in enumerate(decoded):
            if inst is None:
                continue
            mn = inst.mnemonic
            if mn in _BRANCHES:
                pc = base + 4 * idx
                ti = (((pc + 4 + (inst.imm << 2)) & _M) - base) >> 2
                if 0 <= ti < size:
                    leaders.add(ti)
            elif mn in _LINKS:
                pc = base + 4 * idx
                ti = ((((pc + 4) & 0xF000_0000) | (inst.target << 2)) - base) >> 2
                if 0 <= ti < size:
                    leaders.add(ti)
            elif mn not in _INDIRECT and mn not in _UNSUPPORTED:
                continue
            if idx + 1 < size:
                leaders.add(idx + 1)
        return leaders

    def _extent(self, index: int) -> _Block | None:
        """Trace-style superblock growth from leader *index*.

        Follows straight-line code, unconditional jumps, and the
        likely-hot edge of conditional branches (taken for backward —
        loop back-edges, so tight loops unroll — fallthrough for
        forward), until an indirect jump, a system instruction, an
        undecodable word, or the length cap.
        """
        decoded = self.decoded
        size = len(decoded)
        base = self.base
        max_len = self.max_len
        items: list = []
        superblock = False
        idx = index
        while 0 <= idx < size and len(items) < max_len:
            inst = decoded[idx]
            if inst is None:
                break
            mn = inst.mnemonic
            if mn in _UNSUPPORTED:
                break
            if mn in _INDIRECT:
                items.append((idx, inst, None))
                break
            if mn in _BRANCHES:
                pc = base + 4 * idx
                ti = (((pc + 4 + (inst.imm << 2)) & _M) - base) >> 2
                if len(items) < max_len - 1:
                    if ti <= idx and 0 <= ti:  # backward: loop edge, follow taken
                        items.append((idx, inst, "taken"))
                        superblock = True
                        idx = ti
                        continue
                    if ti > idx and idx + 1 < size:  # forward: follow fallthrough
                        items.append((idx, inst, "fall"))
                        superblock = True
                        idx += 1
                        continue
                items.append((idx, inst, None))
                break
            if mn in _LINKS:
                pc = base + 4 * idx
                ti = ((((pc + 4) & 0xF000_0000) | (inst.target << 2)) - base) >> 2
                if 0 <= ti < size and len(items) < max_len - 1:
                    items.append((idx, inst, "taken"))
                    superblock = True
                    idx = ti
                    continue
                items.append((idx, inst, None))
                break
            items.append((idx, inst, None))
            idx += 1
        if len(items) < self.min_len:
            return None
        return _Block(items, superblock)

    # ------------------------------------------------------------ compilation

    def compile_block(self, index: int, variant) -> None:
        """Compile (or reject) one variant of the block at *index*.

        *variant* is ``"run"``, ``"trace"``, or ``"warm"`` (legacy bools
        map to run/trace).  Variants compile lazily and independently —
        a pure :meth:`run` workload never pays for trace-variant
        compilation (CPython's ``compile`` dominates the cost) — and
        code objects are shared across machines through the per-program
        cache, so only the first machine over a program pays ``compile``
        at all.
        """
        if variant is True:
            variant = "trace"
        elif variant is False:
            variant = "run"
        key = (index, variant)
        if key not in self._compiled:
            t0 = time.perf_counter()
            code_cache = _program_code_cache(self.m.program)
            cached = code_cache.get(key, False)
            from_code_cache = cached is not False
            if cached is False:
                if index in self._extents:
                    block = self._extents[index]
                else:
                    block = self._extents[index] = self._extent(index)
                if block is None:
                    cached = None
                else:
                    code, insts = self._codegen(block, variant)
                    sites, words = self._batch_shape(block.items)
                    cached = (
                        len(block.items), code, insts, block.superblock, sites, words
                    )
                code_cache[key] = cached
            if cached is None:
                entry = None
                superblock = False
            else:
                n_inst, code, insts, superblock, sites, words = cached
                entry = (n_inst, self._bind(code, insts))
                if from_code_cache:
                    self.cache_binds += 1
                if index not in self._counted:  # once per block, not per variant
                    self._counted.add(index)
                    self.compiled += 1
                    if superblock:
                        self.superblocks += 1
                    self.mem_run_sites += sites
                    self.mem_run_words += words
            seconds = time.perf_counter() - t0
            self.compile_seconds += seconds
            self._compiled[key] = entry
            if entry is not None:
                _note_compile(
                    pc=self.base + 4 * index,
                    n_inst=entry[0],
                    superblock=superblock,
                    seconds=seconds,
                    cache_hit=from_code_cache,
                    variant=variant,
                )
        self.tables[variant][index] = self._compiled[key]

    def reset_variant(self, variant: str) -> None:
        """Drop compiled entries of *variant* so they rebind on next use.

        Needed when the bindings a variant closes over change — e.g.
        attaching a new functional-warming sink to the machine: warm
        bodies bind the sink's methods directly, so previously bound
        entries would keep warming the old one.
        """
        table = self.tables[variant]
        for index in list(self._compiled):
            if index[1] == variant:
                del self._compiled[index]
        for idx, entry in enumerate(table):
            if entry is not None:
                # 1, not the profiling threshold: the leader is already
                # known-hot, so recompile on its next execution.
                table[idx] = 1

    def _batch_shape(self, items) -> tuple[int, int]:
        """Static batching shape of a block: (mem-run sites, words covered)."""
        sites = 0
        words = 0
        k = 0
        n = len(items)
        while k < n:
            run = self._mem_run(items, k)
            if run >= BATCH_MIN:
                sites += 1
                words += run
                k += run
            else:
                k += 1
        return sites, words

    def _mem_run(self, items, k: int) -> int:
        """Length of the batchable lw/sw run starting at position *k*."""
        _, first, cont = items[k]
        mn = first.mnemonic
        if cont is not None or mn not in ("lw", "sw"):
            return 1
        base_reg = first.rs
        if mn == "lw" and first.rt == base_reg:
            return 1
        count = 1
        off = first.imm
        while k + count < len(items):
            _, nxt, ncont = items[k + count]
            if (
                ncont is not None
                or nxt.mnemonic != mn
                or nxt.rs != base_reg
                or nxt.imm != off + 4
            ):
                break
            count += 1
            off += 4
            if mn == "lw" and nxt.rt == base_reg:
                break  # this load clobbers the base: last member of the run
        return count

    def _codegen(self, block: _Block, variant: str):
        """Emit and exec-compile one variant of *block*.

        The generated function loads every register that is read
        before being written into a local, executes the superblock
        with all constants folded in, and commits registers / PC /
        instret only at exit points (side exits and the block end) —
        the invariant the replay-on-exception fault path relies on.

        The ``warm`` variant is the run variant plus functional-warming
        hooks: every memory operand touches the data cache (``_wd`` /
        ``_wds``), fetch-line transitions touch the I-cache (``_wi``),
        and control transfers train the branch predictor (``_gsu`` /
        ``_btu`` / ``_rpu`` / ``_rpo``) — so statistical-sampling
        fast-forward spans keep the microarchitectural state a detailed
        window adopts continuously warm, at block-compiled speed.
        """
        trace = variant == "trace"
        warm = variant == "warm"
        base = self.base
        size = len(self.decoded)
        items = block.items
        n = len(items)
        defined: set = set()     # registers with a local already assigned
        commits: list = []       # written registers, in first-write order
        body: list = []
        warm_iline = [-1]        # static fetch line of the previous item

        def wd(indent: str = "    ") -> None:
            if warm:
                body.append(f"{indent}_wd(_ma)")

        def wi(pc: int) -> None:
            if warm:
                iline = pc >> _ILINE_SHIFT
                if iline != warm_iline[0]:
                    warm_iline[0] = iline
                    body.append(f"    _wi({pc})")

        def reg(rn: int) -> str:
            if rn == 0:
                return "0"
            if rn not in defined:
                defined.add(rn)
                # Load at first use (always generated at top level, before
                # the consuming line) rather than at function entry, so a
                # side exit skips the loads of everything past it.
                body.append(f"    r{rn} = R[{rn}]")
            return f"r{rn}"

        def wreg(rn: int, expr: str, indent: str = "    ") -> None:
            if rn not in defined:
                defined.add(rn)
            if rn not in commits:
                commits.append(rn)
            body.append(f"{indent}r{rn} = {expr}")

        def rec(pc, k, a, b, res, addr, taken, npc, indent: str = "    ") -> None:
            if trace:
                body.append(
                    f"{indent}_ap(_TR({pc}, _I[{k}], {a}, {b}, {res}, {addr}, {taken}, {npc}))"
                )

        def enc(ni: int, cnt: int) -> int:
            if not 0 <= ni < size:
                ni = -1
            return ((ni + 1) << 8) | cnt

        def exit_lines(npc, cnt: int, ni, indent: str = "    ") -> None:
            """Commit and return at an exit point.

            *npc* is an int or expression string for the next PC; *ni*
            is the constant next leader index (or -1) or an expression
            string producing the packed return value.
            """
            for rn in commits:
                body.append(f"{indent}R[{rn}] = r{rn}")
            body.append(f"{indent}m.pc = {npc}")
            body.append(f"{indent}m.instret += {cnt}")
            if trace:
                body.append(f"{indent}return _rec")
            elif isinstance(ni, str):
                body.append(f"{indent}return {ni}")
            else:
                body.append(f"{indent}return {enc(ni, cnt)}")

        k = 0
        while k < n:
            idx, inst, cont = items[k]
            pc = base + 4 * idx
            mn = inst.mnemonic
            npc = (pc + 4) & _M
            a = reg(inst.rs) if trace or mn not in _RS_UNUSED_RUN else "_unused_rs"
            b = reg(inst.rt) if trace or mn not in _RT_UNUSED_RUN else "_unused_rt"
            last = k == n - 1
            wi(pc)

            run = self._mem_run(items, k)
            if run >= BATCH_MIN:
                body.append(f"    _ma = (({a}) + {inst.imm}) & 4294967295")
                if warm:
                    body.append(f"    _wds(_ma, {4 * run})")
                    for i in range(1, run):
                        wi(base + 4 * items[k + i][0])
                if mn == "lw":
                    body.append(f"    _vs = _rws(_ma, {run})")
                    for i in range(run):
                        midx, minst, _ = items[k + i]
                        mpc = base + 4 * midx
                        addr = "_ma" if i == 0 else f"((_ma + {4 * i}) & 4294967295)"
                        rec(mpc, k + i, a, reg(minst.rt), f"_vs[{i}]", addr,
                            False, (mpc + 4) & _M)
                        if minst.rt:
                            wreg(minst.rt, f"_vs[{i}]")
                else:
                    vals = ", ".join(reg(minst.rt) for _, minst, _ in items[k : k + run])
                    body.append(f"    _wws(_ma, ({vals},))")
                    for i in range(run):
                        midx, minst, _ = items[k + i]
                        mpc = base + 4 * midx
                        addr = "_ma" if i == 0 else f"((_ma + {4 * i}) & 4294967295)"
                        bi = reg(minst.rt)
                        rec(mpc, k + i, a, bi, bi, addr, False, (mpc + 4) & _M)
                k += run
                if k == n:
                    lidx = items[n - 1][0]
                    lpc = (base + 4 * lidx + 4) & _M
                    exit_lines(lpc, n, lidx + 1)
                continue

            if mn in _BRANCHES:
                tk_pc = (pc + 4 + (inst.imm << 2)) & _M
                ti = (tk_pc - base) >> 2
                fi = idx + 1
                if mn in _BRANCH2_OP:
                    cond = f"{a} {_BRANCH2_OP[mn]} {b}"
                elif mn in _BRANCH1_OP:
                    cond = f"{_sgn(a)} {_BRANCH1_OP[mn]}"
                else:  # bc1t / bc1f
                    fcc = reg(FCC)
                    cond = f"{fcc} == {1 if mn == 'bc1t' else 0}"
                body.append(f"    _tk = {cond}")
                if warm:
                    body.append(f"    _gsu({pc}, _tk)")
                if last or cont is None:
                    # terminal branch: return on both edges
                    if trace:
                        body.append(f"    _npc = {tk_pc} if _tk else {npc}")
                        rec(pc, k, a, b, 0, -1, "_tk", "_npc")
                        exit_lines("_npc", k + 1, -1)
                    else:
                        exit_lines(
                            f"{tk_pc} if _tk else {npc}",
                            k + 1,
                            f"{enc(ti, k + 1)} if _tk else {enc(fi, k + 1)}",
                        )
                elif cont == "taken":
                    body.append("    if not _tk:")
                    rec(pc, k, a, b, 0, -1, False, npc, indent="        ")
                    exit_lines(npc, k + 1, fi, indent="        ")
                    rec(pc, k, a, b, 0, -1, True, tk_pc)
                else:  # cont == "fall"
                    body.append("    if _tk:")
                    rec(pc, k, a, b, 0, -1, True, tk_pc, indent="        ")
                    exit_lines(tk_pc, k + 1, ti, indent="        ")
                    rec(pc, k, a, b, 0, -1, False, npc)
                k += 1
                continue

            if mn in _LINKS:
                target = (((pc + 4) & 0xF000_0000) | (inst.target << 2)) & _M
                ti = (target - base) >> 2
                rec(pc, k, a, b, pc + 4 if mn == "jal" else 0, -1, True, target)
                if mn == "jal":
                    if warm:
                        body.append(f"    _rpu({(pc + 4) & _M})")
                    wreg(31, str(pc + 4))
                if last or cont is None:
                    exit_lines(target, k + 1, ti)
                k += 1
                continue

            if mn in _INDIRECT:
                body.append(f"    _npc = {a}")
                if warm:
                    if mn == "jalr":
                        body.append(f"    _btu({pc}, _npc)")
                        body.append(f"    _rpu({(pc + 4) & _M})")
                    elif inst.rs == 31:  # return: maintain the RAS
                        body.append("    _rpo()")
                    else:
                        body.append(f"    _btu({pc}, _npc)")
                rec(pc, k, a, b, pc + 4 if mn == "jalr" else 0, -1, True, "_npc")
                if mn == "jalr" and inst.rd:
                    wreg(inst.rd, str(pc + 4))
                if trace:
                    exit_lines("_npc", k + 1, -1)
                else:
                    for rn in commits:
                        body.append(f"    R[{rn}] = r{rn}")
                    body.append("    m.pc = _npc")
                    body.append(f"    m.instret += {k + 1}")
                    body.append(f"    _t = _npc - {base}")
                    body.append(
                        f"    return ((((_t >> 2) + 1) << 8) | {k + 1})"
                        f" if (0 <= _t < {4 * size} and not _t & 3) else {k + 1}"
                    )
                k += 1
                continue

            if mn in _R3_EXPR:
                expr = _R3_EXPR[mn].format(a=a, b=b, sa=_sgn(a), sb=_sgn(b))
                if trace:
                    body.append(f"    _v = {expr}")
                    rec(pc, k, a, b, "_v", -1, False, npc)
                    if inst.rd:
                        wreg(inst.rd, "_v")
                elif inst.rd:
                    wreg(inst.rd, expr)
            elif mn in ("addiu", "addi"):
                self._rt_alu(body, rec, wreg, trace, inst, k, pc, npc, a, b,
                             f"(({a} + {inst.imm}) & 4294967295)")
            elif mn == "andi":
                self._rt_alu(body, rec, wreg, trace, inst, k, pc, npc, a, b,
                             f"({a} & {inst.imm & 0xFFFF})")
            elif mn == "ori":
                self._rt_alu(body, rec, wreg, trace, inst, k, pc, npc, a, b,
                             f"({a} | {inst.imm & 0xFFFF})")
            elif mn == "xori":
                self._rt_alu(body, rec, wreg, trace, inst, k, pc, npc, a, b,
                             f"({a} ^ {inst.imm & 0xFFFF})")
            elif mn == "slti":
                self._rt_alu(body, rec, wreg, trace, inst, k, pc, npc, a, b,
                             f"(1 if {_sgn(a)} < {inst.imm} else 0)")
            elif mn == "sltiu":
                self._rt_alu(body, rec, wreg, trace, inst, k, pc, npc, a, b,
                             f"(1 if {a} < {inst.imm & _M} else 0)")
            elif mn == "lui":
                self._rt_alu(body, rec, wreg, trace, inst, k, pc, npc, a, b,
                             str((inst.imm & 0xFFFF) << 16))
            elif mn == "sll":
                self._rd_alu(body, rec, wreg, trace, inst, k, pc, npc, a, b,
                             f"((({b}) << {inst.shamt}) & 4294967295)")
            elif mn == "srl":
                self._rd_alu(body, rec, wreg, trace, inst, k, pc, npc, a, b,
                             f"(({b}) >> {inst.shamt})")
            elif mn == "sra":
                self._rd_alu(body, rec, wreg, trace, inst, k, pc, npc, a, b,
                             f"((({_sgn(b)}) >> {inst.shamt}) & 4294967295)")
            elif mn in ("lw", "lb", "lbu", "lh", "lhu"):
                body.append(f"    _ma = (({a}) + {inst.imm}) & 4294967295")
                wd()
                if trace:
                    if mn == "lw":
                        load = "_rw(_ma)"
                    elif mn == "lbu":
                        load = "_rb(_ma)"
                    elif mn == "lhu":
                        load = "_rh(_ma)"
                    elif mn == "lb":
                        body.append("    _t = _rb(_ma)")
                        load = "((_t - 256) if _t & 128 else _t) & 4294967295"
                    else:  # lh
                        body.append("    _t = _rh(_ma)")
                        load = "((_t - 65536) if _t & 32768 else _t) & 4294967295"
                    body.append(f"    _v = {load}")
                    rec(pc, k, a, b, "_v", "_ma", False, npc)
                    if inst.rt:
                        wreg(inst.rt, "_v")
                else:
                    # Run variant: the page store is accessed inline (an
                    # aligned word/half never crosses a 4 KiB page).  A
                    # misaligned address calls the scalar accessor, which
                    # raises AlignmentError and triggers block replay; a
                    # load into $zero keeps only its alignment fault.
                    if mn == "lw":
                        body.append("    if _ma & 3:")
                        body.append("        _rw(_ma)")
                        if inst.rt:
                            body.append("    _pg = _pgs.get(_ma >> 12)")
                            body.append("    _o = _ma & 4095")
                            wreg(inst.rt,
                                 "(_pg[_o] | (_pg[_o + 1] << 8) | (_pg[_o + 2] << 16)"
                                 " | (_pg[_o + 3] << 24)) if _pg is not None else 0")
                    elif mn in ("lh", "lhu"):
                        body.append("    if _ma & 1:")
                        body.append("        _rh(_ma)")
                        if inst.rt:
                            body.append("    _pg = _pgs.get(_ma >> 12)")
                            body.append("    _o = _ma & 4095")
                            half = "(_pg[_o] | (_pg[_o + 1] << 8)) if _pg is not None else 0"
                            if mn == "lhu":
                                wreg(inst.rt, half)
                            else:
                                body.append(f"    _t = {half}")
                                wreg(inst.rt, "((_t - 65536) if _t & 32768 else _t) & 4294967295")
                    else:  # lb / lbu: byte loads cannot fault
                        if inst.rt:
                            body.append("    _pg = _pgs.get(_ma >> 12)")
                            byte = "_pg[_ma & 4095] if _pg is not None else 0"
                            if mn == "lbu":
                                wreg(inst.rt, byte)
                            else:
                                body.append(f"    _t = {byte}")
                                wreg(inst.rt, "((_t - 256) if _t & 128 else _t) & 4294967295")
            elif mn == "sw":
                body.append(f"    _ma = (({a}) + {inst.imm}) & 4294967295")
                wd()
                if trace:
                    body.append(f"    _ww(_ma, {b})")
                    rec(pc, k, a, b, b, "_ma", False, npc)
                else:
                    body.append("    if _ma & 3:")
                    body.append(f"        _ww(_ma, {b})")
                    body.append("    _pg = _pgs.get(_ma >> 12)")
                    body.append("    if _pg is None:")
                    body.append(f"        _ww(_ma, {b})")  # allocates the page
                    body.append("    else:")
                    body.append("        _o = _ma & 4095")
                    body.append(f"        _pg[_o] = {b} & 255")
                    body.append(f"        _pg[_o + 1] = ({b} >> 8) & 255")
                    body.append(f"        _pg[_o + 2] = ({b} >> 16) & 255")
                    body.append(f"        _pg[_o + 3] = ({b} >> 24) & 255")
            elif mn == "sb":
                body.append(f"    _ma = (({a}) + {inst.imm}) & 4294967295")
                wd()
                if trace:
                    body.append(f"    _wb(_ma, {b})")
                    rec(pc, k, a, b, f"({b} & 255)", "_ma", False, npc)
                else:
                    body.append("    _pg = _pgs.get(_ma >> 12)")
                    body.append("    if _pg is None:")
                    body.append(f"        _wb(_ma, {b})")  # allocates the page
                    body.append("    else:")
                    body.append(f"        _pg[_ma & 4095] = {b} & 255")
            elif mn == "sh":
                body.append(f"    _ma = (({a}) + {inst.imm}) & 4294967295")
                wd()
                if trace:
                    body.append(f"    _wh(_ma, {b})")
                    rec(pc, k, a, b, f"({b} & 65535)", "_ma", False, npc)
                else:
                    body.append("    if _ma & 1:")
                    body.append(f"        _wh(_ma, {b})")
                    body.append("    _pg = _pgs.get(_ma >> 12)")
                    body.append("    if _pg is None:")
                    body.append(f"        _wh(_ma, {b})")  # allocates the page
                    body.append("    else:")
                    body.append("        _o = _ma & 4095")
                    body.append(f"        _pg[_o] = {b} & 255")
                    body.append(f"        _pg[_o + 1] = ({b} >> 8) & 255")
            elif mn == "lwc1":
                body.append(f"    _ma = (({a}) + {inst.imm}) & 4294967295")
                wd()
                body.append("    _v = _rw(_ma)")
                rec(pc, k, a, b, "_v", "_ma", False, npc)
                wreg(FP_BASE + inst.rt, "_v")
            elif mn == "swc1":
                ft = reg(FP_BASE + inst.rt)
                body.append(f"    _ma = (({a}) + {inst.imm}) & 4294967295")
                wd()
                body.append(f"    _ww(_ma, {ft})")
                rec(pc, k, a, b, ft, "_ma", False, npc)
            elif mn in ("mult", "multu"):
                if mn == "mult":
                    body.append(f"    _p = {_sgn(a)} * {_sgn(b)}")
                else:
                    body.append(f"    _p = {a} * {b}")
                wreg(HI, "(_p >> 32) & 4294967295")
                wreg(LO, "_p & 4294967295")
                rec(pc, k, a, b, f"r{LO}", -1, False, npc)
            elif mn == "div":
                body.append(f"    _sa = {_sgn(a)}")
                body.append(f"    _sb = {_sgn(b)}")
                body.append("    if _sb == 0:")
                body.append(f"        r{HI} = r{LO} = 0")
                body.append("    else:")
                body.append("        _q = _abs(_sa) // _abs(_sb)")
                body.append("        if (_sa < 0) != (_sb < 0):")
                body.append("            _q = -_q")
                body.append(f"        r{LO} = _q & 4294967295")
                body.append(f"        r{HI} = (_sa - _q * _sb) & 4294967295")
                self._mark_write(defined, commits, HI)
                self._mark_write(defined, commits, LO)
                rec(pc, k, a, b, f"r{LO}", -1, False, npc)
            elif mn == "divu":
                body.append(f"    if {b} == 0:")
                body.append(f"        r{HI} = r{LO} = 0")
                body.append("    else:")
                body.append(f"        r{LO} = {a} // {b}")
                body.append(f"        r{HI} = {a} % {b}")
                self._mark_write(defined, commits, HI)
                self._mark_write(defined, commits, LO)
                rec(pc, k, a, b, f"r{LO}", -1, False, npc)
            elif mn in ("mfhi", "mflo"):
                src = reg(HI if mn == "mfhi" else LO)
                rec(pc, k, a, b, src, -1, False, npc)
                if inst.rd:
                    wreg(inst.rd, src)
            elif mn in ("mthi", "mtlo"):
                rec(pc, k, a, b, a, -1, False, npc)
                wreg(HI if mn == "mthi" else LO, a)
            elif mn in ("add.s", "sub.s", "mul.s", "div.s"):
                fs = reg(FP_BASE + inst.rd)
                ft = reg(FP_BASE + inst.rt)
                body.append(f"    _fa = _f32({fs})")
                body.append(f"    _fb = _f32({ft})")
                if mn == "div.s":
                    body.append("    if _fb == 0.0:")
                    body.append(
                        "        _fv = _nan if _fa == 0.0 or _isnan(_fa)"
                        " else _cs(_inf, _fa) * _cs(1.0, _fb)"
                    )
                    body.append("    else:")
                    body.append("        _fv = _fa / _fb")
                else:
                    op = {"add.s": "+", "sub.s": "-", "mul.s": "*"}[mn]
                    body.append(f"    _fv = _fa {op} _fb")
                body.append("    _v = _b32(_fv)")
                rec(pc, k, a, b, "_v", -1, False, npc)
                wreg(FP_BASE + inst.shamt, "_v")
            elif mn in ("mov.s", "neg.s", "abs.s", "sqrt.s", "cvt.w.s", "cvt.s.w"):
                fs = reg(FP_BASE + inst.rd)
                if mn == "mov.s":
                    expr = fs
                elif mn == "neg.s":
                    expr = f"({fs} ^ 2147483648)"
                elif mn == "abs.s":
                    expr = f"({fs} & 2147483647)"
                elif mn == "sqrt.s":
                    expr = f"_fsqrt({fs})"
                elif mn == "cvt.w.s":
                    expr = f"_fcvtws({fs})"
                else:  # cvt.s.w
                    expr = f"_b32(_flt({_sgn(fs)}))"
                body.append(f"    _v = {expr}")
                rec(pc, k, a, b, "_v", -1, False, npc)
                wreg(FP_BASE + inst.shamt, "_v")
            elif mn in _FP_CMP_OP:
                fs = reg(FP_BASE + inst.rd)
                ft = reg(FP_BASE + inst.rt)
                body.append(f"    _fa = _f32({fs})")
                body.append(f"    _fb = _f32({ft})")
                body.append(
                    "    _v = 0 if _isnan(_fa) or _isnan(_fb)"
                    f" else (1 if _fa {_FP_CMP_OP[mn]} _fb else 0)"
                )
                rec(pc, k, a, b, "_v", -1, False, npc)
                wreg(FCC, "_v")
            elif mn == "mfc1":
                fs = reg(FP_BASE + inst.rd)
                rec(pc, k, a, b, fs, -1, False, npc)
                if inst.rt:
                    wreg(inst.rt, fs)
            elif mn == "mtc1":
                rec(pc, k, a, b, b, -1, False, npc)
                wreg(FP_BASE + inst.rd, b)
            else:  # pragma: no cover - _extent admits only the mnemonics above
                raise DispatchDivergence(f"block codegen cannot handle {mn!r}")
            if last:
                exit_lines(npc, n, idx + 1)
            k += 1

        params = (
            "R", "_pgs", "_rw", "_ww", "_rh", "_wh", "_rb", "_wb", "_rws", "_wws",
            "_TR", "_I", "_f32", "_b32", "_fsqrt", "_fcvtws",
            "_isnan", "_cs", "_nan", "_inf", "_abs", "_flt",
            "_wd", "_wds", "_wi", "_gsu", "_btu", "_rpu", "_rpo",
        )
        lines = ["def _blk(m, " + ", ".join(f"{p}={p}" for p in params) + "):"]
        if trace:
            lines.append("    _rec = []")
            lines.append("    _ap = _rec.append")
        lines.extend(body)
        src = "\n".join(lines) + "\n"

        entry_pc = base + 4 * items[0][0]
        return compile(src, f"<block:{variant}@{entry_pc:#x}>", "exec"), tuple(
            inst for _, inst, _ in items
        )

    def _bind(self, code, insts) -> object:
        """Exec a cached block code object against this machine's state.

        Binding is ~100x cheaper than compiling, which is what makes
        the per-program code cache pay off across machines.
        """
        machine = self.m
        mem = machine.memory
        env = {
            "R": machine.regs,
            "_pgs": mem._pages,
            "_rw": mem.read_word, "_ww": mem.write_word,
            "_rh": mem.read_half, "_wh": mem.write_half,
            "_rb": mem.read_byte, "_wb": mem.write_byte,
            "_rws": mem.read_words, "_wws": mem.write_words,
            "_TR": TraceRecord,
            "_I": insts,
            "_f32": f32_from_bits, "_b32": bits_from_f32,
            "_fsqrt": _fp_sqrt, "_fcvtws": _fp_cvt_w_s,
            "_isnan": math.isnan, "_cs": math.copysign,
            "_nan": math.nan, "_inf": math.inf,
            "_abs": abs, "_flt": float,
        }
        sink = machine._warm_sink
        if sink is not None:
            hierarchy, predictor = sink
            env.update({
                "_wd": hierarchy.warm_data,
                "_wds": hierarchy.warm_data_span,
                "_wi": hierarchy.warm_instruction,
                "_gsu": predictor.gshare.update,
                "_btu": predictor.btb.update,
                "_rpu": predictor.ras.push,
                "_rpo": predictor.ras.pop,
            })
        else:
            # Run/trace variants never call the warming hooks; warm
            # variants only compile once a sink is attached, so binding
            # None here keeps a missing hook loudly visible.
            env.update(dict.fromkeys(("_wd", "_wds", "_wi", "_gsu", "_btu", "_rpu", "_rpo")))
        exec(code, env)
        return env["_blk"]

    @staticmethod
    def _mark_write(defined: set, commits: list, rn: int) -> None:
        if rn not in defined:
            defined.add(rn)
        if rn not in commits:
            commits.append(rn)

    def _rt_alu(self, body, rec, wreg, trace, inst, k, pc, npc, a, b, expr) -> None:
        if trace:
            body.append(f"    _v = {expr}")
            rec(pc, k, a, b, "_v", -1, False, npc)
            if inst.rt:
                wreg(inst.rt, "_v")
        elif inst.rt:
            wreg(inst.rt, expr)

    def _rd_alu(self, body, rec, wreg, trace, inst, k, pc, npc, a, b, expr) -> None:
        if trace:
            body.append(f"    _v = {expr}")
            rec(pc, k, a, b, "_v", -1, False, npc)
            if inst.rd:
                wreg(inst.rd, "_v")
        elif inst.rd:
            wreg(inst.rd, expr)

    # ----------------------------------------------------------------- replay

    def replay(self, machine, n_inst: int, original):
        """Re-execute a faulted block per-instruction from entry state.

        Compiled bodies commit nothing before raising, so the machine
        still holds the block-entry state; stepping the pre-bound
        handlers from here reproduces the reference fault exactly —
        the generator yields each retired record, then the faulting
        handler re-raises the real exception.  If replay finishes all
        ``n_inst`` steps cleanly the compiled body disagreed with the
        handlers, which is a divergence, not a guest fault.
        """
        self.replays += 1
        bound = machine._bound
        base = self.base
        for _ in range(n_inst):
            index = (machine.pc - base) >> 2
            yield bound[index](machine, True)
        raise DispatchDivergence(
            f"compiled block raised {original!r} but per-instruction replay succeeded"
        ) from original

    def flush_stats(self) -> None:
        """Fold instance counters into the module totals."""
        _STATS["blocks_compiled"] += self.compiled
        _STATS["superblocks"] += self.superblocks
        _STATS["compile_seconds"] += self.compile_seconds
        _STATS["block_execs"] += self.execs
        _STATS["block_insts"] += self.insts
        _STATS["fallback_insts"] += self.fallback
        _STATS["replays"] += self.replays
        _STATS["side_exits"] += self.side_exits
        _STATS["cache_binds"] += self.cache_binds
        _STATS["mem_run_sites"] += self.mem_run_sites
        _STATS["mem_run_words"] += self.mem_run_words
        self.compiled = 0
        self.superblocks = 0
        self.compile_seconds = 0.0
        self.execs = 0
        self.insts = 0
        self.fallback = 0
        self.replays = 0
        self.side_exits = 0
        self.cache_binds = 0
        self.mem_run_sites = 0
        self.mem_run_words = 0


# ------------------------------------------------------------- cross-check

def cross_check_blocks(program, max_steps: int = 100_000, threshold: int = 0):
    """Differentially execute *program*: blocks tier vs golden reference.

    The blocks machine streams records through its trace generator
    (architecturally it runs ahead to the next block exit); the
    reference machine steps one instruction per record.  Every
    :class:`TraceRecord` and the final architectural state must match.

    Returns the number of instructions compared.

    Raises:
        DispatchDivergence: first record (or final state) mismatch.
    """
    from repro.emulator.machine import Machine

    fast = Machine(program, dispatch="blocks", block_threshold=threshold)
    gold = Machine(program, dispatch="reference")
    stream = fast.trace(max_steps)
    n = 0
    while not gold.halted and n < max_steps:
        want = gold.step_reference()
        got = next(stream, None)
        if want != got:
            raise DispatchDivergence(
                f"step {n}: blocks tier produced {got!r}, reference produced {want!r}"
            )
        n += 1
    stream.close()
    if fast.regs != gold.regs:
        raise DispatchDivergence("final register files differ")
    if fast.pc != gold.pc or fast.halted != gold.halted or fast.output != gold.output:
        raise DispatchDivergence("final machine state differs")
    return n


__all__ = [
    "BlockEngine",
    "compile_events",
    "cross_check_blocks",
    "default_block_threshold",
    "publish_stats",
    "reset_stats",
    "stats",
    "telemetry",
    "DEFAULT_THRESHOLD",
    "JIT_LANE",
    "MAX_BLOCK_LEN",
    "MIN_BLOCK_LEN",
    "THRESHOLD_ENV",
]
