"""Minimal SPIM-style syscall layer.

The workloads only need program exit and a way to report results (used
by their self-checks): print-int, print-string, and print-char.  The
service number is taken from ``$v0`` and the argument from ``$a0``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.harness.errors import EmulatorError

if TYPE_CHECKING:  # pragma: no cover
    from repro.emulator.machine import Machine

SYS_PRINT_INT = 1
SYS_PRINT_STRING = 4
SYS_EXIT = 10
SYS_PRINT_CHAR = 11


class UnknownSyscallError(EmulatorError):
    """Raised for a service number outside the supported set."""


def do_syscall(machine: "Machine") -> None:
    """Execute the syscall selected by the machine's ``$v0``."""
    service = machine.regs[2]  # $v0
    arg = machine.regs[4]  # $a0
    if service == SYS_EXIT:
        machine.halted = True
        machine.exit_code = arg
    elif service == SYS_PRINT_INT:
        signed = arg - 0x1_0000_0000 if arg & 0x8000_0000 else arg
        machine.output.extend(str(signed).encode())
    elif service == SYS_PRINT_CHAR:
        machine.output.append(arg & 0xFF)
    elif service == SYS_PRINT_STRING:
        machine.output.extend(machine.memory.read_cstring(arg))
    else:
        raise UnknownSyscallError(f"syscall {service} not supported")
