"""Trace analysis utilities.

Workload-validation helpers used to check that the synthetic kernels
behave like their SPEC namesakes: instruction-mix breakdowns, register
dependence distances (how far apart producer and consumer are — what
determines how much a pipelined EX hurts), working-set estimation, and
branch-behaviour summaries.  Also the static call graph the guest
profiler keys flamegraphs on: function entries recovered from ``jal``
targets and program symbols, with deterministic entry→function paths
for collapsed-stack output.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter, deque
from dataclasses import dataclass, field

from repro.isa.encoding import EncodingError, decode
from repro.isa.opclass import OpClass, op_class
from repro.isa.registers import NUM_EXT_REGS


@dataclass
class TraceProfile:
    """Aggregate statistics of one dynamic trace."""

    instructions: int = 0
    class_counts: Counter = field(default_factory=Counter)
    mnemonic_counts: Counter = field(default_factory=Counter)
    #: dependence distance (in dynamic instructions) histogram,
    #: capped at 64.
    dependence_distances: Counter = field(default_factory=Counter)
    #: distinct 64-byte data lines touched.
    data_lines: int = 0
    #: distinct 64-byte instruction lines touched.
    text_lines: int = 0
    branches: int = 0
    taken_branches: int = 0

    @property
    def load_fraction(self) -> float:
        return self.class_counts[OpClass.LOAD] / self.instructions if self.instructions else 0.0

    @property
    def store_fraction(self) -> float:
        return self.class_counts[OpClass.STORE] / self.instructions if self.instructions else 0.0

    @property
    def branch_fraction(self) -> float:
        return self.branches / self.instructions if self.instructions else 0.0

    @property
    def taken_rate(self) -> float:
        return self.taken_branches / self.branches if self.branches else 0.0

    @property
    def data_working_set(self) -> int:
        """Approximate data working set in bytes (64B line granularity)."""
        return self.data_lines * 64

    def mean_dependence_distance(self) -> float:
        """Average producer→consumer distance (short distances are what
        make EX-stage pipelining expensive)."""
        total = sum(d * n for d, n in self.dependence_distances.items())
        count = sum(self.dependence_distances.values())
        return total / count if count else 0.0

    def short_dependence_fraction(self, within: int = 2) -> float:
        """Fraction of register reads whose producer is within *within*
        dynamic instructions."""
        count = sum(self.dependence_distances.values())
        if not count:
            return 0.0
        short = sum(n for d, n in self.dependence_distances.items() if d <= within)
        return short / count

    def summary(self) -> str:
        lines = [
            f"instructions        : {self.instructions}",
            f"loads / stores      : {self.load_fraction:.1%} / {self.store_fraction:.1%}",
            f"branches (taken)    : {self.branch_fraction:.1%} ({self.taken_rate:.0%} taken)",
            f"data working set    : ~{self.data_working_set // 1024} KB",
            f"text footprint      : ~{self.text_lines * 64} B",
            f"mean dep. distance  : {self.mean_dependence_distance():.1f} instructions",
            f"dep. within 2 instr : {self.short_dependence_fraction(2):.1%}",
        ]
        top = ", ".join(f"{m} {n}" for m, n in self.mnemonic_counts.most_common(8))
        lines.append(f"top mnemonics       : {top}")
        return "\n".join(lines)


def profile_trace(trace, distance_cap: int = 64) -> TraceProfile:
    """Build a :class:`TraceProfile` from an iterable of trace records."""
    profile = TraceProfile()
    last_writer = [-(10**9)] * NUM_EXT_REGS
    data_lines: set[int] = set()
    text_lines: set[int] = set()
    i = 0
    for record in trace:
        inst = record.inst
        profile.instructions += 1
        klass = op_class(inst.mnemonic)
        profile.class_counts[klass] += 1
        profile.mnemonic_counts[inst.mnemonic] += 1
        text_lines.add(record.pc >> 6)
        if record.mem_addr >= 0:
            data_lines.add(record.mem_addr >> 6)
        if inst.is_branch:
            profile.branches += 1
            if record.taken:
                profile.taken_branches += 1
        for r in inst.src_regs():
            if r == 0:
                continue
            distance = i - last_writer[r]
            if distance <= distance_cap:
                profile.dependence_distances[distance] += 1
            else:
                profile.dependence_distances[distance_cap + 1] += 1
        for r in inst.dst_regs():
            last_writer[r] = i
        i += 1
    profile.data_lines = len(data_lines)
    profile.text_lines = len(text_lines)
    return profile


# ---------------------------------------------------------- call graph

@dataclass
class StaticCallGraph:
    """Function partition of a program's text plus its static call edges.

    Function entries are the program entry, the text base (covering any
    startup stub before ``main``), and every in-text ``jal`` target;
    each PC belongs to the nearest entry at or below it.  Names come
    from the program's symbol table when a label sits exactly on the
    entry, else a synthetic ``fn_0x...``.  Edges connect the function
    containing each ``jal`` site to its target, which is what the guest
    profiler's collapsed-stack flamegraph output walks.
    """

    base: int
    limit: int                      # one past the last text byte
    entries: list[int]              # sorted function entry PCs
    names: dict[int, str]           # entry PC → function name
    calls: dict[int, tuple[int, ...]]  # entry PC → sorted callee entries
    root: int                       # entry PC of the program-entry function
    _stacks: dict[int, tuple[str, ...]] = field(default_factory=dict)

    def function_of(self, pc: int) -> int | None:
        """Entry PC of the function containing *pc* (None if outside text)."""
        if not self.base <= pc < self.limit:
            return None
        i = bisect_right(self.entries, pc)
        return self.entries[i - 1] if i else None

    def name_of(self, pc: int) -> str:
        """Function name for any text PC (``?`` outside the text segment)."""
        entry = self.function_of(pc)
        return "?" if entry is None else self.names[entry]

    def stack_of(self, entry: int) -> tuple[str, ...]:
        """Deterministic root→function name path for one function entry.

        The shortest static call path from the root, ties broken by
        entry order (BFS over sorted callee lists); functions the
        static graph cannot reach from the root stand alone.
        """
        if not self._stacks:
            self._stacks[self.root] = (self.names[self.root],)
            queue = deque([self.root])
            while queue:
                caller = queue.popleft()
                path = self._stacks[caller]
                for callee in self.calls.get(caller, ()):
                    if callee not in self._stacks:
                        self._stacks[callee] = path + (self.names[callee],)
                        queue.append(callee)
        stack = self._stacks.get(entry)
        if stack is None:
            stack = self._stacks[entry] = (self.names[entry],)
        return stack


def static_call_graph(program) -> StaticCallGraph:
    """Recover the static call graph of *program* (see :class:`StaticCallGraph`)."""
    base = program.text_base
    size = len(program.text)
    limit = base + 4 * size
    entry_set = {base}
    if base <= program.entry < limit:
        entry_set.add(program.entry)
    call_sites: list[tuple[int, int]] = []
    for i, word in enumerate(program.text):
        try:
            inst = decode(word)
        except EncodingError:
            continue
        if inst.mnemonic == "jal":
            pc = base + 4 * i
            target = ((pc + 4) & 0xF000_0000) | (inst.target << 2)
            if base <= target < limit:
                entry_set.add(target)
                call_sites.append((pc, target))
    labels: dict[int, str] = {}
    for name in sorted(program.symbols):
        labels.setdefault(program.symbols[name], name)
    entries = sorted(entry_set)
    names = {e: labels.get(e, f"fn_{e:#x}") for e in entries}
    calls: dict[int, set[int]] = {e: set() for e in entries}
    for pc, target in call_sites:
        i = bisect_right(entries, pc)
        caller = entries[i - 1]
        if target != caller:
            calls[caller].add(target)
    root_i = bisect_right(entries, program.entry if base <= program.entry < limit else base)
    return StaticCallGraph(
        base=base,
        limit=limit,
        entries=entries,
        names=names,
        calls={e: tuple(sorted(c)) for e, c in calls.items()},
        root=entries[root_i - 1],
    )


def collapsed_stacks(graph: StaticCallGraph, counts: dict[int, int]) -> dict[str, int]:
    """Fold per-PC counts into collapsed-stack lines keyed on the call graph.

    Returns ``{"main;compress;deflate": 12345, ...}`` — the
    semicolon-separated format flamegraph.pl / speedscope consume.  PCs
    outside the text segment (e.g. the profiler's synthetic shortfall
    line) fold under a single ``?`` frame.
    """
    out: dict[str, int] = {}
    for pc, count in counts.items():
        entry = graph.function_of(pc)
        key = "?" if entry is None else ";".join(graph.stack_of(entry))
        out[key] = out.get(key, 0) + count
    return out


def write_collapsed_stacks(path, stacks: dict[str, int]) -> int:
    """Write collapsed stacks one per line (sorted); returns line count."""
    lines = [f"{key} {count}" for key, count in sorted(stacks.items())]
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


def compare_profiles(a: TraceProfile, b: TraceProfile) -> str:
    """Side-by-side comparison of two profiles (mix validation aid)."""
    rows = [
        ("loads", a.load_fraction, b.load_fraction),
        ("stores", a.store_fraction, b.store_fraction),
        ("branches", a.branch_fraction, b.branch_fraction),
        ("taken rate", a.taken_rate, b.taken_rate),
        ("short deps", a.short_dependence_fraction(2), b.short_dependence_fraction(2)),
    ]
    out = [f"{'metric':<12} {'A':>8} {'B':>8}"]
    for name, va, vb in rows:
        out.append(f"{name:<12} {va:>8.1%} {vb:>8.1%}")
    return "\n".join(out)
