"""Trace analysis utilities.

Workload-validation helpers used to check that the synthetic kernels
behave like their SPEC namesakes: instruction-mix breakdowns, register
dependence distances (how far apart producer and consumer are — what
determines how much a pipelined EX hurts), working-set estimation, and
branch-behaviour summaries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.isa.opclass import OpClass, op_class
from repro.isa.registers import NUM_EXT_REGS


@dataclass
class TraceProfile:
    """Aggregate statistics of one dynamic trace."""

    instructions: int = 0
    class_counts: Counter = field(default_factory=Counter)
    mnemonic_counts: Counter = field(default_factory=Counter)
    #: dependence distance (in dynamic instructions) histogram,
    #: capped at 64.
    dependence_distances: Counter = field(default_factory=Counter)
    #: distinct 64-byte data lines touched.
    data_lines: int = 0
    #: distinct 64-byte instruction lines touched.
    text_lines: int = 0
    branches: int = 0
    taken_branches: int = 0

    @property
    def load_fraction(self) -> float:
        return self.class_counts[OpClass.LOAD] / self.instructions if self.instructions else 0.0

    @property
    def store_fraction(self) -> float:
        return self.class_counts[OpClass.STORE] / self.instructions if self.instructions else 0.0

    @property
    def branch_fraction(self) -> float:
        return self.branches / self.instructions if self.instructions else 0.0

    @property
    def taken_rate(self) -> float:
        return self.taken_branches / self.branches if self.branches else 0.0

    @property
    def data_working_set(self) -> int:
        """Approximate data working set in bytes (64B line granularity)."""
        return self.data_lines * 64

    def mean_dependence_distance(self) -> float:
        """Average producer→consumer distance (short distances are what
        make EX-stage pipelining expensive)."""
        total = sum(d * n for d, n in self.dependence_distances.items())
        count = sum(self.dependence_distances.values())
        return total / count if count else 0.0

    def short_dependence_fraction(self, within: int = 2) -> float:
        """Fraction of register reads whose producer is within *within*
        dynamic instructions."""
        count = sum(self.dependence_distances.values())
        if not count:
            return 0.0
        short = sum(n for d, n in self.dependence_distances.items() if d <= within)
        return short / count

    def summary(self) -> str:
        lines = [
            f"instructions        : {self.instructions}",
            f"loads / stores      : {self.load_fraction:.1%} / {self.store_fraction:.1%}",
            f"branches (taken)    : {self.branch_fraction:.1%} ({self.taken_rate:.0%} taken)",
            f"data working set    : ~{self.data_working_set // 1024} KB",
            f"text footprint      : ~{self.text_lines * 64} B",
            f"mean dep. distance  : {self.mean_dependence_distance():.1f} instructions",
            f"dep. within 2 instr : {self.short_dependence_fraction(2):.1%}",
        ]
        top = ", ".join(f"{m} {n}" for m, n in self.mnemonic_counts.most_common(8))
        lines.append(f"top mnemonics       : {top}")
        return "\n".join(lines)


def profile_trace(trace, distance_cap: int = 64) -> TraceProfile:
    """Build a :class:`TraceProfile` from an iterable of trace records."""
    profile = TraceProfile()
    last_writer = [-(10**9)] * NUM_EXT_REGS
    data_lines: set[int] = set()
    text_lines: set[int] = set()
    i = 0
    for record in trace:
        inst = record.inst
        profile.instructions += 1
        klass = op_class(inst.mnemonic)
        profile.class_counts[klass] += 1
        profile.mnemonic_counts[inst.mnemonic] += 1
        text_lines.add(record.pc >> 6)
        if record.mem_addr >= 0:
            data_lines.add(record.mem_addr >> 6)
        if inst.is_branch:
            profile.branches += 1
            if record.taken:
                profile.taken_branches += 1
        for r in inst.src_regs():
            if r == 0:
                continue
            distance = i - last_writer[r]
            if distance <= distance_cap:
                profile.dependence_distances[distance] += 1
            else:
                profile.dependence_distances[distance_cap + 1] += 1
        for r in inst.dst_regs():
            last_writer[r] = i
        i += 1
    profile.data_lines = len(data_lines)
    profile.text_lines = len(text_lines)
    return profile


def compare_profiles(a: TraceProfile, b: TraceProfile) -> str:
    """Side-by-side comparison of two profiles (mix validation aid)."""
    rows = [
        ("loads", a.load_fraction, b.load_fraction),
        ("stores", a.store_fraction, b.store_fraction),
        ("branches", a.branch_fraction, b.branch_fraction),
        ("taken rate", a.taken_rate, b.taken_rate),
        ("short deps", a.short_dependence_fraction(2), b.short_dependence_fraction(2)),
    ]
    out = [f"{'metric':<12} {'A':>8} {'B':>8}"]
    for name, va, vb in rows:
        out.append(f"{name:<12} {va:>8.1%} {vb:>8.1%}")
    return "\n".join(out)
