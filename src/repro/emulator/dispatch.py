"""Pre-bound instruction dispatch: the emulator's fast path.

The reference interpreter (:meth:`~repro.emulator.machine.Machine.step_reference`)
re-compares the mnemonic string against ~50 ``elif`` branches for every
retired instruction.  This module removes that cost entirely: at decode
time each :class:`~repro.isa.instructions.Instruction` is bound **once**
to a specialized closure (selected from :data:`BINDERS`, a handler table
populated at import), with the register numbers, immediates and branch
offsets it needs captured as plain Python ints.  Executing an
instruction is then a single indirect call — threaded code, zero string
comparisons, no per-step field lookups on the ``Instruction``.

Every handler takes ``(machine, emit)`` and must reproduce the golden
reference bit-for-bit: same register writes, same ``TraceRecord``
fields, same exception behavior.  When ``emit`` is false the handler
skips building the ``TraceRecord`` — the big win for
:meth:`Machine.run`, which retires instructions without consuming
records.  :func:`cross_check` is the differential harness that keeps
the two interpreters honest (the fault-injection campaign uses the same
golden-model idiom, see :mod:`repro.harness.faults`).
"""

from __future__ import annotations

import math
import struct

from repro.emulator.syscalls import do_syscall
from repro.emulator.trace import TraceRecord
from repro.harness.errors import EmulatorError
from repro.isa.registers import FCC, FP_BASE, HI, LO

_M = 0xFFFFFFFF


# ------------------------------------------------------------ scalar helpers
#
# These lived in repro.emulator.machine; they are defined here so the
# machine can import the dispatch table without a circular import, and
# re-exported from machine for compatibility.

def f32_from_bits(bits: int) -> float:
    """Reinterpret a 32-bit pattern as an IEEE single."""
    return struct.unpack("<f", struct.pack("<I", bits & _M))[0]


def bits_from_f32(value: float) -> int:
    """Round a Python float to IEEE single and return its bit pattern."""
    try:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    except (OverflowError, ValueError):
        # Magnitude beyond float32 range rounds to a signed infinity.
        inf = math.copysign(math.inf, value)
        return struct.unpack("<I", struct.pack("<f", inf))[0]


def to_signed(value: int) -> int:
    """Interpret a 32-bit unsigned image as a signed int."""
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


class DispatchDivergence(EmulatorError):
    """Fast dispatch disagreed with the golden reference interpreter."""


#: mnemonic → binder; a binder takes the decoded Instruction and returns
#: the specialized handler ``h(machine, emit) -> TraceRecord | None``.
BINDERS: dict = {}


def _binder(*names):
    def register(fn):
        for name in names:
            BINDERS[name] = fn
        return fn
    return register


# ------------------------------------------------------- hot hand-specialized

@_binder("addu", "add")
def _b_add(inst):
    rs, rt, rd = inst.rs, inst.rt, inst.rd

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        r = (a + b) & _M
        if rd:
            regs[rd] = r
        npc = (pc + 4) & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               r, -1, False, npc)
        return None
    return h


@_binder("addiu", "addi")
def _b_addiu(inst):
    rs, rt, imm = inst.rs, inst.rt, inst.imm

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        r = (a + imm) & _M
        if rt:
            regs[rt] = r
        npc = (pc + 4) & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               r, -1, False, npc)
        return None
    return h


@_binder("lw")
def _b_lw(inst):
    rs, rt, imm = inst.rs, inst.rt, inst.imm

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        addr = (a + imm) & _M
        r = m.memory.read_word(addr)
        if rt:
            regs[rt] = r
        npc = (pc + 4) & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               r, addr, False, npc)
        return None
    return h


@_binder("sw")
def _b_sw(inst):
    rs, rt, imm = inst.rs, inst.rt, inst.imm

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        addr = (a + imm) & _M
        m.memory.write_word(addr, b)
        npc = (pc + 4) & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               b, addr, False, npc)
        return None
    return h


@_binder("beq")
def _b_beq(inst):
    rs, rt = inst.rs, inst.rt
    off = inst.imm << 2

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        taken = a == b
        npc = (pc + 4 + off) & _M if taken else (pc + 4) & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               0, -1, taken, npc)
        return None
    return h


@_binder("bne")
def _b_bne(inst):
    rs, rt = inst.rs, inst.rt
    off = inst.imm << 2

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        taken = a != b
        npc = (pc + 4 + off) & _M if taken else (pc + 4) & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               0, -1, taken, npc)
        return None
    return h


# ------------------------------------------------------------- ALU factories

def _bind_r3(fn):
    """R-format ALU: rd = fn(rs_val, rt_val)."""
    def binder(inst):
        rs, rt, rd = inst.rs, inst.rt, inst.rd

        def h(m, emit):
            regs = m.regs
            pc = m.pc
            a = regs[rs]
            b = regs[rt]
            r = fn(a, b)
            if rd:
                regs[rd] = r
            npc = (pc + 4) & _M
            m.pc = npc
            m.instret += 1
            if emit:
                return TraceRecord(pc, inst, a, b,
                                   r, -1, False, npc)
            return None
        return h
    return binder


BINDERS["subu"] = BINDERS["sub"] = _bind_r3(lambda a, b: (a - b) & _M)
BINDERS["and"] = _bind_r3(lambda a, b: a & b)
BINDERS["or"] = _bind_r3(lambda a, b: a | b)
BINDERS["xor"] = _bind_r3(lambda a, b: a ^ b)
BINDERS["nor"] = _bind_r3(lambda a, b: ~(a | b) & _M)
BINDERS["slt"] = _bind_r3(lambda a, b: 1 if to_signed(a) < to_signed(b) else 0)
BINDERS["sltu"] = _bind_r3(lambda a, b: 1 if a < b else 0)
BINDERS["sllv"] = _bind_r3(lambda a, b: (b << (a & 31)) & _M)
BINDERS["srlv"] = _bind_r3(lambda a, b: b >> (a & 31))
BINDERS["srav"] = _bind_r3(lambda a, b: (to_signed(b) >> (a & 31)) & _M)


def _bind_imm(fn):
    """I-format ALU: rt = fn(rs_val, imm)."""
    def binder(inst):
        rs, rt, imm = inst.rs, inst.rt, inst.imm

        def h(m, emit):
            regs = m.regs
            pc = m.pc
            a = regs[rs]
            b = regs[rt]
            r = fn(a, imm)
            if rt:
                regs[rt] = r
            npc = (pc + 4) & _M
            m.pc = npc
            m.instret += 1
            if emit:
                return TraceRecord(pc, inst, a, b,
                                   r, -1, False, npc)
            return None
        return h
    return binder


BINDERS["andi"] = _bind_imm(lambda a, i: a & (i & 0xFFFF))
BINDERS["ori"] = _bind_imm(lambda a, i: a | (i & 0xFFFF))
BINDERS["xori"] = _bind_imm(lambda a, i: a ^ (i & 0xFFFF))
BINDERS["slti"] = _bind_imm(lambda a, i: 1 if to_signed(a) < i else 0)
BINDERS["sltiu"] = _bind_imm(lambda a, i: 1 if a < (i & _M) else 0)
BINDERS["lui"] = _bind_imm(lambda a, i: (i & 0xFFFF) << 16)


def _bind_shift(fn):
    """Constant shift: rd = fn(rt_val, shamt)."""
    def binder(inst):
        rs, rt, rd, shamt = inst.rs, inst.rt, inst.rd, inst.shamt

        def h(m, emit):
            regs = m.regs
            pc = m.pc
            a = regs[rs]
            b = regs[rt]
            r = fn(b, shamt)
            if rd:
                regs[rd] = r
            npc = (pc + 4) & _M
            m.pc = npc
            m.instret += 1
            if emit:
                return TraceRecord(pc, inst, a, b,
                                   r, -1, False, npc)
            return None
        return h
    return binder


BINDERS["sll"] = _bind_shift(lambda b, s: (b << s) & _M)
BINDERS["srl"] = _bind_shift(lambda b, s: b >> s)
BINDERS["sra"] = _bind_shift(lambda b, s: (to_signed(b) >> s) & _M)


# ------------------------------------------------------------------- memory

def _bind_load(fn):
    """Sub-word load: rt = fn(memory, addr)."""
    def binder(inst):
        rs, rt, imm = inst.rs, inst.rt, inst.imm

        def h(m, emit):
            regs = m.regs
            pc = m.pc
            a = regs[rs]
            b = regs[rt]
            addr = (a + imm) & _M
            r = fn(m.memory, addr)
            if rt:
                regs[rt] = r
            npc = (pc + 4) & _M
            m.pc = npc
            m.instret += 1
            if emit:
                return TraceRecord(pc, inst, a, b,
                                   r, addr, False, npc)
            return None
        return h
    return binder


def _lb(mem, addr):
    b = mem.read_byte(addr)
    return (b - 0x100 if b & 0x80 else b) & _M


def _lh(mem, addr):
    h = mem.read_half(addr)
    return (h - 0x10000 if h & 0x8000 else h) & _M


BINDERS["lb"] = _bind_load(_lb)
BINDERS["lbu"] = _bind_load(lambda mem, addr: mem.read_byte(addr))
BINDERS["lh"] = _bind_load(_lh)
BINDERS["lhu"] = _bind_load(lambda mem, addr: mem.read_half(addr))


def _bind_store(width_mask, writer):
    """Sub-word store: writer(memory, addr, rt_val); result is the
    stored image masked to the access width."""
    def binder(inst):
        rs, rt, imm = inst.rs, inst.rt, inst.imm

        def h(m, emit):
            regs = m.regs
            pc = m.pc
            a = regs[rs]
            b = regs[rt]
            addr = (a + imm) & _M
            writer(m.memory, addr, b)
            npc = (pc + 4) & _M
            m.pc = npc
            m.instret += 1
            if emit:
                return TraceRecord(pc, inst, a, b,
                                   b & width_mask, addr, False, npc)
            return None
        return h
    return binder


BINDERS["sb"] = _bind_store(0xFF, lambda mem, addr, v: mem.write_byte(addr, v))
BINDERS["sh"] = _bind_store(0xFFFF, lambda mem, addr, v: mem.write_half(addr, v))


@_binder("lwc1")
def _b_lwc1(inst):
    rs, rt, imm = inst.rs, inst.rt, inst.imm
    ft = FP_BASE + inst.rt

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        addr = (a + imm) & _M
        r = m.memory.read_word(addr)
        regs[ft] = r
        npc = (pc + 4) & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               r, addr, False, npc)
        return None
    return h


@_binder("swc1")
def _b_swc1(inst):
    rs, rt, imm = inst.rs, inst.rt, inst.imm
    ft = FP_BASE + inst.rt

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        addr = (a + imm) & _M
        r = regs[ft]
        m.memory.write_word(addr, r)
        npc = (pc + 4) & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               r, addr, False, npc)
        return None
    return h


# ----------------------------------------------------------- control flow

def _bind_branch1(cmp):
    """One-source branch: taken = cmp(signed rs_val)."""
    def binder(inst):
        rs, rt = inst.rs, inst.rt
        off = inst.imm << 2

        def h(m, emit):
            regs = m.regs
            pc = m.pc
            a = regs[rs]
            b = regs[rt]
            taken = cmp(to_signed(a))
            npc = (pc + 4 + off) & _M if taken else (pc + 4) & _M
            m.pc = npc
            m.instret += 1
            if emit:
                return TraceRecord(pc, inst, a, b,
                                   0, -1, taken, npc)
            return None
        return h
    return binder


BINDERS["blez"] = _bind_branch1(lambda s: s <= 0)
BINDERS["bgtz"] = _bind_branch1(lambda s: s > 0)
BINDERS["bltz"] = _bind_branch1(lambda s: s < 0)
BINDERS["bgez"] = _bind_branch1(lambda s: s >= 0)


@_binder("j")
def _b_j(inst):
    rs, rt = inst.rs, inst.rt
    target = inst.target << 2

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        npc = (((pc + 4) & 0xF000_0000) | target) & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               0, -1, True, npc)
        return None
    return h


@_binder("jal")
def _b_jal(inst):
    rs, rt = inst.rs, inst.rt
    target = inst.target << 2

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        r = pc + 4
        regs[31] = r
        npc = (((pc + 4) & 0xF000_0000) | target) & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               r, -1, True, npc)
        return None
    return h


@_binder("jr")
def _b_jr(inst):
    rs, rt = inst.rs, inst.rt

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        npc = a & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               0, -1, True, npc)
        return None
    return h


@_binder("jalr")
def _b_jalr(inst):
    rs, rt, rd = inst.rs, inst.rt, inst.rd

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        r = pc + 4
        if rd:
            regs[rd] = r
        npc = a & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               r, -1, True, npc)
        return None
    return h


# -------------------------------------------------------- multiply / divide

@_binder("mult")
def _b_mult(inst):
    rs, rt = inst.rs, inst.rt

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        product = to_signed(a) * to_signed(b)
        regs[HI] = (product >> 32) & _M
        regs[LO] = r = product & _M
        npc = (pc + 4) & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               r, -1, False, npc)
        return None
    return h


@_binder("multu")
def _b_multu(inst):
    rs, rt = inst.rs, inst.rt

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        product = a * b
        regs[HI] = (product >> 32) & _M
        regs[LO] = r = product & _M
        npc = (pc + 4) & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               r, -1, False, npc)
        return None
    return h


@_binder("div")
def _b_div(inst):
    rs, rt = inst.rs, inst.rt

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a_u = regs[rs]
        b_u = regs[rt]
        a, b = to_signed(a_u), to_signed(b_u)
        if b == 0:
            regs[HI] = regs[LO] = 0
        else:
            q = abs(a) // abs(b)
            if (a < 0) != (b < 0):
                q = -q
            regs[LO] = q & _M
            regs[HI] = (a - q * b) & _M
        r = regs[LO]
        npc = (pc + 4) & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a_u, b_u,
                               r, -1, False, npc)
        return None
    return h


@_binder("divu")
def _b_divu(inst):
    rs, rt = inst.rs, inst.rt

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        if b == 0:
            regs[HI] = regs[LO] = 0
        else:
            regs[LO] = a // b
            regs[HI] = a % b
        r = regs[LO]
        npc = (pc + 4) & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               r, -1, False, npc)
        return None
    return h


def _bind_mf(src):
    """mfhi/mflo: rd = regs[src]."""
    def binder(inst):
        rs, rt, rd = inst.rs, inst.rt, inst.rd

        def h(m, emit):
            regs = m.regs
            pc = m.pc
            a = regs[rs]
            b = regs[rt]
            r = regs[src]
            if rd:
                regs[rd] = r
            npc = (pc + 4) & _M
            m.pc = npc
            m.instret += 1
            if emit:
                return TraceRecord(pc, inst, a, b,
                                   r, -1, False, npc)
            return None
        return h
    return binder


def _bind_mt(dst):
    """mthi/mtlo: regs[dst] = rs_val."""
    def binder(inst):
        rs, rt = inst.rs, inst.rt

        def h(m, emit):
            regs = m.regs
            pc = m.pc
            a = regs[rs]
            b = regs[rt]
            regs[dst] = a
            npc = (pc + 4) & _M
            m.pc = npc
            m.instret += 1
            if emit:
                return TraceRecord(pc, inst, a, b,
                                   a, -1, False, npc)
            return None
        return h
    return binder


BINDERS["mfhi"] = _bind_mf(HI)
BINDERS["mflo"] = _bind_mf(LO)
BINDERS["mthi"] = _bind_mt(HI)
BINDERS["mtlo"] = _bind_mt(LO)


# ------------------------------------------------------------------ system

@_binder("syscall")
def _b_syscall(inst):
    rs, rt = inst.rs, inst.rt

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        do_syscall(m)
        r = regs[2]
        npc = (pc + 4) & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               r, -1, False, npc)
        return None
    return h


@_binder("break")
def _b_break(inst):
    rs, rt = inst.rs, inst.rt

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        m.halted = True
        npc = (pc + 4) & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               0, -1, False, npc)
        return None
    return h


# ----------------------------------------------------------- floating point

def _bind_fp3(op):
    """fd = fs op ft (fields: fs=rd, ft=rt, fd=shamt)."""
    def binder(inst):
        rs, rt = inst.rs, inst.rt
        fs = FP_BASE + inst.rd
        ft = FP_BASE + inst.rt
        fd = FP_BASE + inst.shamt

        def h(m, emit):
            regs = m.regs
            pc = m.pc
            rs_val = regs[rs]
            rt_val = regs[rt]
            a = f32_from_bits(regs[fs])
            b = f32_from_bits(regs[ft])
            if op == "add":
                value = a + b
            elif op == "sub":
                value = a - b
            elif op == "mul":
                value = a * b
            elif b == 0.0:
                # IEEE: x/0 = ±inf; 0/0 = NaN (Python would raise).
                value = math.nan if a == 0.0 or math.isnan(a) else math.copysign(math.inf, a) * math.copysign(1.0, b)
            else:
                value = a / b
            r = bits_from_f32(value)
            regs[fd] = r
            npc = (pc + 4) & _M
            m.pc = npc
            m.instret += 1
            if emit:
                return TraceRecord(pc, inst, rs_val, rt_val,
                                   r, -1, False, npc)
            return None
        return h
    return binder


BINDERS["add.s"] = _bind_fp3("add")
BINDERS["sub.s"] = _bind_fp3("sub")
BINDERS["mul.s"] = _bind_fp3("mul")
BINDERS["div.s"] = _bind_fp3("div")


def _fp_sqrt(bits):
    a = f32_from_bits(bits)
    return bits_from_f32(math.sqrt(a) if a >= 0 or math.isnan(a) else math.nan)


def _fp_cvt_w_s(bits):
    a = f32_from_bits(bits)
    if math.isnan(a) or math.isinf(a):
        return 0x7FFF_FFFF
    return max(-0x8000_0000, min(0x7FFF_FFFF, int(a))) & _M  # truncate toward zero


def _bind_fp2(fn):
    """fd = fn(fs bits) (fields: fs=rd, fd=shamt)."""
    def binder(inst):
        rs, rt = inst.rs, inst.rt
        fs = FP_BASE + inst.rd
        fd = FP_BASE + inst.shamt

        def h(m, emit):
            regs = m.regs
            pc = m.pc
            a = regs[rs]
            b = regs[rt]
            r = fn(regs[fs])
            regs[fd] = r
            npc = (pc + 4) & _M
            m.pc = npc
            m.instret += 1
            if emit:
                return TraceRecord(pc, inst, a, b,
                                   r, -1, False, npc)
            return None
        return h
    return binder


BINDERS["mov.s"] = _bind_fp2(lambda bits: bits)
BINDERS["neg.s"] = _bind_fp2(lambda bits: bits ^ 0x8000_0000)
BINDERS["abs.s"] = _bind_fp2(lambda bits: bits & 0x7FFF_FFFF)
BINDERS["sqrt.s"] = _bind_fp2(_fp_sqrt)
BINDERS["cvt.w.s"] = _bind_fp2(_fp_cvt_w_s)
BINDERS["cvt.s.w"] = _bind_fp2(lambda bits: bits_from_f32(float(to_signed(bits))))


def _bind_fp_cmp(op):
    """FCC = fs <op> ft; unordered compares are false."""
    def binder(inst):
        rs, rt = inst.rs, inst.rt
        fs = FP_BASE + inst.rd
        ft = FP_BASE + inst.rt

        def h(m, emit):
            regs = m.regs
            pc = m.pc
            rs_val = regs[rs]
            rt_val = regs[rt]
            a = f32_from_bits(regs[fs])
            b = f32_from_bits(regs[ft])
            if math.isnan(a) or math.isnan(b):
                flag = 0
            elif op == "eq":
                flag = int(a == b)
            elif op == "lt":
                flag = int(a < b)
            else:
                flag = int(a <= b)
            regs[FCC] = flag
            npc = (pc + 4) & _M
            m.pc = npc
            m.instret += 1
            if emit:
                return TraceRecord(pc, inst, rs_val, rt_val,
                                   flag, -1, False, npc)
            return None
        return h
    return binder


BINDERS["c.eq.s"] = _bind_fp_cmp("eq")
BINDERS["c.lt.s"] = _bind_fp_cmp("lt")
BINDERS["c.le.s"] = _bind_fp_cmp("le")


def _bind_fp_branch(want):
    """bc1t/bc1f: branch when FCC == want."""
    def binder(inst):
        rs, rt = inst.rs, inst.rt
        off = inst.imm << 2

        def h(m, emit):
            regs = m.regs
            pc = m.pc
            a = regs[rs]
            b = regs[rt]
            taken = regs[FCC] == want
            npc = (pc + 4 + off) & _M if taken else (pc + 4) & _M
            m.pc = npc
            m.instret += 1
            if emit:
                return TraceRecord(pc, inst, a, b,
                                   0, -1, taken, npc)
            return None
        return h
    return binder


BINDERS["bc1t"] = _bind_fp_branch(1)
BINDERS["bc1f"] = _bind_fp_branch(0)


@_binder("mfc1")
def _b_mfc1(inst):
    rs, rt = inst.rs, inst.rt
    fs = FP_BASE + inst.rd

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        r = regs[fs]
        if rt:
            regs[rt] = r
        npc = (pc + 4) & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               r, -1, False, npc)
        return None
    return h


@_binder("mtc1")
def _b_mtc1(inst):
    rs, rt = inst.rs, inst.rt
    fs = FP_BASE + inst.rd

    def h(m, emit):
        regs = m.regs
        pc = m.pc
        a = regs[rs]
        b = regs[rt]
        regs[fs] = b
        npc = (pc + 4) & _M
        m.pc = npc
        m.instret += 1
        if emit:
            return TraceRecord(pc, inst, a, b,
                               b, -1, False, npc)
        return None
    return h


# -------------------------------------------------------------------- bind

def bind(inst):
    """Return the specialized handler for one decoded instruction.

    Unknown mnemonics bind to a handler that raises
    :class:`IllegalInstruction` when (and only when) executed —
    matching the reference interpreter, which faults at execute time.
    """
    binder = BINDERS.get(inst.mnemonic)
    if binder is None:
        mnemonic = inst.mnemonic

        def h(m, emit):  # pragma: no cover - decode guarantees known mnemonics
            from repro.harness.errors import IllegalInstruction

            raise IllegalInstruction(f"unimplemented mnemonic {mnemonic!r}")
        return h
    return binder(inst)


def bind_program(decoded):
    """Bind a whole pre-decoded text segment (``None`` entries pass through)."""
    return [bind(inst) if inst is not None else None for inst in decoded]


# ------------------------------------------------------------- cross-check

def cross_check(program, max_steps: int = 100_000):
    """Differentially execute *program* on both interpreters.

    Runs a fast-dispatch machine and a golden-reference machine in
    lockstep, comparing every :class:`TraceRecord` and the final
    architectural state (registers, PC, halt flag, output).

    Returns the number of instructions compared.

    Raises:
        DispatchDivergence: the first step (or final state) where the
            two interpreters disagree.
    """
    from repro.emulator.machine import Machine

    fast = Machine(program, dispatch="fast")
    gold = Machine(program, dispatch="reference")
    n = 0
    while not gold.halted and n < max_steps:
        want = gold.step_reference()
        got = fast.step()
        if want != got:
            raise DispatchDivergence(
                f"step {n}: fast dispatch produced {got!r}, reference produced {want!r}"
            )
        n += 1
    if fast.regs != gold.regs:
        raise DispatchDivergence("final register files differ")
    if fast.pc != gold.pc or fast.halted != gold.halted or fast.output != gold.output:
        raise DispatchDivergence("final machine state differs")
    return n


__all__ = [
    "BINDERS",
    "DispatchDivergence",
    "bind",
    "bind_program",
    "bits_from_f32",
    "cross_check",
    "f32_from_bits",
    "to_signed",
]
