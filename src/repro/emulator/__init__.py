"""Functional emulator substrate.

Executes assembled :class:`~repro.isa.assembler.Program` images at the
architectural level and produces the dynamic instruction traces consumed
by the characterization studies and the timing simulator.
"""

from repro.emulator.machine import EmulatorError, Machine
from repro.emulator.memory import AlignmentError, SparseMemory
from repro.emulator.trace import TraceRecord, trace_program

__all__ = [
    "AlignmentError",
    "EmulatorError",
    "Machine",
    "SparseMemory",
    "TraceRecord",
    "trace_program",
]
