"""Functional emulator substrate.

Executes assembled :class:`~repro.isa.assembler.Program` images at the
architectural level and produces the dynamic instruction traces consumed
by the characterization studies and the timing simulator.

Failure modes raise the structured taxonomy of
:mod:`repro.harness.errors` (re-exported here): bad fetches are
:class:`IllegalInstruction`, misaligned accesses are
:class:`MemoryFault` (via :class:`AlignmentError`), and watchdog
breaches are :class:`RunawayExecution` — all of them
:class:`EmulatorError` subclasses.
"""

from repro.emulator.machine import EmulatorError, IllegalInstruction, Machine
from repro.emulator.memory import AlignmentError, SparseMemory
from repro.emulator.trace import TraceRecord, trace_program
from repro.harness.errors import MemoryFault, RunawayExecution

__all__ = [
    "AlignmentError",
    "EmulatorError",
    "IllegalInstruction",
    "Machine",
    "MemoryFault",
    "RunawayExecution",
    "SparseMemory",
    "TraceRecord",
    "trace_program",
]
