"""Architectural machine: loads a program image and executes it.

The machine implements precise 32-bit PISA-like semantics: wraparound
arithmetic, signed/unsigned compares, HI/LO multiply-divide, and no
branch delay slots (matching SimpleScalar's simplified PISA).  Text is
pre-decoded at load time so the interpreter loop touches only Python
ints and the pre-built :class:`~repro.isa.instructions.Instruction`
objects.

Three interpreters share the machine state:

* the **fast path** (default): every decoded instruction is pre-bound
  once to a specialized closure from :mod:`repro.emulator.dispatch`, so
  the execute loop is threaded code with zero mnemonic string
  comparisons, and :meth:`run` retires instructions without building
  ``TraceRecord`` objects it would only discard;
* the **blocks tier** (``REPRO_DISPATCH=blocks``): hot basic blocks
  and superblocks compile to fused Python functions
  (:mod:`repro.emulator.blocks`) with registers in host locals and
  batched memory runs, falling back to the pre-bound handlers at block
  exits, syscalls and cold code;
* the **golden reference** (:meth:`step_reference`): the original
  ``if``/``elif`` interpreter, kept verbatim as the oracle that both
  fast tiers are differentially checked against
  (:func:`repro.emulator.dispatch.cross_check`,
  :func:`repro.emulator.blocks.cross_check_blocks`).

Set ``REPRO_DISPATCH=reference`` (or pass ``dispatch="reference"``) to
force the golden interpreter everywhere — useful for A/B performance
measurements and for bisecting a suspected fast-path bug.  An
in-process override (:func:`set_dispatch_mode`) beats the environment
and is re-applied inside sweep workers.
"""

from __future__ import annotations

import math
import os
import time

from repro.emulator import dispatch as _dispatch
from repro.emulator.dispatch import bits_from_f32, f32_from_bits, to_signed
from repro.obs.guestprof import active_collector as _guest_collector
from repro.emulator.memory import SparseMemory
from repro.emulator.syscalls import SYS_EXIT, do_syscall
from repro.emulator.trace import TraceRecord
from repro.harness.errors import EmulatorError, IllegalInstruction
from repro.isa.assembler import STACK_TOP, Program
from repro.isa.encoding import EncodingError, decode
from repro.isa.registers import FCC, FP_BASE, HI, LO, NUM_EXT_REGS

_M = 0xFFFFFFFF

#: Environment variable selecting the interpreter
#: (``fast``/``reference``/``blocks``).
DISPATCH_ENV = "REPRO_DISPATCH"

#: Retirements a profiled exact-mode block chain may run before it
#: yields to the outer loop, where the chain-encoded execution buffer
#: is drained into the histogram.  Bounds the buffer on pathological
#: all-tiny-block runs (a few MB of ints at the default) while keeping
#: the drain check off the per-execution hot path.
_PROFILE_DRAIN = 262_144

#: In-process dispatch-mode override (beats the environment).  Workers
#: spawned for parallel sweeps re-apply this the same way the timing
#: layer re-applies its mode override (see experiments.supervisor).
_dispatch_override: str | None = None


def _canon_dispatch(value) -> str:
    v = str(value).strip().lower()
    if v in ("reference", "ref", "slow"):
        return "reference"
    if v in ("blocks", "block", "compiled"):
        return "blocks"
    return "fast"


def default_dispatch() -> str:
    """Interpreter selected by the override or ``REPRO_DISPATCH``.

    Returns ``"fast"`` (pre-bound dispatch, the default),
    ``"reference"`` (golden interpreter) or ``"blocks"``
    (block-compiled tier, :mod:`repro.emulator.blocks`).
    """
    if _dispatch_override is not None:
        return _dispatch_override
    return _canon_dispatch(os.environ.get(DISPATCH_ENV, "fast"))


def set_dispatch_mode(mode: str | None) -> str | None:
    """Set (or clear, with ``None``) the in-process dispatch override.

    Returns the canonicalized mode now in force as the override.
    """
    global _dispatch_override
    _dispatch_override = None if mode is None else _canon_dispatch(mode)
    return _dispatch_override


def dispatch_mode_override() -> str | None:
    """Current in-process override, or ``None`` when the env decides."""
    return _dispatch_override


class Machine:
    """Architectural state plus an interpreter loop.

    Attributes:
        regs: 34-entry extended register file (GPRs + HI/LO), values are
            Python ints in ``[0, 2**32)``.
        pc: current program counter.
        halted: set by the exit syscall.
        output: bytes written by print syscalls.
        instret: retired instruction count.
    """

    def __init__(
        self,
        program: Program,
        dispatch: str | None = None,
        block_threshold: int | None = None,
    ) -> None:
        self.program = program
        self.memory = SparseMemory()
        self.memory.write_block(program.data_base, bytes(program.data))
        text_bytes = b"".join(w.to_bytes(4, "little") for w in program.text)
        self.memory.write_block(program.text_base, text_bytes)
        # Undecodable text words fault only if fetched, so a corrupt
        # word in dead code cannot kill an otherwise valid image.
        decoded = []
        for w in program.text:
            try:
                decoded.append(decode(w))
            except EncodingError:
                decoded.append(None)
        self.decoded = decoded
        self.dispatch = (
            _canon_dispatch(dispatch) if dispatch is not None else default_dispatch()
        )
        self._fast = self.dispatch == "fast"
        self._blocks = self.dispatch == "blocks"
        # Pre-bound handlers, parallel to ``decoded`` (fast + blocks:
        # the blocks tier falls back to these between compiled blocks).
        self._bound = (
            _dispatch.bind_program(decoded) if self.dispatch != "reference" else None
        )
        self.regs: list[int] = [0] * NUM_EXT_REGS
        self.regs[29] = STACK_TOP  # $sp
        self.regs[28] = (program.data_base + 0x8000) & _M  # $gp convention
        self.pc = program.entry
        self.halted = False
        self.exit_code = 0
        self.output = bytearray()
        self.instret = 0
        self._warm_sink = None
        self._warm_need = None
        if self._blocks:
            from repro.emulator.blocks import BlockEngine

            self._engine = BlockEngine(self, threshold=block_threshold)
        else:
            self._engine = None

    def attach_warm_sink(self, hierarchy, predictor) -> None:
        """Bind functional-warming targets for :meth:`run_warm`.

        *hierarchy* (a :class:`~repro.memsys.hierarchy.MemoryHierarchy`)
        and *predictor* (a
        :class:`~repro.branch.predictor.FrontEndPredictor`) receive
        every memory touch / fetch-line transition / control-transfer
        outcome the guest retires during warm-mode execution.  Warm
        blocks bind the sink's methods directly, so any previously
        compiled warm entries are dropped for rebinding.
        """
        self._warm_sink = (hierarchy, predictor)
        # Per-index flag: does warm-mode fallback need the trace record
        # (control transfers and memory ops) or just the I-side touch?
        self._warm_need = [
            inst is not None and (inst.is_control or inst.is_load or inst.is_store)
            for inst in self.decoded
        ]
        if self._engine is not None:
            self._engine.reset_variant("warm")

    # ------------------------------------------------------------------ fetch

    def fetch(self, pc: int):
        """Return the pre-decoded instruction at *pc*.

        Raises:
            IllegalInstruction: *pc* is misaligned, outside the text
                segment, or addresses a word that does not decode.
        """
        index = (pc - self.program.text_base) >> 2
        if pc & 3 or not 0 <= index < len(self.decoded):
            raise IllegalInstruction(f"PC out of text segment: {pc:#x}")
        inst = self.decoded[index]
        if inst is None:
            word = self.program.text[index]
            raise IllegalInstruction(f"undecodable instruction word {word:#010x} at {pc:#x}")
        return inst

    # ------------------------------------------------------------------- step

    def step(self) -> TraceRecord:
        """Execute one instruction and return its trace record.

        Dispatches through the pre-bound handler (fast path) or the
        golden reference interpreter, per this machine's ``dispatch``
        mode — the two are bit-identical by construction and checked
        differentially (:func:`repro.emulator.dispatch.cross_check`).

        Raises:
            EmulatorError: if the machine is already halted or the PC
                leaves the text segment.
        """
        if self.halted:
            raise EmulatorError("machine is halted")
        if self._bound is None:
            return self.step_reference()
        # Fast and blocks modes share the pre-bound single-step path;
        # the blocks engine only accelerates the bulk _loop.
        pc = self.pc
        bound = self._bound
        index = (pc - self.program.text_base) >> 2
        if pc & 3 or not 0 <= index < len(bound) or bound[index] is None:
            self.fetch(pc)  # raises IllegalInstruction with the canonical message
        return bound[index](self, True)

    def step_reference(self) -> TraceRecord:
        """The golden-model interpreter: one ``if``/``elif`` chain.

        Kept verbatim as the oracle for the pre-bound fast path; it is
        exercised by the differential tests and selectable at runtime
        via ``REPRO_DISPATCH=reference``.

        Raises:
            EmulatorError: if the machine is already halted or the PC
                leaves the text segment.
        """
        if self.halted:
            raise EmulatorError("machine is halted")
        pc = self.pc
        inst = self.fetch(pc)
        regs = self.regs
        m = inst.mnemonic
        rs_val = regs[inst.rs]
        rt_val = regs[inst.rt]
        next_pc = pc + 4
        result = 0
        mem_addr = -1
        taken = False

        if m == "addu" or m == "add":
            result = (rs_val + rt_val) & _M
            if inst.rd:
                regs[inst.rd] = result
        elif m == "addiu" or m == "addi":
            result = (rs_val + inst.imm) & _M
            if inst.rt:
                regs[inst.rt] = result
        elif m == "lw":
            mem_addr = (rs_val + inst.imm) & _M
            result = self.memory.read_word(mem_addr)
            if inst.rt:
                regs[inst.rt] = result
        elif m == "sw":
            mem_addr = (rs_val + inst.imm) & _M
            result = rt_val
            self.memory.write_word(mem_addr, rt_val)
        elif m == "beq":
            taken = rs_val == rt_val
            if taken:
                next_pc = pc + 4 + (inst.imm << 2)
        elif m == "bne":
            taken = rs_val != rt_val
            if taken:
                next_pc = pc + 4 + (inst.imm << 2)
        elif m == "subu" or m == "sub":
            result = (rs_val - rt_val) & _M
            if inst.rd:
                regs[inst.rd] = result
        elif m == "and":
            result = rs_val & rt_val
            if inst.rd:
                regs[inst.rd] = result
        elif m == "or":
            result = rs_val | rt_val
            if inst.rd:
                regs[inst.rd] = result
        elif m == "xor":
            result = rs_val ^ rt_val
            if inst.rd:
                regs[inst.rd] = result
        elif m == "nor":
            result = ~(rs_val | rt_val) & _M
            if inst.rd:
                regs[inst.rd] = result
        elif m == "andi":
            result = rs_val & (inst.imm & 0xFFFF)
            if inst.rt:
                regs[inst.rt] = result
        elif m == "ori":
            result = rs_val | (inst.imm & 0xFFFF)
            if inst.rt:
                regs[inst.rt] = result
        elif m == "xori":
            result = rs_val ^ (inst.imm & 0xFFFF)
            if inst.rt:
                regs[inst.rt] = result
        elif m == "lui":
            result = (inst.imm & 0xFFFF) << 16
            if inst.rt:
                regs[inst.rt] = result
        elif m == "sll":
            result = (rt_val << inst.shamt) & _M
            if inst.rd:
                regs[inst.rd] = result
        elif m == "srl":
            result = rt_val >> inst.shamt
            if inst.rd:
                regs[inst.rd] = result
        elif m == "sra":
            result = (to_signed(rt_val) >> inst.shamt) & _M
            if inst.rd:
                regs[inst.rd] = result
        elif m == "sllv":
            result = (rt_val << (rs_val & 31)) & _M
            if inst.rd:
                regs[inst.rd] = result
        elif m == "srlv":
            result = rt_val >> (rs_val & 31)
            if inst.rd:
                regs[inst.rd] = result
        elif m == "srav":
            result = (to_signed(rt_val) >> (rs_val & 31)) & _M
            if inst.rd:
                regs[inst.rd] = result
        elif m == "slt":
            result = 1 if to_signed(rs_val) < to_signed(rt_val) else 0
            if inst.rd:
                regs[inst.rd] = result
        elif m == "sltu":
            result = 1 if rs_val < rt_val else 0
            if inst.rd:
                regs[inst.rd] = result
        elif m == "slti":
            result = 1 if to_signed(rs_val) < inst.imm else 0
            if inst.rt:
                regs[inst.rt] = result
        elif m == "sltiu":
            result = 1 if rs_val < (inst.imm & _M) else 0
            if inst.rt:
                regs[inst.rt] = result
        elif m == "lb":
            mem_addr = (rs_val + inst.imm) & _M
            b = self.memory.read_byte(mem_addr)
            result = (b - 0x100 if b & 0x80 else b) & _M
            if inst.rt:
                regs[inst.rt] = result
        elif m == "lbu":
            mem_addr = (rs_val + inst.imm) & _M
            result = self.memory.read_byte(mem_addr)
            if inst.rt:
                regs[inst.rt] = result
        elif m == "lh":
            mem_addr = (rs_val + inst.imm) & _M
            h = self.memory.read_half(mem_addr)
            result = (h - 0x10000 if h & 0x8000 else h) & _M
            if inst.rt:
                regs[inst.rt] = result
        elif m == "lhu":
            mem_addr = (rs_val + inst.imm) & _M
            result = self.memory.read_half(mem_addr)
            if inst.rt:
                regs[inst.rt] = result
        elif m == "sb":
            mem_addr = (rs_val + inst.imm) & _M
            result = rt_val & 0xFF
            self.memory.write_byte(mem_addr, rt_val)
        elif m == "sh":
            mem_addr = (rs_val + inst.imm) & _M
            result = rt_val & 0xFFFF
            self.memory.write_half(mem_addr, rt_val)
        elif m == "blez":
            taken = to_signed(rs_val) <= 0
            if taken:
                next_pc = pc + 4 + (inst.imm << 2)
        elif m == "bgtz":
            taken = to_signed(rs_val) > 0
            if taken:
                next_pc = pc + 4 + (inst.imm << 2)
        elif m == "bltz":
            taken = to_signed(rs_val) < 0
            if taken:
                next_pc = pc + 4 + (inst.imm << 2)
        elif m == "bgez":
            taken = to_signed(rs_val) >= 0
            if taken:
                next_pc = pc + 4 + (inst.imm << 2)
        elif m == "j":
            taken = True
            next_pc = ((pc + 4) & 0xF000_0000) | (inst.target << 2)
        elif m == "jal":
            taken = True
            result = pc + 4
            regs[31] = result
            next_pc = ((pc + 4) & 0xF000_0000) | (inst.target << 2)
        elif m == "jr":
            taken = True
            next_pc = rs_val
        elif m == "jalr":
            taken = True
            result = pc + 4
            if inst.rd:
                regs[inst.rd] = result
            next_pc = rs_val
        elif m == "mult":
            product = to_signed(rs_val) * to_signed(rt_val)
            regs[HI] = (product >> 32) & _M
            regs[LO] = result = product & _M
        elif m == "multu":
            product = rs_val * rt_val
            regs[HI] = (product >> 32) & _M
            regs[LO] = result = product & _M
        elif m == "div":
            a, b = to_signed(rs_val), to_signed(rt_val)
            if b == 0:
                regs[HI] = regs[LO] = 0
            else:
                q = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    q = -q
                regs[LO] = q & _M
                regs[HI] = (a - q * b) & _M
            result = regs[LO]
        elif m == "divu":
            if rt_val == 0:
                regs[HI] = regs[LO] = 0
            else:
                regs[LO] = rs_val // rt_val
                regs[HI] = rs_val % rt_val
            result = regs[LO]
        elif m == "mfhi":
            result = regs[HI]
            if inst.rd:
                regs[inst.rd] = result
        elif m == "mflo":
            result = regs[LO]
            if inst.rd:
                regs[inst.rd] = result
        elif m == "mthi":
            regs[HI] = result = rs_val
        elif m == "mtlo":
            regs[LO] = result = rs_val
        elif m == "syscall":
            do_syscall(self)
            result = regs[2]
        elif m == "break":
            self.halted = True
        elif m == "lwc1":
            mem_addr = (rs_val + inst.imm) & _M
            result = self.memory.read_word(mem_addr)
            regs[FP_BASE + inst.rt] = result
        elif m == "swc1":
            mem_addr = (rs_val + inst.imm) & _M
            result = regs[FP_BASE + inst.rt]
            self.memory.write_word(mem_addr, result)
        elif m in ("add.s", "sub.s", "mul.s", "div.s"):
            a = f32_from_bits(regs[FP_BASE + inst.rd])  # fs
            b = f32_from_bits(regs[FP_BASE + inst.rt])  # ft
            if m == "add.s":
                value = a + b
            elif m == "sub.s":
                value = a - b
            elif m == "mul.s":
                value = a * b
            elif b == 0.0:
                # IEEE: x/0 = ±inf; 0/0 = NaN (Python would raise).
                value = math.nan if a == 0.0 or math.isnan(a) else math.copysign(math.inf, a) * math.copysign(1.0, b)
            else:
                value = a / b
            result = bits_from_f32(value)
            regs[FP_BASE + inst.shamt] = result  # fd
        elif m in ("sqrt.s", "abs.s", "mov.s", "neg.s"):
            bits = regs[FP_BASE + inst.rd]
            if m == "mov.s":
                result = bits
            elif m == "neg.s":
                result = bits ^ 0x8000_0000
            elif m == "abs.s":
                result = bits & 0x7FFF_FFFF
            else:
                a = f32_from_bits(bits)
                result = bits_from_f32(math.sqrt(a) if a >= 0 or math.isnan(a) else math.nan)
            regs[FP_BASE + inst.shamt] = result
        elif m == "cvt.w.s":
            a = f32_from_bits(regs[FP_BASE + inst.rd])
            if math.isnan(a) or math.isinf(a):
                value = 0x7FFF_FFFF
            else:
                value = max(-0x8000_0000, min(0x7FFF_FFFF, int(a)))  # truncate toward zero
            result = value & _M
            regs[FP_BASE + inst.shamt] = result
        elif m == "cvt.s.w":
            raw = regs[FP_BASE + inst.rd]
            result = bits_from_f32(float(to_signed(raw)))
            regs[FP_BASE + inst.shamt] = result
        elif m in ("c.eq.s", "c.lt.s", "c.le.s"):
            a = f32_from_bits(regs[FP_BASE + inst.rd])
            b = f32_from_bits(regs[FP_BASE + inst.rt])
            if math.isnan(a) or math.isnan(b):
                flag = 0  # unordered: all ordered compares are false
            elif m == "c.eq.s":
                flag = int(a == b)
            elif m == "c.lt.s":
                flag = int(a < b)
            else:
                flag = int(a <= b)
            regs[FCC] = result = flag
        elif m == "bc1t":
            taken = regs[FCC] == 1
            if taken:
                next_pc = pc + 4 + (inst.imm << 2)
        elif m == "bc1f":
            taken = regs[FCC] == 0
            if taken:
                next_pc = pc + 4 + (inst.imm << 2)
        elif m == "mfc1":
            result = regs[FP_BASE + inst.rd]
            if inst.rt:
                regs[inst.rt] = result
        elif m == "mtc1":
            regs[FP_BASE + inst.rd] = result = rt_val
        else:  # pragma: no cover - decode guarantees known mnemonics
            raise IllegalInstruction(f"unimplemented mnemonic {m!r}")

        self.pc = next_pc & _M
        self.instret += 1
        return TraceRecord(
            pc=pc, inst=inst, rs_val=rs_val, rt_val=rt_val,
            result=result, mem_addr=mem_addr, taken=taken, next_pc=self.pc,
        )

    # ------------------------------------------------------------------- run

    def _loop(self, max_steps: int, watchdog, emit: bool, warm: bool = False):
        """The single interpreter loop behind :meth:`run` and :meth:`trace`.

        A generator that executes until halt or *max_steps*, yielding a
        :class:`TraceRecord` per retired instruction when *emit* is
        true.  With *emit* false the loop never suspends — handlers
        skip record construction entirely and driving the generator
        costs one frame — which is what makes :meth:`run` the fast
        path.  The optional watchdog is polled once per instruction in
        either mode.  *warm* (blocks tier, run mode only) dispatches
        through the functional-warming block variants — see
        :meth:`run_warm`.

        When a guest profiler is active the counting twin
        (:meth:`_loop_profiled`) runs instead; this single ``None``
        check per loop activation is the profiler's entire footprint on
        a disabled run.
        """
        if _guest_collector() is not None:
            yield from self._loop_profiled(max_steps, watchdog, emit)
            return
        if watchdog is not None:
            watchdog.start()
        n = 0
        if self._fast:
            bound = self._bound
            base = self.program.text_base
            size = len(bound)
            while not self.halted and n < max_steps:
                pc = self.pc
                index = (pc - base) >> 2
                if pc & 3 or not 0 <= index < size or bound[index] is None:
                    self.fetch(pc)  # raises the canonical IllegalInstruction
                record = bound[index](self, emit)
                n += 1
                if watchdog is not None:
                    watchdog.poll(n)
                if emit:
                    yield record
        elif self._blocks:
            # Block-compiled tier: hot leaders execute as fused compiled
            # functions (one call per block, watchdog polled per block —
            # a step-budget breach is detected at block granularity,
            # bounded by MAX_BLOCK_LEN); everything else single-steps
            # through the pre-bound handlers.  A compiled body that
            # raises commits nothing, so the engine replays the block
            # per-instruction to reproduce reference fault semantics.
            eng = self._engine
            bound = self._bound
            base = self.program.text_base
            size = len(bound)
            variant = "trace" if emit else ("warm" if warm else "run")
            table = eng.tables[variant]
            sink_h, sink_p = self._warm_sink if warm else (None, None)
            warm_need = self._warm_need if warm else None
            execs = 0
            insts = 0
            fallback = 0
            side_exits = 0
            try:
                while not self.halted and n < max_steps:
                    pc = self.pc
                    index = (pc - base) >> 2
                    if pc & 3 or not 0 <= index < size:
                        self.fetch(pc)  # raises the canonical IllegalInstruction
                    entry = table[index]
                    if entry is not None:
                        cls = entry.__class__
                        if cls is int:
                            if entry <= 1:
                                eng.compile_block(index, variant)
                                entry = table[index]
                                cls = None if entry is None else tuple
                            else:
                                table[index] = entry - 1
                                cls = None
                        if cls is tuple:
                            n_max, fn = entry
                            if emit:
                                if n + n_max <= max_steps:
                                    try:
                                        records = fn(self)
                                    except Exception as exc:  # replay per-inst
                                        for record in eng.replay(self, n_max, exc):
                                            n += 1
                                            yield record
                                        raise  # pragma: no cover - replay re-raises
                                    cnt = len(records)
                                    n += cnt
                                    execs += 1
                                    insts += cnt
                                    if cnt != n_max:
                                        side_exits += 1
                                    if watchdog is not None:
                                        watchdog.poll(n)
                                    yield from records
                                    continue
                            else:
                                # Chain loop: the run variant returns the
                                # next leader's index packed with the
                                # retired count, so consecutive compiled
                                # blocks execute back-to-back without
                                # re-deriving anything from the PC.
                                ran = False
                                while n + n_max <= max_steps:
                                    try:
                                        ret = fn(self)
                                    except Exception as exc:  # replay per-inst
                                        for _ in eng.replay(self, n_max, exc):
                                            n += 1
                                        raise  # pragma: no cover - replay re-raises
                                    ran = True
                                    cnt = ret & 255
                                    n += cnt
                                    execs += 1
                                    insts += cnt
                                    if cnt != n_max:
                                        side_exits += 1
                                    if watchdog is not None:
                                        watchdog.poll(n)
                                    ni = (ret >> 8) - 1
                                    if ni < 0:
                                        break
                                    nxt = table[ni]
                                    if nxt.__class__ is not tuple:
                                        break  # cold/profiling leader: outer loop
                                    n_max, fn = nxt
                                if ran:
                                    continue
                                # Budget too tight for this block: retire
                                # its instructions one at a time below.
                    handler = bound[index]
                    if handler is None:
                        self.fetch(pc)  # raises the canonical IllegalInstruction
                    if warm:
                        # Cold-code fallback still warms: branch-dense
                        # regions form short or cold blocks, so without
                        # this the predictor misses most of its training
                        # stream even when block coverage is high.  The
                        # record is built only for control/memory ops.
                        need = warm_need[index]
                        record = handler(self, need)
                        n += 1
                        fallback += 1
                        sink_h.warm_instruction(pc)
                        if need:
                            ma = record.mem_addr
                            if ma >= 0:
                                sink_h.warm_data(ma)
                            if record.inst.is_control:
                                sink_p.predict_and_train(record)
                    else:
                        record = handler(self, emit)
                        n += 1
                        fallback += 1
                    if watchdog is not None:
                        watchdog.poll(n)
                    if emit:
                        yield record
            finally:
                eng.execs += execs
                eng.insts += insts
                eng.fallback += fallback
                eng.side_exits += side_exits
                eng.flush_stats()
        else:
            while not self.halted and n < max_steps:
                record = self.step_reference()
                n += 1
                if watchdog is not None:
                    watchdog.poll(n)
                if emit:
                    yield record

    def _loop_profiled(self, max_steps: int, watchdog, emit: bool):
        """Guest-profiling twin of :meth:`_loop`.

        Same tier structure and retirement semantics, plus per-PC
        retirement counting for the active
        :class:`~repro.obs.guestprof.GuestProfileCollector`.  The fast
        and reference tiers count each instruction as it retires; the
        blocks tier counts one ``(leader, retired)`` pair per compiled
        execution and folds the pairs into per-PC counts on exit —
        compiled bodies commit a prefix of their static item list at
        every exit point, so an execution that retired ``k``
        instructions retired exactly ``items[:k]``.  In ``sample``
        mode, blocks-tier samples land on the executing block's leader
        PC (a documented period-granularity approximation).  The
        partial profile is folded in even when the loop unwinds on a
        watchdog breach or guest fault.
        """
        gp = _guest_collector()
        exact = gp.mode == "exact"
        period = gp.period
        left = gp.countdown
        counts: dict[int, int] = {}
        sampled = 0
        if watchdog is not None:
            watchdog.start()
        n = 0
        if self._fast or self._bound is None:
            step_ref = self._bound is None
            bound = self._bound
            base = self.program.text_base
            size = 0 if step_ref else len(bound)
            try:
                while not self.halted and n < max_steps:
                    pc = self.pc
                    if step_ref:
                        record = self.step_reference()
                    else:
                        index = (pc - base) >> 2
                        if pc & 3 or not 0 <= index < size or bound[index] is None:
                            self.fetch(pc)  # raises the canonical IllegalInstruction
                        record = bound[index](self, emit)
                    n += 1
                    if exact:
                        counts[pc] = counts.get(pc, 0) + 1
                    else:
                        left -= 1
                        if left <= 0:
                            counts[pc] = counts.get(pc, 0) + 1
                            sampled += 1
                            left = period
                    if watchdog is not None:
                        watchdog.poll(n)
                    if emit:
                        yield record
            finally:
                gp.countdown = left
                gp.add_counts(counts, n, sampled)
        else:
            # Blocks tier: same dispatch structure as _loop, with one
            # histogram update per compiled execution.
            eng = self._engine
            bound = self._bound
            base = self.program.text_base
            size = len(bound)
            table = eng.trace_table if emit else eng.run_table
            # Exact mode in run dispatch appends one already-materialised
            # int per compiled execution: a ``~leader`` marker at each
            # chain entry, then the raw ``ret`` word
            # (``(next_leader + 1) << 8 | retired``) of every execution.
            # Each execution's leader is implied by the chain —
            # ``lead[k+1] = (ret[k] >> 8) - 1`` — so the hot loop does no
            # arithmetic or allocation at all; :func:`_fold_pending`
            # reconstructs ``leader << 8 | retired`` histogram keys
            # vectorised with numpy (MAX_BLOCK_LEN < 256 keeps the pack
            # exact).  Chains yield to the outer loop every
            # ``_PROFILE_DRAIN`` retirements so ``pending`` stays
            # bounded.
            bexecs: dict[int, int] = {}
            bexecs_get = bexecs.get
            pending: list[int] = []
            pending_append = pending.append
            counts_get = counts.get
            execs = 0
            insts = 0
            fallback = 0
            side_exits = 0

            def _fold_pending() -> None:
                """Decode the chain-encoded buffer into ``bexecs``."""
                import numpy as np

                raw = np.array(pending, dtype=np.int64)
                pending.clear()
                if len(raw) < 2:
                    return
                prev = raw[:-1]
                cur = raw[1:]
                lead = np.where(prev < 0, ~prev, (prev >> 8) - 1)
                keys = ((lead << 8) | (cur & 255))[cur >= 0]
                uniq, times = np.unique(keys, return_counts=True)
                for key, reps in zip(uniq.tolist(), times.tolist()):
                    bexecs[key] = bexecs_get(key, 0) + reps
            try:
                while not self.halted and n < max_steps:
                    pc = self.pc
                    index = (pc - base) >> 2
                    if pc & 3 or not 0 <= index < size:
                        self.fetch(pc)  # raises the canonical IllegalInstruction
                    entry = table[index]
                    if entry is not None:
                        cls = entry.__class__
                        if cls is int:
                            if entry <= 1:
                                eng.compile_block(index, emit)
                                entry = table[index]
                                cls = None if entry is None else tuple
                            else:
                                table[index] = entry - 1
                                cls = None
                        if cls is tuple:
                            n_max, fn = entry
                            if emit:
                                if n + n_max <= max_steps:
                                    try:
                                        records = fn(self)
                                    except Exception as exc:  # replay per-inst
                                        for record in eng.replay(self, n_max, exc):
                                            n += 1
                                            if exact:
                                                rpc = record.pc
                                                counts[rpc] = counts.get(rpc, 0) + 1
                                            else:
                                                left -= 1
                                                if left <= 0:
                                                    rpc = record.pc
                                                    counts[rpc] = counts.get(rpc, 0) + 1
                                                    sampled += 1
                                                    left = period
                                            yield record
                                        raise  # pragma: no cover - replay re-raises
                                    cnt = len(records)
                                    n += cnt
                                    execs += 1
                                    insts += cnt
                                    if cnt != n_max:
                                        side_exits += 1
                                    if exact:
                                        key = (index << 8) | cnt
                                        bexecs[key] = bexecs_get(key, 0) + 1
                                    else:
                                        left -= cnt
                                        while left <= 0:
                                            counts[pc] = counts_get(pc, 0) + 1
                                            sampled += 1
                                            left += period
                                    if watchdog is not None:
                                        watchdog.poll(n)
                                    yield from records
                                    continue
                            elif exact:
                                ran = False
                                if len(pending) >= _PROFILE_DRAIN:
                                    _fold_pending()
                                pending_append(~index)
                                limit = n + _PROFILE_DRAIN
                                if limit > max_steps:
                                    limit = max_steps
                                while n + n_max <= limit:
                                    try:
                                        ret = fn(self)
                                    except Exception as exc:  # replay per-inst
                                        for record in eng.replay(self, n_max, exc):
                                            n += 1
                                            rpc = record.pc
                                            counts[rpc] = counts_get(rpc, 0) + 1
                                        raise  # pragma: no cover - replay re-raises
                                    ran = True
                                    pending_append(ret)
                                    cnt = ret & 255
                                    n += cnt
                                    execs += 1
                                    insts += cnt
                                    if cnt != n_max:
                                        side_exits += 1
                                    if watchdog is not None:
                                        watchdog.poll(n)
                                    ni = (ret >> 8) - 1
                                    if ni < 0:
                                        break
                                    nxt = table[ni]
                                    if nxt.__class__ is not tuple:
                                        break  # cold/profiling leader: outer loop
                                    n_max, fn = nxt
                                if ran:
                                    continue
                            else:
                                ran = False
                                lead = index
                                while n + n_max <= max_steps:
                                    try:
                                        ret = fn(self)
                                    except Exception as exc:  # replay per-inst
                                        for record in eng.replay(self, n_max, exc):
                                            n += 1
                                            left -= 1
                                            if left <= 0:
                                                rpc = record.pc
                                                counts[rpc] = counts_get(rpc, 0) + 1
                                                sampled += 1
                                                left = period
                                        raise  # pragma: no cover - replay re-raises
                                    ran = True
                                    cnt = ret & 255
                                    n += cnt
                                    execs += 1
                                    insts += cnt
                                    if cnt != n_max:
                                        side_exits += 1
                                    left -= cnt
                                    while left <= 0:
                                        lpc = base + 4 * lead
                                        counts[lpc] = counts_get(lpc, 0) + 1
                                        sampled += 1
                                        left += period
                                    if watchdog is not None:
                                        watchdog.poll(n)
                                    ni = (ret >> 8) - 1
                                    if ni < 0:
                                        break
                                    nxt = table[ni]
                                    if nxt.__class__ is not tuple:
                                        break  # cold/profiling leader: outer loop
                                    n_max, fn = nxt
                                    lead = ni
                                if ran:
                                    continue
                    handler = bound[index]
                    if handler is None:
                        self.fetch(pc)  # raises the canonical IllegalInstruction
                    record = handler(self, emit)
                    n += 1
                    fallback += 1
                    if exact:
                        counts[pc] = counts_get(pc, 0) + 1
                    else:
                        left -= 1
                        if left <= 0:
                            counts[pc] = counts_get(pc, 0) + 1
                            sampled += 1
                            left = period
                    if watchdog is not None:
                        watchdog.poll(n)
                    if emit:
                        yield record
            finally:
                if pending:
                    _fold_pending()
                for key, times in bexecs.items():
                    lead = key >> 8
                    cnt = key & 255
                    block = eng._extents.get(lead)
                    if block is None:
                        # Cross-machine code-cache hits bind without
                        # re-deriving the extent; _extent is pure static
                        # analysis, so recompute it here.
                        block = eng._extents[lead] = eng._extent(lead)
                    for ti, _inst, _cont in block.items[:cnt]:
                        bpc = base + 4 * ti
                        counts[bpc] = counts.get(bpc, 0) + times
                eng.execs += execs
                eng.insts += insts
                eng.fallback += fallback
                eng.side_exits += side_exits
                eng.flush_stats()
                gp.countdown = left
                gp.add_counts(counts, n, sampled)

    def run(self, max_steps: int = 10_000_000, watchdog=None, profiler=None) -> int:
        """Run until halt or *max_steps*; returns instructions retired.

        *max_steps* is a soft window bound (exhausting it returns, as
        before).  An optional :class:`~repro.harness.watchdog.Watchdog`
        enforces hard step/wall-clock budgets, raising
        :class:`~repro.harness.errors.RunawayExecution` on breach.  An
        optional :class:`~repro.obs.profiler.PhaseProfiler` records the
        run's wall time and emulated-instructions-per-second throughput
        under the ``emulate.run`` phase.
        """
        if profiler is not None:
            with profiler.phase("emulate.run") as ph:
                retired = self.run(max_steps, watchdog=watchdog)
                ph.add_items(retired)
            return retired
        start = self.instret
        # emit=False: the generator never yields, so this single next()
        # drives the whole run without per-instruction suspension.
        for _ in self._loop(max_steps, watchdog, False):  # pragma: no cover
            pass
        return self.instret - start

    def run_warm(self, max_steps: int = 10_000_000, watchdog=None) -> int:
        """Run like :meth:`run` while functionally warming caches and
        branch predictors; returns instructions retired.

        The statistical-sampling fast-forward path (SMARTS-style
        "functional warming"): hot code executes through warm-variant
        compiled blocks that touch the attached
        (:meth:`attach_warm_sink`) hierarchy on every memory operand and
        fetch-line transition and train the predictor on every control
        transfer, at block-compiled speed.  Cold-code fallback
        instructions warm through their trace records — branch-dense
        regions form short or cold blocks, so the fallback carries a
        disproportionate share of the predictor training stream.
        Execution under an active guest profiler does not warm;
        sampling suspends guest profiles around warm spans for exactly
        that reason.

        Requires ``dispatch='blocks'`` and an attached warm sink.
        """
        if self._engine is None:
            raise EmulatorError("run_warm requires dispatch='blocks'")
        if self._warm_sink is None:
            raise EmulatorError("run_warm requires attach_warm_sink() first")
        start = self.instret
        for _ in self._loop(max_steps, watchdog, False, warm=True):  # pragma: no cover
            pass
        return self.instret - start

    def trace(self, max_steps: int = 10_000_000, watchdog=None, profiler=None):
        """Yield :class:`TraceRecord` for each retired instruction.

        *watchdog* has the same semantics as in :meth:`run`.  An
        optional :class:`~repro.obs.profiler.PhaseProfiler` accumulates
        wall time and throughput under ``emulate.trace`` when the
        generator finishes (or is closed).
        """
        start = self.instret
        if profiler is not None:
            t0 = time.perf_counter()
            try:
                yield from self._loop(max_steps, watchdog, True)
            finally:
                profiler.add(
                    "emulate.trace", time.perf_counter() - t0, items=self.instret - start
                )
            return
        yield from self._loop(max_steps, watchdog, True)

    @property
    def stdout(self) -> str:
        """Decoded output of the print syscalls."""
        return self.output.decode("latin-1")


__all__ = [
    "DISPATCH_ENV",
    "EmulatorError",
    "IllegalInstruction",
    "Machine",
    "SYS_EXIT",
    "bits_from_f32",
    "default_dispatch",
    "dispatch_mode_override",
    "f32_from_bits",
    "set_dispatch_mode",
    "to_signed",
]
