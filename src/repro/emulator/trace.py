"""Dynamic trace records.

A :class:`TraceRecord` captures everything the downstream consumers
need about one retired instruction: the decoded instruction, its input
operand values, the produced result, the effective memory address (for
loads/stores) and the control-flow outcome.  The characterization
studies (paper Figures 2, 4, 6) are trace-driven over these records, as
in the paper's methodology (§4: "We use a trace driven simulator for
our characterization work").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import MEM_WIDTH, Instruction


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One retired instruction with its dynamic context.

    Attributes:
        pc: fetch address.
        inst: the decoded instruction.
        rs_val, rt_val: source register values read (32-bit unsigned
            images; meaningless for formats that do not read them).
        result: primary result value (register result, store data, or
            LO for multiply/divide).
        mem_addr: effective address for loads/stores, ``-1`` otherwise.
        taken: control-transfer outcome (True for taken branches and
            every jump).
        next_pc: architectural successor PC.
    """

    pc: int
    inst: Instruction
    rs_val: int
    rt_val: int
    result: int
    mem_addr: int
    taken: bool
    next_pc: int

    @property
    def is_load(self) -> bool:
        return self.inst.is_load

    @property
    def is_store(self) -> bool:
        return self.inst.is_store

    @property
    def is_branch(self) -> bool:
        return self.inst.is_branch

    @property
    def mem_size(self) -> int:
        """Bytes transferred, or 0 for non-memory instructions."""
        return MEM_WIDTH.get(self.inst.mnemonic, 0)

    @property
    def fallthrough_pc(self) -> int:
        return self.pc + 4


def trace_program(program, max_steps: int = 10_000_000, skip: int = 0):
    """Convenience generator: run *program* and yield trace records.

    Args:
        program: an assembled :class:`~repro.isa.assembler.Program`.
        max_steps: instruction budget after the skip window.
        skip: instructions to fast-forward before tracing begins
            (the paper fast-forwards 1B instructions; we expose the
            same knob at a feasible scale).
    """
    from repro.emulator.machine import Machine

    machine = Machine(program)
    if skip:
        machine.run(skip)
    yield from machine.trace(max_steps)
