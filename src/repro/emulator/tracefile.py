"""Trace serialization: pack dynamic traces into compact numpy arrays.

Collecting a steady-state trace means emulating through millions of
initialization instructions; serializing the resulting records lets a
trace be collected once and re-simulated many times (across processes,
parameter sweeps, CI runs).  Records pack into seven parallel ``uint32``
/ ``int64`` arrays inside a single ``.npz`` file; instructions are
stored as their 32-bit encodings and re-decoded on load (decode results
are cached per unique word, so a loaded trace shares ``Instruction``
objects exactly like a freshly generated one).

Robustness guarantees (format version 2):

* **Atomic writes** — :func:`save_trace` writes to a temporary file in
  the destination directory, fsyncs, then ``os.replace``s it into
  place, so an interrupted run never leaves a truncated trace behind.
* **Embedded checksum** — a CRC-32 over every field array (including
  the version marker) is stored in the file; :func:`load_trace`
  verifies it and raises
  :class:`~repro.harness.errors.TraceCorruption` on any mismatch.
* **Strict versioning** — a file written by an unknown (e.g. future)
  format raises :class:`TraceCorruption` instead of being silently
  misread.  Version-1 files (pre-checksum) still load.
"""

from __future__ import annotations

import os
import tempfile
import zlib
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.emulator.trace import TraceRecord
from repro.harness.errors import TraceCorruption
from repro.isa.encoding import decode, encode

#: Format marker stored inside the file for forward compatibility.
#: Version 2 added the embedded CRC-32 checksum.
FORMAT_VERSION = 2

#: Oldest format this build still reads (version 1 lacks the checksum).
OLDEST_SUPPORTED_VERSION = 1

#: Data fields, in canonical (checksum) order.
_FIELDS = ("pc", "word", "rs_val", "rt_val", "result", "mem_addr", "taken", "next_pc")


def _checksum(arrays: dict[str, np.ndarray]) -> int:
    """CRC-32 over the version marker and every field array."""
    crc = 0
    for name in ("version",) + _FIELDS:
        arr = np.ascontiguousarray(arrays[name])
        crc = zlib.crc32(name.encode(), crc)
        crc = zlib.crc32(str(arr.dtype).encode(), crc)
        crc = zlib.crc32(arr.tobytes(), crc)
    return crc & 0xFFFFFFFF


def pack_trace(records) -> dict[str, np.ndarray]:
    """Pack an iterable of :class:`TraceRecord` into numpy arrays."""
    records = list(records)
    n = len(records)
    pc = np.empty(n, dtype=np.uint32)
    word = np.empty(n, dtype=np.uint32)
    rs_val = np.empty(n, dtype=np.uint32)
    rt_val = np.empty(n, dtype=np.uint32)
    result = np.empty(n, dtype=np.uint32)
    mem_addr = np.empty(n, dtype=np.int64)  # -1 sentinel needs a signed type
    taken = np.empty(n, dtype=np.bool_)
    next_pc = np.empty(n, dtype=np.uint32)
    for i, r in enumerate(records):
        pc[i] = r.pc
        word[i] = encode(r.inst)
        rs_val[i] = r.rs_val
        rt_val[i] = r.rt_val
        result[i] = r.result & 0xFFFFFFFF
        mem_addr[i] = r.mem_addr
        taken[i] = r.taken
        next_pc[i] = r.next_pc
    arrays = {
        "version": np.array([FORMAT_VERSION], dtype=np.uint32),
        "pc": pc, "word": word, "rs_val": rs_val, "rt_val": rt_val,
        "result": result, "mem_addr": mem_addr, "taken": taken, "next_pc": next_pc,
    }
    arrays["checksum"] = np.array([_checksum(arrays)], dtype=np.uint32)
    return arrays


@lru_cache(maxsize=65536)
def _decode_cached(word: int):
    return decode(word)


def validate_arrays(arrays: dict[str, np.ndarray]) -> int:
    """Validate version, field presence, lengths and checksum.

    Returns the file's format version.

    Raises:
        TraceCorruption: any structural or checksum problem.
    """
    if "version" not in arrays or not len(arrays["version"]):
        raise TraceCorruption("trace has no format-version marker; not a trace file or truncated")
    version = int(arrays["version"][0])
    if not OLDEST_SUPPORTED_VERSION <= version <= FORMAT_VERSION:
        raise TraceCorruption(
            f"trace stored format version {version}, but this build reads versions "
            f"{OLDEST_SUPPORTED_VERSION}..{FORMAT_VERSION}; refusing to guess at its layout"
        )
    missing = [f for f in _FIELDS if f not in arrays]
    if missing:
        raise TraceCorruption(f"trace is missing field array(s): {', '.join(missing)}")
    n = len(arrays["pc"])
    bad_len = [f for f in _FIELDS if len(arrays[f]) != n]
    if bad_len:
        raise TraceCorruption(f"trace field length mismatch in: {', '.join(bad_len)}")
    if version >= 2:
        if "checksum" not in arrays or not len(arrays["checksum"]):
            raise TraceCorruption("version-2 trace is missing its checksum array")
        stored = int(arrays["checksum"][0])
        actual = _checksum(arrays)
        if stored != actual:
            raise TraceCorruption(
                f"trace checksum mismatch: stored {stored:#010x}, computed {actual:#010x} "
                f"— the file is corrupt (bit rot, truncation, or a tampered field)"
            )
    return version


def unpack_trace(arrays: dict[str, np.ndarray]) -> list[TraceRecord]:
    """Rebuild :class:`TraceRecord` objects from packed arrays.

    Raises:
        TraceCorruption: the arrays fail version/checksum validation.
    """
    validate_arrays(arrays)
    out: list[TraceRecord] = []
    pc = arrays["pc"]
    word = arrays["word"]
    rs_val = arrays["rs_val"]
    rt_val = arrays["rt_val"]
    result = arrays["result"]
    mem_addr = arrays["mem_addr"]
    taken = arrays["taken"]
    next_pc = arrays["next_pc"]
    for i in range(len(pc)):
        out.append(
            TraceRecord(
                pc=int(pc[i]),
                inst=_decode_cached(int(word[i])),
                rs_val=int(rs_val[i]),
                rt_val=int(rt_val[i]),
                result=int(result[i]),
                mem_addr=int(mem_addr[i]),
                taken=bool(taken[i]),
                next_pc=int(next_pc[i]),
            )
        )
    return out


def _normalize_path(path: str | Path) -> Path:
    """Mirror ``np.savez``'s behavior of appending ``.npz``."""
    path = Path(path)
    return path if path.name.endswith(".npz") else path.with_name(path.name + ".npz")


def save_trace(path: str | Path, records) -> int:
    """Write a trace to *path* (``.npz``) atomically; returns the count.

    The arrays are written to a temporary file in the destination
    directory, flushed and fsynced, then renamed over *path* — an
    interrupted save never leaves a partial trace at *path*.
    """
    arrays = pack_trace(records)
    path = _normalize_path(path)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent) or ".", prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return len(arrays["pc"])


def load_trace(path: str | Path) -> list[TraceRecord]:
    """Load a trace written by :func:`save_trace`.

    Raises:
        FileNotFoundError: *path* does not exist.
        TraceCorruption: the file is truncated, not an ``.npz`` archive,
            fails its checksum, or stores an unknown format version.
    """
    path = _normalize_path(path)
    if not path.exists():
        raise FileNotFoundError(str(path))
    try:
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
    except TraceCorruption:
        raise
    except Exception as exc:  # zipfile.BadZipFile, ValueError, EOFError, ...
        raise TraceCorruption(f"{path}: unreadable trace archive (truncated write?): {exc}") from exc
    return unpack_trace(arrays)


__all__ = [
    "FORMAT_VERSION",
    "OLDEST_SUPPORTED_VERSION",
    "load_trace",
    "pack_trace",
    "save_trace",
    "unpack_trace",
    "validate_arrays",
]
