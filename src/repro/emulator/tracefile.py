"""Trace serialization: pack dynamic traces into compact numpy arrays.

Collecting a steady-state trace means emulating through millions of
initialization instructions; serializing the resulting records lets a
trace be collected once and re-simulated many times (across processes,
parameter sweeps, CI runs).  Records pack into seven parallel ``uint32``
/ ``int64`` arrays inside a single ``.npz`` file; instructions are
stored as their 32-bit encodings and re-decoded on load (decode results
are cached per unique word, so a loaded trace shares ``Instruction``
objects exactly like a freshly generated one).
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.emulator.trace import TraceRecord
from repro.isa.encoding import decode, encode

#: Format marker stored inside the file for forward compatibility.
FORMAT_VERSION = 1


def pack_trace(records) -> dict[str, np.ndarray]:
    """Pack an iterable of :class:`TraceRecord` into numpy arrays."""
    records = list(records)
    n = len(records)
    pc = np.empty(n, dtype=np.uint32)
    word = np.empty(n, dtype=np.uint32)
    rs_val = np.empty(n, dtype=np.uint32)
    rt_val = np.empty(n, dtype=np.uint32)
    result = np.empty(n, dtype=np.uint32)
    mem_addr = np.empty(n, dtype=np.int64)  # -1 sentinel needs a signed type
    taken = np.empty(n, dtype=np.bool_)
    next_pc = np.empty(n, dtype=np.uint32)
    for i, r in enumerate(records):
        pc[i] = r.pc
        word[i] = encode(r.inst)
        rs_val[i] = r.rs_val
        rt_val[i] = r.rt_val
        result[i] = r.result & 0xFFFFFFFF
        mem_addr[i] = r.mem_addr
        taken[i] = r.taken
        next_pc[i] = r.next_pc
    return {
        "version": np.array([FORMAT_VERSION], dtype=np.uint32),
        "pc": pc, "word": word, "rs_val": rs_val, "rt_val": rt_val,
        "result": result, "mem_addr": mem_addr, "taken": taken, "next_pc": next_pc,
    }


@lru_cache(maxsize=65536)
def _decode_cached(word: int):
    return decode(word)


def unpack_trace(arrays: dict[str, np.ndarray]) -> list[TraceRecord]:
    """Rebuild :class:`TraceRecord` objects from packed arrays."""
    version = int(arrays["version"][0])
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version}")
    out: list[TraceRecord] = []
    pc = arrays["pc"]
    word = arrays["word"]
    rs_val = arrays["rs_val"]
    rt_val = arrays["rt_val"]
    result = arrays["result"]
    mem_addr = arrays["mem_addr"]
    taken = arrays["taken"]
    next_pc = arrays["next_pc"]
    for i in range(len(pc)):
        out.append(
            TraceRecord(
                pc=int(pc[i]),
                inst=_decode_cached(int(word[i])),
                rs_val=int(rs_val[i]),
                rt_val=int(rt_val[i]),
                result=int(result[i]),
                mem_addr=int(mem_addr[i]),
                taken=bool(taken[i]),
                next_pc=int(next_pc[i]),
            )
        )
    return out


def save_trace(path: str | Path, records) -> int:
    """Write a trace to *path* (``.npz``); returns the record count."""
    arrays = pack_trace(records)
    np.savez_compressed(path, **arrays)
    return len(arrays["pc"])


def load_trace(path: str | Path) -> list[TraceRecord]:
    """Load a trace written by :func:`save_trace`."""
    with np.load(path) as data:
        return unpack_trace({k: data[k] for k in data.files})
